"""Per-user cardinality: a million-entity keyed sketch store.

Run with::

    python examples/per_user_cardinality.py

The serving-scale shape of the paper's motivating applications: a site
tracks, for every user, the number of distinct items (pages, songs,
peers) that user touched.  One sketch object per user would mean one
Python call per event; the keyed sketch store keeps every user's sketch
as one row of a struct-of-arrays register matrix and ingests the whole
event batch — ``(user_id, item_id)`` pairs — in one hash pass plus a
grouped scatter.

The script ingests a skewed synthetic event log, prints the top users by
estimated distinct items against their exact counts, demonstrates
store-level rollup (two ingest sites merging key-wise), and shows the
key-range sharded multi-process path.
"""

from __future__ import annotations

import numpy as np

from repro import SketchStore, parallel_ingest_keyed
from repro.analysis import Table
from repro.streams import keyed_uniform_stream

UNIVERSE = 1 << 24
USERS = 100_000
EVENTS = 1_000_000
EPS = 0.1
SEED = 7


def main() -> None:
    workload = keyed_uniform_stream(
        UNIVERSE, key_count=USERS, length=EVENTS, distinct_per_key=256, seed=3
    )
    print(
        "Event log: %d events over <= %d users (universe 2^24)\n"
        % (len(workload), USERS)
    )

    # --- grouped ingestion ----------------------------------------------------
    store = SketchStore.for_family("hyperloglog", UNIVERSE, eps=EPS, seed=SEED)
    for keys, items in workload.iter_grouped_batches(1 << 17):
        store.update_grouped(keys, items)
    print(
        "Store: %d user sketches, %.1f MiB of register state"
        % (len(store), store.space_bits() / 8 / (1 << 20))
    )

    truth = workload.ground_truth()
    estimates = store.estimate_all()
    top = sorted(estimates, key=estimates.get, reverse=True)[:5]
    table = Table(
        "Top users by estimated distinct items (eps = %.2f)" % EPS,
        ["user", "estimate", "exact", "relative error"],
    )
    for user in top:
        exact = truth[user]
        table.add_row(
            [
                str(user),
                "%.0f" % estimates[user],
                str(exact),
                "%.3f" % (abs(estimates[user] - exact) / exact),
            ]
        )
    print(table.render_text())
    errors = [
        abs(estimates[user] - count) / count
        for user, count in truth.items()
        if count
    ]
    print(
        "Mean per-user relative error: %.3f over %d users\n"
        % (sum(errors) / len(errors), len(errors))
    )

    # --- store-level rollup ---------------------------------------------------
    # Two ingest sites observe disjoint halves of the traffic; their stores
    # merge key-wise into the union statistics (same family, same seed).
    half = EVENTS // 2
    site_a = store.spawn_empty()
    site_a.update_grouped(workload.keys[:half], workload.items[:half])
    site_b = store.spawn_empty()
    site_b.update_grouped(workload.keys[half:], workload.items[half:])
    site_a.merge_from(site_b)
    merged = site_a.estimate_all()
    print(
        "Rollup: two half-traffic stores merged key-wise; estimates identical "
        "to single-store ingestion: %s"
        % all(merged[user] == estimates[user] for user in estimates)
    )

    # --- key-range sharded multi-process ingestion ----------------------------
    sharded = store.spawn_empty()
    parallel_ingest_keyed(sharded, workload.keys, workload.items, workers=4)
    sharded_estimates = sharded.estimate_all()
    print(
        "Sharded: 4-worker key-range ingest matches serial grouped ingest: %s"
        % all(sharded_estimates[user] == estimates[user] for user in estimates)
    )


if __name__ == "__main__":
    main()
