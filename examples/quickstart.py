"""Quickstart: estimate the number of distinct elements in a stream.

Run with::

    python examples/quickstart.py

The script builds a synthetic stream with a known number of distinct
identifiers, feeds it to the KNW estimator (and, for comparison, the exact
counter and HyperLogLog), and prints estimates, errors, and sketch sizes.
It also demonstrates mid-stream reporting and sketch merging.
"""

from __future__ import annotations

from repro import ExactDistinctCounter, KNWDistinctCounter, make_f0_estimator
from repro.analysis import Table, format_bits
from repro.streams import distinct_items_stream, duplicated_union_streams

UNIVERSE = 1 << 20
TRUE_DISTINCT = 50_000
EPS = 0.05


def main() -> None:
    stream = distinct_items_stream(UNIVERSE, TRUE_DISTINCT, repetitions=2, seed=1)
    print(
        "Stream: %d updates, %d distinct identifiers, universe 2^20\n"
        % (len(stream), stream.ground_truth())
    )

    # --- basic usage ---------------------------------------------------------
    knw = KNWDistinctCounter(UNIVERSE, eps=EPS, seed=7)
    exact = ExactDistinctCounter(UNIVERSE)
    hll = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=7)

    table = Table("Distinct-element estimates (eps = %.2f)" % EPS, [
        "algorithm", "estimate", "relative error", "sketch size",
    ])
    for estimator in (knw, exact, hll):
        estimate = estimator.process_stream(stream)
        error = abs(estimate - TRUE_DISTINCT) / TRUE_DISTINCT
        table.add_row(
            [estimator.name, "%.0f" % estimate, "%.3f" % error, format_bits(estimator.space_bits())]
        )
    print(table.render_text())

    # --- mid-stream reporting -------------------------------------------------
    print("\nMid-stream reporting (estimate available at any time):")
    running = KNWDistinctCounter(UNIVERSE, eps=EPS, seed=11)
    positions = stream.checkpoints(4)
    truths = stream.ground_truth_at(positions)
    cursor = 0
    for position, truth in zip(positions, truths):
        while cursor < position:
            running.update(stream[cursor].item)
            cursor += 1
        print(
            "  after %7d updates: estimate %8.0f   (exact %7d)"
            % (position, running.estimate(), truth)
        )

    # --- batch ingestion (the high-throughput path) ----------------------------
    import time

    batched = KNWDistinctCounter(UNIVERSE, eps=EPS, seed=11)
    start = time.perf_counter()
    for chunk in stream.iter_item_batches(65536):
        batched.update_batch(chunk)
    elapsed = time.perf_counter() - start
    print(
        "\nBatch ingestion: %d items in %.3fs (%.0f items/s), estimate %.0f"
        % (len(stream), elapsed, len(stream) / elapsed, batched.estimate())
    )
    print("(update_batch is bit-identical to the update loop -- same estimate.)")

    # --- merging sketches built over different streams -------------------------
    left, right = duplicated_union_streams(UNIVERSE, 20_000, overlap_fraction=0.5, seed=3)
    union_truth = left.concat(right).ground_truth()
    sketch_a = KNWDistinctCounter(UNIVERSE, eps=EPS, seed=99)
    sketch_b = KNWDistinctCounter(UNIVERSE, eps=EPS, seed=99)
    sketch_a.process_stream(left)
    sketch_b.process_stream(right)
    sketch_a.merge(sketch_b)
    print(
        "\nUnion via merge: estimate %.0f vs exact %d (two sites, one combined sketch)"
        % (sketch_a.estimate(), union_truth)
    )


if __name__ == "__main__":
    main()
