"""Accuracy/space trade-off example: the Figure-1 comparison in miniature.

Runs the KNW estimator and the main baselines over the same workload at
several accuracy targets and prints the space each needs and the error each
achieves — a quick interactive version of the full benchmark in
``benchmarks/bench_figure1_space.py``.

Run with::

    python examples/accuracy_space_tradeoff.py
"""

from __future__ import annotations

from repro.analysis import Table, accuracy_sweep, format_bits
from repro.streams import distinct_items_stream

UNIVERSE = 1 << 18
DISTINCT = 20_000
ALGORITHMS = ["knw", "knw-fast", "hyperloglog", "kmv", "bjkst", "linear-counting"]
EPS_VALUES = [0.1, 0.05]
SEEDS = [1, 2, 3]


def main() -> None:
    points = accuracy_sweep(
        algorithms=ALGORITHMS,
        stream_factory=lambda seed: distinct_items_stream(
            UNIVERSE, DISTINCT, repetitions=2, seed=seed
        ),
        eps_values=EPS_VALUES,
        seeds=SEEDS,
    )
    table = Table(
        "Accuracy vs space on %d distinct items (mean of %d seeds)" % (DISTINCT, len(SEEDS)),
        ["eps target", "algorithm", "mean rel. error", "p90 rel. error", "space"],
    )
    for point in points:
        table.add_row([
            "%.2f" % point.eps,
            point.algorithm,
            "%.3f" % point.summary.mean,
            "%.3f" % point.summary.p90,
            format_bits(int(point.mean_space_bits)),
        ])
    print(table.render_text())
    print(
        "\nReading guide: the KNW rows match the oracle-model sketches' error at"
        "\ncomparable space while using only explicit, analysed hash functions —"
        "\nthe trade-off the paper's Figure 1 summarises."
    )


if __name__ == "__main__":
    main()
