"""Workload zoo: stress every sketch family with adversarial streams.

Run with::

    python examples/workload_zoo.py

Uniform random streams are the *easiest* input a distinct counter will
ever see.  The zoo in ``repro.streams.workloads`` materialises the hard
ones — heavy skew, insert-then-delete churn, bursts with long silent
gaps, cold-key growth, and planted hash near-collisions — each with
exact ground truth, in all three ingestion shapes, from a single seed.

The script walks the five classes, prints what each one stresses, runs
the per-class accuracy grid through the sweep harness's class-name axis,
and finishes with a windowed churn demo (deletion epochs driving a
sliding window's L0 back toward zero).
"""

from __future__ import annotations

from repro.analysis import format_workload_grid, workload_class_grid
from repro.estimators.registry import make_l0_estimator
from repro.streams import WorkloadScale, make_workload, workload_class, workload_class_names
from repro.window import WindowedSketch

SCALE = WorkloadScale(
    universe_size=1 << 14,
    length=4_000,
    key_count=32,
    epochs=6,
    updates_per_epoch=400,
)
EPS = 0.1


def tour_the_classes() -> None:
    print("The five workload classes\n" + "=" * 25)
    for name in workload_class_names():
        cls = workload_class(name)
        stream = make_workload(name, "stream", seed=11, scale=SCALE)
        model = "L0 (turnstile)" if cls.turnstile else "F0 (insertion-only)"
        print(
            "%-12s %-20s %6d updates, ground truth %5d\n  stresses: %s"
            % (name, model, len(stream), stream.ground_truth(), cls.stresses)
        )
    print()


def accuracy_grid() -> None:
    print("Per-class accuracy grid (sweeps accept class names directly)")
    print("=" * 60)
    grid = workload_class_grid(
        f0_algorithms=["knw", "hyperloglog", "bjkst"],
        l0_algorithms=["knw-l0", "ganguly"],
        eps_values=[EPS],
        seeds=[1, 2, 3],
        workload_scale=SCALE,
    )
    print(format_workload_grid(grid))
    print()


def windowed_churn() -> None:
    print("Windowed churn: deletions drag the sliding window back down")
    print("=" * 60)
    workload = make_workload("churn", "windowed", seed=5, scale=SCALE)
    ring = WindowedSketch(
        make_l0_estimator(
            "knw-l0", workload.universe_size, EPS, len(workload), seed=9
        ),
        retention=workload.epoch_count,
    )
    ring.ingest_timestamped(workload.epochs, workload.items, workload.deltas)
    for width in (1, workload.epoch_count // 2, workload.epoch_count):
        print(
            "window of last %d epoch(s): estimate %7.0f, exact %5d"
            % (width, ring.estimate_window(width), workload.ground_truth_window(width))
        )


def main() -> None:
    tour_the_classes()
    accuracy_grid()
    windowed_churn()


if __name__ == "__main__":
    main()
