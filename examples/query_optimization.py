"""Query-optimizer example: one-pass NDV statistics and join-size estimates.

Reproduces the paper's database motivation (Selinger-style optimisation):
collect distinct-value counts for table columns in a single pass, then use
them for selectivity and equi-join cardinality estimates.

Run with::

    python examples/query_optimization.py
"""

from __future__ import annotations

import random

from repro.apps import ColumnStatisticsCollector
from repro.analysis import Table, format_bits
from repro.streams import table_column

UNIVERSE = 1 << 20


def main() -> None:
    rng = random.Random(42)

    # Synthesise an "orders" fact table and a "customers" dimension table.
    orders_rows = 40_000
    customers_rows = 8_000
    customer_ids = [rng.randrange(UNIVERSE) for _ in range(customers_rows)]
    orders_customer_key = [rng.choice(customer_ids) for _ in range(orders_rows)]
    orders_status = [rng.choice([1, 2, 3, 4, 5]) for _ in range(orders_rows)]
    orders_product = [u.item for u in table_column(
        UNIVERSE, rows=orders_rows, distinct_values=2_500, seed=7
    )]

    collector = ColumnStatisticsCollector(
        ["orders.customer_key", "orders.status", "orders.product_id", "customers.id"],
        UNIVERSE,
        eps=0.05,
        seed=3,
    )
    collector.ingest_column("orders.customer_key", orders_customer_key)
    collector.ingest_column("orders.status", orders_status)
    collector.ingest_column("orders.product_id", orders_product)
    collector.ingest_column("customers.id", customer_ids)

    exact = {
        "orders.customer_key": len(set(orders_customer_key)),
        "orders.status": len(set(orders_status)),
        "orders.product_id": len(set(orders_product)),
        "customers.id": len(set(customer_ids)),
    }

    table = Table("Column NDV statistics (single pass, eps = 0.05)", [
        "column", "estimated NDV", "exact NDV", "selectivity (1/NDV)",
    ])
    for column in collector.columns:
        table.add_row([
            column,
            "%.0f" % collector.ndv(column),
            exact[column],
            "%.2e" % collector.selectivity(column),
        ])
    print(table.render_text())
    print("\nTotal statistics footprint: %s" % format_bits(collector.space_bits()))

    join = collector.join_estimate("orders.customer_key", "customers.id")
    exact_join_rows = orders_rows  # every order matches exactly one customer
    print(
        "\nEqui-join size estimate  orders JOIN customers ON customer_key = id:"
        "\n  estimated rows: %.0f    actual rows: %d"
        % (join.estimated_rows, exact_join_rows)
    )

    union = collector.union_ndv("orders.customer_key", "customers.id")
    print(
        "Union NDV of the two key columns (via sketch merge): %.0f (exact %d)"
        % (union, len(set(orders_customer_key) | set(customer_ids)))
    )


if __name__ == "__main__":
    main()
