"""Network monitoring example: distinct flows, port-scan detection.

Reproduces the paper's network-motivation scenario (Section 1): a router
tracks distinct flows per window with a small sketch and flags sources
whose destination fan-out explodes (port scan / worm spread signature).
Completed windows stay queryable as rolling windows (the sliding-window
sketch rings of :mod:`repro.window`), so the example closes with the
"distinct flows over the last k windows" view.

Run with::

    python examples/network_monitoring.py
"""

from __future__ import annotations

from repro.apps import FlowCardinalityMonitor
from repro.streams import packet_trace

UNIVERSE = 1 << 20


def main() -> None:
    # Two traffic phases: normal traffic, then the same plus a scanning host.
    normal_stream, normal_records = packet_trace(
        UNIVERSE, packets=30_000, distinct_flows=4_000, seed=5
    )
    _, scan_records = packet_trace(
        UNIVERSE, packets=0, distinct_flows=1, scanner_destinations=1_500, seed=6
    )

    monitor = FlowCardinalityMonitor(
        universe_size=UNIVERSE,
        eps=0.05,
        window_packets=10_000,
        scan_fanout_threshold=500,
        seed=1,
        mergeable=True,   # rolling multi-window queries merge-rollup
        window_history=8,
    )

    print("Phase 1: normal traffic (%d packets, %d distinct flows)" % (
        len(normal_records), normal_stream.ground_truth()))
    for record in normal_records:
        report = monitor.observe(record)
        if report is not None:
            print(
                "  window %d: ~%6.0f flows, ~%6.0f sources, ~%6.0f destinations, suspects: %s"
                % (
                    report.window_index,
                    report.distinct_flows,
                    report.distinct_sources,
                    report.distinct_destinations,
                    report.scan_suspects or "none",
                )
            )

    print("\nPhase 2: a scanning host touches 1500 distinct destinations")
    for record in scan_records:
        report = monitor.observe(record)
        if report is not None:
            _print_scan_report(report)
    final = monitor.flush()
    if final is not None:
        _print_scan_report(final)

    print("\nRolling windows (merge-rollup over the retained window ring):")
    for width in (1, 2, monitor.retained_windows()):
        print(
            "  distinct flows over the last %d window(s): ~%6.0f"
            % (width, monitor.distinct_flows_last(width))
        )
    slow_scan_view = monitor.fanout_last(monitor.retained_windows())
    widest = max(slow_scan_view, key=slow_scan_view.get)
    print(
        "  widest fan-out across all retained windows: source %d (~%.0f destinations)"
        % (widest, slow_scan_view[widest])
    )

    print(
        "\nPer-window sketch cost is a few kilobits regardless of traffic volume —"
        "\nthe constant-space, constant-time-per-packet property the paper targets."
    )


def _print_scan_report(report) -> None:
    print(
        "  window %d: ~%6.0f flows, suspects flagged by fan-out detector: %s"
        % (report.window_index, report.distinct_flows, report.scan_suspects or "none")
    )


if __name__ == "__main__":
    main()
