"""Durable sketch persistence: kill a live ingest, recover bit-identically.

Run with::

    python examples/durable_store.py

A long-running counting service cannot afford to lose its sketches on a
crash, and re-ingesting the raw stream is exactly the cost the sketch
existed to avoid.  ``repro.durability`` fixes this with a checksummed
write-ahead log plus periodic snapshots: every batched mutation is
applied and then durably appended, so ``recover()`` rebuilds a state
**bit-identical** to the uninterrupted run.

The script walks the full lifecycle against a real crash, not a mock:

1. ingest half a seeded workload through a ``Checkpointer``, then
   SIGKILL the worker process mid-stream (no atexit, no cleanup);
2. recover the directory, print the ``RecoveryReport``, and verify the
   recovered sketch byte-equals a clean same-seed run replayed to the
   recovered sequence number;
3. resume with ``Checkpointer.open`` and finish the workload — the
   final estimate matches a never-crashed run exactly;
4. demonstrate the torn-tail path by truncating the live segment
   mid-record and recovering through the quarantine machinery.
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile

import numpy as np

from repro import Checkpointer, recover
from repro.estimators.registry import make_f0_estimator

UNIVERSE = 1 << 20
ITEMS = 200_000
BATCH = 4096
EPS = 0.05
SEED = 7


def _batches():
    items = np.random.RandomState(29).randint(0, UNIVERSE, size=ITEMS)
    items = items.astype(np.uint64)
    return [items[start : start + BATCH] for start in range(0, ITEMS, BATCH)]


def _fresh():
    return make_f0_estimator("knw", UNIVERSE, EPS, seed=SEED)


def _ingest_then_die(directory: str, upto: int) -> None:
    """Child body: ingest ``upto`` batches, then SIGKILL ourselves."""
    checkpointer = Checkpointer(_fresh(), directory, snapshot_every=8)
    for batch in _batches()[:upto]:
        checkpointer.ingest(batch)
    os.kill(os.getpid(), signal.SIGKILL)  # no close(), no flush, no mercy


def main() -> None:
    batches = _batches()
    half = len(batches) // 2

    with tempfile.TemporaryDirectory() as directory:
        # --- 1. crash mid-ingest ------------------------------------------
        pid = os.fork()
        if pid == 0:
            _ingest_then_die(directory, half)
            os._exit(1)  # unreachable
        _, status = os.waitpid(pid, 0)
        print(
            "worker SIGKILLed after %d of %d batches (wait status %#x)"
            % (half, len(batches), status)
        )

        # --- 2. recover and verify bit-identity ---------------------------
        target, report = recover(directory)
        print("\n%s\n" % report.summary())

        clean = _fresh()
        for batch in batches[: report.last_seq]:
            clean.update_batch(batch)
        assert target.to_bytes() == clean.to_bytes()
        print(
            "recovered sketch is bit-identical to a clean run of the "
            "first %d batches (estimate %.0f)" % (report.last_seq, target.estimate())
        )

        # --- 3. resume and finish -----------------------------------------
        checkpointer, report = Checkpointer.open(directory, _fresh, snapshot_every=8)
        for batch in batches[checkpointer.seq :]:
            checkpointer.ingest(batch)
        resumed_estimate = checkpointer.target.estimate()
        resumed_bytes = checkpointer.target.to_bytes()
        checkpointer.snapshot()
        checkpointer.close()

        reference = _fresh()
        for batch in batches:
            reference.update_batch(batch)
        assert resumed_bytes == reference.to_bytes()
        print(
            "resumed run finished the stream: estimate %.0f == "
            "never-crashed %.0f (bit-identical)"
            % (resumed_estimate, reference.estimate())
        )

        # --- 4. torn tail: truncate the live segment mid-record -----------
        segments = sorted(
            name for name in os.listdir(directory) if name.endswith(".seg")
        )
        victim = os.path.join(directory, segments[-1])
        size = os.path.getsize(victim)
        if size == 0:
            # the sealed log ends on a snapshot; write one more record first
            checkpointer, _ = Checkpointer.open(directory, _fresh)
            checkpointer.ingest(batches[0])
            checkpointer.close()
            segments = sorted(
                name for name in os.listdir(directory) if name.endswith(".seg")
            )
            victim = os.path.join(directory, segments[-1])
            size = os.path.getsize(victim)
        with open(victim, "r+b") as handle:
            handle.truncate(size - size // 3)  # tear the last record
        target, report = recover(directory)
        print("\nafter tearing %s:\n%s" % (os.path.basename(victim), report.summary()))
        assert report.faults and report.faults[0][1] == "torn"
        assert report.quarantined
        print(
            "torn tail truncated + quarantined; recovered to seq %d "
            "without raising" % report.last_seq
        )


if __name__ == "__main__":
    if not hasattr(os, "fork"):
        sys.exit("this example needs os.fork (POSIX)")
    main()
