"""Data-cleaning example: finding similar columns with Hamming-norm sketches.

Reproduces the paper's L0 motivation (Cormode et al., Dasu et al.): compare
database columns by the Hamming norm of their value-multiset difference —
robust to row order, computable in one pass per column, and usable across
tables that cannot be joined.

Run with::

    python examples/data_cleaning.py
"""

from __future__ import annotations

import random

from repro.analysis import Table
from repro.apps import SimilarColumnFinder

UNIVERSE = 1 << 18
ROWS = 5_000


def main() -> None:
    rng = random.Random(11)

    # A "customer_id" column, an exact copy under a different name, a copy
    # with 5% dirty rows, a shuffled copy, and an unrelated column.
    customer_id = [rng.randrange(UNIVERSE) for _ in range(ROWS)]
    cust_ref = list(customer_id)
    dirty_copy = list(customer_id)
    for position in rng.sample(range(ROWS), ROWS // 20):
        dirty_copy[position] = rng.randrange(UNIVERSE)
    shuffled = list(customer_id)
    rng.shuffle(shuffled)
    unrelated = [rng.randrange(UNIVERSE) for _ in range(ROWS)]

    finder = SimilarColumnFinder(UNIVERSE, eps=0.1, seed=5)
    finder.add_column("orders.customer_id", customer_id)
    finder.add_column("invoices.cust_ref", cust_ref)
    finder.add_column("legacy.cust_id_dirty", dirty_copy)
    finder.add_column("export.customer_id_shuffled", shuffled)
    finder.add_column("products.sku", unrelated)

    table = Table("Most similar column pairs (Hamming-norm sketches)", [
        "column A", "column B", "est. differing values", "similarity",
    ])
    for report in finder.most_similar_pairs(top=6):
        table.add_row([
            report.first,
            report.second,
            "%.0f" % report.hamming_estimate,
            "%.3f" % report.similarity,
        ])
    print(table.render_text())

    print(
        "\nNote how the shuffled copy scores as similar as the exact copy —"
        "\nthe Hamming norm compares value multisets, not row positions —"
        "\nwhile the unrelated column scores near zero."
    )

    # One-pass streaming comparison without storing either column.
    streaming_estimate = finder.pair_report_streaming(customer_id, dirty_copy)
    exact_difference = _exact_multiset_hamming(customer_id, dirty_copy)
    print(
        "\nStreaming comparison of orders.customer_id vs legacy.cust_id_dirty:"
        "\n  estimated differing values: %.0f   exact: %d"
        % (streaming_estimate, exact_difference)
    )


def _exact_multiset_hamming(left, right) -> int:
    from collections import Counter

    difference = Counter(left)
    difference.subtract(Counter(right))
    return sum(1 for count in difference.values() if count != 0)


if __name__ == "__main__":
    main()
