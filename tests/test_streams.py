"""Tests for the stream model, generators, turnstile workloads, and datasets."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError, StreamFormatError
from repro.streams import (
    MaterializedStream,
    Update,
    distinct_items_stream,
    duplicated_union_streams,
    exact_f0,
    exact_l0,
    fluctuating_stream,
    frequency_vector,
    growing_then_repeating_stream,
    insert_delete_stream,
    low_bits_adversarial_stream,
    mixed_sign_stream,
    packet_trace,
    paired_columns,
    query_log,
    sequential_stream,
    stream_from_items,
    table_column,
    uniform_random_stream,
    zipf_stream,
)


class TestUpdateAndGroundTruth:
    def test_update_validation(self):
        with pytest.raises(ParameterError):
            Update(-1, 1)
        with pytest.raises(ParameterError):
            Update(3, 0)

    def test_exact_f0(self):
        assert exact_f0([1, 2, 2, 3, 1]) == 3

    def test_frequency_vector_cancellation(self):
        updates = [Update(1, 2), Update(1, -2), Update(2, 5)]
        assert frequency_vector(updates) == {2: 5}

    def test_exact_l0(self):
        updates = [Update(1, 1), Update(2, 1), Update(1, -1), Update(3, -4)]
        assert exact_l0(updates) == 2


class TestMaterializedStream:
    def test_rejects_items_outside_universe(self):
        with pytest.raises(StreamFormatError):
            MaterializedStream([Update(10, 1)], universe_size=10)

    def test_len_iter_getitem(self):
        stream = stream_from_items([1, 2, 3], 10)
        assert len(stream) == 3
        assert stream[1].item == 2
        assert [u.item for u in stream] == [1, 2, 3]

    def test_is_insertion_only(self):
        assert stream_from_items([1, 2], 10).is_insertion_only()
        assert not MaterializedStream([Update(1, -1)], 10).is_insertion_only()
        assert MaterializedStream([], 10).is_insertion_only()

    def test_is_insertion_only_is_cached(self):
        stream = stream_from_items([1, 2, 3], 10)
        assert stream.is_insertion_only()
        # the memoized answer is reused (and stays a plain bool)
        assert stream._insertion_only is True
        assert stream.is_insertion_only() is True
        turnstile = MaterializedStream([Update(1, 1), Update(1, -1)], 10)
        assert turnstile.is_insertion_only() is False
        assert turnstile.is_insertion_only() is False

    def test_ground_truth_at_checkpoints(self):
        stream = stream_from_items([1, 1, 2, 3, 3, 4], 10)
        assert stream.ground_truth_at([0, 2, 4, 6]) == [0, 1, 3, 4]

    def test_ground_truth_at_validates(self):
        stream = stream_from_items([1, 2], 10)
        with pytest.raises(ParameterError):
            stream.ground_truth_at([2, 1])
        with pytest.raises(ParameterError):
            stream.ground_truth_at([3])

    def test_prefix_and_concat(self):
        stream = stream_from_items([1, 2, 3, 4], 10)
        prefix = stream.prefix(2)
        assert prefix.ground_truth() == 2
        combined = prefix.concat(stream.prefix(3))
        assert combined.ground_truth() == 3
        assert len(combined) == 5

    def test_concat_requires_same_universe(self):
        with pytest.raises(ParameterError):
            stream_from_items([1], 10).concat(stream_from_items([1], 20))

    def test_checkpoints(self):
        stream = stream_from_items(list(range(100)), 200)
        marks = stream.checkpoints(4)
        assert marks == [25, 50, 75, 100]
        assert stream.checkpoints(1) == [100]

    def test_checkpoints_more_than_length_deduplicate(self):
        """Regression: count > len(stream) used to emit duplicate prefixes."""
        stream = stream_from_items([1, 2], 10)
        assert stream.checkpoints(5) == [0, 1, 2]
        assert stream.checkpoints(2) == [1, 2]
        single = stream_from_items([7], 10)
        assert single.checkpoints(4) == [0, 1]
        empty = MaterializedStream([], 10)
        assert empty.checkpoints(3) == [0]

    def test_max_update_magnitude(self):
        stream = MaterializedStream([Update(1, -7), Update(2, 3)], 10)
        assert stream.max_update_magnitude() == 7


class TestInsertionGenerators:
    def test_distinct_items_stream_exact_count(self):
        stream = distinct_items_stream(1 << 12, 500, repetitions=3, seed=1)
        assert stream.ground_truth() == 500
        assert len(stream) == 1500

    def test_distinct_items_validation(self):
        with pytest.raises(ParameterError):
            distinct_items_stream(100, 200)

    def test_uniform_random_stream(self):
        stream = uniform_random_stream(1000, 5000, seed=2)
        assert len(stream) == 5000
        assert stream.ground_truth() <= 1000

    def test_zipf_stream_skew_concentrates_mass(self):
        stream = zipf_stream(1 << 14, 5000, skew=1.5, seed=3)
        assert len(stream) == 5000
        # Heavy skew means far fewer distinct items than stream length.
        assert stream.ground_truth() < 2500

    def test_sequential_stream(self):
        stream = sequential_stream(100, 40)
        assert [u.item for u in stream] == list(range(40))

    def test_low_bits_adversarial_requires_power_of_two(self):
        with pytest.raises(ParameterError):
            low_bits_adversarial_stream(100, 10)
        stream = low_bits_adversarial_stream(128, 64)
        assert stream.ground_truth() == 64

    def test_growing_then_repeating(self):
        stream = growing_then_repeating_stream(1 << 12, 300, 700, seed=4)
        assert len(stream) == 1000
        assert stream.ground_truth() == 300

    def test_duplicated_union_streams(self):
        left, right = duplicated_union_streams(1 << 14, 400, overlap_fraction=0.5, seed=5)
        assert left.ground_truth() == 400
        assert right.ground_truth() == 400
        union = left.concat(right)
        assert union.ground_truth() == 600

    def test_union_overlap_validation(self):
        with pytest.raises(ParameterError):
            duplicated_union_streams(100, 80, overlap_fraction=0.0)


class TestTurnstileGenerators:
    def test_insert_delete_stream_ground_truth(self):
        stream = insert_delete_stream(1 << 12, 400, delete_fraction=0.25, copies=2, seed=6)
        assert stream.ground_truth() == 300
        assert not stream.is_insertion_only()

    def test_insert_delete_all_deleted(self):
        stream = insert_delete_stream(1 << 12, 100, delete_fraction=1.0, seed=7)
        assert stream.ground_truth() == 0

    def test_fluctuating_stream_bounds(self):
        stream = fluctuating_stream(1 << 12, 2000, target_support=150, seed=8)
        assert len(stream) == 2000
        assert 0 <= stream.ground_truth() <= 1 << 12

    def test_mixed_sign_stream(self):
        stream = mixed_sign_stream(1 << 12, 50, 70, seed=9)
        assert stream.ground_truth() == 120
        frequencies = frequency_vector(stream.updates)
        assert any(value < 0 for value in frequencies.values())
        assert any(value > 0 for value in frequencies.values())

    def test_paired_columns_difference(self):
        column_a, column_b, difference = paired_columns(1 << 12, 300, 60, seed=10)
        assert len(column_a) == 300
        assert len(column_b) == 300
        # The difference stream's L0 is at most twice the differing rows
        # (each differing row contributes at most two changed values).
        assert 0 < difference.ground_truth() <= 120


class TestDatasets:
    def test_packet_trace_structure(self):
        stream, records = packet_trace(
            1 << 16, packets=2000, distinct_flows=300, scanner_destinations=50, seed=11
        )
        assert len(stream) == 2050
        assert len(records) == 2050
        assert stream.ground_truth() >= 300

    def test_query_log_exact_distinct(self):
        stream = query_log(1 << 16, queries=3000, distinct_queries=800, seed=12)
        assert stream.ground_truth() == 800
        assert len(stream) == 3000

    def test_table_column_exact_distinct(self):
        stream = table_column(1 << 16, rows=2000, distinct_values=250, null_fraction=0.1, seed=13)
        assert stream.ground_truth() == 250

    def test_dataset_validation(self):
        with pytest.raises(ParameterError):
            query_log(100, queries=10, distinct_queries=20)
        with pytest.raises(ParameterError):
            table_column(100, rows=10, distinct_values=0)
