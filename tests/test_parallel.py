"""Sharded ingestion: shard + merge must equal sequential ingestion.

The binding contract of :mod:`repro.parallel`: for every mergeable F0
estimator whose hash functions are seed-determined, k-way sharded ingest
followed by merge-reduce is *bit-identical* (equal ``state_dict()``,
equal estimates) to one sketch fed the concatenated stream — across
shard counts {1, 3, 8}, scalar and batched shard ingest, inline and
real worker-process execution.  The engine's transport is the
serialization layer, so these tests also exercise ``to_bytes`` /
``from_bytes`` end to end across process boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.median import MedianEstimator
from repro.estimators.registry import make_f0_estimator, make_l0_estimator
from repro.exceptions import MergeError, ParameterError
from repro.parallel import (
    mergeable_f0_names,
    parallel_ingest_f0,
    parallel_ingest_into,
    shard_items,
)
from repro.streams.generators import uniform_random_stream

UNIVERSE = 1 << 20
SHARD_COUNTS = [1, 3, 8]


@pytest.fixture(scope="module")
def items():
    return np.random.RandomState(61).randint(0, UNIVERSE, size=12000).astype(np.uint64)


@pytest.fixture(scope="module")
def sequential_states(items):
    """Reference single-sketch runs, one per deterministic mergeable name."""
    states = {}
    for name in mergeable_f0_names(shard_deterministic_only=True):
        estimator = make_f0_estimator(name, UNIVERSE, 0.1, seed=71)
        estimator.update_batch(items)
        states[name] = (estimator.state_dict(), estimator.estimate())
    return states


def test_shard_items_partitions_without_copying(items):
    shards = shard_items(items, 7)
    assert len(shards) == 7
    assert sum(len(shard) for shard in shards) == len(items)
    assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1
    assert np.array_equal(np.concatenate(shards), items)
    assert all(shard.base is not None for shard in shards)  # views, not copies


def test_shard_items_more_shards_than_items():
    shards = shard_items(np.arange(3, dtype=np.uint64), 8)
    assert [len(s) for s in shards] == [1, 1, 1, 0, 0, 0, 0, 0]


def test_shard_items_rejects_bad_count(items):
    with pytest.raises(ParameterError):
        shard_items(items, 0)


@pytest.mark.parametrize("name", mergeable_f0_names(shard_deterministic_only=True))
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_merge_equals_sequential_batched(
    name, shards, items, sequential_states
):
    merged = parallel_ingest_f0(
        name, items, 0.1, 71, universe_size=UNIVERSE, shards=shards, execution="inline"
    )
    state, estimate = sequential_states[name]
    assert merged.state_dict() == state
    assert merged.estimate() == estimate


@pytest.mark.parametrize("name", mergeable_f0_names(shard_deterministic_only=True))
def test_sharded_merge_equals_sequential_scalar(name, items, sequential_states):
    """Scalar (per-item loop) shard ingest must land in the same state."""
    merged = parallel_ingest_f0(
        name,
        items,
        0.1,
        71,
        universe_size=UNIVERSE,
        shards=3,
        batch_size=None,  # forces update() loops inside the shard workers
        execution="inline",
    )
    state, estimate = sequential_states[name]
    assert merged.state_dict() == state
    assert merged.estimate() == estimate


@pytest.mark.parametrize("name", mergeable_f0_names(shard_deterministic_only=True))
def test_four_worker_processes_bit_identical(name, items, sequential_states):
    """The acceptance shape: real process pool, 4 workers, bit-identical."""
    merged = parallel_ingest_f0(
        name, items, 0.1, 71, universe_size=UNIVERSE, workers=4, execution="processes"
    )
    state, estimate = sequential_states[name]
    assert merged.state_dict() == state
    assert merged.estimate() == estimate


def test_default_knw_merges_and_stays_within_tolerance(items):
    """The default KNW config draws its rough-estimator hash lazily, so
    sharding is approximation- (not bit-) equivalent; the merge must still
    succeed and land within the estimator's error budget."""
    single = make_f0_estimator("knw", UNIVERSE, 0.1, seed=71)
    single.update_batch(items)
    merged = parallel_ingest_f0(
        "knw", items, 0.1, 71, universe_size=UNIVERSE, shards=4, execution="inline"
    )
    assert not single.shard_deterministic
    assert merged.estimate() == pytest.approx(single.estimate(), rel=0.2)


def test_engine_accepts_materialized_streams():
    stream = uniform_random_stream(UNIVERSE, 5000, seed=73)
    merged = parallel_ingest_f0("hyperloglog", stream, 0.1, 75, shards=3, execution="inline")
    single = make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=75)
    single.update_batch(stream.item_array())
    assert merged.state_dict() == single.state_dict()


def test_mid_stream_template_state_is_preserved(items):
    """The engine clones the estimator's *current* state into workers, so
    it can take over an already-started sketch."""
    reference = make_f0_estimator("kmv", UNIVERSE, 0.1, seed=77)
    reference.update_batch(items)
    resumed = make_f0_estimator("kmv", UNIVERSE, 0.1, seed=77)
    resumed.update_batch(items[:4000])  # serial prefix ...
    parallel_ingest_into(
        resumed, items[4000:], shards=3, execution="inline"
    )  # ... sharded remainder
    assert resumed.state_dict() == reference.state_dict()


def test_median_wrapper_shards_and_merges(items):
    """The amplification wrapper merges pairwise, so it shards like any
    other mergeable sketch."""

    def build():
        return MedianEstimator(
            lambda index: make_f0_estimator(
                "hyperloglog", UNIVERSE, 0.15, seed=80 + index
            ),
            repetitions=3,
        )

    single = build()
    single.update_batch(items)
    sharded = build()
    parallel_ingest_into(sharded, items, shards=3, execution="inline")
    assert sharded.state_dict() == single.state_dict()
    assert sharded.estimate() == single.estimate()


def test_median_wrapper_merge_validates():
    def build(repetitions):
        return MedianEstimator(
            lambda index: make_f0_estimator(
                "hyperloglog", UNIVERSE, 0.15, seed=90 + index
            ),
            repetitions=repetitions,
        )

    with pytest.raises(MergeError):
        build(3).merge(build(5))
    with pytest.raises(MergeError):
        build(3).merge(make_f0_estimator("hyperloglog", UNIVERSE, 0.15, seed=90))
    mismatched = MedianEstimator(
        lambda index: make_f0_estimator("kmv", UNIVERSE, 0.15, seed=90 + index),
        repetitions=3,
    )
    with pytest.raises(MergeError):
        build(3).merge(mismatched)  # same repetitions, different copy kinds


def test_unmergeable_estimator_raises(items):
    estimator = make_f0_estimator("knw-fast", UNIVERSE, 0.1, seed=1)
    with pytest.raises(ParameterError):
        parallel_ingest_into(estimator, items, shards=4, execution="inline")


def test_seedless_estimator_raises(items):
    estimator = make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=None)
    with pytest.raises(ParameterError):
        parallel_ingest_into(estimator, items, shards=4, execution="inline")


def test_seedless_median_wrapper_raises_up_front(items):
    """The wrapper has no ``seed`` attribute of its own; the engine must
    look through to the copies instead of ingesting the whole stream and
    failing only at merge time."""
    wrapper = MedianEstimator(
        lambda index: make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=None),
        repetitions=3,
    )
    with pytest.raises(ParameterError):
        parallel_ingest_into(wrapper, items, shards=4, execution="inline")


def test_single_shard_needs_no_merge_support(items):
    """One shard degenerates to a plain feed, so even unmergeable sketches
    work with workers=1."""
    estimator = make_f0_estimator("knw-fast", UNIVERSE, 0.1, seed=1)
    parallel_ingest_into(estimator, items[:2000], workers=1)
    single = make_f0_estimator("knw-fast", UNIVERSE, 0.1, seed=1)
    single.update_batch(items[:2000])
    assert estimator.estimate() == single.estimate()


def test_mergeable_names_cover_the_figure1_baselines():
    names = set(mergeable_f0_names())
    for expected in (
        "ams",
        "bjkst",
        "exact",
        "flajolet-martin",
        "gibbons-tirthapura",
        "hyperloglog",
        "kmv",
        "knw",
        "knw-paper",
        "linear-counting",
        "loglog",
        "multiscale-bitmap",
    ):
        assert expected in names
    assert "knw-fast" not in names
    deterministic = set(mergeable_f0_names(shard_deterministic_only=True))
    assert "knw" not in deterministic
    assert "knw-paper" in deterministic


# -- workers threaded through the analysis layer and the apps ------------------


def test_runner_workers_matches_serial():
    from repro.analysis.runner import run_f0_by_name

    stream = uniform_random_stream(UNIVERSE, 8000, seed=83)
    checkpoints = stream.checkpoints(3)
    serial = run_f0_by_name(
        "hyperloglog", stream, 0.1, seed=85, checkpoint_positions=checkpoints,
        batch_size=2048,
    )
    sharded = run_f0_by_name(
        "hyperloglog", stream, 0.1, seed=85, checkpoint_positions=checkpoints,
        batch_size=2048, workers=3,
    )
    assert sharded.estimate == serial.estimate
    assert [c.__dict__ for c in sharded.checkpoints] == [
        c.__dict__ for c in serial.checkpoints
    ]


def test_runner_turnstile_workers_matches_serial(turnstile_stream):
    """run_l0(workers=N) shards each segment and stays bit-identical."""
    from repro.analysis.runner import run_l0_by_name

    checkpoints = turnstile_stream.checkpoints(3)
    serial = run_l0_by_name(
        "knw-l0", turnstile_stream, 0.2, seed=87,
        checkpoint_positions=checkpoints, batch_size=256,
    )
    sharded = run_l0_by_name(
        "knw-l0", turnstile_stream, 0.2, seed=87,
        checkpoint_positions=checkpoints, batch_size=256, workers=3,
    )
    assert sharded.estimate == serial.estimate
    assert [c.__dict__ for c in sharded.checkpoints] == [
        c.__dict__ for c in serial.checkpoints
    ]


def test_sweep_workers_matches_serial():
    from repro.analysis.sweeps import accuracy_sweep

    def factory(seed):
        return uniform_random_stream(1 << 16, 3000, seed=seed)

    serial = accuracy_sweep(["hyperloglog", "kmv"], factory, [0.1], [1, 2])
    pooled = accuracy_sweep(["hyperloglog", "kmv"], factory, [0.1], [1, 2], workers=2)
    assert [point.__dict__ for point in serial] == [point.__dict__ for point in pooled]


def test_query_optimizer_partitioned_ingest_matches_column_ingest():
    from repro.apps.query_optimizer import ColumnStatisticsCollector

    rng = np.random.RandomState(87)
    values = [
        int(value) if value >= 0 else None
        for value in rng.randint(-2000, 1 << 15, size=4000)
    ]
    whole = ColumnStatisticsCollector(["c"], universe_size=1 << 16, eps=0.1, seed=5)
    whole.ingest_column("c", values)
    partitioned = ColumnStatisticsCollector(["c"], universe_size=1 << 16, eps=0.1, seed=5)
    partitioned.ingest_column_partitions(
        "c", [values[:1000], values[1000:2500], values[2500:]], workers=2
    )
    assert partitioned.ndv("c") == whole.ndv("c")
    assert partitioned._row_counts == whole._row_counts


def test_network_monitor_per_link_shards_match_union():
    import random as stdlib_random

    from repro.apps.network_monitor import FlowCardinalityMonitor
    from repro.streams.datasets import FlowRecord

    rng = stdlib_random.Random(89)
    records = [
        FlowRecord(rng.randrange(64), rng.randrange(4096), rng.randrange(1024))
        for _ in range(2400)
    ]
    links = [records[:800], records[800:1400], records[1400:]]
    sharded = FlowCardinalityMonitor(
        universe_size=1 << 16, window_packets=1 << 30, seed=2, mergeable=True
    )
    report = sharded.ingest_window_shards(links, workers=2)
    serial = FlowCardinalityMonitor(
        universe_size=1 << 16, window_packets=1 << 30, seed=2, mergeable=True
    )
    serial.observe_batch(records)
    assert report.__dict__ == serial.flush().__dict__


def test_network_monitor_shards_require_mergeable_mode():
    from repro.apps.network_monitor import FlowCardinalityMonitor

    monitor = FlowCardinalityMonitor(universe_size=1 << 16, seed=2)
    with pytest.raises(ParameterError):
        monitor.ingest_window_shards([[]])


def test_data_cleaning_parallel_pairs_match_serial():
    import random as stdlib_random

    from repro.apps.data_cleaning import SimilarColumnFinder

    rng = stdlib_random.Random(91)
    base = [rng.randrange(1 << 12) for _ in range(600)]
    finder = SimilarColumnFinder(1 << 12, eps=0.3, seed=3)
    finder.add_column("a", base)
    finder.add_column("b", base[:500] + [rng.randrange(1 << 12) for _ in range(100)])
    finder.add_column("c", [rng.randrange(1 << 12) for _ in range(600)])
    serial = [report.__dict__ for report in finder.most_similar_pairs(3)]
    pooled = [report.__dict__ for report in finder.most_similar_pairs(3, workers=2)]
    assert pooled == serial


# -- turnstile (L0) sharded ingestion ------------------------------------------
#
# The library's L0 sketches are linear with eagerly drawn hashes, so
# k-way sharded ingest + merge-reduce is bit-identical to sequential
# ingestion for *every* mergeable L0 estimator — no lazily-drawn
# configurations exist on this side.


@pytest.fixture(scope="module")
def turnstile_updates():
    """An insert+delete update stream as aligned (items, deltas) arrays."""
    rng = np.random.RandomState(67)
    inserts = rng.randint(0, UNIVERSE, size=9000).astype(np.uint64)
    deleted = inserts[rng.permutation(9000)[:3000]]
    items = np.concatenate([inserts, deleted])
    deltas = np.concatenate(
        [np.ones(9000, dtype=np.int64), -np.ones(3000, dtype=np.int64)]
    )
    return items, deltas


@pytest.fixture(scope="module")
def sequential_l0_states(turnstile_updates):
    """Reference single-sketch runs, one per mergeable L0 name."""
    from repro.parallel import mergeable_l0_names

    items, deltas = turnstile_updates
    states = {}
    for name in mergeable_l0_names():
        estimator = make_l0_estimator(name, UNIVERSE, 0.2, 1 << 16, seed=73)
        estimator.update_batch(items, deltas)
        states[name] = (estimator.state_dict(), estimator.estimate())
    return states


def test_shard_updates_partitions_without_copying(turnstile_updates):
    from repro.parallel import shard_updates

    shards = shard_updates(turnstile_updates, 7)
    assert len(shards) == 7
    assert sum(len(items) for items, _ in shards) == len(turnstile_updates[0])
    assert np.array_equal(
        np.concatenate([items for items, _ in shards]), turnstile_updates[0]
    )
    assert np.array_equal(
        np.concatenate([deltas for _, deltas in shards]), turnstile_updates[1]
    )
    assert all(items.base is not None for items, _ in shards)  # views


def test_mergeable_l0_names_cover_the_registry():
    from repro.parallel import mergeable_l0_names

    names = mergeable_l0_names()
    assert {"knw-l0", "knw-l0-paper", "ganguly", "exact-l0"} <= set(names)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_l0_merge_equals_sequential(
    shards, turnstile_updates, sequential_l0_states
):
    from repro.parallel import mergeable_l0_names, parallel_ingest_updates_into

    for name in mergeable_l0_names():
        estimator = make_l0_estimator(name, UNIVERSE, 0.2, 1 << 16, seed=73)
        parallel_ingest_updates_into(
            estimator, turnstile_updates, shards=shards, workers=1,
            execution="inline",
        )
        state, estimate = sequential_l0_states[name]
        assert estimator.state_dict() == state, (name, shards)
        assert estimator.estimate() == estimate, (name, shards)


def test_l0_four_worker_processes_bit_identical(
    turnstile_updates, sequential_l0_states
):
    from repro.parallel import parallel_ingest_l0

    estimator = parallel_ingest_l0(
        "knw-l0", turnstile_updates, 0.2, 73,
        universe_size=UNIVERSE, magnitude_bound=1 << 16,
        workers=4, execution="processes",
    )
    state, estimate = sequential_l0_states["knw-l0"]
    assert estimator.state_dict() == state
    assert estimator.estimate() == estimate


def test_l0_median_wrapper_shards_and_merges(turnstile_updates):
    from repro.estimators.median import MedianTurnstileEstimator
    from repro.l0.ganguly import GangulyStyleL0Estimator
    from repro.parallel import parallel_ingest_updates_into

    def build():
        return MedianTurnstileEstimator(
            lambda index: GangulyStyleL0Estimator(
                UNIVERSE, eps=0.2, magnitude_bound=1 << 16, seed=120 + index
            ),
            repetitions=3,
        )

    items, deltas = turnstile_updates
    reference = build()
    reference.update_batch(items, deltas)
    sharded = build()
    parallel_ingest_updates_into(
        sharded, turnstile_updates, shards=3, workers=1, execution="inline"
    )
    for mine, theirs in zip(sharded.copies, reference.copies):
        assert mine.state_dict() == theirs.state_dict()
    assert sharded.estimate() == reference.estimate()


def test_l0_mid_stream_template_state_is_preserved(turnstile_updates):
    """Sharding may start mid-stream: the template's state is cloned in."""
    from repro.parallel import parallel_ingest_updates_into

    items, deltas = turnstile_updates
    head_items, head_deltas = items[:2000], deltas[:2000]
    tail = (items[2000:], deltas[2000:])
    reference = make_l0_estimator("ganguly", UNIVERSE, 0.2, 1 << 16, seed=77)
    reference.update_batch(items, deltas)
    resumed = make_l0_estimator("ganguly", UNIVERSE, 0.2, 1 << 16, seed=77)
    resumed.update_batch(head_items, head_deltas)
    parallel_ingest_updates_into(
        resumed, tail, shards=3, workers=1, execution="inline"
    )
    assert resumed.state_dict() == reference.state_dict()


def test_l0_unmergeable_estimator_raises(turnstile_updates):
    from repro.estimators.base import TurnstileEstimator
    from repro.parallel import parallel_ingest_updates_into

    class Unmergeable(TurnstileEstimator):
        seed = 1

        def update(self, item, delta):
            pass

        def estimate(self):
            return 0.0

        def space_bits(self):
            return 0

    with pytest.raises(ParameterError):
        parallel_ingest_updates_into(
            Unmergeable(), turnstile_updates, shards=3, workers=1,
            execution="inline",
        )


def test_l0_seedless_estimator_raises(turnstile_updates):
    from repro.parallel import parallel_ingest_updates_into

    estimator = make_l0_estimator("knw-l0", UNIVERSE, 0.2, 1 << 16, seed=None)
    with pytest.raises(ParameterError):
        parallel_ingest_updates_into(
            estimator, turnstile_updates, shards=3, workers=1, execution="inline"
        )


def test_l0_sweep_batched_trials_match_scalar_trials():
    """The L0 sweep's batched driving changes nothing but the wall-clock."""
    from repro.analysis.sweeps import l0_accuracy_sweep
    from repro.streams.turnstile import insert_delete_stream

    def factory(seed):
        return insert_delete_stream(
            1 << 16, 1500, delete_fraction=0.4, copies=1, seed=seed
        )

    batched = l0_accuracy_sweep(["knw-l0", "ganguly"], factory, [0.2], [1, 2])
    scalar = l0_accuracy_sweep(
        ["knw-l0", "ganguly"], factory, [0.2], [1, 2], batch_size=None
    )
    pooled = l0_accuracy_sweep(
        ["knw-l0", "ganguly"], factory, [0.2], [1, 2], workers=2
    )
    assert [point.__dict__ for point in batched] == [
        point.__dict__ for point in scalar
    ]
    assert [point.__dict__ for point in batched] == [
        point.__dict__ for point in pooled
    ]
