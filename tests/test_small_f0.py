"""Tests for the Section 3.3 small-F0 subroutine (Theorem 4)."""

from __future__ import annotations

import pytest

from repro.core.hashes import F0HashBundle
from repro.core.small_f0 import EXACT_TRACKING_LIMIT, SmallF0Estimator
from repro.exceptions import ParameterError


def make_small(universe: int = 1 << 16, bins: int = 512, seed: int = 1) -> SmallF0Estimator:
    bundle = F0HashBundle(universe, bins, eps_hint=0.05, seed=seed)
    return SmallF0Estimator(bundle)


class TestExactPhase:
    def test_exact_below_limit(self):
        small = make_small()
        for item in range(80):
            small.update(item)
        assert small.estimate() == 80.0
        assert not small.is_large()

    def test_exact_counts_duplicates_once(self):
        small = make_small()
        for _ in range(5):
            for item in range(40):
                small.update(item)
        assert small.estimate() == 40.0

    def test_paper_exact_limit_is_100(self):
        assert EXACT_TRACKING_LIMIT == 100

    def test_update_validates_universe(self):
        small = make_small(universe=1 << 10)
        with pytest.raises(ParameterError):
            small.update(1 << 10)

    def test_invalid_exact_limit(self):
        bundle = F0HashBundle(1 << 12, 64, eps_hint=0.1, seed=3)
        with pytest.raises(ParameterError):
            SmallF0Estimator(bundle, exact_limit=0)


class TestBitvectorPhase:
    def test_bitvector_estimate_after_overflow(self):
        small = make_small(bins=1024, seed=2)
        distinct = 400
        for item in range(distinct):
            small.update(item)
        estimate = small.estimate()
        assert abs(estimate - distinct) / distinct < 0.15

    def test_is_large_triggers_at_threshold(self):
        # K' = 2K bins; LARGE once the estimate reaches K'/32 = K/16.
        small = make_small(bins=512, seed=4)
        threshold = small.bins / 32.0
        item = 0
        while not small.is_large():
            small.update(item)
            item += 1
            assert item < 5000, "is_large never triggered"
        assert small.bitvector_estimate() >= threshold
        # The handover point guarantees F0 is already comfortably large.
        assert item >= threshold / 2

    def test_estimate_monotone_under_inserts(self):
        small = make_small(bins=256, seed=5)
        previous = 0.0
        for item in range(0, 600, 3):
            small.update(item)
            current = small.estimate()
            assert current >= previous - 1e-9
            previous = current

    def test_space_is_exact_buffer_plus_bitvector(self):
        small = make_small(universe=1 << 16, bins=512)
        breakdown = small.space_breakdown().as_dict()
        assert breakdown["bitvector"] == 2 * 512
        assert breakdown["exact-buffer"] == EXACT_TRACKING_LIMIT * 16
        assert small.space_bits() == sum(breakdown.values())
