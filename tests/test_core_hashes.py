"""Tests for the shared F0 hash bundle (h1, h2, h3 of Figures 2-4)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.hashes import F0HashBundle
from repro.exceptions import ParameterError
from repro.hashing.kwise import KWiseHash
from repro.hashing.siegel import SiegelHash

UNIVERSE = 1 << 16


class TestConstruction:
    def test_requires_power_of_two_bins(self):
        with pytest.raises(ParameterError):
            F0HashBundle(UNIVERSE, 100, eps_hint=0.1)
        with pytest.raises(ParameterError):
            F0HashBundle(UNIVERSE, 16, eps_hint=0.1)

    def test_requires_valid_eps_and_universe(self):
        with pytest.raises(ParameterError):
            F0HashBundle(UNIVERSE, 64, eps_hint=0.0)
        with pytest.raises(ParameterError):
            F0HashBundle(1, 64, eps_hint=0.1)

    def test_extended_bins_is_twice_bins(self):
        bundle = F0HashBundle(UNIVERSE, 128, eps_hint=0.1, seed=1)
        assert bundle.extended_bins == 256

    def test_h3_family_choice(self):
        slow = F0HashBundle(UNIVERSE, 64, eps_hint=0.1, seed=1)
        fast = F0HashBundle(UNIVERSE, 64, eps_hint=0.1, seed=1, use_fast_family=True)
        assert isinstance(slow.h3, KWiseHash)
        assert isinstance(fast.h3, SiegelHash)

    def test_level_limit_matches_universe(self):
        bundle = F0HashBundle(1 << 12, 64, eps_hint=0.1, seed=1)
        assert bundle.level_limit == 12


class TestPerItemQuantities:
    def test_main_bin_is_extended_bin_mod_k(self):
        bundle = F0HashBundle(UNIVERSE, 128, eps_hint=0.1, seed=2)
        for item in range(0, UNIVERSE, 997):
            assert bundle.main_bin(item) == bundle.extended_bin(item) % 128

    def test_levels_within_range(self):
        bundle = F0HashBundle(UNIVERSE, 64, eps_hint=0.1, seed=3)
        for item in range(0, 2000, 7):
            assert 0 <= bundle.level(item) <= bundle.level_limit

    def test_level_distribution_is_geometric(self):
        # P[level >= b] should be about 2^-b: check the first few levels on
        # a deterministic sample of items.
        bundle = F0HashBundle(UNIVERSE, 64, eps_hint=0.1, seed=4)
        levels = Counter(bundle.level(item) for item in range(8192))
        at_least_1 = sum(count for level, count in levels.items() if level >= 1)
        at_least_3 = sum(count for level, count in levels.items() if level >= 3)
        assert 0.35 < at_least_1 / 8192 < 0.65
        assert 0.06 < at_least_3 / 8192 < 0.20

    def test_extended_bin_memo_is_transparent(self):
        bundle = F0HashBundle(UNIVERSE, 64, eps_hint=0.1, seed=5)
        first = bundle.extended_bin(1234)
        # Interleave another key, then re-query: the one-entry memo must not
        # leak a stale value.
        other = bundle.extended_bin(4321)
        assert bundle.extended_bin(1234) == first
        assert bundle.extended_bin(4321) == other

    def test_same_seed_same_functions(self):
        a = F0HashBundle(UNIVERSE, 64, eps_hint=0.1, seed=6)
        b = F0HashBundle(UNIVERSE, 64, eps_hint=0.1, seed=6)
        for item in range(0, 3000, 101):
            assert a.level(item) == b.level(item)
            assert a.extended_bin(item) == b.extended_bin(item)

    def test_space_breakdown_sums(self):
        bundle = F0HashBundle(UNIVERSE, 64, eps_hint=0.1, seed=7)
        breakdown = bundle.space_breakdown().as_dict()
        assert set(breakdown) == {"h1", "h2", "h3"}
        assert bundle.space_bits() == sum(breakdown.values())
