"""Tests for RoughEstimator (Figure 2 / Theorem 1) and its fast variant (Lemma 5)."""

from __future__ import annotations

import pytest

from repro.core import FastRoughEstimator, RoughEstimator, rough_counter_count
from repro.exceptions import ParameterError
from repro.streams import distinct_items_stream, growing_then_repeating_stream


class TestParameters:
    def test_rough_counter_count_formula(self):
        # K_RE = max(8, log n / log log n): small universes hit the floor of 8.
        assert rough_counter_count(1 << 10) == 8
        assert rough_counter_count(1 << 20) >= 8
        with pytest.raises(ParameterError):
            rough_counter_count(1)

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            RoughEstimator(1)
        with pytest.raises(ParameterError):
            RoughEstimator(1 << 16, counters_per_copy=1)

    def test_update_validates_universe(self):
        estimator = RoughEstimator(1 << 10, seed=1)
        with pytest.raises(ParameterError):
            estimator.update(1 << 10)


class TestGuarantees:
    def test_returns_minus_one_before_committing(self):
        estimator = RoughEstimator(1 << 16, seed=2)
        assert estimator.estimate() == -1.0

    def test_constant_factor_at_all_checkpoints(self, large_universe):
        # Theorem 1: F0(t) <= estimate(t) <= 8 F0(t) for all t once
        # F0(t) >= K_RE.  We check a relaxed constant-factor band (the
        # guarantee is asymptotic; the band below is what the construction
        # achieves at this finite size with margin).
        stream = distinct_items_stream(large_universe, 20_000, repetitions=1, seed=21)
        estimator = RoughEstimator(large_universe, counters_per_copy=16, seed=3)
        threshold = 4 * estimator.counters_per_copy
        seen = set()
        for index, update in enumerate(stream):
            estimator.update(update.item)
            seen.add(update.item)
            if index % 500 == 0 and len(seen) >= threshold:
                estimate = estimator.estimate()
                ratio = estimate / len(seen)
                assert 0.5 <= ratio <= 16.0, (index, len(seen), estimate)

    def test_estimate_is_monotone(self, large_universe):
        stream = growing_then_repeating_stream(large_universe, 5_000, 5_000, seed=4)
        estimator = RoughEstimator(large_universe, counters_per_copy=16, seed=5)
        previous = -1.0
        for index, update in enumerate(stream):
            estimator.update(update.item)
            if index % 250 == 0:
                current = estimator.estimate()
                assert current >= previous
                previous = current

    def test_estimate_stable_when_f0_stops_growing(self, large_universe):
        stream = growing_then_repeating_stream(large_universe, 4_000, 8_000, seed=6)
        estimator = RoughEstimator(large_universe, counters_per_copy=16, seed=7)
        mid_estimate = None
        for index, update in enumerate(stream):
            estimator.update(update.item)
            if index == 3_999:
                mid_estimate = estimator.estimate()
        final_estimate = estimator.estimate()
        assert mid_estimate is not None
        # During the repeat phase F0 does not change, so the estimate must
        # not grow by more than the committed-power-of-two granularity.
        assert final_estimate <= 2 * mid_estimate

    def test_space_is_logarithmic_not_eps_dependent(self):
        small = RoughEstimator(1 << 12, seed=8).space_bits()
        large = RoughEstimator(1 << 24, seed=8).space_bits()
        assert small < large < 40 * small
        breakdown = RoughEstimator(1 << 16, seed=8).space_breakdown()
        assert breakdown.total() > 0

    def test_merge_max(self, large_universe):
        left = distinct_items_stream(large_universe, 3_000, seed=30)
        right = distinct_items_stream(large_universe, 3_000, seed=31)
        merged = RoughEstimator(large_universe, counters_per_copy=16, seed=9)
        solo = RoughEstimator(large_universe, counters_per_copy=16, seed=9)
        other = RoughEstimator(large_universe, counters_per_copy=16, seed=9)
        for update in left:
            merged.update(update.item)
            solo.update(update.item)
        for update in right:
            other.update(update.item)
            solo.update(update.item)
        merged.merge_max(other)
        assert merged.estimate() == solo.estimate()

    def test_merge_max_rejects_mismatched(self):
        a = RoughEstimator(1 << 12, counters_per_copy=8, seed=1)
        b = RoughEstimator(1 << 12, counters_per_copy=16, seed=1)
        with pytest.raises(ParameterError):
            a.merge_max(b)


class TestFastVariant:
    def test_fast_variant_constant_factor(self, large_universe):
        stream = distinct_items_stream(large_universe, 15_000, repetitions=1, seed=41)
        estimator = FastRoughEstimator(large_universe, counters_per_copy=16, seed=10)
        seen = set()
        threshold = 8 * estimator.counters_per_copy
        for index, update in enumerate(stream):
            estimator.update(update.item)
            seen.add(update.item)
            if index % 1000 == 999 and len(seen) >= threshold:
                estimate = estimator.estimate()
                ratio = estimate / len(seen)
                # Lemma 5 degrades the guarantee to a 16-approximation; the
                # committed level may additionally lag by one doubling.
                assert 0.25 <= ratio <= 32.0, (index, len(seen), estimate)

    def test_fast_variant_estimate_is_o1_cached(self, large_universe):
        estimator = FastRoughEstimator(large_universe, seed=11)
        assert estimator.estimate() == -1.0
        estimator.update(5)
        # The cached estimate is returned without recomputation.
        assert estimator.estimate() == estimator.estimate()
