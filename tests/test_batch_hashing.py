"""Batch hash evaluation and batch plumbing: exactness tests.

The vectorized estimators stand on two foundations checked here:

* every hash family's ``hash_batch`` agrees with its scalar ``__call__``
  on every key, across the modulus regimes the batched field arithmetic
  distinguishes (word-sized primes, the two Mersenne fast paths, the
  float-Barrett window, and the object-array fallback for cubed universes
  beyond ``2^61``);
* the batch plumbing (streams chunking, the experiment runner's
  ``batch_size`` mode, the bulk bit-structure operations) is faithful to
  its scalar counterpart.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.bitstructs.bitvector import BitVector
from repro.bitstructs.packed import PackedCounterArray
from repro.analysis.runner import run_f0, run_f0_by_name
from repro.core.hashes import F0HashBundle
from repro.exceptions import ParameterError
from repro.hashing.bitops import lsb, lsb_batch, rho_batch
from repro.hashing.kwise import KWiseHash
from repro.hashing.random_oracle import RandomOracle
from repro.hashing.siegel import SiegelHash
from repro.hashing.uniform import LazyUniformHash
from repro.hashing.universal import MultiplyShiftHash, PairwiseHash
from repro.streams.generators import iter_item_chunks, uniform_random_stream
from repro.vectorize import as_key_array


def _sample_keys(universe_size: int, count: int, seed: int):
    rng = random.Random(seed)
    keys = [rng.randrange(universe_size) for _ in range(count)]
    keys.extend([0, universe_size - 1])
    return keys


HASH_CASES = [
    # (label, factory, universe)
    ("pairwise-tiny-prime", lambda r: PairwiseHash(1000, 37, rng=r), 1000),
    ("pairwise-mersenne31", lambda r: PairwiseHash(1 << 24, 1 << 20, rng=r), 1 << 24),
    ("pairwise-mersenne61", lambda r: PairwiseHash(1 << 20, (1 << 20) ** 3, rng=r), 1 << 20),
    ("pairwise-giant-prime", lambda r: PairwiseHash(1 << 22, (1 << 22) ** 3, rng=r), 1 << 22),
    ("mshift", lambda r: MultiplyShiftHash(1 << 20, 1 << 10, rng=r), 1 << 20),
    ("mshift-64bit-word", lambda r: MultiplyShiftHash(1 << 32, 1 << 12, rng=r), 1 << 32),
    ("kwise-mersenne31", lambda r: KWiseHash(1 << 30, 1024, 12, rng=r), 1 << 30),
    ("kwise-mersenne61", lambda r: KWiseHash(1 << 33, 4096, 14, rng=r), 1 << 33),
    ("kwise-small-prime", lambda r: KWiseHash(65000, 64, 8, rng=r), 65000),
    ("oracle-pow2", lambda r: RandomOracle(1 << 20, 1 << 44, seed=99), 1 << 20),
    ("oracle-non-pow2", lambda r: RandomOracle(1 << 20, 999, seed=98), 1 << 20),
    ("oracle-beyond-word", lambda r: RandomOracle(1 << 60, 1 << 70, seed=97), 1 << 60),
]


@pytest.mark.parametrize(
    "label,factory,universe", HASH_CASES, ids=[case[0] for case in HASH_CASES]
)
def test_hash_batch_matches_scalar(label, factory, universe):
    hasher = factory(random.Random(12345))
    keys = _sample_keys(universe, 400, seed=7)
    scalar = [hasher(key) for key in keys]
    batch = hasher.hash_batch(np.asarray(keys, dtype=np.uint64))
    assert [int(value) for value in batch.tolist()] == scalar


@pytest.mark.parametrize("family", [LazyUniformHash, SiegelHash])
def test_lazy_families_draw_in_first_occurrence_order(family):
    """Batch evaluation must consume the RNG exactly like the scalar walk."""
    kwargs = {"capacity": 64} if family is LazyUniformHash else {}
    scalar_hash = family(10_000, 256, rng=random.Random(55), **kwargs)
    batch_hash = family(10_000, 256, rng=random.Random(55), **kwargs)
    keys = _sample_keys(300, 500, seed=3)
    scalar = [scalar_hash(key) for key in keys]
    batch = batch_hash.hash_batch(np.asarray(keys, dtype=np.uint64)).tolist()
    assert batch == scalar
    assert scalar_hash._memo == batch_hash._memo


def test_modular_arithmetic_branches_are_exact():
    """Directly exercise every strategy in repro.vectorize's exact batched
    field arithmetic — including the float-Barrett and generic-split
    branches that the library's own prime selection rarely reaches."""
    from repro.hashing.primes import MERSENNE_31, MERSENNE_61, next_prime
    from repro.vectorize import affine_mod, mulmod, mulmod_arrays

    rng = random.Random(77)
    cases = [
        # (prime, key_bound) chosen to hit: direct, Mersenne fold/limb,
        # float-Barrett (non-Mersenne prime < 2^52 with products >= 2^64),
        # generic high/low split, and the object fallback.
        (97, 97),                                  # direct tiny
        (next_prime(1 << 20), 1 << 20),            # direct word-sized
        (MERSENNE_31, 1 << 24),                    # Mersenne fold
        (MERSENNE_61, 1 << 20),                    # Mersenne limb split
        (MERSENNE_61, 1 << 33),                    # Mersenne, wide keys
        (next_prime(1 << 40), 1 << 25),            # float-Barrett (arrays)
        (next_prime(1 << 40), 1 << 32),            # generic split (scalar)
        (next_prime(1 << 51), 1 << 20),            # Barrett near its bound
        (next_prime(1 << 70), 1 << 34),            # object fallback
    ]
    for prime, key_bound in cases:
        keys_list = [rng.randrange(min(key_bound, prime)) for _ in range(257)]
        keys_list += [0, min(key_bound, prime) - 1]
        if prime < (1 << 63):
            keys = np.asarray(keys_list, dtype=np.uint64)
        else:
            keys = np.empty(len(keys_list), dtype=object)
            keys[:] = keys_list
        multiplier = rng.randrange(prime)
        offset = rng.randrange(prime)
        got_mul = mulmod(multiplier, keys, prime, key_bound)
        assert [int(v) for v in got_mul.tolist()] == [
            (multiplier * key) % prime for key in keys_list
        ], "mulmod wrong for prime=%d key_bound=%d" % (prime, key_bound)
        got_affine = affine_mod(multiplier, offset, keys, prime, key_bound)
        assert [int(v) for v in got_affine.tolist()] == [
            (multiplier * key + offset) % prime for key in keys_list
        ], "affine_mod wrong for prime=%d key_bound=%d" % (prime, key_bound)
        left_list = [rng.randrange(prime) for _ in keys_list]
        if prime < (1 << 63):
            left = np.asarray(left_list, dtype=np.uint64)
        else:
            left = np.empty(len(left_list), dtype=object)
            left[:] = left_list
        got_arrays = mulmod_arrays(left, keys, prime, key_bound)
        assert [int(v) for v in got_arrays.tolist()] == [
            (l * key) % prime for l, key in zip(left_list, keys_list)
        ], "mulmod_arrays wrong for prime=%d key_bound=%d" % (prime, key_bound)


def test_runner_scalar_skips_position_zero_checkpoints():
    """A checkpoint at position 0 must not stall the scalar checkpoint
    queue (regression: it previously blocked every later checkpoint), and
    batched runs must agree."""
    stream = uniform_random_stream(1 << 16, 1000, seed=8)
    scalar = run_f0_by_name(
        "hyperloglog", stream, eps=0.1, seed=2, checkpoint_positions=[0, 500]
    )
    batched = run_f0_by_name(
        "hyperloglog", stream, eps=0.1, seed=2,
        checkpoint_positions=[0, 500], batch_size=128,
    )
    assert [c.position for c in scalar.checkpoints] == [500]
    assert [c.position for c in batched.checkpoints] == [500]
    assert scalar.checkpoints[0].estimate == batched.checkpoints[0].estimate


def test_hash_batch_rejects_out_of_universe_keys():
    hasher = PairwiseHash(1 << 16, 1 << 10, rng=random.Random(1))
    with pytest.raises(ParameterError):
        hasher.hash_batch(np.asarray([1, 1 << 16], dtype=np.uint64))


def test_lsb_batch_matches_scalar():
    rng = random.Random(4)
    values = [0, 1, 2, 3, 8, (1 << 63), (1 << 64) - 2]
    values += [rng.randrange(1, 1 << 64) for _ in range(200)]
    got = lsb_batch(np.asarray(values, dtype=np.uint64), zero_value=77)
    expected = [lsb(value, zero_value=77) for value in values]
    assert got.tolist() == expected
    rho = rho_batch(np.asarray(values, dtype=np.uint64), zero_value=77)
    assert rho.tolist() == [value + 1 for value in expected]


def test_hash_bundle_batch_forms_match_scalar():
    bundle = F0HashBundle(1 << 20, 256, eps_hint=0.0625, seed=13)
    keys = _sample_keys(1 << 20, 300, seed=5)
    array = np.asarray(keys, dtype=np.uint64)
    assert bundle.level_batch(array).tolist() == [bundle.level(k) for k in keys]
    assert [int(v) for v in bundle.extended_bin_batch(array).tolist()] == [
        bundle.extended_bin(k) for k in keys
    ]
    assert bundle.main_bin_batch(array).tolist() == [bundle.main_bin(k) for k in keys]


def test_as_key_array_validation():
    assert as_key_array([1, 2, 3], 10).dtype == np.uint64
    with pytest.raises(ParameterError):
        as_key_array([1, -2], 10)
    with pytest.raises(ParameterError):
        as_key_array([1, 10], 10)
    with pytest.raises(ParameterError):
        as_key_array(["a"], 10)
    # zero-copy for uint64 input
    array = np.asarray([4, 5], dtype=np.uint64)
    assert as_key_array(array, 10) is array


def test_packed_counter_maximize_many_matches_loop():
    scalar = PackedCounterArray(32, 6)
    batched = PackedCounterArray(32, 6)
    rng = random.Random(8)
    pairs = [(rng.randrange(32), rng.randrange(60)) for _ in range(500)]
    for index, value in pairs:
        scalar.maximize(index, value)
    batched.maximize_many(
        np.asarray([p[0] for p in pairs], dtype=np.int64),
        np.asarray([p[1] for p in pairs], dtype=np.int64),
    )
    assert scalar.to_list() == batched.to_list()


def test_bitvector_set_many_matches_loop():
    scalar = BitVector(128)
    batched = BitVector(128)
    rng = random.Random(9)
    positions = [rng.randrange(128) for _ in range(300)]
    for position in positions:
        scalar.set(position, 1)
    batched.set_many(positions)
    assert scalar.to_list() == batched.to_list()
    assert scalar.count_ones() == batched.count_ones()


def test_iter_item_chunks_covers_everything_in_order():
    items = list(range(10))
    chunks = list(iter_item_chunks(iter(items), 4))
    assert [chunk.tolist() for chunk in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    assert all(chunk.dtype == np.uint64 for chunk in chunks)
    with pytest.raises(ParameterError):
        list(iter_item_chunks(items, 0))


def test_stream_item_batches_are_views():
    stream = uniform_random_stream(1 << 16, 1000, seed=21)
    batches = list(stream.iter_item_batches(256))
    assert sum(len(batch) for batch in batches) == 1000
    rebuilt = np.concatenate(batches)
    assert rebuilt.tolist() == [update.item for update in stream]
    assert batches[0].base is stream.item_array()


def test_runner_batched_equals_scalar_run():
    stream = uniform_random_stream(1 << 16, 5000, seed=33)
    positions = stream.checkpoints(4)
    scalar = run_f0_by_name("hyperloglog", stream, eps=0.05, seed=3,
                            checkpoint_positions=positions)
    batched = run_f0_by_name("hyperloglog", stream, eps=0.05, seed=3,
                             checkpoint_positions=positions, batch_size=640)
    assert scalar.estimate == batched.estimate
    assert [c.estimate for c in scalar.checkpoints] == [
        c.estimate for c in batched.checkpoints
    ]
    assert [c.position for c in scalar.checkpoints] == [
        c.position for c in batched.checkpoints
    ]


def test_runner_batched_rejects_turnstile_streams():
    from repro.streams.model import MaterializedStream, Update
    from repro.estimators.exact import ExactDistinctCounter
    from repro.exceptions import UpdateError

    stream = MaterializedStream([Update(1, 1), Update(1, -1)], 16)
    with pytest.raises((ParameterError, UpdateError)):
        run_f0(ExactDistinctCounter(16), stream, batch_size=2)
