"""Tests for the L0 stack: fingerprints, small-L0, RoughL0, KNW L0, Ganguly."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.l0 import (
    FingerprintMatrix,
    GangulyStyleL0Estimator,
    KNWHammingNormEstimator,
    RoughL0Estimator,
    SmallL0Recovery,
    choose_fingerprint_prime,
    choose_small_prime,
)
from repro.streams import (
    fluctuating_stream,
    insert_delete_stream,
    mixed_sign_stream,
    paired_columns,
)

UNIVERSE = 1 << 14


class TestFingerprintMatrix:
    def test_prime_selection_bounds(self):
        prime = choose_fingerprint_prime(128, 1 << 20)
        assert prime >= 100 * 128 * 20

    def test_update_and_occupancy(self):
        matrix = FingerprintMatrix(4, 16, magnitude_bound=100, seed=1)
        matrix.update(0, 3, spread_key=7, delta=5)
        assert matrix.is_occupied(0, 3)
        assert matrix.row_occupancy(0) == 1
        assert matrix.row_occupancy(1) == 0

    def test_cancellation_clears_cell(self):
        matrix = FingerprintMatrix(2, 8, magnitude_bound=100, seed=2)
        matrix.update(1, 2, spread_key=9, delta=4)
        matrix.update(1, 2, spread_key=9, delta=-4)
        assert not matrix.is_occupied(1, 2)
        assert matrix.row_occupancy(1) == 0

    def test_opposite_signs_do_not_cancel_across_items(self):
        # Two different items (different spread keys -> different weights
        # w.h.p.) with opposite frequencies must keep the cell non-zero.
        matrix = FingerprintMatrix(1, 4, magnitude_bound=100, seed=3)
        matrix.update(0, 1, spread_key=11, delta=3)
        matrix.update(0, 1, spread_key=12, delta=-3)
        assert matrix.is_occupied(0, 1)

    def test_occupancies_and_space(self):
        matrix = FingerprintMatrix(3, 8, magnitude_bound=1000, seed=4)
        assert matrix.occupancies() == [0, 0, 0]
        assert matrix.space_bits() > 3 * 8  # more than one bit per cell

    def test_validation(self):
        with pytest.raises(ParameterError):
            FingerprintMatrix(0, 4, 10)
        matrix = FingerprintMatrix(2, 4, 10, seed=5)
        with pytest.raises(ParameterError):
            matrix.update(2, 0, 0, 1)
        with pytest.raises(ParameterError):
            matrix.row_occupancy(5)


class TestSmallL0Recovery:
    def test_exact_under_promise(self):
        recovery = SmallL0Recovery(UNIVERSE, capacity=50, magnitude_bound=100, seed=6)
        for item in range(40):
            recovery.update(item, 2)
        for item in range(10):
            recovery.update(item, -2)
        assert recovery.estimate() == 30.0

    def test_exceeds_threshold(self):
        recovery = SmallL0Recovery(UNIVERSE, capacity=20, magnitude_bound=100, seed=7)
        for item in range(15):
            recovery.update(item, 1)
        assert recovery.exceeds(8)
        assert not recovery.exceeds(20)

    def test_prime_choice(self):
        assert choose_small_prime(1 << 20) >= 5

    def test_shared_hashes_must_match_buckets(self):
        from repro.l0.small_l0 import make_trial_hashes

        hashes = make_trial_hashes(UNIVERSE, buckets=64, trials=3)
        with pytest.raises(ParameterError):
            SmallL0Recovery(
                UNIVERSE, capacity=10, magnitude_bound=10, trial_hashes=hashes
            )

    def test_space_accounting(self):
        recovery = SmallL0Recovery(UNIVERSE, capacity=10, magnitude_bound=100, seed=8)
        assert recovery.space_bits() > 0


class TestRoughL0:
    def test_constant_factor_band(self):
        # Theorem 11: L0/110 <= estimate <= L0 (with the paper's constants;
        # concentration keeps it far from the lower edge in practice).
        stream = insert_delete_stream(UNIVERSE, 2000, delete_fraction=0.5, seed=9)
        truth = stream.ground_truth()
        rough = RoughL0Estimator(UNIVERSE, magnitude_bound=10, seed=10, capacity=16)
        estimate = rough.process_stream(stream)
        assert truth / 110 <= estimate <= 2 * truth

    def test_small_stream_returns_floor(self):
        rough = RoughL0Estimator(UNIVERSE, magnitude_bound=10, seed=11, capacity=16)
        rough.update(1, 1)
        assert rough.estimate() >= 1.0

    def test_deepest_live_level_moves_with_l0(self):
        rough = RoughL0Estimator(UNIVERSE, magnitude_bound=10, seed=12, capacity=16)
        assert rough.deepest_live_level() == -1
        for item in range(3000):
            rough.update(item, 1)
        assert rough.deepest_live_level() >= 3

    def test_validation(self):
        with pytest.raises(ParameterError):
            RoughL0Estimator(1, 10)


class TestKNWL0:
    def test_exact_for_tiny_support(self):
        estimator = KNWHammingNormEstimator(UNIVERSE, eps=0.1, magnitude_bound=10, seed=13)
        estimator.update(4, 2)
        estimator.update(4, -2)
        estimator.update(9, 1)
        estimator.update(11, 3)
        assert estimator.estimate() == 2.0

    def test_insert_delete_accuracy(self):
        stream = insert_delete_stream(UNIVERSE, 3000, delete_fraction=0.5, copies=2, seed=14)
        truth = stream.ground_truth()
        estimator = KNWHammingNormEstimator(UNIVERSE, eps=0.05, magnitude_bound=10, seed=15)
        estimate = estimator.process_stream(stream)
        assert abs(estimate - truth) / truth < 0.25

    def test_mixed_sign_frequencies_supported(self):
        stream = mixed_sign_stream(UNIVERSE, 800, 800, seed=16)
        truth = stream.ground_truth()
        estimator = KNWHammingNormEstimator(UNIVERSE, eps=0.1, magnitude_bound=10, seed=17)
        estimate = estimator.process_stream(stream)
        assert abs(estimate - truth) / truth < 0.3
        assert estimator.requires_nonnegative_frequencies is False

    def test_paper_row_selection_is_constant_factor(self):
        # The literal Figure 4 reporting rule reads a deeply subsampled row
        # (expected occupancy K/64 or below), so at practical K it is only
        # a constant-factor estimator; check that band.
        stream = insert_delete_stream(UNIVERSE, 2500, delete_fraction=0.2, seed=18)
        truth = stream.ground_truth()
        estimator = KNWHammingNormEstimator(
            UNIVERSE, eps=0.05, magnitude_bound=10, seed=19, row_selection="paper"
        )
        estimate = estimator.process_stream(stream)
        assert 0.1 * truth <= estimate <= 8.0 * truth

    def test_fluctuating_support_tracks(self):
        stream = fluctuating_stream(UNIVERSE, 4000, target_support=500, seed=20)
        truth = stream.ground_truth()
        estimator = KNWHammingNormEstimator(UNIVERSE, eps=0.1, magnitude_bound=10_000, seed=21)
        estimate = estimator.process_stream(stream)
        if truth > 100:
            assert abs(estimate - truth) / truth < 0.35

    def test_column_difference_use_case(self):
        _, _, difference = paired_columns(UNIVERSE, 1500, 300, seed=22)
        truth = difference.ground_truth()
        estimator = KNWHammingNormEstimator(UNIVERSE, eps=0.1, magnitude_bound=10, seed=23)
        estimate = estimator.process_stream(difference)
        assert abs(estimate - truth) <= max(0.35 * truth, 15)

    def test_zero_delta_ignored(self):
        estimator = KNWHammingNormEstimator(UNIVERSE, eps=0.1, magnitude_bound=10, seed=24)
        estimator.update(5, 0)
        assert estimator.estimate() == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            KNWHammingNormEstimator(UNIVERSE, eps=0.1, row_selection="bogus")
        with pytest.raises(ParameterError):
            KNWHammingNormEstimator(UNIVERSE, eps=2.0)
        estimator = KNWHammingNormEstimator(UNIVERSE, eps=0.1, magnitude_bound=10, seed=25)
        with pytest.raises(ParameterError):
            estimator.update(UNIVERSE, 1)

    def test_space_breakdown(self):
        estimator = KNWHammingNormEstimator(UNIVERSE, eps=0.1, magnitude_bound=10, seed=26)
        breakdown = estimator.space_breakdown().as_dict()
        assert "fingerprint-matrix" in breakdown and "rough-l0" in breakdown
        assert estimator.space_bits() == sum(breakdown.values())


class TestGanguly:
    def test_insert_delete_accuracy(self):
        stream = insert_delete_stream(UNIVERSE, 2000, delete_fraction=0.5, seed=27)
        truth = stream.ground_truth()
        estimator = GangulyStyleL0Estimator(UNIVERSE, eps=0.1, magnitude_bound=10, seed=28)
        estimate = estimator.process_stream(stream)
        assert abs(estimate - truth) / truth < 0.3

    def test_requires_nonnegative_flag(self):
        estimator = GangulyStyleL0Estimator(UNIVERSE, eps=0.1, seed=29)
        assert estimator.requires_nonnegative_frequencies is True

    def test_space_has_log_mm_factor(self):
        small_mm = GangulyStyleL0Estimator(UNIVERSE, eps=0.1, magnitude_bound=1 << 4, seed=30)
        large_mm = GangulyStyleL0Estimator(UNIVERSE, eps=0.1, magnitude_bound=1 << 40, seed=30)
        assert large_mm.space_bits() > small_mm.space_bits()

    def test_knw_space_advantage_for_large_mm(self):
        # Theorem 10's point: KNW pays loglog(mM) per cell where Ganguly
        # pays log(mM); for a large magnitude bound KNW should be smaller
        # at the same eps.
        mm = 1 << 60
        knw = KNWHammingNormEstimator(UNIVERSE, eps=0.1, magnitude_bound=mm, seed=31)
        ganguly = GangulyStyleL0Estimator(UNIVERSE, eps=0.1, magnitude_bound=mm, seed=31)
        knw_matrix_bits = knw.space_breakdown().as_dict()["fingerprint-matrix"]
        ganguly_cell_bits = ganguly.space_breakdown().as_dict()["cells"]
        assert knw_matrix_bits < ganguly_cell_bits
