"""Tests for the kernel backend seam (:mod:`repro.kernels`).

Three layers of coverage:

* **Fuzz against big-int ground truth** — every kernel primitive is pitted
  against a plain-Python reference built on exact ``int`` arithmetic, at
  u64 edge values (near ``2^64`` keys, Lemma-6-sized primes beyond
  ``2^52``, empty and single-element arrays), parametrized over every
  backend that can load in this environment.
* **Cross-backend bit-identity** — each backend must match the NumPy
  reference backend on values *and* dtypes, which is the hard contract
  the compiled backend's delegation rules implement.
* **Seam mechanics** — selection, fallback, forcing, and the
  ``require_backend`` / ``kernel_backend_info`` diagnostics.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels as kernels
from repro.exceptions import KernelBackendError
from repro.hashing.primes import next_prime
from repro.kernels import numpy_backend

# ---------------------------------------------------------------------------
# Backend parametrization: every registered backend that loads here.
# ---------------------------------------------------------------------------


def _loadable_backends():
    names = []
    for name in kernels.available_backends():
        try:
            kernels.load_backend(name)
        except KernelBackendError:
            continue
        names.append(name)
    return names


BACKENDS = _loadable_backends()

backend_param = pytest.mark.parametrize("backend_name", BACKENDS)


@pytest.fixture
def restore_backend():
    """Snapshot and restore the process-wide backend selection."""
    saved_active = kernels._active
    saved_chosen = kernels._chosen_by
    yield
    kernels._active = saved_active
    kernels._chosen_by = saved_chosen


def _backend(name):
    return kernels.load_backend(name)


# ---------------------------------------------------------------------------
# Strategies: u64 edge values and the primes the library actually draws.
# ---------------------------------------------------------------------------

U64_MAX = (1 << 64) - 1

#: Field moduli covering every reference code path: both Mersenne primes,
#: a small non-Mersenne prime, a Lemma-6-scale prime beyond 2^52, and a
#: large non-Mersenne prime beyond 2^62 (object-fallback territory).
PRIMES = [
    (1 << 31) - 1,
    (1 << 61) - 1,
    1_000_003,
    next_prime(1 << 52),
    next_prime(1 << 62),
]

edge_words = st.one_of(
    st.sampled_from(
        [0, 1, 2, (1 << 32) - 1, 1 << 32, (1 << 52) + 1, (1 << 63) - 1,
         1 << 63, U64_MAX - 1, U64_MAX]
    ),
    st.integers(min_value=0, max_value=U64_MAX),
)

word_lists = st.lists(edge_words, min_size=0, max_size=40)


def _keys_array(values):
    return np.asarray(values, dtype=np.uint64)


def _as_int_list(array):
    return [int(v) for v in (array.tolist() if hasattr(array, "tolist") else array)]


def _assert_matches_reference(backend_name, result, expected_ints):
    """Backend output must equal big-int ground truth, and match the NumPy
    backend bit-for-bit (values and dtype)."""
    assert _as_int_list(result) == expected_ints


# ---------------------------------------------------------------------------
# Fuzz: batched modular arithmetic vs. Python big-int ground truth.
# ---------------------------------------------------------------------------


@backend_param
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_mulmod_matches_bigint(backend_name, data):
    backend = _backend(backend_name)
    prime = data.draw(st.sampled_from(PRIMES))
    values = data.draw(word_lists)
    multiplier = data.draw(st.integers(min_value=0, max_value=prime - 1))
    keys = _keys_array(values)
    key_bound = max(values, default=0) + 1
    result = backend.mulmod(multiplier, keys, prime, key_bound)
    _assert_matches_reference(
        backend_name, result, [(multiplier * k) % prime for k in values]
    )


@backend_param
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_affine_mod_range_matches_bigint(backend_name, data):
    backend = _backend(backend_name)
    prime = data.draw(st.sampled_from(PRIMES))
    values = data.draw(word_lists)
    a = data.draw(st.integers(min_value=0, max_value=prime - 1))
    b = data.draw(st.integers(min_value=0, max_value=prime - 1))
    range_size = data.draw(
        st.sampled_from([1, 2, 1 << 10, 1000, (1 << 32) - 5, 1 << 63])
    )
    keys = _keys_array(values)
    key_bound = max(values, default=0) + 1
    plain = backend.affine_mod(a, b, keys, prime, key_bound)
    fused = backend.affine_mod_range(a, b, keys, prime, key_bound, range_size)
    expected = [(a * k + b) % prime for k in values]
    _assert_matches_reference(backend_name, plain, expected)
    _assert_matches_reference(
        backend_name, fused, [v % range_size for v in expected]
    )


@backend_param
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_kwise_mod_range_matches_bigint(backend_name, data):
    backend = _backend(backend_name)
    prime = data.draw(st.sampled_from(PRIMES))
    values = data.draw(word_lists)
    k = data.draw(st.integers(min_value=1, max_value=8))
    coefficients = [
        data.draw(st.integers(min_value=0, max_value=prime - 1)) for _ in range(k)
    ]
    range_size = data.draw(st.sampled_from([1, 2, 1 << 16, 997]))
    # Keys stay inside the field: the hash families always pair a universe
    # with a prime at least as large (field_prime_for_universe), and that
    # is the envelope in which every reference path is exact.
    values = [v % prime for v in values]
    keys = _keys_array(values)
    key_bound = prime
    result = backend.kwise_mod_range(coefficients, keys, prime, key_bound, range_size)
    expected = []
    for key in values:
        acc = 0
        for coefficient in reversed(coefficients):
            acc = (acc * key + coefficient) % prime
        expected.append(acc % range_size)
    _assert_matches_reference(backend_name, result, expected)


@backend_param
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_mulmod_arrays_matches_bigint(backend_name, data):
    backend = _backend(backend_name)
    prime = data.draw(st.sampled_from(PRIMES))
    values = data.draw(word_lists)
    left = [data.draw(st.integers(min_value=0, max_value=prime - 1)) for _ in values]
    # Keep both factors inside the field: that is the domain every call
    # site uses (Horner accumulators and fingerprint weights), and the
    # envelope in which the reference's Barrett float path is exact.
    right = [v % prime for v in values]
    right_bound = prime
    left_arr = (
        np.asarray(left, dtype=np.uint64)
        if prime < (1 << 64)
        else np.asarray(left, dtype=object)
    )
    result = backend.mulmod_arrays(
        left_arr, _keys_array(right), prime, right_bound
    )
    _assert_matches_reference(
        backend_name, result, [(l * r) % prime for l, r in zip(left, right)]
    )


@backend_param
@settings(max_examples=60, deadline=None)
@given(values=word_lists, data=st.data())
def test_mod_range_matches_bigint(backend_name, values, data):
    backend = _backend(backend_name)
    range_size = data.draw(
        st.sampled_from([1, 2, 3, 1 << 10, (1 << 32) + 1, 1 << 63, 1 << 64, 1 << 70])
    )
    result = backend.mod_range(_keys_array(values), range_size)
    _assert_matches_reference(
        backend_name, result, [v % range_size for v in values]
    )


@backend_param
@settings(max_examples=60, deadline=None)
@given(values=word_lists, zero_value=st.integers(min_value=0, max_value=128))
def test_lsb64_batch_matches_bigint(backend_name, values, zero_value):
    backend = _backend(backend_name)
    result = backend.lsb64_batch(_keys_array(values), zero_value)
    expected = [
        (v & -v).bit_length() - 1 if v else zero_value for v in values
    ]
    _assert_matches_reference(backend_name, result, expected)


# ---------------------------------------------------------------------------
# Fuzz: grouped scatter reductions vs. scalar ground truth.
# ---------------------------------------------------------------------------


@backend_param
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_grouped_residue_sums_matches_bigint(backend_name, data):
    backend = _backend(backend_name)
    prime = data.draw(st.sampled_from(PRIMES))
    residues = [
        v % prime for v in data.draw(word_lists)
    ]
    group_count = data.draw(st.integers(min_value=1, max_value=8))
    index = [
        data.draw(st.integers(min_value=0, max_value=group_count - 1))
        for _ in residues
    ]
    dtype = object if prime >= (1 << 64) else np.uint64
    result = backend.grouped_residue_sums(
        np.asarray(index, dtype=np.int64),
        group_count,
        np.asarray(residues, dtype=dtype),
        prime,
    )
    expected = [0] * group_count
    for g, r in zip(index, residues):
        expected[g] += r
    assert result == expected
    assert all(isinstance(total, int) for total in result)


@backend_param
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_grouped_max_scatter_matches_scalar(backend_name, data):
    backend = _backend(backend_name)
    dtype = data.draw(
        st.sampled_from([np.uint8, np.uint16, np.uint32, np.uint64, np.int64])
    )
    cap = int(np.iinfo(dtype).max)
    low = -100 if dtype == np.int64 else 0
    size = data.draw(st.integers(min_value=1, max_value=16))
    n = data.draw(st.integers(min_value=0, max_value=40))
    index = [data.draw(st.integers(min_value=0, max_value=size - 1)) for _ in range(n)]
    values = [
        data.draw(st.integers(min_value=low, max_value=min(cap, 1 << 62)))
        for _ in range(n)
    ]
    target = np.zeros(size, dtype=dtype)
    backend.grouped_max_scatter(
        target,
        np.asarray(index, dtype=np.int64),
        np.asarray(values, dtype=np.int64),
    )
    expected = [0] * size
    for g, v in zip(index, values):
        expected[g] = max(expected[g], v)
    assert target.tolist() == expected


@backend_param
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_grouped_or_scatter_matches_scalar(backend_name, data):
    backend = _backend(backend_name)
    size = data.draw(st.integers(min_value=1, max_value=16))
    n = data.draw(st.integers(min_value=0, max_value=40))
    index = [data.draw(st.integers(min_value=0, max_value=size - 1)) for _ in range(n)]
    masks = [data.draw(st.integers(min_value=0, max_value=255)) for _ in range(n)]
    target = np.zeros(size, dtype=np.uint8)
    backend.grouped_or_scatter(
        target,
        np.asarray(index, dtype=np.int64),
        np.asarray(masks, dtype=np.uint8),
    )
    expected = [0] * size
    for g, m in zip(index, masks):
        expected[g] |= m
    assert target.tolist() == expected


# ---------------------------------------------------------------------------
# Cross-backend bit-identity: values AND dtypes must match the reference.
# ---------------------------------------------------------------------------


@backend_param
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_backend_bit_identical_to_numpy_reference(backend_name, data):
    backend = _backend(backend_name)
    prime = data.draw(st.sampled_from(PRIMES))
    values = data.draw(word_lists)
    a = data.draw(st.integers(min_value=0, max_value=prime - 1))
    b = data.draw(st.integers(min_value=0, max_value=prime - 1))
    keys = _keys_array(values)
    key_bound = 1 << 64
    for kernel, args in [
        ("mulmod", (a, keys, prime, key_bound)),
        ("affine_mod", (a, b, keys, prime, key_bound)),
        ("affine_mod_range", (a, b, keys, prime, key_bound, 1 << 20)),
        ("kwise_mod_range", ([a, b, 1], keys, prime, key_bound, 997)),
        ("mod_range", (keys, 1000)),
        ("lsb64_batch", (keys, 64)),
    ]:
        mine = getattr(backend, kernel)(*args)
        reference = getattr(numpy_backend, kernel)(*args)
        assert mine.dtype == reference.dtype, kernel
        assert mine.tolist() == reference.tolist(), kernel


def test_empty_and_single_element_arrays():
    prime = (1 << 61) - 1
    for backend_name in BACKENDS:
        backend = _backend(backend_name)
        empty = np.empty(0, dtype=np.uint64)
        single = np.asarray([U64_MAX], dtype=np.uint64)
        assert backend.mulmod(7, empty, prime, 1 << 64).tolist() == []
        assert backend.affine_mod_range(3, 5, empty, prime, 1 << 64, 8).tolist() == []
        assert backend.lsb64_batch(empty, 9).tolist() == []
        assert backend.grouped_residue_sums(
            np.empty(0, dtype=np.int64), 3, empty, prime
        ) == [0, 0, 0]
        assert backend.mulmod(7, single, prime, 1 << 64).tolist() == [
            (7 * U64_MAX) % prime
        ]
        target = np.zeros(2, dtype=np.uint8)
        backend.grouped_max_scatter(
            target, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert target.tolist() == [0, 0]


# ---------------------------------------------------------------------------
# End-to-end: estimator state words are bit-identical across backends.
# ---------------------------------------------------------------------------


@pytest.mark.skipif(len(BACKENDS) < 2, reason="only one backend available here")
def test_estimator_state_bit_identical_across_backends(restore_backend):
    from repro.l0.knw_l0 import KNWHammingNormEstimator
    from repro.serialize import snapshot

    states = {}
    for backend_name in BACKENDS:
        kernels.set_backend(backend_name)
        estimator = KNWHammingNormEstimator(universe_size=1 << 16, eps=0.5, seed=7)
        items = [(i * 2654435761) % (1 << 16) for i in range(4000)]
        deltas = [1 if i % 3 else -1 for i in range(4000)]
        estimator.update_batch(items, deltas)
        states[backend_name] = snapshot(estimator)
    reference = states["numpy"]
    for backend_name, state in states.items():
        assert state == reference, backend_name


# ---------------------------------------------------------------------------
# Seam mechanics: selection, forcing, fallback, diagnostics.
# ---------------------------------------------------------------------------


def test_available_backends_lists_registry():
    assert kernels.available_backends() == ["compiled", "numpy"]


def test_load_backend_unknown_name_raises():
    with pytest.raises(KernelBackendError, match="unknown kernel backend"):
        kernels.load_backend("cuda")


def test_set_backend_and_info(restore_backend):
    backend = kernels.set_backend("numpy")
    assert backend.name == "numpy"
    assert kernels.get_backend() == "numpy"
    info = kernels.kernel_backend_info()
    assert info["name"] == "numpy"
    assert info["chosen_by"] == "set_backend"
    assert info["available"]["numpy"] is True
    assert set(info["available"]) == {"compiled", "numpy"}


def test_set_backend_unknown_preserves_active(restore_backend):
    kernels.set_backend("numpy")
    with pytest.raises(KernelBackendError):
        kernels.set_backend("nope")
    assert kernels.get_backend() == "numpy"


def test_require_backend_messages():
    kernels.require_backend("numpy", "this test")  # loads fine: no raise
    with pytest.raises(KernelBackendError, match="this test requires"):
        kernels.require_backend("missing-backend", "this test")


def _run_with_env(code, **env):
    merged = dict(os.environ)
    merged.update(env)
    merged["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=merged,
    )


def test_env_var_selects_backend():
    result = _run_with_env(
        "import repro.kernels as k; print(k.get_backend())",
        REPRO_KERNEL_BACKEND="numpy",
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "numpy"


def test_forced_compiled_unavailable_raises_not_falls_back(tmp_path):
    # Simulate a machine with no C toolchain: empty PATH and no CC.  The
    # explicit REPRO_KERNEL_BACKEND=compiled must raise, never fall back.
    result = _run_with_env(
        "import repro.kernels as k\n"
        "try:\n"
        "    k.active()\n"
        "except Exception as exc:\n"
        "    print(type(exc).__name__)\n",
        REPRO_KERNEL_BACKEND="compiled",
        REPRO_KERNEL_BUILD_DIR=str(tmp_path),
        PATH="",
        CC="",
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "KernelBackendError"


def test_auto_falls_back_with_single_warning_when_compiled_unavailable(tmp_path):
    result = _run_with_env(
        "import warnings\n"
        "import repro.kernels as k\n"
        "with warnings.catch_warnings(record=True) as caught:\n"
        "    warnings.simplefilter('always')\n"
        "    k.active(); k.active()\n"
        "print(k.get_backend())\n"
        "print(sum('compiled backend unavailable' in str(w.message)"
        " for w in caught))\n",
        REPRO_KERNEL_BACKEND="auto",
        REPRO_KERNEL_BUILD_DIR=str(tmp_path),
        PATH="",
        CC="",
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.split() == ["numpy", "1"]


def test_require_numpy_error_names_install_route():
    from repro.vectorize import require_numpy

    require_numpy("anything")  # numpy present here: no raise
    import repro.vectorize as vectorize

    saved = vectorize.HAS_NUMPY
    vectorize.HAS_NUMPY = False
    try:
        with pytest.raises(Exception, match="pip install numpy"):
            require_numpy("batch ingestion")
    finally:
        vectorize.HAS_NUMPY = saved
