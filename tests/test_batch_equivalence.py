"""Batch/scalar equivalence: the binding contract of ``update_batch``.

For every estimator with a vectorized ``update_batch`` override, feeding
the same stream through batches of sizes {1, 7, 1024} must leave the
sketch in *bit-identical* state — and produce identical estimates — to
the scalar ``update`` loop.  The state comparisons below reach into each
sketch's actual storage (registers, bitmaps, counters, samples, base
levels, budgets) rather than only the estimate, so a batch path that
"merely" lands near the right answer fails loudly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines.bjkst import BJKSTSampler
from repro.baselines.flajolet_martin import FlajoletMartinPCSA
from repro.baselines.hyperloglog import HyperLogLogCounter
from repro.baselines.kmv import KMinimumValues
from repro.baselines.linear_counting import LinearCounter
from repro.baselines.loglog import LogLogCounter
from repro.core.knw import KNWDistinctCounter, KNWFigure3Sketch
from repro.core.rough_estimator import FastRoughEstimator, RoughEstimator
from repro.estimators.median import MedianEstimator, MedianTurnstileEstimator
from repro.exceptions import ParameterError, UpdateError
from repro.streams.generators import (
    distinct_items_stream,
    uniform_random_stream,
    zipf_stream,
)

UNIVERSE = 1 << 20
BATCH_SIZES = [1, 7, 1024]


def _stream_items(kind: str, length: int, seed: int):
    if kind == "uniform":
        stream = uniform_random_stream(UNIVERSE, length, seed=seed)
    elif kind == "zipf":
        stream = zipf_stream(UNIVERSE, length, seed=seed)
    else:
        stream = distinct_items_stream(UNIVERSE, length // 2, repetitions=2, seed=seed)
    return [update.item for update in stream]


def _feed_batches(estimator, items, batch_size):
    for start in range(0, len(items), batch_size):
        estimator.update_batch(
            np.asarray(items[start : start + batch_size], dtype=np.uint64)
        )


# -- per-estimator state extractors (the full externally meaningful state) -----


def _hll_state(est):
    return est._registers.to_list()


def _fm_state(est):
    return [bitmap.to_list() for bitmap in est._bitmaps]


def _lc_state(est):
    return est._bitmap.to_list()


def _kmv_state(est):
    return (est._values, sorted(est._members))


def _bjkst_state(est):
    return (est._level, est._sample)


def _rough_state(est):
    return [copy.counters.to_list() for copy in est._copies]


def _fast_rough_state(est):
    return (_rough_state(est), est._committed_level, est._cached_estimate)


def _fig3_state(est):
    return (
        est._counters,
        est._base_level,
        est._est_exponent,
        est._occupied,
        est._bit_budget,
        est._failed,
    )


def _knw_state(est):
    return (
        _fig3_state(est.core),
        _rough_state(est.core.rough),
        sorted(est.small._exact),
        est.small._exact_overflowed,
        est.small._bits.to_list(),
    )


def _median_hll_state(est):
    return [_hll_state(copy) for copy in est.copies]


def _median_knw_state(est):
    return [_knw_state(copy) for copy in est.copies]


def _median_hll(seed):
    return MedianEstimator(
        lambda index: HyperLogLogCounter(UNIVERSE, eps=0.05, seed=seed + index),
        repetitions=3,
    )


def _median_knw(seed):
    return MedianEstimator(
        lambda index: KNWDistinctCounter(UNIVERSE, eps=0.1, seed=seed + index),
        repetitions=3,
    )


ESTIMATORS = [
    ("hyperloglog", lambda seed: HyperLogLogCounter(UNIVERSE, eps=0.05, seed=seed), _hll_state),
    ("loglog", lambda seed: LogLogCounter(UNIVERSE, eps=0.05, seed=seed), _hll_state),
    ("flajolet-martin", lambda seed: FlajoletMartinPCSA(UNIVERSE, maps=64, seed=seed), _fm_state),
    ("linear-counting", lambda seed: LinearCounter(UNIVERSE, bits=4096, seed=seed), _lc_state),
    ("kmv", lambda seed: KMinimumValues(UNIVERSE, eps=0.05, seed=seed), _kmv_state),
    ("bjkst", lambda seed: BJKSTSampler(UNIVERSE, eps=0.05, seed=seed), _bjkst_state),
    ("rough", lambda seed: RoughEstimator(UNIVERSE, seed=seed), _rough_state),
    (
        "rough-uniform",
        lambda seed: RoughEstimator(UNIVERSE, seed=seed, use_uniform_family=True),
        _rough_state,
    ),
    ("rough-fast", lambda seed: FastRoughEstimator(UNIVERSE, seed=seed), _fast_rough_state),
    ("figure3", lambda seed: KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=seed), _fig3_state),
    ("knw", lambda seed: KNWDistinctCounter(UNIVERSE, eps=0.05, seed=seed), _knw_state),
    (
        "knw-paper",
        lambda seed: KNWDistinctCounter(
            UNIVERSE, eps=0.05, seed=seed, offset_divisor=32, rough_uniform_family=False
        ),
        _knw_state,
    ),
    # The amplification wrappers must forward batches to every copy (a
    # wrapper falling back to the base per-item loop would still be
    # *correct*, so only a state comparison across batch sizes — via the
    # copies' states — pins the forwarding down).
    ("median-hll", _median_hll, _median_hll_state),
    ("median-knw", _median_knw, _median_knw_state),
]


@pytest.mark.parametrize("workload", ["uniform", "zipf", "distinct"])
@pytest.mark.parametrize(
    "name,factory,state", ESTIMATORS, ids=[entry[0] for entry in ESTIMATORS]
)
def test_batch_matches_scalar_bit_for_bit(name, factory, state, workload):
    items = _stream_items(workload, 6000, seed=101)
    scalar = factory(31)
    for item in items:
        scalar.update(item)
    scalar_state = state(scalar)
    scalar_estimate = scalar.estimate()
    for batch_size in BATCH_SIZES:
        batched = factory(31)
        _feed_batches(batched, items, batch_size)
        assert state(batched) == scalar_state, (
            "%s state diverged at batch size %d" % (name, batch_size)
        )
        assert batched.estimate() == scalar_estimate, (
            "%s estimate diverged at batch size %d" % (name, batch_size)
        )


@pytest.mark.parametrize(
    "name,factory,state", ESTIMATORS, ids=[entry[0] for entry in ESTIMATORS]
)
def test_mixed_scalar_and_batch_ingestion(name, factory, state):
    """Interleaving scalar updates and batches must equal the pure loop."""
    items = _stream_items("uniform", 3000, seed=7)
    reference = factory(5)
    for item in items:
        reference.update(item)
    mixed = factory(5)
    cursor = 0
    rng = random.Random(9)
    while cursor < len(items):
        if rng.random() < 0.5:
            mixed.update(items[cursor])
            cursor += 1
        else:
            take = rng.randrange(1, 300)
            mixed.update_batch(np.asarray(items[cursor : cursor + take], dtype=np.uint64))
            cursor += take
    assert state(mixed) == state(reference)
    assert mixed.estimate() == reference.estimate()


def test_empty_batch_is_a_no_op():
    estimator = HyperLogLogCounter(UNIVERSE, eps=0.05, seed=1)
    before = _hll_state(estimator)
    estimator.update_batch(np.asarray([], dtype=np.uint64))
    estimator.update_batch([])
    assert _hll_state(estimator) == before


def test_batch_validation_is_all_or_nothing():
    """An out-of-universe batch raises and leaves the sketch untouched."""
    estimator = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=3)
    estimator.update_batch(np.arange(100, dtype=np.uint64))
    before = _knw_state(estimator)
    with pytest.raises(ParameterError):
        estimator.update_batch(np.asarray([5, UNIVERSE + 4, 6], dtype=np.uint64))
    assert _knw_state(estimator) == before


def test_batch_list_input_accepted():
    """update_batch accepts plain Python sequences, not just ndarrays."""
    a = KMinimumValues(UNIVERSE, eps=0.1, seed=11)
    b = KMinimumValues(UNIVERSE, eps=0.1, seed=11)
    items = _stream_items("uniform", 500, seed=13)
    for item in items:
        a.update(item)
    b.update_batch(items)
    assert _kmv_state(a) == _kmv_state(b)


def test_batched_merge_matches_scalar_merge():
    """Merging batch-fed sketches equals merging scalar-fed sketches."""
    left_items = _stream_items("uniform", 2000, seed=17)
    right_items = _stream_items("uniform", 2000, seed=19)

    def merged(feed):
        left = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=23)
        right = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=23)
        feed(left, left_items)
        feed(right, right_items)
        left.merge(right)
        return left

    def scalar_feed(est, items):
        for item in items:
            est.update(item)

    def batch_feed(est, items):
        est.update_batch(np.asarray(items, dtype=np.uint64))

    scalar_merged = merged(scalar_feed)
    batch_merged = merged(batch_feed)
    assert _knw_state(batch_merged) == _knw_state(scalar_merged)
    assert batch_merged.estimate() == scalar_merged.estimate()


def test_giant_universe_batch_matches_scalar():
    """Universes beyond 2^61 take the exact object-array hash fallback;
    batch ingestion must still work and agree with the scalar loop."""
    universe = 1 << 62
    items = [random.Random(3).randrange(universe) for _ in range(300)]
    cases = [
        ("knw", lambda: KNWDistinctCounter(universe, eps=0.1, seed=5), _knw_state),
        ("bjkst", lambda: BJKSTSampler(universe, eps=0.1, seed=5), _bjkst_state),
        ("rough", lambda: RoughEstimator(universe, seed=5), _rough_state),
        (
            "hyperloglog",
            lambda: HyperLogLogCounter(universe, eps=0.1, seed=5),
            _hll_state,
        ),
        ("kmv", lambda: KMinimumValues(universe, eps=0.1, seed=5), _kmv_state),
    ]
    for name, factory, state in cases:
        scalar = factory()
        for item in items:
            scalar.update(item)
        batched = factory()
        for start in range(0, len(items), 97):
            batched.update_batch(items[start : start + 97])
        assert state(batched) == state(scalar), name
        assert batched.estimate() == scalar.estimate(), name


def test_network_monitor_observe_batch_equals_observe():
    from repro.apps.network_monitor import FlowCardinalityMonitor
    from repro.streams.datasets import FlowRecord

    rng = random.Random(41)
    records = [
        FlowRecord(rng.randrange(64), rng.randrange(4096), rng.randrange(1024))
        for _ in range(2500)
    ]
    scalar = FlowCardinalityMonitor(universe_size=1 << 16, window_packets=1000, seed=2)
    batched = FlowCardinalityMonitor(universe_size=1 << 16, window_packets=1000, seed=2)
    scalar_reports = [r for r in (scalar.observe(rec) for rec in records) if r]
    batched_reports = []
    for start in range(0, len(records), 700):
        batched_reports.extend(batched.observe_batch(records[start : start + 700]))
    assert [r.__dict__ for r in batched_reports] == [r.__dict__ for r in scalar_reports]
    assert scalar.flush().__dict__ == batched.flush().__dict__


def test_query_optimizer_column_ingest_equals_row_ingest():
    from repro.apps.query_optimizer import ColumnStatisticsCollector

    rng = random.Random(43)
    values = [rng.randrange(1 << 16) if rng.random() > 0.1 else None for _ in range(3000)]
    by_row = ColumnStatisticsCollector(["c"], universe_size=1 << 16, eps=0.1, seed=5)
    by_column = ColumnStatisticsCollector(["c"], universe_size=1 << 16, eps=0.1, seed=5)
    for value in values:
        by_row.ingest_row({"c": value})
    by_column.ingest_column("c", values)
    assert by_row.ndv("c") == by_column.ndv("c")
    assert by_row._row_counts == by_column._row_counts


def test_process_stream_batched_equals_scalar():
    stream = uniform_random_stream(UNIVERSE, 4000, seed=29)
    scalar = HyperLogLogCounter(UNIVERSE, eps=0.05, seed=31)
    batched = HyperLogLogCounter(UNIVERSE, eps=0.05, seed=31)
    scalar_result = scalar.process_stream(stream)
    batched_result = batched.process_stream(stream, batch_size=512)
    assert scalar_result == batched_result
    assert _hll_state(scalar) == _hll_state(batched)


def test_median_wrapper_uses_the_copies_batch_paths():
    """Forwarded batches must reach the vectorized overrides, not the base
    loop: a probe copy records which entry point was used."""

    class Probe(HyperLogLogCounter):
        batch_calls = 0
        scalar_calls = 0

        def update(self, item):
            Probe.scalar_calls += 1
            super().update(item)

        def update_batch(self, items):
            Probe.batch_calls += 1
            super().update_batch(items)

    wrapper = MedianEstimator(
        lambda index: Probe(UNIVERSE, eps=0.1, seed=index), repetitions=3
    )
    wrapper.update_batch(np.arange(500, dtype=np.uint64))
    assert Probe.batch_calls == 3
    assert Probe.scalar_calls == 0


def test_median_turnstile_batch_matches_scalar():
    from repro.l0.knw_l0 import KNWHammingNormEstimator

    def build():
        return MedianTurnstileEstimator(
            lambda index: KNWHammingNormEstimator(
                UNIVERSE, eps=0.2, magnitude_bound=1 << 12, seed=60 + index
            ),
            repetitions=3,
        )

    rng = random.Random(63)
    updates = [(rng.randrange(1 << 12), rng.choice([1, 1, 1, -1])) for _ in range(900)]
    scalar = build()
    for item, delta in updates:
        scalar.update(item, delta)
    batched = build()
    for start in range(0, len(updates), 250):
        chunk = updates[start : start + 250]
        batched.update_batch([i for i, _ in chunk], [d for _, d in chunk])
    assert batched.estimate() == scalar.estimate()
    for mine, theirs in zip(batched.copies, scalar.copies):
        assert mine.state_dict() == theirs.state_dict()


def test_median_turnstile_batch_validates_lengths():
    from repro.l0.knw_l0 import KNWHammingNormEstimator

    wrapper = MedianTurnstileEstimator(
        lambda index: KNWHammingNormEstimator(
            UNIVERSE, eps=0.2, magnitude_bound=1 << 12, seed=index
        ),
        repetitions=3,
    )
    before = [copy.state_dict() for copy in wrapper.copies]
    with pytest.raises(UpdateError):
        wrapper.update_batch([1, 2, 3], [1, 1])
    assert [copy.state_dict() for copy in wrapper.copies] == before


def test_turnstile_process_stream_batched_equals_scalar(turnstile_stream):
    from repro.l0.knw_l0 import KNWHammingNormEstimator

    def build():
        return KNWHammingNormEstimator(
            turnstile_stream.universe_size,
            eps=0.2,
            magnitude_bound=1 << 12,
            seed=67,
        )

    scalar = build()
    scalar_result = scalar.process_stream(turnstile_stream)
    for batch_size in (1, 7, 256):
        batched = build()
        batched_result = batched.process_stream(turnstile_stream, batch_size=batch_size)
        assert batched_result == scalar_result
        assert batched.state_dict() == scalar.state_dict()


# -- turnstile (L0) batch equivalence ------------------------------------------
#
# The vectorized turnstile pipeline carries the same binding contract as
# the F0 side: for every registry L0 estimator, any batch split of an
# insert+delete stream must leave *bit-identical* state (``state_dict``
# reaches every counter, prime, and hash) and identical estimates.

L0_UNIVERSE = 1 << 16
L0_MAGNITUDE = 1 << 12
L0_BATCH_SIZES = [1, 7, 512]


def _turnstile_updates(length, seed, signs=(1, 1, 1, -1), deltas=(1,)):
    """An insert-heavy mixed stream whose deletions hit previously seen items."""
    rng = random.Random(seed)
    updates = []
    seen = []
    for _ in range(length):
        if seen and rng.random() < 0.3:
            updates.append((rng.choice(seen), -1))
        else:
            item = rng.randrange(L0_UNIVERSE)
            seen.append(item)
            updates.append((item, rng.choice(deltas) * rng.choice(signs)))
    return updates


def _feed_update_batches(estimator, updates, batch_size):
    items = np.asarray([item for item, _ in updates], dtype=np.uint64)
    deltas = np.asarray([delta for _, delta in updates], dtype=np.int64)
    for start in range(0, len(updates), batch_size):
        estimator.update_batch(
            items[start : start + batch_size], deltas[start : start + batch_size]
        )


def _l0_registry_cases():
    from repro.estimators.registry import l0_algorithm_names, make_l0_estimator

    return [
        (
            name,
            lambda seed, name=name: make_l0_estimator(
                name, L0_UNIVERSE, 0.2, L0_MAGNITUDE, seed=seed
            ),
        )
        for name in l0_algorithm_names()
    ]


@pytest.mark.parametrize("deltas", [(1,), (1, 2, 5)], ids=["unit", "multi"])
@pytest.mark.parametrize(
    "name,factory", _l0_registry_cases(), ids=[c[0] for c in _l0_registry_cases()]
)
def test_turnstile_batch_matches_scalar_bit_for_bit(name, factory, deltas):
    """Insert+delete mixes: every registry L0 estimator, every batch split."""
    updates = _turnstile_updates(3000, seed=211, deltas=deltas)
    scalar = factory(37)
    for item, delta in updates:
        scalar.update(item, delta)
    scalar_state = scalar.state_dict()
    scalar_estimate = scalar.estimate()
    for batch_size in L0_BATCH_SIZES:
        batched = factory(37)
        _feed_update_batches(batched, updates, batch_size)
        assert batched.state_dict() == scalar_state, (
            "%s state diverged at batch size %d" % (name, batch_size)
        )
        assert batched.estimate() == scalar_estimate, (
            "%s estimate diverged at batch size %d" % (name, batch_size)
        )


@pytest.mark.parametrize(
    "name,factory", _l0_registry_cases(), ids=[c[0] for c in _l0_registry_cases()]
)
def test_turnstile_mixed_scalar_and_batch_ingestion(name, factory):
    """Interleaving scalar updates and batches must equal the pure loop."""
    updates = _turnstile_updates(2000, seed=223)
    reference = factory(41)
    for item, delta in updates:
        reference.update(item, delta)
    mixed = factory(41)
    cursor = 0
    rng = random.Random(13)
    while cursor < len(updates):
        if rng.random() < 0.5:
            item, delta = updates[cursor]
            mixed.update(item, delta)
            cursor += 1
        else:
            take = rng.randrange(1, 300)
            chunk = updates[cursor : cursor + take]
            mixed.update_batch(
                np.asarray([i for i, _ in chunk], dtype=np.uint64),
                np.asarray([d for _, d in chunk], dtype=np.int64),
            )
            cursor += take
    assert mixed.state_dict() == reference.state_dict(), name
    assert mixed.estimate() == reference.estimate(), name


def test_turnstile_batch_validation_is_all_or_nothing():
    """An out-of-universe batch raises and leaves the sketch untouched."""
    from repro.l0.knw_l0 import KNWHammingNormEstimator

    estimator = KNWHammingNormEstimator(
        L0_UNIVERSE, eps=0.2, magnitude_bound=L0_MAGNITUDE, seed=3
    )
    estimator.update_batch(np.arange(100, dtype=np.uint64), np.ones(100, dtype=np.int64))
    before = estimator.state_dict()
    with pytest.raises(ParameterError):
        estimator.update_batch(
            np.asarray([5, L0_UNIVERSE + 4, 6], dtype=np.uint64),
            np.ones(3, dtype=np.int64),
        )
    with pytest.raises(UpdateError):
        estimator.update_batch(np.asarray([5, 6], dtype=np.uint64), [1])
    assert estimator.state_dict() == before


def test_turnstile_zero_deltas_and_lists_match_scalar():
    """Zero deltas are skipped like the scalar update; list input works."""
    from repro.l0.knw_l0 import KNWHammingNormEstimator

    def build():
        return KNWHammingNormEstimator(
            L0_UNIVERSE, eps=0.2, magnitude_bound=L0_MAGNITUDE, seed=47
        )

    reference = build()
    for item in range(50):
        reference.update(item, 2)
    batched = build()
    batched.update_batch(list(range(50)), [2, 0] * 25)  # zero deltas interleaved
    batched.update_batch([item for item in range(1, 50, 2)], [2] * 25)
    assert batched.state_dict() == reference.state_dict()


def test_turnstile_median_wrapper_batch_matches_scalar():
    """The median wrapper forwards batches; copies stay bit-identical."""
    from repro.l0.ganguly import GangulyStyleL0Estimator

    def build():
        return MedianTurnstileEstimator(
            lambda index: GangulyStyleL0Estimator(
                L0_UNIVERSE, eps=0.2, magnitude_bound=L0_MAGNITUDE, seed=90 + index
            ),
            repetitions=3,
        )

    updates = _turnstile_updates(1500, seed=229)
    scalar = build()
    for item, delta in updates:
        scalar.update(item, delta)
    for batch_size in (1, 333):
        batched = build()
        _feed_update_batches(batched, updates, batch_size)
        for mine, theirs in zip(batched.copies, scalar.copies):
            assert mine.state_dict() == theirs.state_dict()
        assert batched.estimate() == scalar.estimate()


@pytest.mark.parametrize(
    "name,factory", _l0_registry_cases(), ids=[c[0] for c in _l0_registry_cases()]
)
def test_turnstile_serialize_round_trip_mid_batch_ingest(name, factory):
    """to_bytes mid-batch-ingest, revive, continue batching: bit-identical."""
    from repro.estimators.base import TurnstileEstimator

    updates = _turnstile_updates(2000, seed=233)
    first, second = updates[:1000], updates[1000:]
    reference = factory(53)
    _feed_update_batches(reference, first, 256)
    revived = TurnstileEstimator.from_bytes(reference.to_bytes())
    assert revived.state_dict() == reference.state_dict()
    _feed_update_batches(reference, second, 256)
    _feed_update_batches(revived, second, 256)
    assert revived.state_dict() == reference.state_dict(), name
    assert revived.estimate() == reference.estimate(), name


def test_network_monitor_flow_events_batch_equals_scalar():
    """The monitor's deletion path: batched open/close events match scalar."""
    from repro.apps.network_monitor import FlowCardinalityMonitor
    from repro.streams.datasets import FlowRecord

    rng = random.Random(59)
    events = []
    open_flows = []
    for _ in range(2000):
        if open_flows and rng.random() < 0.4:
            record = open_flows.pop(rng.randrange(len(open_flows)))
            events.append((record, -1))
        else:
            record = FlowRecord(
                rng.randrange(256), rng.randrange(4096), rng.randrange(1024)
            )
            open_flows.append(record)
            events.append((record, 1))

    def build():
        return FlowCardinalityMonitor(
            universe_size=1 << 16, seed=2, track_active_flows=True
        )

    scalar = build()
    for record, delta in events:
        if delta > 0:
            scalar.observe_flow_open(record)
        else:
            scalar.observe_flow_close(record)
    batched = build()
    for start in range(0, len(events), 700):
        chunk = events[start : start + 700]
        batched.observe_flow_events_batch(
            [record for record, _ in chunk], [delta for _, delta in chunk]
        )
    assert (
        batched._active_flows.state_dict() == scalar._active_flows.state_dict()
    )
    assert batched.active_flow_estimate() == scalar.active_flow_estimate()
    # The estimate tracks the true number of open flows within the sketch's
    # accuracy envelope (exact below the small-L0 handover).
    assert scalar.active_flow_estimate() == pytest.approx(
        len(open_flows), rel=0.35
    )


def test_monitor_without_flow_tracking_refuses_flow_events():
    from repro.apps.network_monitor import FlowCardinalityMonitor
    from repro.streams.datasets import FlowRecord

    monitor = FlowCardinalityMonitor(universe_size=1 << 16, seed=2)
    with pytest.raises(ParameterError):
        monitor.observe_flow_open(FlowRecord(1, 2, 3))
    with pytest.raises(ParameterError):
        monitor.active_flow_estimate()


def test_iter_update_batches_views(turnstile_stream):
    items = turnstile_stream.item_array()
    deltas = turnstile_stream.delta_array()
    rebuilt_items, rebuilt_deltas = [], []
    for chunk_items, chunk_deltas in turnstile_stream.iter_update_batches(100):
        assert len(chunk_items) == len(chunk_deltas) <= 100
        rebuilt_items.extend(chunk_items.tolist())
        rebuilt_deltas.extend(chunk_deltas.tolist())
    assert rebuilt_items == items.tolist()
    assert rebuilt_deltas == deltas.tolist()
    with pytest.raises(ParameterError):
        next(turnstile_stream.iter_update_batches(0))
