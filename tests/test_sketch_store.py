"""Tests for the keyed sketch-store subsystem (``repro.store``).

The binding contract under test: a :class:`SketchArray` row is
*bit-identical* — equal ``state_dict()`` — to an independent sketch of
the family constructed with the array's seed and fed the row's updates,
under any interleaving of scalar and grouped ingestion.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serialize
from repro.baselines.hyperloglog import HyperLogLogCounter
from repro.baselines.linear_counting import LinearCounter
from repro.baselines.loglog import LogLogCounter
from repro.core.rough_estimator import RoughEstimator
from repro.estimators.registry import make_l0_estimator
from repro.exceptions import MergeError, ParameterError, UpdateError
from repro.parallel import parallel_ingest_keyed, shard_keyed_updates
from repro.store import (
    ObjectSketchArray,
    SketchStore,
    make_sketch_array,
    sketch_array_family_names,
)
from repro.streams import keyed_uniform_stream

UNIVERSE = 1 << 16
SEED = 7

#: (family, factory for the equivalent independent sketch, extra params).
FAMILIES = [
    ("hyperloglog", lambda: HyperLogLogCounter(UNIVERSE, eps=0.1, seed=SEED), {}),
    ("loglog", lambda: LogLogCounter(UNIVERSE, eps=0.1, seed=SEED), {}),
    (
        "linear-counting",
        lambda: LinearCounter(UNIVERSE, bits=512, seed=SEED),
        {"bits": 512},
    ),
    (
        "knw-rough",
        lambda: RoughEstimator(UNIVERSE, seed=SEED, use_uniform_family=False),
        {},
    ),
]

FAMILY_IDS = [family for family, _, _ in FAMILIES]


def _keyed_batch(count, key_count=12, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, key_count, size=count, dtype=np.int64)
    items = rng.integers(0, UNIVERSE, size=count, dtype=np.uint64)
    return keys, items


def _make_store(family, params):
    return SketchStore.for_family(family, UNIVERSE, eps=0.1, seed=SEED, **params)


def _reference_dict(factory, keys, items):
    """The dict-of-independent-sketches ground truth, scalar loop."""
    reference = {}
    for key, item in zip(keys.tolist(), items.tolist()):
        sketch = reference.get(key)
        if sketch is None:
            sketch = reference[key] = factory()
        sketch.update(item)
    return reference


class TestSketchArrayBitIdentity:
    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_grouped_matches_independent_sketches(self, family, factory, params):
        keys, items = _keyed_batch(4000, key_count=25, seed=1)
        store = _make_store(family, params)
        store.update_grouped(keys, items)
        reference = _reference_dict(factory, keys, items)
        assert sorted(store.keys) == sorted(reference)
        for key, sketch in reference.items():
            assert store.sketch(key).state_dict() == sketch.state_dict()

    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_estimates_match_independent_sketches(self, family, factory, params):
        keys, items = _keyed_batch(3000, key_count=10, seed=2)
        store = _make_store(family, params)
        store.update_grouped(keys, items)
        reference = _reference_dict(factory, keys, items)
        estimates = store.estimate_all()
        for key, sketch in reference.items():
            assert estimates[key] == sketch.estimate()
            assert store.estimate(key) == sketch.estimate()

    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_interleaved_scalar_and_grouped(self, family, factory, params):
        keys, items = _keyed_batch(1200, key_count=8, seed=3)
        store = _make_store(family, params)
        reference = {}

        def feed_reference(key_slice, item_slice):
            for key, item in zip(key_slice.tolist(), item_slice.tolist()):
                sketch = reference.get(key)
                if sketch is None:
                    sketch = reference[key] = factory()
                sketch.update(item)

        # Alternate scalar updates and grouped sweeps over the stream.
        cursor = 0
        toggle = False
        while cursor < len(keys):
            width = 37 if toggle else 150
            key_slice = keys[cursor : cursor + width]
            item_slice = items[cursor : cursor + width]
            if toggle:
                for key, item in zip(key_slice.tolist(), item_slice.tolist()):
                    store.update(key, item)
            else:
                store.update_grouped(key_slice, item_slice)
            feed_reference(key_slice, item_slice)
            cursor += width
            toggle = not toggle
        for key, sketch in reference.items():
            assert store.sketch(key).state_dict() == sketch.state_dict()

    @settings(max_examples=25, deadline=None)
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=UNIVERSE - 1),
            ),
            max_size=120,
        ),
        split=st.integers(min_value=1, max_value=40),
        family_index=st.integers(min_value=0, max_value=len(FAMILIES) - 1),
    )
    def test_property_interleaving_never_diverges(self, updates, split, family_index):
        """Any scalar/grouped interleaving equals N independent sketches."""
        family, factory, params = FAMILIES[family_index]
        store = _make_store(family, params)
        reference = {}
        for start in range(0, len(updates), split):
            window = updates[start : start + split]
            keys = np.array([key for key, _ in window], dtype=np.int64)
            items = np.array([item for _, item in window], dtype=np.uint64)
            if (start // split) % 2:
                for key, item in window:
                    store.update(key, item)
            else:
                store.update_grouped(keys, items)
            for key, item in window:
                sketch = reference.get(key)
                if sketch is None:
                    sketch = reference[key] = factory()
                sketch.update(item)
        for key, sketch in reference.items():
            assert store.sketch(key).state_dict() == sketch.state_dict()


class TestGroupedEdgeCases:
    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_empty_batch_is_a_noop(self, family, factory, params):
        store = _make_store(family, params)
        store.update_grouped([], [])
        store.update_grouped(np.array([], dtype=np.int64), np.array([], dtype=np.uint64))
        assert len(store) == 0
        assert store.estimate_all() == {}

    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_single_item_batch(self, family, factory, params):
        store = _make_store(family, params)
        store.update_grouped([3], [42])
        sketch = factory()
        sketch.update(42)
        assert store.keys == [3]
        assert store.sketch(3).state_dict() == sketch.state_dict()

    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_duplicate_keys_within_one_batch(self, family, factory, params):
        store = _make_store(family, params)
        store.update_grouped([5, 5, 5, 9, 5, 9], [1, 2, 1, 3, 4, 3])
        ref5, ref9 = factory(), factory()
        for item in (1, 2, 1, 4):
            ref5.update(item)
        for item in (3, 3):
            ref9.update(item)
        assert store.sketch(5).state_dict() == ref5.state_dict()
        assert store.sketch(9).state_dict() == ref9.state_dict()
        assert len(store) == 2

    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_grouped_and_scalar_stores_are_byte_identical(
        self, family, factory, params
    ):
        """Same updates, any slicing: identical key order, capacity, bytes."""
        keys, items = _keyed_batch(2500, key_count=60, seed=15)
        grouped = _make_store(family, params)
        grouped.update_grouped(keys, items)
        scalar = _make_store(family, params)
        for key, item in zip(keys.tolist(), items.tolist()):
            scalar.update(key, item)
        assert grouped.keys == scalar.keys
        assert grouped.to_bytes() == scalar.to_bytes()

    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_empty_update_batch_registers_no_key(self, family, factory, params):
        """Regression: ``update_batch(key, [])`` used to register ``key``.

        The three ingestion paths must agree on key registration for an
        empty batch — none of them registers anything — so stores built
        through any mix of them serialize byte-identically.
        """
        via_batch = _make_store(family, params)
        via_batch.update_batch(7, [])
        via_batch.update_batch(
            8, np.array([], dtype=np.uint64)
        )
        via_grouped = _make_store(family, params)
        via_grouped.update_grouped([], [])
        via_scalar = _make_store(family, params)
        # the scalar loop over an empty batch is zero iterations
        assert via_batch.keys == via_grouped.keys == via_scalar.keys == []
        assert (
            via_batch.to_bytes()
            == via_grouped.to_bytes()
            == via_scalar.to_bytes()
        )
        # and a non-empty follow-up batch lands in an identical store
        via_batch.update_batch(7, [11, 12])
        via_scalar.update(7, 11)
        via_scalar.update(7, 12)
        assert via_batch.to_bytes() == via_scalar.to_bytes()

    def test_rejected_batch_registers_no_keys(self):
        store = _make_store("hyperloglog", {})
        store.update_grouped([1], [4])
        before = store.to_bytes()
        with pytest.raises(ParameterError):
            store.update_grouped([1, 777], [5, UNIVERSE])  # fresh key + bad item
        with pytest.raises(ParameterError):
            store.update(888, UNIVERSE + 1)
        with pytest.raises(ParameterError):
            store.update_batch(999, [1, UNIVERSE])
        assert store.keys == [1]
        assert store.to_bytes() == before

    def test_length_mismatch_rejected_before_mutation(self):
        store = _make_store("hyperloglog", {})
        with pytest.raises((UpdateError, ParameterError)):
            store.update_grouped([1, 2], [10])
        assert len(store) == 0

    def test_out_of_universe_item_rejected_before_mutation(self):
        store = _make_store("hyperloglog", {})
        store.update_grouped([1], [4])
        before = store.to_bytes()
        with pytest.raises(ParameterError):
            store.update_grouped([1, 1], [5, UNIVERSE])
        assert store.to_bytes() == before

    def test_deltas_rejected_for_insertion_only_family(self):
        store = _make_store("hyperloglog", {})
        with pytest.raises(UpdateError):
            store.update_grouped([1], [2], [1])
        with pytest.raises(UpdateError):
            store.update(1, 2, 1)

    def test_deltas_required_for_turnstile_family(self):
        store = SketchStore.for_family(
            "ganguly", UNIVERSE, eps=0.25, seed=SEED, magnitude_bound=1 << 20
        )
        with pytest.raises(UpdateError):
            store.update_grouped([1], [2])

    def test_seed_required(self):
        with pytest.raises(ParameterError):
            make_sketch_array("hyperloglog", UNIVERSE, seed=None)

    def test_unknown_family_rejected(self):
        with pytest.raises(ParameterError):
            make_sketch_array("no-such-family", UNIVERSE, seed=1)

    def test_string_keys(self):
        store = _make_store("hyperloglog", {})
        store.update_grouped(["alpha", "beta", "alpha"], [1, 2, 3])
        reference = HyperLogLogCounter(UNIVERSE, eps=0.1, seed=SEED)
        reference.update(1)
        reference.update(3)
        assert store.sketch("alpha").state_dict() == reference.state_dict()
        assert sorted(store.keys) == ["alpha", "beta"]


class TestObjectBackedRows:
    def test_turnstile_grouped_matches_scalar(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 6, size=1500)
        items = rng.integers(0, UNIVERSE, size=1500, dtype=np.uint64)
        deltas = rng.choice(np.array([1, 1, 1, -1], dtype=np.int64), size=1500)
        store = SketchStore.for_family(
            "ganguly", UNIVERSE, eps=0.25, seed=SEED, magnitude_bound=1 << 20
        )
        store.update_grouped(keys, items, deltas)
        reference = {}
        for key, item, delta in zip(keys.tolist(), items.tolist(), deltas.tolist()):
            sketch = reference.get(key)
            if sketch is None:
                sketch = reference[key] = make_l0_estimator(
                    "ganguly", UNIVERSE, 0.25, 1 << 20, seed=SEED
                )
            sketch.update(item, delta)
        for key, sketch in reference.items():
            assert store.sketch(key).state_dict() == sketch.state_dict()

    def test_registry_f0_fallback(self):
        keys, items = _keyed_batch(800, key_count=4, seed=6)
        store = SketchStore.for_family("kmv", UNIVERSE, eps=0.1, seed=SEED)
        store.update_grouped(keys, items)
        assert store.family == "object:kmv"
        assert len(store) == 4
        for estimate in store.estimate_all().values():
            assert estimate > 0

    def test_object_rows_share_the_template_seed(self):
        template = HyperLogLogCounter(UNIVERSE, eps=0.1, seed=SEED)
        array = ObjectSketchArray(template, rows=2)
        array.update_row_batch(0, [1, 2, 3])
        array.update_row_batch(1, [1, 2, 3])
        assert (
            array.export_row(0).state_dict() == array.export_row(1).state_dict()
        )


class TestStoreLifecycle:
    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_serialization_round_trip_with_continued_ingestion(
        self, family, factory, params
    ):
        keys, items = _keyed_batch(2000, key_count=15, seed=8)
        store = _make_store(family, params)
        store.update_grouped(keys[:1000], items[:1000])
        revived = serialize.loads(store.to_bytes())
        revived.update_grouped(keys[1000:], items[1000:])
        store.update_grouped(keys[1000:], items[1000:])
        assert revived.to_bytes() == store.to_bytes()
        assert revived.estimate_all() == store.estimate_all()

    @pytest.mark.parametrize("family,factory,params", FAMILIES, ids=FAMILY_IDS)
    def test_merge_from_overlapping_and_new_keys(self, family, factory, params):
        keys, items = _keyed_batch(3000, key_count=20, seed=9)
        serial = _make_store(family, params)
        serial.update_grouped(keys, items)
        left = _make_store(family, params)
        left.update_grouped(keys[:1700], items[:1700])
        right = _make_store(family, params)
        right.update_grouped(keys[1700:], items[1700:])
        left.merge_from(right)
        assert sorted(left.keys) == sorted(serial.keys)
        for key in serial.keys:
            assert left.sketch(key).state_dict() == serial.sketch(key).state_dict()

    def test_merge_from_rejects_mismatched_parameters(self):
        left = SketchStore.for_family("hyperloglog", UNIVERSE, eps=0.1, seed=SEED)
        right = SketchStore.for_family("hyperloglog", UNIVERSE, eps=0.1, seed=SEED + 1)
        right.update(1, 2)
        with pytest.raises(MergeError):
            left.merge_from(right)
        other_family = SketchStore.for_family(
            "loglog", UNIVERSE, eps=0.1, seed=SEED
        )
        with pytest.raises(MergeError):
            left.merge_from(other_family)

    def test_growth_preserves_existing_rows(self):
        store = _make_store("hyperloglog", {})
        reference = {}
        rng = np.random.default_rng(10)
        for round_index in range(6):
            keys = rng.integers(0, 40 * (round_index + 1), size=400)
            items = rng.integers(0, UNIVERSE, size=400, dtype=np.uint64)
            store.update_grouped(keys, items)
            for key, item in zip(keys.tolist(), items.tolist()):
                sketch = reference.get(key)
                if sketch is None:
                    sketch = reference[key] = HyperLogLogCounter(
                        UNIVERSE, eps=0.1, seed=SEED
                    )
                sketch.update(item)
        assert len(store) == len(reference)
        for key in list(reference)[::7]:
            assert store.sketch(key).state_dict() == reference[key].state_dict()

    def test_load_sketch_round_trip(self):
        store = _make_store("hyperloglog", {})
        store.update_batch(3, [1, 2, 3])
        exported = store.sketch(3)
        exported.update_batch([10, 11])
        store.load_sketch(3, exported)
        reference = HyperLogLogCounter(UNIVERSE, eps=0.1, seed=SEED)
        reference.update_batch([1, 2, 3, 10, 11])
        assert store.sketch(3).state_dict() == reference.state_dict()

    def test_wrapping_a_non_empty_array_names_its_rows(self):
        array = make_sketch_array("hyperloglog", UNIVERSE, rows=2, eps=0.1, seed=SEED)
        array.update_row_batch(0, [1, 2, 3])
        store = SketchStore(array, keys=["a", "b", "c"])
        assert store.keys == ["a", "b", "c"]
        assert len(array) == 3
        reference = HyperLogLogCounter(UNIVERSE, eps=0.1, seed=SEED)
        reference.update_batch([1, 2, 3])
        assert store.sketch("a").state_dict() == reference.state_dict()
        with pytest.raises(ParameterError):
            SketchStore(
                make_sketch_array("hyperloglog", UNIVERSE, rows=2, eps=0.1, seed=SEED),
                keys=["only-one"],
            )

    def test_estimates_match_exports_across_occupancies(self):
        """estimate_row must equal the exported sketch's estimate to the bit.

        Sweeps many occupancy levels so ulp-divergent log/pow arguments
        (np.log vs math.log) would be caught.
        """
        store = SketchStore.for_family(
            "linear-counting", UNIVERSE, eps=0.1, seed=SEED, bits=1024
        )
        rng = np.random.default_rng(16)
        for round_index in range(40):
            items = rng.integers(0, UNIVERSE, size=60, dtype=np.uint64)
            store.update_batch(round_index % 7, items)
            for key in store.keys:
                assert store.estimate(key) == store.sketch(key).estimate()

    def test_space_bits_grows_with_rows(self):
        store = _make_store("linear-counting", {"bits": 512})
        assert store.space_bits() == 0
        store.update(1, 2)
        assert store.space_bits() == 512
        store.update(2, 2)
        assert store.space_bits() == 1024

    def test_family_names_listed(self):
        names = sketch_array_family_names()
        assert names == sorted(names)
        for name in ("hyperloglog", "loglog", "linear-counting", "knw-rough"):
            assert name in names


class TestKeyedSharding:
    def test_shard_keyed_updates_partitions_keys_exactly_once(self):
        keys, items = _keyed_batch(2000, key_count=50, seed=11)
        shards = shard_keyed_updates(keys, items, shards=4)
        assert len(shards) == 4
        seen = {}
        total = 0
        for index, (shard_keys, shard_items, shard_deltas) in enumerate(shards):
            assert shard_deltas is None
            assert len(shard_keys) == len(shard_items)
            total += len(shard_keys)
            for key in np.unique(shard_keys).tolist():
                assert key not in seen, "key split across shards"
                seen[key] = index
        assert total == len(keys)
        assert sorted(seen) == sorted(np.unique(keys).tolist())

    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_inline_sharded_ingest_is_bit_identical(self, shards):
        keys, items = _keyed_batch(4000, key_count=30, seed=12)
        serial = _make_store("hyperloglog", {})
        serial.update_grouped(keys, items)
        sharded = _make_store("hyperloglog", {})
        parallel_ingest_keyed(
            sharded, keys, items, shards=shards, execution="inline"
        )
        for key in serial.keys:
            assert sharded.sketch(key).state_dict() == serial.sketch(key).state_dict()

    def test_turnstile_sharded_ingest_is_bit_identical(self):
        rng = np.random.default_rng(13)
        keys = rng.integers(0, 10, size=2000)
        items = rng.integers(0, UNIVERSE, size=2000, dtype=np.uint64)
        deltas = rng.choice(np.array([1, 1, -1], dtype=np.int64), size=2000)
        serial = SketchStore.for_family(
            "ganguly", UNIVERSE, eps=0.25, seed=SEED, magnitude_bound=1 << 20
        )
        serial.update_grouped(keys, items, deltas)
        sharded = serial.spawn_empty()
        parallel_ingest_keyed(
            sharded, keys, items, deltas, shards=3, execution="inline"
        )
        for key in serial.keys:
            assert sharded.sketch(key).state_dict() == serial.sketch(key).state_dict()

    @pytest.mark.skipif(
        (__import__("os").cpu_count() or 1) < 2, reason="needs >= 2 cores"
    )
    def test_process_pool_sharded_ingest(self):
        keys, items = _keyed_batch(3000, key_count=20, seed=14)
        serial = _make_store("hyperloglog", {})
        serial.update_grouped(keys, items)
        sharded = _make_store("hyperloglog", {})
        parallel_ingest_keyed(sharded, keys, items, workers=2)
        assert sharded.estimate_all() == serial.estimate_all()


class TestKeyedWorkloadHarness:
    def test_keyed_uniform_stream_ground_truth(self):
        workload = keyed_uniform_stream(
            UNIVERSE, key_count=10, length=500, distinct_per_key=20, seed=1
        )
        truth = workload.ground_truth()
        assert set(truth) <= set(range(10))
        assert all(1 <= count <= 20 for count in truth.values())
        rebuilt = {}
        for key, item in zip(workload.keys.tolist(), workload.items.tolist()):
            rebuilt.setdefault(key, set()).add(item)
        assert truth == {key: len(values) for key, values in rebuilt.items()}

    def test_run_keyed_f0_accuracy(self):
        from repro.analysis import run_keyed_f0

        workload = keyed_uniform_stream(
            UNIVERSE, key_count=30, length=20000, distinct_per_key=300, seed=2
        )
        result = run_keyed_f0("hyperloglog", workload, 0.1, seed=SEED)
        assert result.key_count == len(workload.ground_truth())
        assert result.mean_relative_error < 0.2
        assert result.space_bits > 0
        sharded = run_keyed_f0("hyperloglog", workload, 0.1, seed=SEED, workers=2)
        assert sharded.estimates == result.estimates

    def test_keyed_accuracy_sweep_shape(self):
        from repro.analysis import keyed_accuracy_sweep

        points = keyed_accuracy_sweep(
            ["hyperloglog", "linear-counting"],
            lambda seed: keyed_uniform_stream(
                UNIVERSE, key_count=8, length=2000, distinct_per_key=50, seed=seed
            ),
            [0.1],
            [1, 2],
        )
        assert len(points) == 2
        for point in points:
            assert point.key_count == 8
            assert point.mean_relative_error < 0.5
            assert point.mean_space_bits > 0


class TestStoreBackedApplications:
    def test_monitor_fanout_matches_dict_of_linear_counters(self):
        from repro.apps import FlowCardinalityMonitor
        from repro.streams import packet_trace

        _, records = packet_trace(UNIVERSE, packets=3000, distinct_flows=300, seed=20)
        monitor = FlowCardinalityMonitor(
            universe_size=UNIVERSE, eps=0.1, window_packets=10_000, seed=21
        )
        monitor.observe_batch(records)
        # The pre-refactor dict-of-LinearCounter path, reproduced by hand.
        reference = {}
        for record in records:
            counter = reference.get(record.source)
            if counter is None:
                counter = reference[record.source] = LinearCounter(
                    UNIVERSE, bits=monitor._fanout_bits, seed=21 + 3
                )
            counter.update(record.destination % UNIVERSE)
        estimates = monitor._fanout_store.estimate_current()
        assert sorted(estimates) == sorted(reference)
        for source, counter in reference.items():
            assert estimates[source] == counter.estimate()

    def test_collector_store_families_agree_on_ndv_scale(self):
        from repro.apps import ColumnStatisticsCollector

        values = [value % 400 for value in range(4000)]
        knw = ColumnStatisticsCollector(["c"], UNIVERSE, eps=0.1, seed=3)
        knw.ingest_column("c", values)
        hll = ColumnStatisticsCollector(
            ["c"], UNIVERSE, eps=0.1, seed=3, family="hyperloglog"
        )
        hll.ingest_column("c", values)
        assert abs(knw.ndv("c") - 400) / 400 < 0.3
        assert abs(hll.ndv("c") - 400) / 400 < 0.3
        assert knw.all_ndv().keys() == hll.all_ndv().keys()


class TestColdKeyGrowthEquivalence:
    """Geometric over-allocation is invisible: a store grown one cold key
    at a time is byte-identical to one allocated in bulk up front.

    The cold-key zoo workload introduces keys in increasing order, so a
    grouped replay forces the maximum number of grow steps the workload
    can produce — a scaled-down stand-in for the millions-of-keys regime
    where incremental growth and bulk allocation must not diverge.
    """

    def _workload(self, key_count):
        from repro.streams import WorkloadScale, cold_key_workload

        scale = WorkloadScale(
            universe_size=UNIVERSE,
            length=max(4 * key_count, 256),
            key_count=key_count,
            epochs=3,
            updates_per_epoch=64,
        )
        return cold_key_workload(scale, seed=20)

    # Default key counts are per-family (object-backed rows pay a
    # template-decode per grown row, so the KNW families run smaller);
    # STORE_GROWTH_KEYS overrides all three for a full-scale soak.
    @pytest.mark.parametrize(
        "family,default_keys",
        [("hyperloglog", 1500), ("knw", 400), ("knw-l0", 120)],
    )
    def test_incremental_growth_matches_bulk_allocation(self, family, default_keys):
        import os

        workload = self._workload(
            int(os.environ.get("STORE_GROWTH_KEYS", str(default_keys)))
        )
        kwargs = {"magnitude_bound": len(workload)} if family == "knw-l0" else {}
        chunk = max(len(workload) // 24, 1)

        incremental = SketchStore.for_family(
            family, UNIVERSE, eps=0.2, seed=SEED, **kwargs
        )
        # Small chunks: every chunk introduces fresh keys, so the backing
        # array regrows (and re-allocates) dozens of times.
        grow_events = 0
        previous_capacity = 0
        for start in range(0, len(workload), chunk):
            stop = start + chunk
            if family == "knw-l0":
                incremental.update_grouped(
                    workload.keys[start:stop],
                    workload.items[start:stop],
                    np.ones(len(workload.keys[start:stop]), dtype=np.int64),
                )
            else:
                incremental.update_grouped(
                    workload.keys[start:stop], workload.items[start:stop]
                )
            capacity = len(incremental)
            if capacity > previous_capacity:
                grow_events += 1
                previous_capacity = capacity

        bulk = SketchStore.for_family(
            family, UNIVERSE, keys=incremental.keys, eps=0.2, seed=SEED, **kwargs
        )
        if family == "knw-l0":
            bulk.update_grouped(
                workload.keys, workload.items, np.ones(len(workload), dtype=np.int64)
            )
        else:
            bulk.update_grouped(workload.keys, workload.items)

        assert grow_events > 10, "cold-key replay must actually regrow the store"
        assert incremental.keys == bulk.keys
        assert incremental.to_bytes() == bulk.to_bytes()
        assert incremental.estimate_all() == bulk.estimate_all()
