"""Tests for the bit-level data structures (bitvector, bitmatrix, VLA, packed)."""

from __future__ import annotations

import pytest

from repro.bitstructs import (
    BitMatrix,
    BitVector,
    PackedCounterArray,
    SpaceBreakdown,
    VariableBitLengthArray,
    bits_for_counter,
    bits_for_value,
    total_space_bits,
)
from repro.exceptions import ParameterError


class TestBitVector:
    def test_starts_all_zero(self):
        vector = BitVector(100)
        assert vector.count_ones() == 0
        assert vector.count_zeros() == 100

    def test_set_and_get(self):
        vector = BitVector(64)
        vector.set(5, 1)
        vector.set(63, 1)
        assert vector.get(5) == 1
        assert vector.get(63) == 1
        assert vector.get(6) == 0
        assert vector.count_ones() == 2

    def test_idempotent_set_keeps_count(self):
        vector = BitVector(16)
        vector.set(3, 1)
        vector.set(3, 1)
        assert vector.count_ones() == 1

    def test_unset(self):
        vector = BitVector(16)
        vector.set(3, 1)
        vector.set(3, 0)
        assert vector.count_ones() == 0

    def test_clear(self):
        vector = BitVector(16)
        for index in range(16):
            vector.set(index, 1)
        vector.clear()
        assert vector.count_ones() == 0

    def test_union_update(self):
        a = BitVector.from_bits([1, 0, 1, 0])
        b = BitVector.from_bits([0, 1, 1, 0])
        a.union_update(b)
        assert a.to_list() == [1, 1, 1, 0]
        assert a.count_ones() == 3

    def test_union_requires_matching_length(self):
        with pytest.raises(ParameterError):
            BitVector(4).union_update(BitVector(8))

    def test_iter_ones(self):
        vector = BitVector.from_bits([0, 1, 0, 0, 1, 1])
        assert list(vector.iter_ones()) == [1, 4, 5]

    def test_bounds_checked(self):
        vector = BitVector(8)
        with pytest.raises(ParameterError):
            vector.get(8)
        with pytest.raises(ParameterError):
            vector.set(-1, 1)
        with pytest.raises(ParameterError):
            vector.set(0, 2)

    def test_space_is_length(self):
        assert BitVector(1000).space_bits() == 1000


class TestBitMatrix:
    def test_set_get(self):
        matrix = BitMatrix(4, 8)
        matrix.set(2, 3, 1)
        assert matrix.get(2, 3) == 1
        assert matrix.get(1, 3) == 0

    def test_row_ones_and_total(self):
        matrix = BitMatrix(3, 4)
        matrix.set(0, 0, 1)
        matrix.set(0, 2, 1)
        matrix.set(2, 1, 1)
        assert matrix.row_ones(0) == 2
        assert matrix.row_ones(1) == 0
        assert matrix.total_ones() == 3

    def test_column_deepest_row(self):
        matrix = BitMatrix(5, 3)
        matrix.set(1, 0, 1)
        matrix.set(4, 0, 1)
        assert matrix.column_deepest_row(0) == 4
        assert matrix.column_deepest_row(1) == -1

    def test_union_update(self):
        a = BitMatrix(2, 4)
        b = BitMatrix(2, 4)
        a.set(0, 1, 1)
        b.set(1, 2, 1)
        a.union_update(b)
        assert a.get(0, 1) == 1 and a.get(1, 2) == 1

    def test_iter_ones(self):
        matrix = BitMatrix(2, 2)
        matrix.set(0, 1, 1)
        matrix.set(1, 0, 1)
        assert sorted(matrix.iter_ones()) == [(0, 1), (1, 0)]

    def test_space_is_rows_times_columns(self):
        assert BitMatrix(20, 128).space_bits() == 20 * 128

    def test_shape_validation(self):
        with pytest.raises(ParameterError):
            BitMatrix(0, 3)
        matrix = BitMatrix(2, 2)
        with pytest.raises(ParameterError):
            matrix.row_ones(2)
        with pytest.raises(ParameterError):
            matrix.union_update(BitMatrix(3, 2))


class TestVariableBitLengthArray:
    def test_initial_values(self):
        array = VariableBitLengthArray(10)
        assert array.to_list() == [0] * 10

    def test_update_and_read(self):
        array = VariableBitLengthArray(20)
        array.update(3, 17)
        array.update(19, 255)
        assert array.read(3) == 17
        assert array.read(19) == 255
        assert array.read(0) == 0

    def test_payload_bits_tracks_contents(self):
        array = VariableBitLengthArray(4)
        base = array.payload_bits()
        array.update(0, 255)  # 8 bits instead of 1
        assert array.payload_bits() == base + 7

    def test_space_bound_shape(self):
        array = VariableBitLengthArray(100)
        small_space = array.space_bits()
        for index in range(100):
            array.update(index, 3)
        assert array.space_bits() > small_space
        # Theorem 8 shape: O(n + sum len) — here exactly 2n + payload + 2 words.
        assert array.space_bits() == 2 * 100 + array.payload_bits() + 2 * 64

    def test_fill(self):
        array = VariableBitLengthArray(8)
        array.fill(6)
        assert array.to_list() == [6] * 8

    def test_from_values_round_trip(self):
        values = [0, 1, 5, 1023, 2, 0, 77]
        array = VariableBitLengthArray.from_values(values)
        assert array.to_list() == values

    def test_rejects_negative_values(self):
        array = VariableBitLengthArray(4)
        with pytest.raises(ParameterError):
            array.update(0, -1)
        with pytest.raises(ParameterError):
            VariableBitLengthArray(4, initial_value=-2)

    def test_bounds_checked(self):
        array = VariableBitLengthArray(4)
        with pytest.raises(ParameterError):
            array.read(4)


class TestPackedCounterArray:
    def test_initial_value_replicated(self):
        array = PackedCounterArray(10, 4, initial_value=7)
        assert array.to_list() == [7] * 10

    def test_set_get_width_respected(self):
        array = PackedCounterArray(8, 5)
        array.set(0, 31)
        array.set(7, 1)
        assert array.get(0) == 31
        assert array.get(7) == 1
        with pytest.raises(ParameterError):
            array.set(1, 32)

    def test_neighbouring_entries_do_not_interfere(self):
        array = PackedCounterArray(16, 3)
        for index in range(16):
            array.set(index, index % 8)
        assert array.to_list() == [index % 8 for index in range(16)]

    def test_maximize(self):
        array = PackedCounterArray(4, 4)
        assert array.maximize(2, 9) == 9
        assert array.maximize(2, 3) == 9
        assert array.get(2) == 9

    def test_count_at_least(self):
        array = PackedCounterArray.from_values([0, 1, 5, 7, 2], width=3)
        assert array.count_at_least(2) == 3
        assert array.count_at_least(0) == 5
        assert array.count_at_least(7) == 1

    def test_fill(self):
        array = PackedCounterArray(6, 4)
        array.fill(9)
        assert array.to_list() == [9] * 6

    def test_space(self):
        assert PackedCounterArray(20, 5).space_bits() == 100


class TestSpaceHelpers:
    def test_bits_for_value(self):
        assert bits_for_value(0) == 1
        assert bits_for_value(1) == 1
        assert bits_for_value(255) == 8

    def test_bits_for_counter(self):
        assert bits_for_counter(1023) == 10

    def test_total_space_bits(self):
        components = [BitVector(10), BitVector(20)]
        assert total_space_bits(components) == 30

    def test_space_breakdown(self):
        breakdown = SpaceBreakdown("demo")
        breakdown.add("a", 10)
        breakdown.add_component("b", BitVector(5))
        assert breakdown.total() == 15
        assert breakdown.as_dict() == {"a": 10, "b": 5}
        rendering = breakdown.render()
        assert "demo" in rendering and "15 bits" in rendering
