"""Tests for the time-optimal KNW implementation (Section 3.4 / Theorem 9)."""

from __future__ import annotations

import pytest

from repro.core import FastKNWDistinctCounter, FastKNWSketch, KNWDistinctCounter
from repro.exceptions import ParameterError, SketchFailure
from repro.streams import distinct_items_stream, zipf_stream

UNIVERSE = 1 << 16


class TestFastSketch:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            FastKNWSketch(1)
        with pytest.raises(ParameterError):
            FastKNWSketch(UNIVERSE, bins=100)
        with pytest.raises(ParameterError):
            FastKNWSketch(UNIVERSE, bins=64, offset_divisor=7)

    def test_accuracy_matches_reference_order(self):
        stream = distinct_items_stream(UNIVERSE, 5000, repetitions=1, seed=80)
        fast = FastKNWSketch(UNIVERSE, eps=0.1, seed=5, offset_divisor=2)
        estimate = fast.process_stream(stream)
        assert abs(estimate - 5000) / 5000 < 0.3

    def test_occupied_counters_consistent_with_histogram(self):
        sketch = FastKNWSketch(UNIVERSE, eps=0.1, seed=6, offset_divisor=2)
        for item in range(2000):
            sketch.update(item)
        # The O(1) histogram count must agree with a direct scan of the
        # effective counter values.
        direct = sum(
            1 for index in range(sketch.bins) if sketch._effective_read(index) >= 0
        )
        assert sketch.occupied_counters() == direct

    def test_storage_normalisation_matches_effective_values(self):
        sketch = FastKNWSketch(UNIVERSE, eps=0.1, seed=7, offset_divisor=2)
        for item in range(4000):
            sketch.update(item)
        # Finish any pending sweep, then storage must equal effective values.
        sketch._finish_sweep()
        for index in range(sketch.bins):
            assert sketch._storage.read(index) - 1 == sketch._effective_read(index)

    def test_estimate_zero_before_updates(self):
        sketch = FastKNWSketch(UNIVERSE, eps=0.1, seed=8)
        assert sketch.estimate() == 0.0

    def test_fail_raises(self):
        sketch = FastKNWSketch(UNIVERSE, eps=0.1, seed=9)
        sketch._failed = True
        with pytest.raises(SketchFailure):
            sketch.estimate()

    def test_space_breakdown_contains_vla_and_lookup(self):
        sketch = FastKNWSketch(UNIVERSE, eps=0.1, seed=10)
        breakdown = sketch.space_breakdown().as_dict()
        assert "vla-counters" in breakdown
        assert "log-lookup-table" in breakdown
        assert sketch.space_bits() == sum(breakdown.values())


class TestFastCombinedCounter:
    def test_exact_for_tiny_cardinalities(self):
        counter = FastKNWDistinctCounter(UNIVERSE, eps=0.05, seed=11)
        for item in [1, 2, 2, 3]:
            counter.update(item)
        assert counter.estimate() == 3.0

    def test_accuracy_on_medium_stream(self, medium_stream):
        counter = FastKNWDistinctCounter(UNIVERSE, eps=0.05, seed=12)
        truth = medium_stream.ground_truth()
        estimate = counter.process_stream(medium_stream)
        assert abs(estimate - truth) / truth < 0.25

    def test_agreement_with_reference_implementation(self):
        # Both implementations target the same guarantee; on the same stream
        # their estimates should land in the same neighbourhood of the truth.
        stream = zipf_stream(UNIVERSE, 6000, seed=81)
        truth = stream.ground_truth()
        fast = FastKNWDistinctCounter(UNIVERSE, eps=0.1, seed=13)
        reference = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=13)
        fast_estimate = fast.process_stream(stream)
        reference_estimate = reference.process_stream(stream)
        assert abs(fast_estimate - truth) / truth < 0.35
        assert abs(reference_estimate - truth) / truth < 0.35

    def test_mid_stream_reporting_is_available(self):
        counter = FastKNWDistinctCounter(UNIVERSE, eps=0.1, seed=14)
        for item in range(3000):
            counter.update(item)
            if item % 500 == 499:
                estimate = counter.estimate()
                assert abs(estimate - (item + 1)) / (item + 1) < 0.5

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            FastKNWDistinctCounter(UNIVERSE, eps=1.5)
        with pytest.raises(ParameterError):
            FastKNWDistinctCounter(1)
