"""Sliding-window subsystem: rollup exactness, sharding, and edge cases.

The binding contract of :mod:`repro.window`: a window estimate (and, for
shard-deterministic families, the materialised window sketch's every
state word) equals a fresh same-seed sketch fed exactly the window's
updates — for every mergeable registry family, under scalar, batched,
timestamped, and epoch-range-sharded ingestion alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.registry import make_f0_estimator, make_l0_estimator
from repro.exceptions import MergeError, ParameterError, UpdateError
from repro.parallel import (
    mergeable_f0_names,
    mergeable_l0_names,
    parallel_ingest_windowed,
    parallel_ingest_windowed_keyed,
    shard_epoch_slices,
)
from repro.store import SketchStore
from repro.streams.generators import WindowedWorkload, windowed_uniform_stream
from repro.window import WindowedSketch, WindowedSketchStore, epoch_runs

UNIVERSE = 1 << 16
EPS = 0.1


@pytest.fixture(scope="module")
def workload():
    return windowed_uniform_stream(
        UNIVERSE, epochs=6, updates_per_epoch=400, distinct_per_epoch=150, seed=3
    )


def _f0_ring(name, retention=8, seed=9):
    return WindowedSketch(
        make_f0_estimator(name, UNIVERSE, EPS, seed), retention=retention
    )


def _l0_ring(name, retention=8, seed=9):
    return WindowedSketch(
        make_l0_estimator(name, UNIVERSE, 0.25, 1 << 12, seed), retention=retention
    )


class TestEpochRuns:
    def test_splits_runs(self):
        runs = epoch_runs(np.asarray([2, 2, 3, 5, 5, 5]))
        assert runs == [(2, 0, 2), (3, 2, 3), (5, 3, 6)]

    def test_empty(self):
        assert epoch_runs(np.asarray([], dtype=np.int64)) == []

    def test_rejects_decreasing(self):
        with pytest.raises(ParameterError):
            epoch_runs([3, 2])

    def test_rejects_misaligned(self):
        with pytest.raises(ParameterError):
            epoch_runs([1, 2], expected_length=3)

    def test_rejects_float_epochs(self):
        with pytest.raises(ParameterError):
            epoch_runs([1.5, 2.5])


class TestShardEpochSlices:
    def test_epochs_never_span_shards(self):
        epochs = np.repeat(np.arange(5, dtype=np.int64), 3)
        ranges = shard_epoch_slices(epochs, 3)
        assert len(ranges) == 3
        covered = [index for start, stop in ranges for index in range(start, stop)]
        assert covered == list(range(len(epochs)))
        for start, stop in ranges:
            if stop > start:
                # a shard's boundary epochs belong only to that shard
                inside = set(epochs[start:stop].tolist())
                outside = set(epochs[:start].tolist()) | set(epochs[stop:].tolist())
                assert not (inside & outside)

    def test_more_shards_than_epochs(self):
        epochs = np.asarray([7, 7, 8], dtype=np.int64)
        ranges = shard_epoch_slices(epochs, 5)
        assert len(ranges) == 5
        assert sum(stop - start for start, stop in ranges) == 3

    def test_validation(self):
        with pytest.raises(ParameterError):
            shard_epoch_slices([1, 2], 0)


class TestWindowedSketchRing:
    def test_advance_and_retention(self):
        ring = _f0_ring("hyperloglog", retention=3)
        assert ring.epoch_index == 0
        assert ring.retained_epochs == 1
        ring.advance_epoch(5)
        assert ring.epoch_index == 5
        assert ring.retained_epochs == 3  # capped by retention

    def test_zero_update_epochs(self):
        ring = _f0_ring("hyperloglog", retention=4)
        ring.update_batch(np.asarray([1, 2, 3], dtype=np.uint64))
        ring.advance_epoch(2)  # one populated epoch, one empty epoch closed
        fresh = make_f0_estimator("hyperloglog", UNIVERSE, EPS, 9)
        fresh.update_batch(np.asarray([1, 2, 3], dtype=np.uint64))
        assert ring.estimate_window(3) == fresh.estimate()
        assert ring.estimate_window(1) == 0.0

    def test_window_wider_than_retained_raises(self):
        ring = _f0_ring("hyperloglog", retention=4)
        with pytest.raises(ParameterError):
            ring.estimate_window(2)  # only the open epoch is retained
        ring.advance_epoch()
        assert ring.estimate_window(2) == 0.0
        with pytest.raises(ParameterError):
            ring.estimate_window(3)
        with pytest.raises(ParameterError):
            ring.estimate_window(0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            WindowedSketch(make_f0_estimator("hyperloglog", UNIVERSE, EPS, 1), 0)
        with pytest.raises(ParameterError):
            WindowedSketch(object(), 2)
        ring = _f0_ring("hyperloglog")
        with pytest.raises(UpdateError):
            ring.update(3, 1)  # F0 rings take no delta
        with pytest.raises(UpdateError):
            ring.update_batch([1, 2], [1, 1])
        l0 = _l0_ring("knw-l0")
        with pytest.raises(UpdateError):
            l0.update(3)
        with pytest.raises(UpdateError):
            l0.update_batch([1, 2])

    def test_non_mergeable_family_fails_only_on_wide_windows(self):
        ring = _f0_ring("knw-fast", retention=3)
        ring.update(5)
        ring.advance_epoch()
        ring.update(6)
        assert ring.estimate_window(1) >= 0.0
        with pytest.raises(MergeError):
            ring.estimate_window(2)

    def test_estimate_all_windows(self, workload):
        ring = _f0_ring("hyperloglog", retention=6)
        ring.ingest_timestamped(workload.epochs, workload.items)
        estimates = ring.estimate_all_windows()
        assert len(estimates) == ring.retained_epochs == 6
        assert estimates == [
            ring.estimate_window(k) for k in range(1, 7)
        ]
        # windows grow: each wider window covers a superset of updates
        assert all(b >= a * 0.8 for a, b in zip(estimates, estimates[1:]))


class TestRollupExactness:
    """Window rollup == fresh sketch fed exactly the window's updates."""

    @pytest.mark.parametrize(
        "name", mergeable_f0_names(shard_deterministic_only=True)
    )
    def test_f0_bit_identical(self, name, workload):
        ring = _f0_ring(name, retention=6)
        ring.ingest_timestamped(workload.epochs, workload.items, batch_size=128)
        for width in (1, 2, 4, 6):
            merged = ring.window_sketch(width)
            fresh = make_f0_estimator(name, UNIVERSE, EPS, 9)
            _, window_items, _ = workload.window_slice(width)
            fresh.update_batch(window_items)
            assert merged.state_dict() == fresh.state_dict()
            assert ring.estimate_window(width) == fresh.estimate()

    @pytest.mark.parametrize("name", mergeable_l0_names())
    def test_l0_bit_identical(self, name, workload):
        deltas = np.where(
            np.arange(len(workload)) % 3 == 0, -1, 1
        ).astype(np.int64)
        ring = _l0_ring(name, retention=6)
        ring.ingest_timestamped(
            workload.epochs, workload.items, deltas, batch_size=256
        )
        for width in (1, 3, 6):
            merged = ring.window_sketch(width)
            fresh = make_l0_estimator(name, UNIVERSE, 0.25, 1 << 12, 9)
            _, window_items, _ = workload.window_slice(width)
            fresh.update_batch(window_items, deltas[len(workload) - len(window_items):])
            assert merged.state_dict() == fresh.state_dict()
            assert ring.estimate_window(width) == fresh.estimate()

    def test_scalar_batch_timestamped_equivalence(self, workload):
        scalar = _f0_ring("linear-counting", retention=6)
        for epoch, item in zip(workload.epochs.tolist(), workload.items.tolist()):
            if epoch > scalar.epoch_index:
                scalar.advance_epoch(epoch - scalar.epoch_index)
            scalar.update(item)
        batched = _f0_ring("linear-counting", retention=6)
        batched.ingest_timestamped(workload.epochs, workload.items, batch_size=64)
        one_shot = _f0_ring("linear-counting", retention=6)
        one_shot.ingest_timestamped(workload.epochs, workload.items)
        assert scalar.state_dict() == batched.state_dict() == one_shot.state_dict()

    def test_repeated_queries_use_memoized_rollups(self, workload):
        ring = _f0_ring("hyperloglog", retention=6)
        ring.ingest_timestamped(workload.epochs, workload.items)
        first = [ring.estimate_window(k) for k in (6, 3, 6, 3)]
        assert first[0] == first[2] and first[1] == first[3]
        # advancing invalidates the memo; answers stay consistent
        ring.advance_epoch()
        assert ring.estimate_window(6) <= first[0]

    def test_ingest_rejects_past_epochs(self, workload):
        ring = _f0_ring("hyperloglog", retention=6)
        ring.advance_epoch(3)
        with pytest.raises(ParameterError):
            ring.ingest_timestamped(np.asarray([1, 2]), np.asarray([4, 5], dtype=np.uint64))


class TestSerializationMidWindow:
    def test_eviction_and_round_trip_mid_window(self, workload):
        """Serialize after eviction, keep ingesting: identical to uninterrupted."""
        retention = 4  # evicts the two oldest of the 6 epochs
        half = len(workload) // 2
        interrupted = _f0_ring("hyperloglog", retention=retention)
        interrupted.ingest_timestamped(
            workload.epochs[:half], workload.items[:half]
        )
        revived = WindowedSketch.from_bytes(interrupted.to_bytes())
        revived.ingest_timestamped(workload.epochs[half:], workload.items[half:])
        uninterrupted = _f0_ring("hyperloglog", retention=retention)
        uninterrupted.ingest_timestamped(workload.epochs, workload.items)
        assert revived.state_dict() == uninterrupted.state_dict()
        assert revived.to_bytes() == uninterrupted.to_bytes()
        assert revived.retained_epochs == retention
        assert revived.estimate_all_windows() == uninterrupted.estimate_all_windows()

    def test_queries_do_not_change_serialization(self, workload):
        ring = _f0_ring("hyperloglog", retention=6)
        ring.ingest_timestamped(workload.epochs, workload.items)
        before = ring.to_bytes()
        ring.estimate_all_windows()
        assert ring.to_bytes() == before


class TestShardedWindowedIngestion:
    @pytest.mark.parametrize("shards", [1, 2, 4, 9])
    def test_inline_shards_bit_identical(self, shards, workload):
        sequential = _f0_ring("hyperloglog", retention=8)
        sequential.ingest_timestamped(
            workload.epochs, workload.items, batch_size=128
        )
        sharded = _f0_ring("hyperloglog", retention=8)
        parallel_ingest_windowed(
            sharded,
            workload.epochs,
            workload.items,
            shards=shards,
            batch_size=128,
            execution="inline",
        )
        assert sharded.state_dict() == sequential.state_dict()

    def test_process_pool_matches_inline(self, workload):
        sequential = _f0_ring("kmv", retention=8)
        sequential.ingest_timestamped(workload.epochs, workload.items)
        sharded = _f0_ring("kmv", retention=8)
        parallel_ingest_windowed(
            sharded,
            workload.epochs,
            workload.items,
            workers=2,
            shards=3,
            execution="processes",
        )
        assert sharded.state_dict() == sequential.state_dict()

    def test_turnstile_sharded(self, workload):
        deltas = np.where(np.arange(len(workload)) % 4 == 0, -2, 1).astype(np.int64)
        sequential = _l0_ring("ganguly", retention=8)
        sequential.ingest_timestamped(
            workload.epochs, workload.items, deltas, batch_size=200
        )
        sharded = _l0_ring("ganguly", retention=8)
        parallel_ingest_windowed(
            sharded,
            workload.epochs,
            workload.items,
            deltas,
            shards=4,
            batch_size=200,
            execution="inline",
        )
        assert sharded.state_dict() == sequential.state_dict()

    def test_midstream_takeover(self, workload):
        """Sharding may start on a ring that already holds state."""
        half = len(workload) // 2
        sequential = _f0_ring("hyperloglog", retention=8)
        sequential.ingest_timestamped(workload.epochs, workload.items)
        staged = _f0_ring("hyperloglog", retention=8)
        staged.ingest_timestamped(workload.epochs[:half], workload.items[:half])
        parallel_ingest_windowed(
            staged,
            workload.epochs[half:],
            workload.items[half:],
            shards=3,
            execution="inline",
        )
        assert staged.state_dict() == sequential.state_dict()

    def test_empty_stream_is_noop(self):
        ring = _f0_ring("hyperloglog")
        before = ring.to_bytes()
        parallel_ingest_windowed(
            ring,
            np.asarray([], dtype=np.int64),
            np.asarray([], dtype=np.uint64),
            shards=3,
        )
        assert ring.to_bytes() == before

    @pytest.mark.parametrize("shards", [1, 4])
    def test_model_validation_independent_of_shard_count(self, shards, workload):
        """Regression: the multi-shard path used to skip deltas validation."""
        deltas = np.ones(len(workload), dtype=np.int64)
        f0 = _f0_ring("hyperloglog")
        with pytest.raises(UpdateError):
            parallel_ingest_windowed(
                f0, workload.epochs, workload.items, deltas,
                shards=shards, execution="inline",
            )
        l0 = _l0_ring("ganguly")
        with pytest.raises(UpdateError):
            parallel_ingest_windowed(
                l0, workload.epochs, workload.items,
                shards=shards, execution="inline",
            )
        with pytest.raises(UpdateError):
            parallel_ingest_windowed(
                l0, workload.epochs, workload.items, deltas[:-1],
                shards=shards, execution="inline",
            )
        # rejected calls mutate nothing
        assert f0.to_bytes() == _f0_ring("hyperloglog").to_bytes()
        assert l0.to_bytes() == _l0_ring("ganguly").to_bytes()

    def test_adoption_respects_out_of_band_current_mutation(self):
        """Regression: updates applied via ``.current`` must not be adopted over."""
        ring = _f0_ring("hyperloglog", retention=4)
        ring.current.update_batch(
            np.arange(100, dtype=np.uint64)
        )  # bypasses the dirty flag
        shipped = make_f0_estimator("hyperloglog", UNIVERSE, EPS, 9)
        shipped.update_batch(np.arange(200, 205, dtype=np.uint64))
        ring.load_epoch_sketches([(0, shipped)])
        reference = make_f0_estimator("hyperloglog", UNIVERSE, EPS, 9)
        reference.update_batch(np.arange(100, dtype=np.uint64))
        reference.update_batch(np.arange(200, 205, dtype=np.uint64))
        assert ring.estimate_current() == reference.estimate()


class TestWindowedSketchStore:
    @pytest.fixture(scope="class")
    def keyed(self, workload):
        keys = (np.arange(len(workload)) % 7).astype(np.int64)
        return keys

    def _store_ring(self, retention=8, seed=4, family="hyperloglog"):
        return WindowedSketchStore(
            SketchStore.for_family(family, UNIVERSE, eps=EPS, seed=seed),
            retention=retention,
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            WindowedSketchStore(object(), 2)

    def test_grouped_vs_scalar_bit_equivalence(self, workload, keyed):
        grouped = self._store_ring(retention=6)
        grouped.ingest_timestamped(
            workload.epochs, keyed, workload.items, batch_size=100
        )
        scalar = self._store_ring(retention=6)
        for epoch, key, item in zip(
            workload.epochs.tolist(), keyed.tolist(), workload.items.tolist()
        ):
            if epoch > scalar.epoch_index:
                scalar.advance_epoch(epoch - scalar.epoch_index)
            scalar.update(key, item)
        assert grouped.state_dict() == scalar.state_dict()
        assert grouped.to_bytes() == scalar.to_bytes()

    def test_window_matches_per_key_fresh_stores(self, workload, keyed):
        ring = self._store_ring(retention=6)
        ring.ingest_timestamped(workload.epochs, keyed, workload.items)
        for width in (1, 3, 6):
            window = ring.window_store(width)
            fresh = SketchStore.for_family("hyperloglog", UNIVERSE, eps=EPS, seed=4)
            window_epochs, window_items, _ = workload.window_slice(width)
            start = len(workload) - len(window_items)
            fresh.update_grouped(keyed[start:], window_items)
            # both stores hold the same keys with identical estimates
            assert sorted(window.keys) == sorted(fresh.keys)
            assert ring.estimate_window(width) == {
                key: fresh.estimate(key) for key in window.keys
            }
            for key in fresh.keys:
                assert ring.estimate_key_window(key, width) == fresh.estimate(key)

    def test_key_union_across_epochs(self):
        ring = self._store_ring(retention=4)
        ring.update(1, 100)
        ring.advance_epoch()
        ring.update(2, 200)
        window = ring.estimate_window(2)
        assert set(window) == {1, 2}
        assert set(ring.estimate_current()) == {2}
        with pytest.raises(ParameterError):
            ring.estimate_key_window(1, 1)  # key idle in the open epoch

    def test_sharded_keyed_bit_identical(self, workload, keyed):
        sequential = self._store_ring(retention=8)
        sequential.ingest_timestamped(
            workload.epochs, keyed, workload.items, batch_size=150
        )
        for shards in (2, 5):
            sharded = self._store_ring(retention=8)
            parallel_ingest_windowed_keyed(
                sharded,
                workload.epochs,
                keyed,
                workload.items,
                shards=shards,
                batch_size=150,
                execution="inline",
            )
            assert sharded.state_dict() == sequential.state_dict()

    def test_store_round_trip_mid_window(self, workload, keyed):
        half = len(workload) // 2
        ring = self._store_ring(retention=3)
        ring.ingest_timestamped(workload.epochs[:half], keyed[:half], workload.items[:half])
        revived = WindowedSketchStore.from_bytes(ring.to_bytes())
        revived.ingest_timestamped(
            workload.epochs[half:], keyed[half:], workload.items[half:]
        )
        uninterrupted = self._store_ring(retention=3)
        uninterrupted.ingest_timestamped(workload.epochs, keyed, workload.items)
        assert revived.to_bytes() == uninterrupted.to_bytes()


class TestWindowedWorkload:
    def test_ground_truth_window(self):
        workload = WindowedWorkload(
            universe_size=100,
            epochs=np.asarray([0, 0, 1, 1, 2], dtype=np.int64),
            items=np.asarray([1, 2, 2, 3, 4], dtype=np.uint64),
        )
        assert workload.epoch_count == 3
        assert workload.ground_truth_window(1) == 1  # {4}
        assert workload.ground_truth_window(2) == 3  # {2, 3, 4}
        assert workload.ground_truth_window(3) == 4
        assert workload.ground_truth_all_windows() == [1, 3, 4]

    def test_turnstile_ground_truth_cancels(self):
        workload = WindowedWorkload(
            universe_size=100,
            epochs=np.asarray([0, 0, 1], dtype=np.int64),
            items=np.asarray([5, 6, 5], dtype=np.uint64),
            deltas=np.asarray([1, 1, -1], dtype=np.int64),
        )
        assert workload.ground_truth_window(2) == 1  # 5 cancelled, {6} left
        assert workload.ground_truth_window(1) == 1  # {5: -1} is non-zero

    def test_generator_shapes(self):
        workload = windowed_uniform_stream(
            1 << 12, epochs=4, updates_per_epoch=50, distinct_per_epoch=10, seed=1
        )
        assert len(workload) == 200
        assert workload.epoch_count == 4
        truths = workload.ground_truth_all_windows()
        assert len(truths) == 4
        assert all(a <= b for a, b in zip(truths, truths[1:]))
        with pytest.raises(ParameterError):
            windowed_uniform_stream(1 << 12, epochs=0, updates_per_epoch=5)
        with pytest.raises(ParameterError):
            workload.window_slice(0)


class TestWindowedSweep:
    def test_windowed_accuracy_sweep(self):
        from repro.analysis.sweeps import windowed_accuracy_sweep

        points = windowed_accuracy_sweep(
            ["hyperloglog", "exact"],
            lambda seed: windowed_uniform_stream(
                UNIVERSE, epochs=4, updates_per_epoch=300,
                distinct_per_epoch=120, seed=seed,
            ),
            window_widths=[1, 4],
            eps=0.1,
            seeds=[1, 2],
        )
        assert len(points) == 4
        exact_points = [p for p in points if p.algorithm == "exact"]
        assert all(p.summary.maximum == 0.0 for p in exact_points)
        assert all(p.truth > 0 for p in points)


class TestMonitorRollingWindows:
    def test_rolling_queries_match_merged_truth(self):
        from repro.apps import FlowCardinalityMonitor
        from repro.streams import packet_trace

        _, records = packet_trace(UNIVERSE, packets=3000, distinct_flows=500, seed=6)
        monitor = FlowCardinalityMonitor(
            universe_size=UNIVERSE,
            eps=0.1,
            window_packets=1000,
            seed=7,
            mergeable=True,
            window_history=4,
        )
        monitor.observe_batch(records)
        assert monitor.retained_windows() == 4
        assert len(monitor.reports) == 3
        # the 3-closed-window rollup must equal one mergeable sketch fed
        # all three windows' flow ids (the rings are shard-deterministic)
        from repro.core.knw import KNWDistinctCounter

        reference = KNWDistinctCounter(
            UNIVERSE, eps=0.1, seed=7, rough_uniform_family=False
        )
        for record in records:
            reference.update(record.flow_id(UNIVERSE))
        assert monitor.distinct_flows_last(4) == reference.estimate()
        # fan-out over all retained windows covers every source
        fanout = monitor.fanout_last(4)
        assert set(fanout) == {record.source for record in records}

    def test_rolling_queries_need_mergeable_beyond_open_window(self):
        from repro.apps import FlowCardinalityMonitor
        from repro.streams import packet_trace

        _, records = packet_trace(UNIVERSE, packets=500, distinct_flows=80, seed=8)
        monitor = FlowCardinalityMonitor(
            universe_size=UNIVERSE, window_packets=200, seed=9, window_history=3
        )
        monitor.observe_batch(records)
        assert monitor.distinct_flows_last(1) >= 0.0
        with pytest.raises(MergeError):
            monitor.distinct_flows_last(2)
        with pytest.raises(ParameterError):
            monitor.distinct_flows_last(5)  # beyond window_history
