"""Tests for the database-domain applications (query optimiser, network, cleaning)."""

from __future__ import annotations

import random

import pytest

from repro.apps import (
    ColumnStatisticsCollector,
    FlowCardinalityMonitor,
    SimilarColumnFinder,
)
from repro.exceptions import ParameterError
from repro.streams import packet_trace, table_column

UNIVERSE = 1 << 16


class TestQueryOptimizer:
    def test_ndv_per_column(self):
        collector = ColumnStatisticsCollector(["customer_id", "country"], UNIVERSE, eps=0.1)
        customers = table_column(UNIVERSE, rows=3000, distinct_values=1200, seed=1)
        countries = table_column(UNIVERSE, rows=3000, distinct_values=60, seed=2)
        collector.ingest_column("customer_id", [u.item for u in customers])
        collector.ingest_column("country", [u.item for u in countries])
        assert abs(collector.ndv("customer_id") - 1200) / 1200 < 0.3
        assert abs(collector.ndv("country") - 60) / 60 < 0.1

    def test_selectivity(self):
        collector = ColumnStatisticsCollector(["c"], UNIVERSE, eps=0.1)
        collector.ingest_column("c", list(range(100)))
        assert collector.selectivity("c") == pytest.approx(1.0 / collector.ndv("c"))

    def test_ingest_row_skips_nulls(self):
        collector = ColumnStatisticsCollector(["a", "b"], UNIVERSE, eps=0.1)
        collector.ingest_row({"a": 5, "b": None})
        collector.ingest_row({"a": 6, "b": 7})
        assert collector.ndv("a") == 2.0
        assert collector.ndv("b") == 1.0

    def test_union_ndv_and_join_estimate(self):
        collector = ColumnStatisticsCollector(["orders_key", "customers_key"], UNIVERSE, eps=0.1)
        shared = list(range(500))
        collector.ingest_column("orders_key", shared * 4)
        collector.ingest_column("customers_key", shared)
        union = collector.union_ndv("orders_key", "customers_key")
        assert abs(union - 500) / 500 < 0.2
        join = collector.join_estimate("orders_key", "customers_key")
        assert join.left_rows == 2000 and join.right_rows == 500
        expected = 2000 * 500 / max(join.left_ndv, join.right_ndv)
        assert join.estimated_rows == pytest.approx(expected)

    def test_unknown_column_raises(self):
        collector = ColumnStatisticsCollector(["a"], UNIVERSE)
        with pytest.raises(ParameterError):
            collector.ndv("missing")
        with pytest.raises(ParameterError):
            collector.ingest_row({"missing": 1})

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ParameterError):
            ColumnStatisticsCollector(["a", "a"], UNIVERSE)

    def test_space_accounting(self):
        collector = ColumnStatisticsCollector(["a", "b", "c"], UNIVERSE, eps=0.2)
        assert collector.space_bits() > 0


class TestNetworkMonitor:
    def test_window_reports_distinct_flows(self):
        stream, records = packet_trace(
            UNIVERSE, packets=4000, distinct_flows=600, seed=3
        )
        monitor = FlowCardinalityMonitor(
            universe_size=UNIVERSE, eps=0.1, window_packets=2000, seed=4
        )
        reports = []
        for record in records:
            report = monitor.observe(record)
            if report is not None:
                reports.append(report)
        final = monitor.flush()
        if final is not None:
            reports.append(final)
        assert len(reports) == 2
        assert all(report.packets == 2000 for report in reports)
        assert all(report.distinct_flows > 0 for report in reports)

    def test_port_scan_detection(self):
        rng = random.Random(5)
        _, normal = packet_trace(UNIVERSE, packets=1500, distinct_flows=120, seed=6)
        _, scan = packet_trace(
            UNIVERSE, packets=0, distinct_flows=1, scanner_destinations=600, seed=7
        )
        monitor = FlowCardinalityMonitor(
            universe_size=UNIVERSE,
            eps=0.1,
            window_packets=10_000,
            scan_fanout_threshold=300,
            seed=8,
        )
        records = normal + scan
        rng.shuffle(records)
        for record in records:
            monitor.observe(record)
        report = monitor.flush()
        assert report is not None
        assert len(report.scan_suspects) == 1

    def test_running_estimate_available(self):
        monitor = FlowCardinalityMonitor(universe_size=UNIVERSE, window_packets=100, seed=9)
        _, records = packet_trace(UNIVERSE, packets=50, distinct_flows=30, seed=10)
        for record in records:
            monitor.observe(record)
        assert monitor.current_distinct_flows() >= 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            FlowCardinalityMonitor(window_packets=0)
        with pytest.raises(ParameterError):
            FlowCardinalityMonitor(scan_fanout_threshold=0)


class TestDataCleaning:
    def test_identical_columns_are_most_similar(self):
        rng = random.Random(11)
        base = [rng.randrange(UNIVERSE) for _ in range(1500)]
        copy = list(base)
        shuffled = list(base)
        rng.shuffle(shuffled)
        different = [rng.randrange(UNIVERSE) for _ in range(1500)]
        finder = SimilarColumnFinder(UNIVERSE, eps=0.1, seed=12)
        finder.add_column("base", base)
        finder.add_column("copy", copy)
        finder.add_column("shuffled", shuffled)
        finder.add_column("different", different)
        pairs = finder.most_similar_pairs(top=6)
        top_pair = {pairs[0].first, pairs[0].second}
        # The exact copy and the shuffled copy both have Hamming distance 0
        # from the base; either may rank first, but "different" must not.
        assert "different" not in top_pair
        assert pairs[0].similarity > 0.9

    def test_row_order_does_not_matter(self):
        rng = random.Random(13)
        base = [rng.randrange(UNIVERSE) for _ in range(800)]
        shuffled = list(base)
        rng.shuffle(shuffled)
        finder = SimilarColumnFinder(UNIVERSE, eps=0.1, seed=14)
        estimate = finder.pair_report_streaming(base, shuffled)
        assert estimate < 80  # near-zero Hamming distance

    def test_dirty_copy_reports_moderate_distance(self):
        rng = random.Random(15)
        base = [rng.randrange(UNIVERSE) for _ in range(1000)]
        dirty = list(base)
        for position in rng.sample(range(1000), 200):
            dirty[position] = rng.randrange(UNIVERSE)
        finder = SimilarColumnFinder(UNIVERSE, eps=0.1, seed=16)
        finder.add_column("base", base)
        finder.add_column("dirty", dirty)
        report = finder.pair_report("base", "dirty")
        # Roughly 2 * 200 values have differing multiplicities.
        assert 100 <= report.hamming_estimate <= 700
        assert report.similarity < 1.0

    def test_validation(self):
        finder = SimilarColumnFinder(UNIVERSE)
        finder.add_column("a", [1, 2, 3])
        with pytest.raises(ParameterError):
            finder.add_column("a", [1])
        with pytest.raises(ParameterError):
            finder.add_column("b", [UNIVERSE])
        with pytest.raises(ParameterError):
            finder.pair_report("a", "missing")
        with pytest.raises(ParameterError):
            finder.most_similar_pairs(top=0)
