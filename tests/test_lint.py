"""Tests for the contract linter (:mod:`repro.lint`).

Four layers of coverage:

* **Rule fixtures** — every rule gets at least one flagged and one clean
  in-memory module, driven through :func:`repro.lint.lint_source` with
  synthetic repo-relative paths so path scoping is exercised too.
* **Engine mechanics** — suppression syntax (used / missing-reason /
  unused), syntax-error handling, and baseline semantics (new finding
  fails, baselined finding passes, stale entry warns).
* **Self-application** — the linter lints its own package and the whole
  repo clean; the shipped baseline carries no entries for ``src/repro/``.
* **Audit + build hooks** — the import-time audit passes on the real
  registry and catches a broken contract surface; the compiled-kernel
  cache key separates sanitizer builds from production builds.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_paths, lint_source, rules_by_id
from repro.lint.audit import F0_SURFACE, _audit_surface, run_audit
from repro.lint.engine import (
    Finding,
    apply_baseline,
    format_baseline,
    load_baseline,
)
from repro.lint.rules.kernel_seam import SEAM_KERNELS

REPO_ROOT = Path(__file__).resolve().parents[1]

RULES = all_rules()


def run_lint(relpath: str, source: str):
    """Lint a dedented in-memory module under a synthetic repo path."""
    return lint_source(relpath, textwrap.dedent(source), RULES)


def rule_ids(findings):
    return [finding.rule for finding in findings]


def assert_flags(relpath: str, source: str, rule: str):
    findings = run_lint(relpath, source)
    assert rule in rule_ids(findings), "expected %s in %r" % (rule, findings)
    return findings


def assert_clean(relpath: str, source: str, rule: str | None = None):
    findings = run_lint(relpath, source)
    if rule is None:
        assert findings == [], findings
    else:
        assert rule not in rule_ids(findings), findings
    return findings


# --------------------------------------------------------------------------
# Exact-arithmetic rules
# --------------------------------------------------------------------------


class TestExactArithmetic:
    SKETCH = "src/repro/estimators/fixture.py"

    def test_np_transcendental_flagged_in_estimate(self):
        assert_flags(
            self.SKETCH,
            """
            import numpy as np

            class E:
                def estimate(self):
                    return np.log(self.count)
            """,
            "exact-np-transcendental",
        )

    def test_np_transcendental_resolves_aliases(self):
        assert_flags(
            self.SKETCH,
            """
            import numpy

            def merge(a, b):
                return numpy.exp(a + b)
            """,
            "exact-np-transcendental",
        )

    def test_math_log_is_clean(self):
        assert_clean(
            self.SKETCH,
            """
            import math

            class E:
                def estimate(self):
                    return math.log(self.count)
            """,
        )

    def test_np_log_outside_contract_functions_is_clean(self):
        assert_clean(
            self.SKETCH,
            """
            import numpy as np

            def plot_helper(values):
                return np.log(values)
            """,
            "exact-np-transcendental",
        )

    def test_np_log_outside_sketch_packages_is_clean(self):
        assert_clean(
            "src/repro/analysis/fixture.py",
            """
            import numpy as np

            def estimate(values):
                return np.log(values)
            """,
            "exact-np-transcendental",
        )

    def test_np_float_cast_flagged(self):
        assert_flags(
            self.SKETCH,
            """
            import numpy as np

            class E:
                def update(self, item):
                    self.word = np.float64(item)
            """,
            "exact-np-float-cast",
        )

    def test_builtin_float_is_clean(self):
        assert_clean(
            self.SKETCH,
            """
            class E:
                def estimate(self):
                    return float(self.word)
            """,
        )

    def test_implicit_division_flagged_in_mutator(self):
        assert_flags(
            self.SKETCH,
            """
            class E:
                def _ingest_block(self, items):
                    self.level = self.level / 2
            """,
            "exact-implicit-float-div",
        )

    def test_floor_division_in_mutator_is_clean(self):
        assert_clean(
            self.SKETCH,
            """
            class E:
                def _ingest_block(self, items):
                    self.level = self.level // 2
            """,
        )

    def test_division_in_estimate_is_clean(self):
        # estimate() legitimately reports floats; only mutators are exact.
        assert_clean(
            self.SKETCH,
            """
            class E:
                def estimate(self):
                    return self.total / self.samples
            """,
            "exact-implicit-float-div",
        )


# --------------------------------------------------------------------------
# Determinism rules
# --------------------------------------------------------------------------


class TestDeterminism:
    LIB = "src/repro/hashing/fixture.py"

    def test_unseeded_random_flagged(self):
        assert_flags(
            self.LIB,
            """
            import random

            def make():
                return random.Random()
            """,
            "det-unseeded-rng",
        )

    def test_seeded_random_is_clean(self):
        assert_clean(
            self.LIB,
            """
            import random

            def make(seed):
                return random.Random(seed)
            """,
        )

    def test_global_random_fn_flagged(self):
        assert_flags(
            self.LIB,
            """
            import random

            def pick(items):
                return random.randint(0, len(items))
            """,
            "det-unseeded-rng",
        )

    def test_unseeded_default_rng_flagged(self):
        assert_flags(
            self.LIB,
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
            "det-unseeded-rng",
        )

    def test_seeded_default_rng_is_clean(self):
        assert_clean(
            self.LIB,
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
        )

    def test_legacy_np_random_flagged(self):
        assert_flags(
            self.LIB,
            """
            import numpy as np

            def draw(n):
                return np.random.rand(n)
            """,
            "det-unseeded-rng",
        )

    def test_rng_outside_library_is_clean(self):
        assert_clean(
            "benchmarks/fixture.py",
            """
            import random

            def jitter():
                return random.random()
            """,
            "det-unseeded-rng",
        )

    def test_wall_clock_flagged(self):
        assert_flags(
            self.LIB,
            """
            import time

            def stamp():
                return time.time()
            """,
            "det-wall-clock",
        )

    def test_monotonic_clock_is_clean(self):
        # perf_counter/monotonic never feed persisted state in this repo.
        assert_clean(
            self.LIB,
            """
            import time

            def elapsed(start):
                return time.perf_counter() - start
            """,
            "det-wall-clock",
        )

    def test_wall_clock_allowed_in_durability(self):
        assert_clean(
            "src/repro/durability/fixture.py",
            """
            import time

            def stamp():
                return time.time()
            """,
            "det-wall-clock",
        )

    def test_dict_iteration_in_encoder_flagged(self):
        assert_flags(
            "src/repro/serialize.py",
            """
            def _encode_tree(node, out):
                for key, value in node.items():
                    out.append((key, value))
            """,
            "det-serialize-dict-order",
        )

    def test_sorted_dict_iteration_is_clean(self):
        assert_clean(
            "src/repro/serialize.py",
            """
            def _encode_tree(node, out):
                for key, value in sorted(node.items()):
                    out.append((key, value))
            """,
        )

    def test_comprehension_over_items_flagged(self):
        assert_flags(
            "src/repro/serialize.py",
            """
            def snapshot(state):
                return [key for key in state.keys()]
            """,
            "det-serialize-dict-order",
        )

    def test_dict_iteration_outside_serialize_is_clean(self):
        assert_clean(
            self.LIB,
            """
            def snapshot(state):
                return [key for key in state.keys()]
            """,
            "det-serialize-dict-order",
        )


# --------------------------------------------------------------------------
# Serialization rules
# --------------------------------------------------------------------------


class TestSerialization:
    def test_pickle_import_flagged(self):
        assert_flags(
            "src/repro/store/fixture.py",
            """
            import pickle

            def save(obj):
                return pickle.dumps(obj)
            """,
            "ser-pickle-import",
        )

    def test_pickle_from_import_flagged(self):
        assert_flags(
            "src/repro/store/fixture.py",
            """
            from pickle import dumps
            """,
            "ser-pickle-import",
        )

    def test_pickle_in_tests_is_clean(self):
        assert_clean(
            "tests/fixture.py",
            """
            import pickle
            """,
            "ser-pickle-import",
        )

    def test_swallowing_except_on_decode_path_flagged(self):
        assert_flags(
            "src/repro/store/fixture.py",
            """
            def from_bytes(data):
                try:
                    return _parse(data)
                except Exception:
                    return None
            """,
            "ser-broad-decode-except",
        )

    def test_reraising_except_on_decode_path_is_clean(self):
        assert_clean(
            "src/repro/store/fixture.py",
            """
            def from_bytes(data):
                try:
                    return _parse(data)
                except Exception as exc:
                    raise SerializationError(str(exc))
            """,
        )

    def test_narrow_except_on_decode_path_is_clean(self):
        assert_clean(
            "src/repro/store/fixture.py",
            """
            def from_bytes(data):
                try:
                    return _parse(data)
                except KeyError:
                    return None
            """,
            "ser-broad-decode-except",
        )

    def test_broad_except_off_decode_path_is_clean(self):
        assert_clean(
            "src/repro/store/fixture.py",
            """
            def maybe(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
            "ser-broad-decode-except",
        )


# --------------------------------------------------------------------------
# Parallel-hygiene rules
# --------------------------------------------------------------------------


class TestParallelHygiene:
    def test_direct_executor_flagged(self):
        assert_flags(
            "src/repro/parallel/fixture.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(tasks):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(str, tasks))
            """,
            "par-direct-pool",
        )

    def test_executor_allowed_in_pool_module(self):
        assert_clean(
            "src/repro/parallel/pool.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def _spawn(workers):
                return ProcessPoolExecutor(max_workers=workers)
            """,
            "par-direct-pool",
        )

    def test_module_mutable_state_flagged(self):
        assert_flags(
            "src/repro/parallel/fixture.py",
            """
            _CACHE = {}
            """,
            "par-module-mutable-state",
        )

    def test_mutable_state_with_fork_handler_is_clean(self):
        assert_clean(
            "src/repro/parallel/fixture.py",
            """
            import os

            _CACHE = {}

            def _reset():
                _CACHE.clear()

            os.register_at_fork(after_in_child=_reset)
            """,
            "par-module-mutable-state",
        )

    def test_dunder_metadata_is_clean(self):
        assert_clean(
            "src/repro/parallel/fixture.py",
            """
            __all__ = ["run"]
            """,
            "par-module-mutable-state",
        )

    def test_function_local_mutable_state_is_clean(self):
        assert_clean(
            "src/repro/parallel/fixture.py",
            """
            def run():
                cache = {}
                return cache
            """,
            "par-module-mutable-state",
        )


# --------------------------------------------------------------------------
# Kernel-seam rule
# --------------------------------------------------------------------------


class TestKernelSeam:
    def test_backend_from_import_flagged(self):
        assert_flags(
            "src/repro/hashing/fixture.py",
            """
            from repro.kernels.numpy_backend import mulmod
            """,
            "seam-backend-bypass",
        )

    def test_backend_attribute_call_flagged(self):
        assert_flags(
            "src/repro/hashing/fixture.py",
            """
            from repro.kernels import numpy_backend

            def f(a, b, m):
                return numpy_backend.mulmod(a, b, m)
            """,
            "seam-backend-bypass",
        )

    def test_vectorize_seam_is_clean(self):
        assert_clean(
            "src/repro/hashing/fixture.py",
            """
            from repro.vectorize import mulmod

            def f(a, b, m):
                return mulmod(a, b, m)
            """,
        )

    def test_backend_use_inside_kernels_package_is_clean(self):
        assert_clean(
            "src/repro/kernels/fixture.py",
            """
            from repro.kernels.numpy_backend import mulmod
            """,
            "seam-backend-bypass",
        )

    def test_seam_list_matches_required_kernels(self):
        import repro.kernels as kernels

        assert SEAM_KERNELS == frozenset(kernels.REQUIRED_KERNELS)


# --------------------------------------------------------------------------
# Engine mechanics: suppressions, syntax errors, baseline
# --------------------------------------------------------------------------


FLAGGED = """
import random

def make():
    return random.Random()
"""


class TestSuppressions:
    def test_inline_suppression_with_reason(self):
        findings = run_lint(
            "src/repro/hashing/fixture.py",
            """
            import random

            def make():
                return random.Random()  # lint: allow[det-unseeded-rng] fixture
            """,
        )
        assert findings == [], findings

    def test_comment_line_suppression_applies_to_next_line(self):
        findings = run_lint(
            "src/repro/hashing/fixture.py",
            """
            import random

            def make():
                # lint: allow[det-unseeded-rng] fixture
                return random.Random()
            """,
        )
        assert findings == [], findings

    def test_missing_reason_is_an_error(self):
        findings = run_lint(
            "src/repro/hashing/fixture.py",
            """
            import random

            def make():
                return random.Random()  # lint: allow[det-unseeded-rng]
            """,
        )
        ids = rule_ids(findings)
        assert "lint-missing-reason" in ids
        # An invalid suppression must not hide the underlying finding.
        assert "det-unseeded-rng" in ids

    def test_unused_suppression_warns(self):
        findings = run_lint(
            "src/repro/hashing/fixture.py",
            """
            def make(seed):
                return seed  # lint: allow[det-unseeded-rng] nothing here
            """,
        )
        assert rule_ids(findings) == ["lint-unused-suppression"]
        assert findings[0].severity == "warning"

    def test_suppression_example_in_docstring_is_ignored(self):
        findings = run_lint(
            "src/repro/hashing/fixture.py",
            '''
            def make(seed):
                """Use ``# lint: allow[det-unseeded-rng] why`` to suppress."""
                return seed
            ''',
        )
        assert findings == [], findings

    def test_suppression_only_covers_named_rules(self):
        findings = run_lint(
            "src/repro/hashing/fixture.py",
            """
            import random

            def make():
                return random.Random()  # lint: allow[det-wall-clock] wrong rule
            """,
        )
        ids = rule_ids(findings)
        assert "det-unseeded-rng" in ids
        assert "lint-unused-suppression" in ids


class TestEngine:
    def test_syntax_error_is_reported_not_raised(self):
        findings = run_lint("src/repro/fixture.py", "def broken(:\n")
        assert rule_ids(findings) == ["lint-syntax-error"]

    def test_rule_ids_are_unique_and_documented(self):
        catalogue = rules_by_id()
        assert len(catalogue) == len(RULES)
        for rule in RULES:
            assert rule.id
            assert rule.description
            assert rule.severity in ("error", "warning")
            assert rule.node_types

    def test_fingerprint_ignores_line_numbers(self):
        a = Finding("r", "p.py", 10, 1, "m", snippet="x = random.Random()")
        b = Finding("r", "p.py", 99, 5, "m", snippet="x = random.Random()")
        assert a.fingerprint() == b.fingerprint()
        c = Finding("r", "p.py", 10, 1, "m", snippet="y = random.Random()")
        assert a.fingerprint() != c.fingerprint()


class TestBaseline:
    def _findings(self):
        return run_lint("src/repro/hashing/fixture.py", FLAGGED)

    def test_round_trip_and_match(self, tmp_path):
        findings = self._findings()
        assert findings, "fixture must produce findings"
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text(format_baseline(findings))
        baseline = load_baseline(str(baseline_file))
        new, matched, stale = apply_baseline(findings, baseline)
        assert new == []
        assert matched == findings
        assert stale == []

    def test_new_finding_fails_closed(self):
        new, matched, stale = apply_baseline(self._findings(), {})
        assert len(new) == len(self._findings())
        assert matched == []
        assert stale == []

    def test_stale_entry_is_reported(self, tmp_path):
        findings = self._findings()
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text(format_baseline(findings))
        baseline = load_baseline(str(baseline_file))
        new, matched, stale = apply_baseline([], baseline)
        assert new == []
        assert matched == []
        assert len(stale) == len(baseline)

    def test_malformed_baseline_raises(self, tmp_path):
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text("not a valid line\n")
        with pytest.raises(ValueError):
            load_baseline(str(baseline_file))

    def test_warnings_are_not_baselined(self):
        warning = Finding("w", "p.py", 1, 1, "m", severity="warning")
        assert "w\t" not in format_baseline([warning])


# --------------------------------------------------------------------------
# Self-application
# --------------------------------------------------------------------------


class TestSelfLint:
    def test_lint_package_lints_itself_clean(self):
        result = lint_paths(["src/repro/lint"], RULES, root=str(REPO_ROOT))
        assert result.files_checked > 0
        assert result.findings == [], [f.render() for f in result.findings]

    def test_full_repo_is_clean_with_empty_baseline(self):
        result = lint_paths(
            ["src", "tests", "benchmarks"], RULES, root=str(REPO_ROOT)
        )
        assert result.files_checked > 100
        assert result.errors == [], [f.render() for f in result.errors]
        assert result.warnings == [], [f.render() for f in result.warnings]

    def test_shipped_baseline_has_no_src_entries(self):
        baseline = load_baseline(str(REPO_ROOT / "lint-baseline.txt"))
        src_entries = [key for key in baseline if key[1].startswith("src/repro/")]
        assert src_entries == []

    def test_cli_exits_zero_on_repo(self, capsys):
        from repro.lint.cli import main

        # --no-audit: the audit is covered separately below; keep the CLI
        # smoke test fast.
        code = main(["--root", str(REPO_ROOT), "--no-audit"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 new" in out

    def test_cli_list_rules(self, capsys):
        from repro.lint.cli import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.id in out


# --------------------------------------------------------------------------
# Import-time audit
# --------------------------------------------------------------------------


class TestAudit:
    def test_real_registry_passes(self):
        findings = run_audit()
        assert findings == [], [f.render() for f in findings]

    def test_missing_method_is_caught(self):
        class Broken:
            def to_bytes(self):
                return b""

            @classmethod
            def from_bytes(cls, data):
                return cls()

        findings = []
        _audit_surface(Broken(), F0_SURFACE, "broken", findings)
        missing = {f.message.split("method ")[-1] for f in findings}
        assert any("update()" in m for m in missing)
        assert all(f.rule == "audit-estimator-contract" for f in findings)

    def test_unstable_round_trip_is_caught(self):
        class Drifty:
            calls = [0]

            def to_bytes(self):
                self.calls[0] += 1
                return b"v%d" % self.calls[0]

            @classmethod
            def from_bytes(cls, data):
                return cls()

        findings = []
        _audit_surface(Drifty(), ("to_bytes", "from_bytes"), "drifty", findings)
        assert any("byte-stable" in f.message for f in findings)


# --------------------------------------------------------------------------
# Sanitizer-hardened kernel builds: the CFLAGS hook
# --------------------------------------------------------------------------


class TestKernelCflagsHook:
    def test_cflags_env_changes_cache_key(self, monkeypatch):
        from repro.kernels import compiled_backend as cb

        monkeypatch.delenv(cb.CFLAGS_ENV_VAR, raising=False)
        plain = cb._library_basename()
        monkeypatch.setenv(
            cb.CFLAGS_ENV_VAR, "-fsanitize=undefined -fno-sanitize-recover"
        )
        sanitized = cb._library_basename()
        assert plain != sanitized
        # Same flags, same key: the cache stays warm across processes.
        assert sanitized == cb._library_basename()

    def test_cflags_are_shell_split(self, monkeypatch):
        from repro.kernels import compiled_backend as cb

        monkeypatch.setenv(cb.CFLAGS_ENV_VAR, "-g -fsanitize=undefined")
        assert cb._extra_cflags() == ["-g", "-fsanitize=undefined"]
        monkeypatch.delenv(cb.CFLAGS_ENV_VAR)
        assert cb._extra_cflags() == []

    def test_basename_shape(self, monkeypatch):
        import re

        from repro.kernels import compiled_backend as cb

        monkeypatch.delenv(cb.CFLAGS_ENV_VAR, raising=False)
        assert re.fullmatch(r"repro_kernels-[0-9a-f]{16}\.so", cb._library_basename())
