"""Tests for the word-level bit operations (paper Theorem 5 stand-ins)."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.hashing.bitops import (
    WORD_SIZE,
    ceil_log2,
    floor_log2,
    is_power_of_two,
    lsb,
    lsb64,
    msb,
    msb64,
    popcount,
    reverse_bits,
)


class TestLsb:
    def test_lsb_of_powers_of_two(self):
        for exponent in range(60):
            assert lsb(1 << exponent) == exponent

    def test_lsb_matches_paper_example(self):
        # The paper's Section 1.2 example: lsb(6) = 1.
        assert lsb(6) == 1

    def test_lsb_of_odd_numbers_is_zero(self):
        for value in (1, 3, 5, 7, 99, 12345, (1 << 40) + 1):
            assert lsb(value) == 0

    def test_lsb_zero_uses_sentinel(self):
        assert lsb(0, zero_value=20) == 20

    def test_lsb_zero_without_sentinel_raises(self):
        with pytest.raises(ParameterError):
            lsb(0)

    def test_lsb_negative_raises(self):
        with pytest.raises(ParameterError):
            lsb(-1)

    def test_lsb_beyond_word_size(self):
        assert lsb(1 << 100) == 100

    def test_lsb64_agrees_with_generic(self):
        for value in range(1, 2000):
            assert lsb64(value) == lsb(value)

    def test_lsb64_rejects_zero_and_oversized(self):
        with pytest.raises(ParameterError):
            lsb64(0)
        with pytest.raises(ParameterError):
            lsb64(1 << 64)


class TestMsb:
    def test_msb_of_powers_of_two(self):
        for exponent in range(60):
            assert msb(1 << exponent) == exponent

    def test_msb_is_floor_log2(self):
        for value in range(1, 3000):
            assert msb(value) == value.bit_length() - 1

    def test_msb_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            msb(0)
        with pytest.raises(ParameterError):
            msb(-4)

    def test_msb64_agrees_with_generic(self):
        for value in (1, 2, 3, 255, 256, 65535, (1 << 63) - 1):
            assert msb64(value) == msb(value)

    def test_msb_beyond_word_size(self):
        assert msb((1 << 90) + 17) == 90


class TestLogHelpers:
    def test_floor_log2(self):
        assert floor_log2(1) == 0
        assert floor_log2(2) == 1
        assert floor_log2(1023) == 9

    def test_ceil_log2_exact_powers(self):
        for exponent in range(20):
            assert ceil_log2(1 << exponent) == exponent

    def test_ceil_log2_between_powers(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(5) == 3
        assert ceil_log2(1025) == 11

    def test_ceil_log2_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            ceil_log2(0)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-8)


class TestBitManipulation:
    def test_reverse_bits_round_trip(self):
        for value in range(256):
            assert reverse_bits(reverse_bits(value, 8), 8) == value

    def test_reverse_bits_known_value(self):
        assert reverse_bits(0b0001, 4) == 0b1000
        assert reverse_bits(0b1011, 4) == 0b1101

    def test_reverse_bits_validates(self):
        with pytest.raises(ParameterError):
            reverse_bits(16, 4)
        with pytest.raises(ParameterError):
            reverse_bits(-1, 4)
        with pytest.raises(ParameterError):
            reverse_bits(1, 0)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 64) - 1) == 64
        with pytest.raises(ParameterError):
            popcount(-1)

    def test_word_size_constant(self):
        assert WORD_SIZE == 64
