"""Tests for the Section 2 balls-and-bins quantities and the inversion estimator."""

from __future__ import annotations

import random

import pytest

from repro.core.balls_bins import (
    expected_occupied_bins,
    invert_occupancy,
    occupancy_estimate_is_valid,
    occupancy_statistics,
    occupancy_variance_bound,
    simulate_occupancy,
)
from repro.exceptions import ParameterError
from repro.hashing.kwise import KWiseHash


class TestClosedForms:
    def test_expected_occupied_zero_balls(self):
        assert expected_occupied_bins(0, 100) == 0.0

    def test_expected_occupied_monotone_in_balls(self):
        previous = 0.0
        for balls in range(0, 500, 25):
            value = expected_occupied_bins(balls, 128)
            assert value >= previous
            previous = value

    def test_expected_occupied_upper_bounds(self):
        # For A >> K the expectation approaches (and numerically rounds to) K.
        assert expected_occupied_bins(10_000, 64) <= 64
        assert expected_occupied_bins(3, 1000) <= 3

    def test_variance_bound_formula(self):
        assert occupancy_variance_bound(200, 8000) == pytest.approx(4 * 200 * 200 / 8000)

    def test_validity_window(self):
        assert occupancy_estimate_is_valid(100, 2000)
        assert not occupancy_estimate_is_valid(50, 2000)
        assert not occupancy_estimate_is_valid(200, 2000)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            expected_occupied_bins(-1, 10)
        with pytest.raises(ParameterError):
            occupancy_variance_bound(1, 0)


class TestInversion:
    def test_inversion_round_trip(self):
        # invert(E[X]) should recover roughly the ball count.
        for balls in (10, 50, 200, 800):
            bins = 4096
            expected = expected_occupied_bins(balls, bins)
            recovered = invert_occupancy(int(round(expected)), bins)
            assert abs(recovered - balls) / balls < 0.05

    def test_inversion_edge_cases(self):
        assert invert_occupancy(0, 100) == 0.0
        # Saturation: T = K falls back to T = K - 1 rather than infinity.
        assert invert_occupancy(100, 100) == invert_occupancy(99, 100)

    def test_inversion_validation(self):
        with pytest.raises(ParameterError):
            invert_occupancy(5, 1)
        with pytest.raises(ParameterError):
            invert_occupancy(11, 10)


class TestSimulation:
    def test_truly_random_matches_fact1(self):
        trials = simulate_occupancy(150, 1024, trials=60, seed=1)
        stats = occupancy_statistics(trials)
        expected = stats["expected_occupied"]
        assert abs(stats["mean_occupied"] - expected) / expected < 0.05

    def test_variance_within_lemma1_bound(self):
        # Inside the Lemma 1 window (100 <= A <= K/20) the empirical variance
        # should respect the 4A^2/K bound with ample slack.
        trials = simulate_occupancy(120, 4096, trials=80, seed=2)
        stats = occupancy_statistics(trials)
        assert stats["variance_occupied"] <= stats["variance_bound"]

    def test_kwise_family_matches_random_expectation(self):
        # Lemma 2: limited independence preserves E[X] up to a small
        # relative error.  Use the independence the paper asks for.
        bins = 512
        balls = 100

        def factory(rng: random.Random):
            return KWiseHash(balls, bins, independence=8, rng=rng)

        limited = occupancy_statistics(
            simulate_occupancy(balls, bins, trials=60, seed=3, hash_factory=factory)
        )
        expected = limited["expected_occupied"]
        assert abs(limited["mean_occupied"] - expected) / expected < 0.08

    def test_simulation_validation(self):
        with pytest.raises(ParameterError):
            simulate_occupancy(10, 10, trials=0)
        with pytest.raises(ParameterError):
            occupancy_statistics([])
