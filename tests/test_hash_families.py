"""Tests for the hash-family substrate (universal, k-wise, tabulation, etc.)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.exceptions import ParameterError
from repro.hashing import (
    KWiseHash,
    LazyUniformHash,
    MultiplyShiftHash,
    PairwiseHash,
    RandomOracle,
    SiegelHash,
    TabulationHash,
    required_independence,
)


class TestPairwiseHash:
    def test_range_respected(self):
        h = PairwiseHash(10_000, 97, rng=random.Random(1))
        assert all(0 <= h(x) < 97 for x in range(0, 10_000, 37))

    def test_deterministic_for_fixed_draw(self):
        h = PairwiseHash(1000, 50, rng=random.Random(3))
        assert [h(x) for x in range(100)] == [h(x) for x in range(100)]

    def test_distinct_draws_differ(self):
        first = PairwiseHash(1000, 1000, rng=random.Random(1))
        second = PairwiseHash(1000, 1000, rng=random.Random(2))
        assert any(first(x) != second(x) for x in range(200))

    def test_roughly_uniform(self):
        h = PairwiseHash(100_000, 16, rng=random.Random(7))
        counts = Counter(h(x) for x in range(4096))
        expected = 4096 / 16
        assert all(0.5 * expected < counts[b] < 1.5 * expected for b in range(16))

    def test_out_of_range_key_rejected(self):
        h = PairwiseHash(100, 10, rng=random.Random(1))
        with pytest.raises(ParameterError):
            h(100)
        with pytest.raises(ParameterError):
            h(-1)

    def test_space_is_two_field_elements(self):
        h = PairwiseHash(1 << 20, 1 << 10, rng=random.Random(1))
        assert h.space_bits() == 2 * h._prime.bit_length()

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            PairwiseHash(0, 10)
        with pytest.raises(ParameterError):
            PairwiseHash(10, 0)


class TestMultiplyShiftHash:
    def test_requires_power_of_two_range(self):
        with pytest.raises(ParameterError):
            MultiplyShiftHash(100, 12)

    def test_range_respected(self):
        h = MultiplyShiftHash(1 << 16, 64, rng=random.Random(2))
        assert all(0 <= h(x) < 64 for x in range(0, 1 << 16, 257))

    def test_range_one_is_constant_zero(self):
        h = MultiplyShiftHash(128, 1, rng=random.Random(2))
        assert all(h(x) == 0 for x in range(128))

    def test_roughly_uniform(self):
        h = MultiplyShiftHash(1 << 20, 32, rng=random.Random(5))
        counts = Counter(h(x * 977 % (1 << 20)) for x in range(8192))
        expected = 8192 / 32
        assert all(0.4 * expected < counts[b] < 1.6 * expected for b in range(32))


class TestKWiseHash:
    def test_required_independence_grows_slowly(self):
        low = required_independence(64, 0.2)
        high = required_independence(1 << 14, 0.01)
        assert 4 <= low <= high <= 64

    def test_range_respected(self):
        h = KWiseHash(10_000, 128, independence=6, rng=random.Random(4))
        assert all(0 <= h(x) < 128 for x in range(0, 10_000, 17))

    def test_explicit_coefficients_reproducible(self):
        a = KWiseHash(1000, 64, independence=3, coefficients=[5, 7, 11])
        b = KWiseHash(1000, 64, independence=3, coefficients=[5, 7, 11])
        assert [a(x) for x in range(100)] == [b(x) for x in range(100)]

    def test_coefficient_count_validated(self):
        with pytest.raises(ParameterError):
            KWiseHash(1000, 64, independence=3, coefficients=[1, 2])

    def test_space_scales_with_independence(self):
        small = KWiseHash(1 << 16, 64, independence=2, rng=random.Random(1))
        large = KWiseHash(1 << 16, 64, independence=10, rng=random.Random(1))
        assert large.space_bits() == 5 * small.space_bits()

    def test_degree_one_behaves_like_constant(self):
        h = KWiseHash(100, 16, independence=1, coefficients=[9])
        assert all(h(x) == 9 % 16 for x in range(100))


class TestTabulationHash:
    def test_for_universe_requires_powers_of_two(self):
        with pytest.raises(ParameterError):
            TabulationHash.for_universe(100, 16)
        with pytest.raises(ParameterError):
            TabulationHash.for_universe(128, 12)

    def test_range_respected(self):
        h = TabulationHash.for_universe(1 << 16, 1 << 6, rng=random.Random(8))
        assert all(0 <= h(x) < (1 << 6) for x in range(0, 1 << 16, 101))

    def test_key_bounds_enforced(self):
        h = TabulationHash(key_bits=8, value_bits=4, rng=random.Random(1))
        with pytest.raises(ParameterError):
            h(256)

    def test_space_counts_table_entries(self):
        h = TabulationHash(key_bits=16, value_bits=8, character_bits=8, rng=random.Random(1))
        assert h.space_bits() == 2 * 256 * 8


class TestLazyUniformAndSiegel:
    def test_values_memoised(self):
        h = LazyUniformHash(1 << 20, 64, capacity=100, rng=random.Random(3))
        assert h(12345) == h(12345)

    def test_overflow_reported(self):
        h = LazyUniformHash(1 << 20, 8, capacity=4, rng=random.Random(3))
        for key in range(10):
            h(key)
        assert h.overflowed()
        assert h.distinct_keys_seen() == 10

    def test_space_charged_at_capacity(self):
        h = LazyUniformHash(1 << 20, 64, capacity=50, rng=random.Random(3))
        assert h.space_bits() == 50 * 6

    def test_failure_injection_degrades_to_constant(self):
        h = LazyUniformHash(1000, 64, capacity=10, rng=random.Random(1), failure_probability=0.999999)
        assert {h(key) for key in range(20)} == {0}

    def test_siegel_defaults(self):
        h = SiegelHash(1 << 18, 256, rng=random.Random(2))
        assert h.independence >= 4
        assert all(0 <= h(key) < 256 for key in range(100))
        assert h.space_bits() >= 256


class TestRandomOracle:
    def test_deterministic_given_seed(self):
        a = RandomOracle(1 << 20, 1 << 16, seed=99)
        b = RandomOracle(1 << 20, 1 << 16, seed=99)
        assert [a(x) for x in range(200)] == [b(x) for x in range(200)]

    def test_different_seeds_differ(self):
        a = RandomOracle(1 << 20, 1 << 16, seed=1)
        b = RandomOracle(1 << 20, 1 << 16, seed=2)
        assert any(a(x) != b(x) for x in range(200))

    def test_uniformity(self):
        oracle = RandomOracle(1 << 20, 4, seed=5)
        counts = Counter(oracle(x) for x in range(8000))
        assert all(1700 < counts[v] < 2300 for v in range(4))

    def test_space_is_zero_by_convention(self):
        assert RandomOracle(100, 10, seed=1).space_bits() == 0

    def test_key_validation(self):
        oracle = RandomOracle(100, 10, seed=1)
        with pytest.raises(ParameterError):
            oracle(100)
