"""Tests for the analysis harness: metrics, runner, sweeps, tables."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Table,
    accuracy_sweep,
    format_bits,
    l0_accuracy_sweep,
    relative_error,
    run_f0,
    run_f0_by_name,
    run_l0_by_name,
    space_sweep,
    summarize_errors,
    within_band_rate,
)
from repro.estimators import ExactDistinctCounter
from repro.exceptions import ParameterError
from repro.streams import distinct_items_stream, insert_delete_stream

UNIVERSE = 1 << 14


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == float("inf")
        with pytest.raises(ParameterError):
            relative_error(1, -1)

    def test_within_band_rate(self):
        estimates = [95, 105, 120, 80]
        assert within_band_rate(estimates, 100, 0.1) == 0.5
        with pytest.raises(ParameterError):
            within_band_rate([], 100, 0.1)

    def test_summarize_errors(self):
        summary = summarize_errors([90, 100, 110, 130], 100)
        assert summary.trials == 4
        assert summary.maximum == pytest.approx(0.3)
        assert summary.mean_bias == pytest.approx(0.075)
        assert len(summary.as_row()) == 7

    def test_summarize_requires_data(self):
        with pytest.raises(ParameterError):
            summarize_errors([], 10)
        with pytest.raises(ParameterError):
            summarize_errors([1.0], 0)


class TestRunner:
    def test_run_f0_with_checkpoints(self):
        stream = distinct_items_stream(UNIVERSE, 400, repetitions=2, seed=1)
        positions = stream.checkpoints(4)
        result = run_f0(ExactDistinctCounter(UNIVERSE), stream, positions)
        assert result.truth == 400
        assert result.estimate == 400.0
        assert result.relative_error == 0.0
        assert len(result.checkpoints) == 4
        assert all(cp.relative_error == 0.0 for cp in result.checkpoints)

    def test_run_f0_rejects_turnstile_stream(self):
        stream = insert_delete_stream(UNIVERSE, 50, seed=2)
        with pytest.raises(ParameterError):
            run_f0(ExactDistinctCounter(UNIVERSE), stream)

    def test_run_f0_by_name(self):
        stream = distinct_items_stream(UNIVERSE, 600, seed=3)
        result = run_f0_by_name("hyperloglog", stream, eps=0.1, seed=4)
        assert result.algorithm == "hyperloglog"
        assert result.relative_error < 0.3
        assert result.space_bits > 0

    def test_run_l0_by_name(self):
        stream = insert_delete_stream(UNIVERSE, 600, delete_fraction=0.5, seed=5)
        result = run_l0_by_name("exact-l0", stream, eps=0.1, seed=6)
        assert result.estimate == result.truth


class TestSweeps:
    def test_accuracy_sweep_shape(self):
        points = accuracy_sweep(
            algorithms=["exact", "hyperloglog"],
            stream_factory=lambda seed: distinct_items_stream(UNIVERSE, 500, seed=seed),
            eps_values=[0.2],
            seeds=[1, 2, 3],
        )
        assert len(points) == 2
        exact_point = next(p for p in points if p.algorithm == "exact")
        assert exact_point.within_band == 1.0
        assert exact_point.summary.mean == 0.0

    def test_accuracy_sweep_validation(self):
        with pytest.raises(ParameterError):
            accuracy_sweep([], lambda seed: None, [0.1], [1])

    def test_l0_sweep_shape(self):
        points = l0_accuracy_sweep(
            algorithms=["exact-l0"],
            stream_factory=lambda seed: insert_delete_stream(
                UNIVERSE, 300, delete_fraction=0.5, seed=seed
            ),
            eps_values=[0.2],
            seeds=[1, 2],
        )
        assert len(points) == 1
        assert points[0].summary.mean == 0.0

    def test_space_sweep(self):
        stream = distinct_items_stream(UNIVERSE, 300, seed=9)
        result = space_sweep(["hyperloglog", "kmv"], stream, [0.2, 0.1])
        assert set(result) == {"hyperloglog", "kmv"}
        assert result["kmv"][0.1] > result["kmv"][0.2]


class TestTables:
    def test_format_bits(self):
        assert format_bits(100) == "100 b"
        assert "Kib" in format_bits(1 << 15)
        assert "Mib" in format_bits(1 << 24)
        with pytest.raises(ParameterError):
            format_bits(-1)

    def test_table_rendering(self):
        table = Table("Demo", ["algo", "space"])
        table.add_row(["knw", "1 Kib"])
        table.add_row(["hll", "0.5 Kib"])
        text = table.render_text()
        assert "Demo" in text and "knw" in text
        markdown = table.render_markdown()
        assert markdown.count("|") >= 8
        assert table.rows[0] == ["knw", "1 Kib"]

    def test_table_validation(self):
        with pytest.raises(ParameterError):
            Table("x", [])
        table = Table("x", ["a", "b"])
        with pytest.raises(ParameterError):
            table.add_row(["only-one"])
