"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstructs import (
    BitVector,
    LogLookupTable,
    PackedCounterArray,
    VariableBitLengthArray,
)
from repro.core.balls_bins import expected_occupied_bins, invert_occupancy
from repro.estimators.exact import ExactDistinctCounter, ExactHammingNorm
from repro.hashing import KWiseHash, PairwiseHash, lsb, msb
from repro.streams import (
    NEAR_COLLISION_MODES,
    MaterializedStream,
    Update,
    WorkloadScale,
    churn_stream,
    make_workload,
    near_collision_stream,
    workload_class_names,
    zipf_rank_probabilities,
)


# ---------------------------------------------------------------------------
# Bit operations
# ---------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=(1 << 80)))
def test_lsb_matches_arithmetic_definition(value):
    position = lsb(value)
    assert value % (1 << position) == 0
    assert (value >> position) & 1 == 1


@given(st.integers(min_value=1, max_value=(1 << 80)))
def test_msb_matches_bit_length(value):
    assert msb(value) == value.bit_length() - 1


@given(st.integers(min_value=0, max_value=(1 << 64) - 1), st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_lsb_of_product_of_powers(a, b):
    # lsb(x * 2^k) = lsb(x) + k for x > 0.
    if a == 0:
        return
    k = b % 16
    assert lsb(a << k) == lsb(a) + k


# ---------------------------------------------------------------------------
# Bit structures
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=300))
def test_bitvector_round_trip(bits):
    vector = BitVector.from_bits(bits)
    assert vector.to_list() == bits
    assert vector.count_ones() == sum(bits)
    assert vector.count_zeros() == len(bits) - sum(bits)


@given(
    st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200),
    st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200),
)
def test_bitvector_union_is_elementwise_or(left, right):
    size = min(len(left), len(right))
    a = BitVector.from_bits(left[:size])
    b = BitVector.from_bits(right[:size])
    a.union_update(b)
    assert a.to_list() == [x | y for x, y in zip(left[:size], right[:size])]


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=120))
def test_vla_round_trip(values):
    array = VariableBitLengthArray.from_values(values)
    assert array.to_list() == values
    assert array.payload_bits() == sum(max(v.bit_length(), 1) for v in values)


@given(
    st.integers(min_value=1, max_value=64),
    st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=100),
)
def test_packed_counters_round_trip(width, values):
    width = max(width, 8)
    array = PackedCounterArray.from_values(values, width=width)
    assert array.to_list() == values


@given(st.integers(min_value=8, max_value=2048))
def test_loglookup_error_bound_random_sizes(bins):
    table = LogLookupTable(bins)
    for c in range(0, table.max_argument + 1, max(table.max_argument // 17, 1)):
        assert table.relative_error(c) <= table.relative_accuracy


# ---------------------------------------------------------------------------
# Balls and bins
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2000), st.integers(min_value=2, max_value=4096))
def test_expected_occupancy_bounds(balls, bins):
    value = expected_occupied_bins(balls, bins)
    assert 0.0 <= value <= min(balls, bins)


@given(st.integers(min_value=2, max_value=4096), st.data())
def test_inversion_is_monotone(bins, data):
    first = data.draw(st.integers(min_value=0, max_value=bins))
    second = data.draw(st.integers(min_value=0, max_value=bins))
    lo, hi = sorted((first, second))
    assert invert_occupancy(lo, bins) <= invert_occupancy(hi, bins) + 1e-9


# ---------------------------------------------------------------------------
# Hash families
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=2, max_value=1 << 20),
    st.integers(min_value=1, max_value=1 << 12),
    st.integers(),
    st.data(),
)
def test_pairwise_hash_stays_in_range(universe, range_size, seed, data):
    import random as _random

    h = PairwiseHash(universe, range_size, rng=_random.Random(seed))
    key = data.draw(st.integers(min_value=0, max_value=universe - 1))
    assert 0 <= h(key) < range_size


@given(st.integers(min_value=1, max_value=8), st.integers(), st.data())
def test_kwise_hash_stays_in_range(independence, seed, data):
    import random as _random

    h = KWiseHash(1 << 16, 64, independence=independence, rng=_random.Random(seed))
    key = data.draw(st.integers(min_value=0, max_value=(1 << 16) - 1))
    assert 0 <= h(key) < 64


# ---------------------------------------------------------------------------
# Exact estimators as executable specifications
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=499), max_size=400))
def test_exact_f0_matches_set_semantics(items):
    counter = ExactDistinctCounter(500)
    counter.update_many(items)
    assert counter.estimate() == len(set(items))


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=199),
            st.integers(min_value=-5, max_value=5).filter(lambda d: d != 0),
        ),
        max_size=300,
    )
)
def test_exact_l0_matches_dictionary_semantics(updates):
    norm = ExactHammingNorm(200)
    frequencies = {}
    for item, delta in updates:
        norm.update(item, delta)
        frequencies[item] = frequencies.get(item, 0) + delta
        if frequencies[item] == 0:
            del frequencies[item]
    assert norm.estimate() == len(frequencies)


@settings(max_examples=25)
@given(
    st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=300),
    st.integers(min_value=0, max_value=100),
)
def test_stream_ground_truth_prefix_consistency(items, prefix_fraction):
    stream = MaterializedStream([Update(item, 1) for item in items], 1024)
    position = (prefix_fraction * len(items)) // 100
    prefix_truth = stream.ground_truth_at([position])[0]
    assert prefix_truth == len(set(items[:position]))


# ---------------------------------------------------------------------------
# KNW sketch invariants (kept light: a handful of examples, small streams)
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 14) - 1), min_size=1, max_size=400), st.integers(min_value=0, max_value=1 << 30))
def test_knw_counter_never_fails_and_is_exact_when_tiny(items, seed):
    from repro.core import KNWDistinctCounter

    counter = KNWDistinctCounter(1 << 14, eps=0.2, seed=seed)
    for item in items:
        counter.update(item)
    estimate = counter.estimate()
    truth = len(set(items))
    assert estimate >= 0.0
    if truth <= 100:
        assert estimate == truth


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 12) - 1),
            st.sampled_from([-2, -1, 1, 2]),
        ),
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=0, max_value=1 << 30),
)
def test_knw_l0_exact_for_tiny_support(updates, seed):
    from repro.l0 import KNWHammingNormEstimator

    estimator = KNWHammingNormEstimator(1 << 12, eps=0.2, magnitude_bound=512, seed=seed)
    frequencies = {}
    for item, delta in updates:
        estimator.update(item, delta)
        frequencies[item] = frequencies.get(item, 0) + delta
        if frequencies[item] == 0:
            del frequencies[item]
    truth = len(frequencies)
    if truth <= 90:
        assert estimator.estimate() == truth


# ---------------------------------------------------------------------------
# Workload zoo invariants (generators are pure functions of their seed)
# ---------------------------------------------------------------------------


def _brute_force_support(stream):
    """Exact L0/F0 by replaying the net frequency vector."""
    frequencies = {}
    for update in stream:
        frequencies[update.item] = frequencies.get(update.item, 0) + update.delta
    return sum(1 for value in frequencies.values() if value)


@settings(max_examples=15, deadline=None)
@given(
    st.sampled_from(sorted(workload_class_names())),
    st.integers(min_value=0, max_value=1 << 30),
)
def test_zoo_stream_ground_truth_matches_brute_force(cls_name, seed):
    scale = WorkloadScale(
        universe_size=1 << 12, length=400, key_count=8, epochs=3, updates_per_epoch=60
    )
    stream = make_workload(cls_name, "stream", seed=seed, scale=scale)
    assert stream.ground_truth() == _brute_force_support(stream)
    assert all(0 <= update.item < stream.universe_size for update in stream)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=1 << 30),
)
def test_full_deletion_churn_collapses_l0_to_zero(distinct, waves, seed):
    stream = churn_stream(
        1 << 12, distinct, waves=waves, survivor_fraction=0.0, seed=seed
    )
    assert stream.ground_truth() == 0
    assert _brute_force_support(stream) == 0


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=1, max_value=4),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=1 << 30),
)
def test_churn_survivor_count_is_exact(distinct, waves, fraction, seed):
    stream = churn_stream(
        1 << 12, distinct, waves=waves, survivor_fraction=fraction, seed=seed
    )
    assert stream.ground_truth() == waves * round(distinct * fraction)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=400),
    st.floats(min_value=0.0, max_value=8.0),
)
def test_zipf_probabilities_are_a_sorted_distribution(support, skew):
    probabilities = zipf_rank_probabilities(support, skew)
    assert len(probabilities) == support
    assert abs(sum(probabilities) - 1.0) < 1e-9
    assert all(
        first >= second
        for first, second in zip(probabilities, probabilities[1:])
    )


@given(st.integers(min_value=1, max_value=400))
def test_zipf_zero_skew_is_exactly_uniform(support):
    probabilities = zipf_rank_probabilities(support, 0.0)
    assert all(p == probabilities[0] for p in probabilities)


@given(st.integers(min_value=2, max_value=400))
def test_zipf_extreme_skew_is_degenerate(support):
    probabilities = zipf_rank_probabilities(support, 2000.0)
    assert probabilities[0] == 1.0
    assert all(p == 0.0 for p in probabilities[1:])


@settings(max_examples=15, deadline=None)
@given(
    st.sampled_from(sorted(NEAR_COLLISION_MODES)),
    st.integers(min_value=1, max_value=128),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=1 << 30),
)
def test_near_collision_streams_hit_requested_distinct(mode, distinct, repetitions, seed):
    stream = near_collision_stream(
        1 << 14, distinct, mode=mode, cluster_bits=5, repetitions=repetitions, seed=seed
    )
    assert len(stream) == distinct * repetitions
    assert stream.ground_truth() == distinct
    assert all(0 <= update.item < stream.universe_size for update in stream)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 30))
def test_keyed_churn_ground_truth_matches_brute_force(seed):
    scale = WorkloadScale(
        universe_size=1 << 12, length=300, key_count=6, epochs=3, updates_per_epoch=50
    )
    workload = make_workload("churn", "keyed", seed=seed, scale=scale)
    recount = {}
    for key, item, delta in zip(
        workload.keys.tolist(), workload.items.tolist(), workload.deltas.tolist()
    ):
        net = recount.setdefault(key, {})
        net[item] = net.get(item, 0) + delta
    expected = {
        key: sum(1 for value in net.values() if value) for key, net in recount.items()
    }
    assert workload.ground_truth() == expected


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from(sorted(workload_class_names())),
    st.integers(min_value=0, max_value=1 << 30),
)
def test_windowed_zoo_ground_truth_matches_window_recount(cls_name, seed):
    scale = WorkloadScale(
        universe_size=1 << 12, length=300, key_count=6, epochs=4, updates_per_epoch=40
    )
    workload = make_workload(cls_name, "windowed", seed=seed, scale=scale)
    for width in range(1, workload.epoch_count + 1):
        _, items, deltas = workload.window_slice(width)
        frequencies = {}
        if deltas is None:
            for item in items.tolist():
                frequencies[item] = 1
        else:
            for item, delta in zip(items.tolist(), deltas.tolist()):
                frequencies[item] = frequencies.get(item, 0) + delta
        expected = sum(1 for value in frequencies.values() if value)
        assert workload.ground_truth_window(width) == expected
