"""Tests for the Appendix A.2 natural-log lookup table (Lemma 7)."""

from __future__ import annotations

import math

import pytest

from repro.bitstructs import LogLookupTable
from repro.exceptions import ParameterError


class TestLogLookupTable:
    def test_requires_k_above_four(self):
        with pytest.raises(ParameterError):
            LogLookupTable(4)

    def test_zero_maps_to_zero(self):
        table = LogLookupTable(128)
        assert table.lookup(0) == 0.0

    def test_relative_accuracy_guarantee(self):
        # Lemma 7: relative accuracy nu = 1/sqrt(K) for every c in [0, 4K/5].
        for bins in (64, 256, 1024):
            table = LogLookupTable(bins)
            nu = table.relative_accuracy
            for c in range(1, table.max_argument + 1):
                assert table.relative_error(c) <= nu, (bins, c)

    def test_exact_matches_math_log(self):
        table = LogLookupTable(100)
        assert table.exact(20) == pytest.approx(math.log(0.8))

    def test_argument_bounds(self):
        table = LogLookupTable(100)
        with pytest.raises(ParameterError):
            table.lookup(table.max_argument + 1)
        with pytest.raises(ParameterError):
            table.lookup(-1)

    def test_space_is_sublinear_in_bins(self):
        # Lemma 7 charges O(nu^-1 log(1/nu)) = O(sqrt(K) log K) bits, which
        # must grow much more slowly than K itself.
        small = LogLookupTable(256).space_bits()
        large = LogLookupTable(256 * 16).space_bits()
        assert large < 16 * small

    def test_monotone_in_argument(self):
        table = LogLookupTable(512)
        previous = 0.0
        for c in range(0, table.max_argument, 7):
            value = table.lookup(c)
            assert value <= previous + 1e-12
            previous = value
