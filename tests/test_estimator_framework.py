"""Tests for the estimator framework: base classes, exact references, median, registry."""

from __future__ import annotations

import pytest

from repro.estimators import (
    ExactDistinctCounter,
    ExactHammingNorm,
    MedianEstimator,
    MedianTurnstileEstimator,
    describe_estimator,
    repetitions_for_failure_probability,
)
from repro.estimators.registry import (
    f0_algorithm_names,
    l0_algorithm_names,
    make_f0_estimator,
    make_l0_estimator,
)
from repro.exceptions import MergeError, ParameterError, SketchFailure, UpdateError
from repro.streams import distinct_items_stream, insert_delete_stream


class TestExactCounters:
    def test_exact_f0(self):
        counter = ExactDistinctCounter(1000)
        counter.update_many([1, 2, 2, 3, 999])
        assert counter.estimate() == 4.0
        assert 2 in counter

    def test_exact_f0_merge(self):
        a = ExactDistinctCounter(1000)
        b = ExactDistinctCounter(1000)
        a.update_many([1, 2])
        b.update_many([2, 3, 4])
        a.merge(b)
        assert a.estimate() == 4.0

    def test_exact_f0_merge_type_check(self):
        with pytest.raises(MergeError):
            ExactDistinctCounter(10).merge(ExactHammingNorm(10))  # type: ignore[arg-type]

    def test_exact_f0_space_grows(self):
        counter = ExactDistinctCounter(1 << 20)
        before = counter.space_bits()
        counter.update_many(range(100))
        assert counter.space_bits() > before

    def test_exact_f0_rejects_deletions_via_process_stream(self):
        counter = ExactDistinctCounter(100)
        stream = insert_delete_stream(100, 10, seed=1)
        with pytest.raises(UpdateError):
            counter.process_stream(stream)

    def test_exact_l0(self):
        norm = ExactHammingNorm(1000)
        norm.update(5, 3)
        norm.update(5, -3)
        norm.update(7, 1)
        assert norm.estimate() == 1.0
        assert norm.frequency(5) == 0
        assert norm.frequency(7) == 1

    def test_exact_l0_process_stream(self, turnstile_stream):
        norm = ExactHammingNorm(turnstile_stream.universe_size)
        assert norm.process_stream(turnstile_stream) == turnstile_stream.ground_truth()

    def test_describe_estimator(self):
        text = describe_estimator(ExactDistinctCounter(100))
        assert "exact-f0" in text and "bits" in text


class TestMedianAmplification:
    def test_repetitions_for_failure_probability(self):
        few = repetitions_for_failure_probability(0.1)
        many = repetitions_for_failure_probability(0.001)
        assert few < many
        assert few % 2 == 1 and many % 2 == 1
        with pytest.raises(ParameterError):
            repetitions_for_failure_probability(0.0)

    def test_median_estimator_over_exact_copies(self):
        wrapper = MedianEstimator(lambda index: ExactDistinctCounter(1000), repetitions=3)
        wrapper.update_many([1, 2, 3, 3])
        assert wrapper.estimate() == 3.0
        assert wrapper.space_bits() == sum(copy.space_bits() for copy in wrapper.copies)

    def test_median_requires_odd_repetitions(self):
        with pytest.raises(ParameterError):
            MedianEstimator(lambda index: ExactDistinctCounter(10), repetitions=4)

    def test_median_skips_failed_copies(self):
        class Failing(ExactDistinctCounter):
            def estimate(self) -> float:
                raise SketchFailure("boom")

        def factory(index: int):
            return Failing(100) if index == 0 else ExactDistinctCounter(100)

        wrapper = MedianEstimator(factory, repetitions=3)
        wrapper.update_many([1, 2])
        assert wrapper.estimate() == 2.0

    def test_median_all_failed_raises(self):
        class Failing(ExactDistinctCounter):
            def estimate(self) -> float:
                raise SketchFailure("boom")

        wrapper = MedianEstimator(lambda index: Failing(100), repetitions=1)
        with pytest.raises(SketchFailure):
            wrapper.estimate()

    def test_median_turnstile(self):
        wrapper = MedianTurnstileEstimator(
            lambda index: ExactHammingNorm(100), repetitions=3
        )
        wrapper.update(1, 5)
        wrapper.update(1, -5)
        wrapper.update(2, 1)
        assert wrapper.estimate() == 1.0

    def test_median_improves_knw_tail(self, medium_stream):
        from repro.core import KNWDistinctCounter

        truth = medium_stream.ground_truth()
        wrapper = MedianEstimator(
            lambda index: KNWDistinctCounter(
                medium_stream.universe_size, eps=0.1, seed=1000 + index
            ),
            repetitions=3,
        )
        for update in medium_stream:
            wrapper.update(update.item)
        assert abs(wrapper.estimate() - truth) / truth < 0.35


class TestRegistry:
    def test_f0_names_include_core_and_baselines(self):
        names = f0_algorithm_names()
        for expected in ("knw", "knw-fast", "knw-paper", "hyperloglog", "kmv", "exact"):
            assert expected in names

    def test_l0_names(self):
        names = l0_algorithm_names()
        assert "knw-l0" in names and "ganguly" in names and "exact-l0" in names

    def test_make_f0_estimator_unknown_name(self):
        with pytest.raises(ParameterError):
            make_f0_estimator("no-such-algorithm", 100, 0.1)

    # Algorithms whose guarantee at this stream size is only constant-factor
    # (AMS by design; the literal paper-constant KNW configurations have a
    # large hidden constant at practical eps — see DESIGN.md section 5).
    CONSTANT_FACTOR_ONLY = {"ams", "knw-paper", "knw-l0-paper"}

    def test_every_f0_algorithm_runs(self):
        stream = distinct_items_stream(1 << 14, 300, repetitions=2, seed=44)
        truth = stream.ground_truth()
        for name in f0_algorithm_names():
            estimator = make_f0_estimator(name, stream.universe_size, 0.15, seed=5)
            estimate = estimator.process_stream(stream)
            assert estimate >= 0
            if name in self.CONSTANT_FACTOR_ONLY:
                assert truth / 8 <= estimate <= 8 * truth, name
            else:
                assert abs(estimate - truth) / truth < 0.6, name

    def test_every_l0_algorithm_runs(self):
        stream = insert_delete_stream(1 << 12, 400, delete_fraction=0.5, seed=45)
        truth = stream.ground_truth()
        for name in l0_algorithm_names():
            estimator = make_l0_estimator(name, stream.universe_size, 0.15, 4, seed=5)
            estimate = estimator.process_stream(stream)
            assert estimate >= 0
            if name in self.CONSTANT_FACTOR_ONLY:
                assert truth / 8 <= estimate <= 8 * truth, name
            else:
                assert abs(estimate - truth) / truth < 0.6, name
