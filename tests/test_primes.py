"""Tests for the prime utilities behind the field hashing and fingerprints."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ParameterError
from repro.hashing.primes import (
    MERSENNE_31,
    MERSENNE_61,
    field_prime_for_universe,
    is_prime,
    next_prime,
    prev_prime,
    primes_in_range,
    random_prime,
)


class TestIsPrime:
    def test_small_primes(self):
        known = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
        for value in range(50):
            assert is_prime(value) == (value in known)

    def test_mersenne_primes(self):
        assert is_prime(MERSENNE_31)
        assert is_prime(MERSENNE_61)

    def test_carmichael_numbers_are_composite(self):
        # Classic Fermat pseudoprimes that a naive test would accept.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(carmichael)

    def test_large_composites(self):
        assert not is_prime(MERSENNE_61 - 1)
        assert not is_prime((1 << 61) + 1)


class TestPrimeSearch:
    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(14) == 17
        assert next_prime(89) == 97

    def test_prev_prime(self):
        assert prev_prime(3) == 2
        assert prev_prime(10) == 7
        assert prev_prime(100) == 97

    def test_prev_prime_rejects_small(self):
        with pytest.raises(ParameterError):
            prev_prime(2)

    def test_primes_in_range(self):
        assert list(primes_in_range(10, 30)) == [11, 13, 17, 19, 23, 29]

    def test_primes_in_range_limit(self):
        assert list(primes_in_range(2, 1000, limit=4)) == [2, 3, 5, 7]


class TestRandomPrime:
    def test_in_interval(self):
        rng = random.Random(5)
        for _ in range(20):
            prime = random_prime(1000, 5000, rng=rng)
            assert 1000 <= prime <= 5000
            assert is_prime(prime)

    def test_reproducible_with_seeded_rng(self):
        first = random_prime(100, 10000, rng=random.Random(9))
        second = random_prime(100, 10000, rng=random.Random(9))
        assert first == second

    def test_empty_interval_raises(self):
        with pytest.raises(ParameterError):
            random_prime(24, 28)  # no prime between 24 and 28

    def test_invalid_bounds_raise(self):
        with pytest.raises(ParameterError):
            random_prime(1, 10)
        with pytest.raises(ParameterError):
            random_prime(50, 40)


class TestFieldPrime:
    def test_small_universe_gets_small_prime(self):
        prime = field_prime_for_universe(100)
        assert prime >= 100
        assert is_prime(prime)

    def test_medium_universe_gets_mersenne31(self):
        assert field_prime_for_universe(1 << 24) == MERSENNE_31

    def test_large_universe_gets_mersenne61(self):
        assert field_prime_for_universe(1 << 40) == MERSENNE_61

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            field_prime_for_universe(0)
