"""Tests for the exception hierarchy and its use across the library."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    MergeError,
    ParameterError,
    ReproError,
    SketchFailure,
    StreamFormatError,
    UpdateError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exception_type in (
            ParameterError,
            SketchFailure,
            UpdateError,
            MergeError,
            StreamFormatError,
        ):
            assert issubclass(exception_type, ReproError)

    def test_value_error_compatibility(self):
        # Parameter/update/merge/stream problems should also be catchable as
        # ValueError by callers that do not know about the library hierarchy.
        for exception_type in (ParameterError, UpdateError, MergeError, StreamFormatError):
            assert issubclass(exception_type, ValueError)

    def test_sketch_failure_is_runtime_error(self):
        assert issubclass(SketchFailure, RuntimeError)


class TestSingleCatchAll:
    def test_library_errors_catchable_with_one_clause(self):
        from repro.core import KNWDistinctCounter

        counter = KNWDistinctCounter(1 << 10, eps=0.2, seed=1)
        with pytest.raises(ReproError):
            counter.update(1 << 10)  # outside the universe

        from repro.streams import MaterializedStream, Update

        with pytest.raises(ReproError):
            MaterializedStream([Update(99, 1)], universe_size=10)

        from repro.estimators import ExactDistinctCounter, ExactHammingNorm

        with pytest.raises(ReproError):
            ExactDistinctCounter(10).merge(ExactHammingNorm(10))  # type: ignore[arg-type]
