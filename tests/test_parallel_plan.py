"""Plan-executor capabilities: shard retry, pipelined handoff, the pool.

``tests/test_parallel.py`` pins the *unchanged* contracts of the five
entry points (bit-identity across shard counts, execution modes, and
mid-stream takeover).  This suite pins what the declarative engine
*added*:

* **per-shard failure recovery** — a worker that raises mid-shard, or
  dies by SIGKILL (breaking the whole pool), costs only its shard; the
  recovered result is bit-identical to the zero-failure run for every
  shard-deterministic family, and a shard that keeps failing raises
  :class:`~repro.exceptions.WorkerFailureError`;
* **pipelined vs. barrier handoff** — both disciplines produce the same
  bytes (the speed comparison lives in
  ``benchmarks/bench_parallel_ingest.py``);
* **the persistent worker pool** — lazily created, reused across calls,
  grown by recreation, explicitly shut down, and fork-safe;
* **shared-payload staging** — the pool-initializer replacement used by
  the sweep harness and the data-cleaning profiler.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.estimators.registry import make_f0_estimator, make_l0_estimator
from repro.exceptions import ParameterError, WorkerFailureError
from repro.parallel import (
    IngestPlan,
    ShardFault,
    default_workers,
    execute_plan,
    get_pool,
    mergeable_f0_names,
    mergeable_l0_names,
    parallel_merge_shards,
    pool_stats,
    reset_pool,
    shard_items,
    shard_keyed_updates,
    shard_updates,
    shutdown_pool,
    stage_shared,
    load_shared,
    discard_shared,
)
from repro.parallel.api import _epoch_shards
from repro.store import SketchStore
from repro.window import WindowedSketch

UNIVERSE = 1 << 16
EPS = 0.25
SEED = 71
SHARDS = 3


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    """Leave no persistent pool behind for unrelated test modules."""
    yield
    shutdown_pool()


@pytest.fixture(scope="module")
def items():
    return np.random.RandomState(29).randint(0, UNIVERSE, size=4000).astype(np.uint64)


@pytest.fixture(scope="module")
def updates(items):
    deltas = np.random.RandomState(31).randint(1, 4, size=len(items)).astype(np.int64)
    return items, deltas


def _f0_plan(items, fault=None, **overrides):
    options = dict(
        axis="range",
        recipe="clone",
        discipline="merge-reduce",
        kind="items",
        shards=shard_items(items, SHARDS),
        fault=fault,
    )
    options.update(overrides)
    return IngestPlan(**options)


def _l0_plan(updates, fault=None, **overrides):
    options = dict(
        axis="range",
        recipe="cleared-clone",
        discipline="additive",
        kind="updates",
        shards=shard_updates(updates, SHARDS),
        fault=fault,
    )
    options.update(overrides)
    return IngestPlan(**options)


def _sequential_f0(name, items):
    estimator = make_f0_estimator(name, UNIVERSE, EPS, seed=SEED)
    estimator.update_batch(items)
    return estimator


def _sequential_l0(name, updates):
    estimator = make_l0_estimator(name, UNIVERSE, EPS, 1 << 12, seed=SEED)
    estimator.update_batch(*updates)
    return estimator


class TestShardFaultRecovery:
    """Raise and SIGKILL faults trigger shard-only retry, bit-identically."""

    @pytest.mark.parametrize(
        "name", mergeable_f0_names(shard_deterministic_only=True)
    )
    @pytest.mark.parametrize("mode", ["raise", "kill"])
    def test_f0_recovers_bit_identical(self, items, name, mode):
        sequential = _sequential_f0(name, items)
        recovered = make_f0_estimator(name, UNIVERSE, EPS, seed=SEED)
        plan = _f0_plan(items, fault={1: ShardFault(mode)})
        execute_plan(plan, recovered, workers=2, execution="processes")
        assert recovered.state_dict() == sequential.state_dict()
        assert recovered.estimate() == sequential.estimate()

    @pytest.mark.parametrize("name", mergeable_l0_names())
    @pytest.mark.parametrize("mode", ["raise", "kill"])
    def test_l0_recovers_bit_identical(self, updates, name, mode):
        sequential = _sequential_l0(name, updates)
        recovered = make_l0_estimator(name, UNIVERSE, EPS, 1 << 12, seed=SEED)
        plan = _l0_plan(updates, fault={0: ShardFault(mode)})
        execute_plan(plan, recovered, workers=2, execution="processes")
        assert recovered.state_dict() == sequential.state_dict()
        assert recovered.estimate() == sequential.estimate()

    def test_every_shard_faulted_still_recovers(self, items):
        sequential = _sequential_f0("hyperloglog", items)
        recovered = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        fault = {index: ShardFault("raise") for index in range(SHARDS)}
        plan = _f0_plan(items, fault=fault)
        execute_plan(plan, recovered, workers=2, execution="processes")
        assert recovered.state_dict() == sequential.state_dict()

    def test_inline_execution_retries_too(self, items):
        sequential = _sequential_f0("kmv", items)
        recovered = make_f0_estimator("kmv", UNIVERSE, EPS, seed=SEED)
        plan = _f0_plan(items, fault={2: ShardFault("raise")})
        execute_plan(plan, recovered, workers=1, execution="inline")
        assert recovered.state_dict() == sequential.state_dict()

    def test_inline_downgrades_kill_to_raise(self, items):
        """A kill fault must not SIGKILL the coordinator under inline."""
        sequential = _sequential_f0("hyperloglog", items)
        recovered = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        plan = _f0_plan(items, fault={0: ShardFault("kill")})
        execute_plan(plan, recovered, workers=1, execution="inline")
        assert recovered.state_dict() == sequential.state_dict()

    def test_keyed_plan_recovers_bit_identical(self):
        """The faulted run must equal the zero-failure sharded run exactly.

        (Key-range sharding registers store rows in shard order rather
        than stream-first-occurrence order, so the zero-failure sharded
        run — not sequential grouped ingestion — is the byte-level
        reference; key-wise equivalence to sequential ingestion is
        pinned by ``tests/test_sketch_store.py``.)
        """
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 12, size=3000, dtype=np.int64)
        values = rng.integers(0, UNIVERSE, size=3000, dtype=np.uint64)

        def run(fault):
            store = SketchStore.for_family(
                "hyperloglog", UNIVERSE, eps=0.1, seed=SEED
            )
            plan = IngestPlan(
                axis="key",
                recipe="cleared-clone",
                discipline="merge-reduce",
                kind="keyed",
                shards=shard_keyed_updates(keys, values, shards=SHARDS),
                fault=fault,
            )
            execute_plan(plan, store, workers=2, execution="processes")
            return store

        reference = run(None)
        recovered = run({1: ShardFault("raise")})
        assert recovered.state_dict() == reference.state_dict()

    def test_windowed_plan_recovers_bit_identical(self):
        rng = np.random.default_rng(7)
        epochs = np.sort(rng.integers(0, 6, size=2400)).astype(np.int64)
        values = rng.integers(0, UNIVERSE, size=2400, dtype=np.uint64)
        sequential = WindowedSketch(
            make_f0_estimator("hyperloglog", UNIVERSE, EPS, SEED), retention=8
        )
        sequential.ingest_timestamped(epochs, values)
        recovered = WindowedSketch(
            make_f0_estimator("hyperloglog", UNIVERSE, EPS, SEED), retention=8
        )
        plan = IngestPlan(
            axis="epoch",
            recipe="template-epochs",
            discipline="adopt-in-order",
            kind="epochs",
            shards=_epoch_shards(epochs, values, None, None, None, SHARDS),
            batch_size=None,
            meta=("sketch", recovered.turnstile),
            fault={0: ShardFault("raise")},
        )
        execute_plan(plan, recovered, workers=2, execution="processes")
        assert recovered.state_dict() == sequential.state_dict()

    def test_retry_budget_exhaustion_raises(self, items):
        estimator = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        plan = _f0_plan(items, fault={1: ShardFault("raise", failures=5)})
        with pytest.raises(WorkerFailureError):
            execute_plan(plan, estimator, workers=1, execution="inline")

    def test_retry_budget_exhaustion_raises_in_processes(self, items):
        estimator = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        plan = _f0_plan(items, fault={1: ShardFault("kill", failures=5)})
        with pytest.raises(WorkerFailureError):
            execute_plan(plan, estimator, workers=2, execution="processes")

    def test_zero_retries_fails_on_first_fault(self, items):
        estimator = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        plan = _f0_plan(items, fault={0: ShardFault("raise")}, retries=0)
        with pytest.raises(WorkerFailureError):
            execute_plan(plan, estimator, workers=1, execution="inline")

    def test_caller_owned_executor_survives_raise_faults(self, items):
        sequential = _sequential_f0("hyperloglog", items)
        recovered = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        plan = _f0_plan(items, fault={1: ShardFault("raise")})
        with ProcessPoolExecutor(max_workers=2) as pool:
            execute_plan(plan, recovered, executor=pool)
        assert recovered.state_dict() == sequential.state_dict()

    def test_caller_owned_executor_broken_by_kill_is_not_rebuilt(self, items):
        estimator = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        plan = _f0_plan(items, fault={1: ShardFault("kill")})
        pool = ProcessPoolExecutor(max_workers=2)
        try:
            with pytest.raises(WorkerFailureError):
                execute_plan(plan, estimator, executor=pool)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def test_fault_spec_validation(self):
        with pytest.raises(ParameterError):
            ShardFault(mode="explode")
        with pytest.raises(ParameterError):
            ShardFault(failures=0)


class TestHandoff:
    """Pipelined and barrier handoff must agree byte-for-byte."""

    @pytest.mark.parametrize("name", ["hyperloglog", "kmv", "linear-counting"])
    def test_handoffs_bit_identical(self, items, name):
        states = {}
        for handoff in ("pipelined", "barrier"):
            estimator = make_f0_estimator(name, UNIVERSE, EPS, seed=SEED)
            parallel_merge_shards(
                estimator,
                shard_items(items, SHARDS),
                workers=2,
                execution="processes",
                handoff=handoff,
            )
            states[handoff] = estimator.state_dict()
        assert states["pipelined"] == states["barrier"]
        assert states["pipelined"] == _sequential_f0(name, items).state_dict()

    def test_unknown_handoff_rejected(self, items):
        estimator = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        with pytest.raises(ParameterError):
            parallel_merge_shards(
                estimator, shard_items(items, SHARDS), handoff="osmosis"
            )


class TestPlanValidation:
    def test_unknown_axis_recipe_discipline_kind(self):
        with pytest.raises(ParameterError):
            IngestPlan("diagonal", "clone", "merge-reduce", "items", [])
        with pytest.raises(ParameterError):
            IngestPlan("range", "fresh", "merge-reduce", "items", [])
        with pytest.raises(ParameterError):
            IngestPlan("range", "clone", "consensus", "items", [])
        with pytest.raises(ParameterError):
            IngestPlan("range", "clone", "merge-reduce", "frames", [])
        with pytest.raises(ParameterError):
            IngestPlan("range", "clone", "merge-reduce", "items", [], retries=-1)


class TestDefaultWorkers:
    def test_respects_cpu_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 2, 5}, raising=False)
        assert default_workers() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        def unavailable(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(os, "sched_getaffinity", unavailable, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert default_workers() == 6


class TestPersistentPool:
    def test_pool_is_reused_across_calls(self):
        shutdown_pool()
        first = get_pool(1)
        created = pool_stats()["created"]
        assert get_pool(1) is first
        assert pool_stats()["created"] == created

    def test_pool_grows_by_recreation_and_never_shrinks(self):
        shutdown_pool()
        small = get_pool(1)
        grown = get_pool(2)
        assert grown is not small
        assert pool_stats()["size"] == 2
        # Asking for less keeps the bigger pool.
        assert get_pool(1) is grown
        assert pool_stats()["size"] == 2

    def test_reset_pool_discards(self):
        get_pool(1)
        reset_pool()
        assert not pool_stats()["alive"]

    def test_shutdown_pool_discards(self):
        get_pool(1)
        shutdown_pool()
        assert not pool_stats()["alive"]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ParameterError):
            get_pool(0)

    def test_fork_child_does_not_inherit_pool(self):
        get_pool(1)
        pid = os.fork()
        if pid == 0:  # child: the at-fork hook must have dropped the pool
            os._exit(0 if not pool_stats()["alive"] else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        assert pool_stats()["alive"]  # the parent's pool is untouched

    def test_pool_executes_after_fork_in_child(self):
        get_pool(1)
        pid = os.fork()
        if pid == 0:
            ok = False
            try:
                pool = get_pool(1)
                ok = pool.submit(os.getpid).result(timeout=60) > 0
                shutdown_pool()
            finally:
                os._exit(0 if ok else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0


class TestSharedStaging:
    def test_roundtrip_and_discard(self):
        payload = {"stream": list(range(64)), "eps": 0.25}
        token = stage_shared(payload)
        try:
            assert os.path.exists(token)
            assert load_shared(token) == payload
            # Memoized: a second load returns the cached object.
            assert load_shared(token) is load_shared(token)
        finally:
            discard_shared(token)
        assert not os.path.exists(token)
        discard_shared(token)  # idempotent
