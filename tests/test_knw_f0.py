"""Tests for the KNW F0 estimators: Figure 3, the combined counter, and merging."""

from __future__ import annotations

import pytest

from repro.core import (
    BitMatrixSkeleton,
    KNWDistinctCounter,
    KNWFigure3Sketch,
    bins_for_eps,
)
from repro.exceptions import MergeError, ParameterError, SketchFailure
from repro.streams import (
    distinct_items_stream,
    duplicated_union_streams,
    low_bits_adversarial_stream,
    zipf_stream,
)

UNIVERSE = 1 << 16


class TestBinsForEps:
    def test_power_of_two_and_minimum(self):
        assert bins_for_eps(0.1) == 128
        assert bins_for_eps(0.5) == 32
        assert bins_for_eps(0.03) == 2048

    def test_invalid_eps(self):
        with pytest.raises(ParameterError):
            bins_for_eps(0.0)
        with pytest.raises(ParameterError):
            bins_for_eps(1.5)


class TestFigure3Sketch:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            KNWFigure3Sketch(1)
        with pytest.raises(ParameterError):
            KNWFigure3Sketch(UNIVERSE, bins=48)
        with pytest.raises(ParameterError):
            KNWFigure3Sketch(UNIVERSE, bins=64, offset_divisor=3)
        with pytest.raises(ParameterError):
            KNWFigure3Sketch(UNIVERSE, bins=64, offset_divisor=128)

    def test_paper_offset_divisor_default(self):
        sketch = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=1)
        assert sketch.offset_divisor == KNWFigure3Sketch.PAPER_OFFSET_DIVISOR == 32

    def test_constant_factor_estimate_in_analysed_regime(self):
        # With the paper's conservative constants the estimate is a
        # (1 +/- O(eps)) approximation with an unspecified constant; this
        # checks the constant-factor behaviour on a comfortably large stream.
        stream = distinct_items_stream(UNIVERSE, 6000, repetitions=1, seed=50)
        sketch = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=2, rough_counters=16)
        estimate = sketch.process_stream(stream)
        assert 0.3 * 6000 <= estimate <= 3.0 * 6000

    def test_practical_divisor_improves_accuracy(self):
        stream = distinct_items_stream(UNIVERSE, 6000, repetitions=1, seed=51)
        practical = KNWFigure3Sketch(
            UNIVERSE, eps=0.1, seed=3, rough_counters=16, offset_divisor=2
        )
        estimate = practical.process_stream(stream)
        assert abs(estimate - 6000) / 6000 < 0.3

    def test_occupied_counters_tracks_estimator_input(self):
        sketch = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=4, offset_divisor=2)
        assert sketch.occupied_counters() == 0
        for item in range(500):
            sketch.update(item)
        assert 0 < sketch.occupied_counters() <= sketch.bins

    def test_no_fail_on_ordinary_streams(self):
        stream = zipf_stream(UNIVERSE, 8000, seed=52)
        sketch = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=5, offset_divisor=2)
        sketch.process_stream(stream)
        assert not sketch.has_failed()

    def test_fail_raises_sketch_failure(self):
        sketch = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=6)
        sketch._failed = True
        with pytest.raises(SketchFailure):
            sketch.estimate()

    def test_space_budget_stays_within_fail_bound(self):
        sketch = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=7, offset_divisor=2)
        for item in range(0, UNIVERSE, 7):
            sketch.update(item)
        assert sketch._bit_budget <= sketch.FAIL_FACTOR * sketch.bins
        breakdown = sketch.space_breakdown().as_dict()
        assert breakdown["packed-counters"] <= 4 * sketch.bins

    def test_update_validates_universe(self):
        sketch = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=8)
        with pytest.raises(ParameterError):
            sketch.update(UNIVERSE)


class TestCombinedCounter:
    def test_exact_for_tiny_cardinalities(self):
        counter = KNWDistinctCounter(UNIVERSE, eps=0.05, seed=9)
        for item in [5, 9, 9, 12, 5]:
            counter.update(item)
        assert counter.estimate() == 3.0

    def test_small_regime_accuracy(self, small_stream):
        counter = KNWDistinctCounter(UNIVERSE, eps=0.05, seed=10)
        estimate = counter.process_stream(small_stream)
        truth = small_stream.ground_truth()
        assert abs(estimate - truth) / truth < 0.05

    def test_medium_regime_accuracy(self, medium_stream):
        counter = KNWDistinctCounter(UNIVERSE, eps=0.05, seed=11)
        estimate = counter.process_stream(medium_stream)
        truth = medium_stream.ground_truth()
        assert abs(estimate - truth) / truth < 0.25

    def test_adversarial_low_bits_stream(self):
        # Identifiers with adversarial low-order bits must not fool the
        # estimator because levels come from a hash, not the raw identifier.
        stream = low_bits_adversarial_stream(UNIVERSE, 3000)
        counter = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=12)
        estimate = counter.process_stream(stream)
        assert abs(estimate - 3000) / 3000 < 0.35

    def test_mid_stream_reporting(self, medium_stream):
        counter = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=13)
        positions = [len(medium_stream) // 4, len(medium_stream) // 2, len(medium_stream)]
        truths = medium_stream.ground_truth_at(positions)
        cursor = 0
        for position, truth in zip(positions, truths):
            while cursor < position:
                counter.update(medium_stream[cursor].item)
                cursor += 1
            estimate = counter.estimate()
            assert abs(estimate - truth) / truth < 0.4

    def test_space_breakdown_charges_hash_bundle_once(self):
        counter = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=14)
        breakdown = counter.space_breakdown().as_dict()
        assert "hash-bundle" in breakdown
        assert counter.space_bits() == sum(breakdown.values())

    def test_space_scales_with_eps_and_universe(self):
        coarse = KNWDistinctCounter(1 << 16, eps=0.2, seed=15).space_bits()
        fine = KNWDistinctCounter(1 << 16, eps=0.05, seed=15).space_bits()
        assert fine > coarse
        bigger_universe = KNWDistinctCounter(1 << 24, eps=0.2, seed=15).space_bits()
        assert bigger_universe > coarse

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            KNWDistinctCounter(UNIVERSE, eps=0.0)
        with pytest.raises(ParameterError):
            KNWDistinctCounter(1, eps=0.1)


class TestMerging:
    def test_merged_counter_estimates_union(self):
        left, right = duplicated_union_streams(UNIVERSE, 1500, overlap_fraction=0.4, seed=60)
        union_truth = left.concat(right).ground_truth()
        a = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=77)
        b = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=77)
        a.process_stream(left)
        b.process_stream(right)
        a.merge(b)
        assert abs(a.estimate() - union_truth) / union_truth < 0.35

    def test_merge_requires_matching_seed(self):
        a = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=1)
        b = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=2)
        with pytest.raises(MergeError):
            a.merge(b)

    def test_merge_requires_explicit_seed(self):
        a = KNWDistinctCounter(UNIVERSE, eps=0.1)
        b = KNWDistinctCounter(UNIVERSE, eps=0.1)
        with pytest.raises(MergeError):
            a.merge(b)

    def test_merge_rejects_other_types(self):
        a = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=1)
        with pytest.raises(MergeError):
            a.merge(object())  # type: ignore[arg-type]

    def test_figure3_merge_equals_single_pass(self):
        left = distinct_items_stream(UNIVERSE, 2000, seed=61)
        right = distinct_items_stream(UNIVERSE, 2000, seed=62)
        merged = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=33, offset_divisor=2)
        other = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=33, offset_divisor=2)
        merged.process_stream(left)
        other.process_stream(right)
        merged.merge(other)
        solo = KNWFigure3Sketch(UNIVERSE, eps=0.1, seed=33, offset_divisor=2)
        solo.process_stream(left.concat(right))
        # The merged state and the single-pass state see the same items with
        # the same hash functions; estimates must agree up to the rebasing
        # schedule (bounded by a factor well inside the accuracy band).
        assert abs(merged.estimate() - solo.estimate()) / solo.estimate() < 0.25


class TestSkeletonAgreement:
    def test_skeleton_with_exact_oracle_is_accurate(self):
        stream = distinct_items_stream(UNIVERSE, 4000, seed=70)
        skeleton = BitMatrixSkeleton(UNIVERSE, eps=0.1, seed=21, oracle=4000.0)
        estimate = skeleton.process_stream(stream)
        assert abs(estimate - 4000) / 4000 < 0.4

    def test_skeleton_with_internal_rough_estimator(self):
        stream = distinct_items_stream(UNIVERSE, 4000, seed=71)
        skeleton = BitMatrixSkeleton(UNIVERSE, eps=0.1, seed=22)
        estimate = skeleton.process_stream(stream)
        assert abs(estimate - 4000) / 4000 < 0.6

    def test_skeleton_uses_more_space_than_compressed_sketch(self):
        skeleton = BitMatrixSkeleton(UNIVERSE, eps=0.05, seed=23)
        compressed = KNWFigure3Sketch(UNIVERSE, eps=0.05, seed=23)
        assert skeleton.matrix.space_bits() > 4 * compressed.bins
