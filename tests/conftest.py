"""Shared fixtures for the test suite.

The fixtures keep universes and streams small so the whole suite runs in a
few minutes in pure Python while still exercising every regime (small-F0,
the Figure 3 handover, rebasing, turnstile deletions).
"""

from __future__ import annotations

import pytest

from repro.streams import distinct_items_stream, insert_delete_stream


#: Universe size used by most tests: large enough for 16-bit identifiers
#: and several subsampling levels, small enough to keep hashing cheap.
SMALL_UNIVERSE = 1 << 16

#: Universe used by tests that need more levels (e.g. RoughEstimator range).
LARGE_UNIVERSE = 1 << 20


@pytest.fixture
def small_universe() -> int:
    """Universe size shared by most estimator tests."""
    return SMALL_UNIVERSE


@pytest.fixture
def large_universe() -> int:
    """Larger universe for tests that need many subsampling levels."""
    return LARGE_UNIVERSE


@pytest.fixture
def medium_stream():
    """An insertion-only stream with exactly 2000 distinct items."""
    return distinct_items_stream(SMALL_UNIVERSE, 2000, repetitions=2, seed=101)


@pytest.fixture
def small_stream():
    """An insertion-only stream with exactly 60 distinct items."""
    return distinct_items_stream(SMALL_UNIVERSE, 60, repetitions=3, seed=102)


@pytest.fixture
def turnstile_stream():
    """A turnstile stream whose final L0 is exactly 600."""
    return insert_delete_stream(
        SMALL_UNIVERSE, 1200, delete_fraction=0.5, copies=2, seed=103
    )
