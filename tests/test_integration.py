"""End-to-end integration tests across modules.

These exercise the full pipelines the examples and benchmarks rely on:
dataset -> estimator -> analysis harness -> tables, mid-stream reporting,
and the small-to-large regime handover of the combined estimators.
"""

from __future__ import annotations

import pytest

from repro import (
    FastKNWDistinctCounter,
    KNWDistinctCounter,
    KNWHammingNormEstimator,
    MedianEstimator,
    make_f0_estimator,
)
from repro.analysis import Table, format_bits, run_f0, run_l0_by_name, space_sweep
from repro.streams import (
    insert_delete_stream,
    packet_trace,
    query_log,
    table_column,
)

UNIVERSE = 1 << 16


class TestEndToEndF0:
    def test_query_log_pipeline(self):
        stream = query_log(UNIVERSE, queries=6000, distinct_queries=1500, seed=1)
        counter = KNWDistinctCounter(UNIVERSE, eps=0.05, seed=2)
        result = run_f0(counter, stream, checkpoint_positions=stream.checkpoints(3))
        assert result.truth == 1500
        assert result.relative_error < 0.25
        assert len(result.checkpoints) == 3
        # Estimates must be available (and sane) at every checkpoint.
        for checkpoint in result.checkpoints:
            assert checkpoint.estimate >= 0

    def test_packet_trace_pipeline_fast_variant(self):
        stream, _ = packet_trace(UNIVERSE, packets=5000, distinct_flows=900, seed=3)
        counter = FastKNWDistinctCounter(UNIVERSE, eps=0.05, seed=4)
        result = run_f0(counter, stream)
        assert result.relative_error < 0.3

    def test_handover_continuity(self):
        # The estimate must stay sane across the small-F0 -> Figure 3
        # handover (no order-of-magnitude jump at the switch point).
        counter = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=5)
        previous = 0.0
        for item in range(1500):
            counter.update(item)
            if item % 25 == 24:
                estimate = counter.estimate()
                truth = item + 1
                assert 0.4 * truth <= estimate <= 2.5 * truth
                assert estimate >= 0.4 * previous
                previous = estimate

    def test_median_wrapper_over_registry_algorithm(self):
        stream = table_column(UNIVERSE, rows=4000, distinct_values=800, seed=6)
        wrapper = MedianEstimator(
            lambda index: make_f0_estimator("knw", UNIVERSE, 0.1, seed=100 + index),
            repetitions=3,
        )
        result = run_f0(wrapper, stream)
        assert result.relative_error < 0.25
        assert result.space_bits == wrapper.space_bits()


class TestEndToEndL0:
    def test_turnstile_pipeline_by_name(self):
        stream = insert_delete_stream(UNIVERSE, 2500, delete_fraction=0.4, copies=2, seed=7)
        result = run_l0_by_name("knw-l0", stream, eps=0.1, seed=8)
        assert result.relative_error < 0.3

    def test_knw_l0_and_ganguly_agree_on_insert_only(self):
        stream = insert_delete_stream(UNIVERSE, 1200, delete_fraction=0.0, seed=9)
        truth = stream.ground_truth()
        knw = KNWHammingNormEstimator(UNIVERSE, eps=0.1, magnitude_bound=4, seed=10)
        knw_estimate = knw.process_stream(stream)
        assert abs(knw_estimate - truth) / truth < 0.3


class TestReporting:
    def test_space_sweep_feeds_table(self):
        stream = table_column(UNIVERSE, rows=1500, distinct_values=400, seed=11)
        sweep = space_sweep(["knw", "hyperloglog"], stream, [0.1])
        table = Table("Space at eps=0.1", ["algorithm", "bits"])
        for algorithm, per_eps in sorted(sweep.items()):
            table.add_row([algorithm, format_bits(per_eps[0.1])])
        rendering = table.render_text()
        assert "knw" in rendering and "hyperloglog" in rendering

    def test_sketch_sizes_are_universe_scale_independent_of_stream_length(self):
        short = table_column(UNIVERSE, rows=500, distinct_values=200, seed=12)
        long = table_column(UNIVERSE, rows=5000, distinct_values=200, seed=12)
        counter_short = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=13)
        counter_long = KNWDistinctCounter(UNIVERSE, eps=0.1, seed=13)
        counter_short.process_stream(short)
        counter_long.process_stream(long)
        # Same distinct count, 10x the stream length: the sketch must not grow.
        assert counter_long.space_bits() <= counter_short.space_bits() * 1.05


@pytest.mark.parametrize("eps", [0.2, 0.1, 0.05])
def test_space_grows_as_inverse_square_of_eps(eps):
    counter = KNWDistinctCounter(UNIVERSE, eps=eps, seed=20)
    # The counter storage term must be Theta(1/eps^2) bits: allow generous
    # constants but verify the right order of growth against eps=0.2.
    reference = KNWDistinctCounter(UNIVERSE, eps=0.2, seed=20)
    ratio = counter.bins / reference.bins
    expected_ratio = (0.2 / eps) ** 2
    assert 0.5 * expected_ratio <= ratio <= 2.0 * expected_ratio
