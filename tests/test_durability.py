"""Durable persistence: WAL framing, recovery semantics, crash injection.

The proof obligations of :mod:`repro.durability`, from the bottom up:

* **log layer** — checksummed record framing round-trips; segments
  rotate; a second opener of the same directory fails fast on the
  advisory lock instead of interleaving writes;
* **checkpoint layer** — ``recover()`` rebuilds state *bit-identical*
  (equal ``to_bytes``) to the uninterrupted same-seed run for every
  registry family, tolerates torn tails (truncate-and-quarantine, never
  crash), detects mid-log corruption via checksums (stop at the last
  good record, structured :class:`~repro.durability.RecoveryReport`),
  falls back past a damaged snapshot, and compacts superseded files;
* **crash injection** — a subprocess ingests a seeded workload from the
  zoo and SIGKILLs itself at seed-stamped byte offsets / record counts
  (``DURABILITY_KILLS`` tunes how many cycles run); recovery of what it
  left behind must be bit-identical to a clean same-seed prefix run;
* **consumers** — the analysis runner's ``persist_dir``, the plan
  executor's ``spool_dir``, and the flow monitor's ``persist_dir``
  each survive interruption with results identical to the undisturbed
  path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import serialize
from repro.apps.network_monitor import FlowCardinalityMonitor
from repro.durability import (
    RECORD_KIND_DELTA,
    Checkpointer,
    DurableLog,
    recover,
)
from repro.durability.crashtest import (
    build_target,
    default_spec,
    iter_delta_trees,
    kill_points,
    run_clean,
    run_crash_cycle,
)
from repro.durability.log import encode_record, scan_segment
from repro.analysis.runner import run_f0_by_name, run_l0_by_name
from repro.estimators.registry import (
    f0_algorithm_names,
    l0_algorithm_names,
    make_f0_estimator,
)
from repro.exceptions import ParameterError, PersistenceError
from repro.parallel import (
    IngestPlan,
    ShardFault,
    execute_plan,
    get_pool,
    pool_stats,
    reset_pool,
    shard_items,
    shutdown_pool,
)
from repro.streams import distinct_items_stream, insert_delete_stream
from repro.streams.datasets import packet_trace

UNIVERSE = 1 << 12
EPS = 0.25
SEED = 17

#: Tiny workload knobs: each family replays in well under a second.
TEST_SCALE = dict(
    universe_size=UNIVERSE, length=1200, key_count=24, epochs=4, updates_per_epoch=250
)

#: Crash-injection cycles per spec; CI smoke tunes this via the environment.
KILL_CYCLES = int(os.environ.get("DURABILITY_KILLS", "2"))


def _spec(directory, **overrides):
    spec = default_spec(str(directory), **overrides)
    spec["scale"] = dict(TEST_SCALE)
    spec["batch_size"] = 256
    spec["snapshot_every"] = overrides.pop("snapshot_every", 3)
    return spec


def _interrupted(spec, upto):
    """Run ``upto`` records through a Checkpointer, then die (no snapshot)."""
    checkpointer = Checkpointer(
        build_target(spec), spec["directory"], snapshot_every=spec["snapshot_every"]
    )
    for index, tree in enumerate(iter_delta_trees(spec)):
        if index >= upto:
            break
        checkpointer.ingest(**tree)
    # Simulate process death: release the lock, skip the final snapshot.
    checkpointer.log.close()
    return checkpointer.seq


class TestDurableLog:
    def test_record_round_trip_and_rotation(self, tmp_path):
        with DurableLog(str(tmp_path)) as log:
            log.open_segment(1)
            log.append(RECORD_KIND_DELTA, 1, b"alpha")
            log.append(RECORD_KIND_DELTA, 2, b"beta")
            log.open_segment(3)
            log.append(RECORD_KIND_DELTA, 3, b"gamma")
            segments = log.segment_paths()
        assert [seq for seq, _ in segments] == [1, 3]
        first = scan_segment(segments[0][1])
        assert first.clean
        assert [(r.kind, r.seq, r.payload) for r in first.records] == [
            (RECORD_KIND_DELTA, 1, b"alpha"),
            (RECORD_KIND_DELTA, 2, b"beta"),
        ]
        second = scan_segment(segments[1][1])
        assert [r.payload for r in second.records] == [b"gamma"]

    def test_second_opener_fails_fast(self, tmp_path):
        with DurableLog(str(tmp_path)):
            with pytest.raises(PersistenceError, match="already locked"):
                DurableLog(str(tmp_path))
        # Released on close: reopening afterwards succeeds.
        DurableLog(str(tmp_path)).close()

    def test_checkpointer_holds_the_lock(self, tmp_path):
        estimator = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        with Checkpointer(estimator, str(tmp_path)):
            with pytest.raises(PersistenceError, match="already locked"):
                DurableLog(str(tmp_path))
            with pytest.raises(PersistenceError, match="already locked"):
                recover(str(tmp_path))

    def test_closed_log_refuses_writes(self, tmp_path):
        log = DurableLog(str(tmp_path))
        log.open_segment(1)
        log.close()
        with pytest.raises(PersistenceError, match="closed"):
            log.append(RECORD_KIND_DELTA, 1, b"x")

    def test_fresh_checkpointer_refuses_existing_state(self, tmp_path):
        estimator = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        Checkpointer(estimator, str(tmp_path)).close()
        with pytest.raises(PersistenceError, match="already holds a durable log"):
            Checkpointer(estimator, str(tmp_path))


class TestBitIdenticalRecovery:
    """recover() == clean same-seed run, for every registry family."""

    @pytest.mark.parametrize("family", f0_algorithm_names())
    def test_f0_families(self, tmp_path, family):
        spec = _spec(tmp_path, kind="estimator", family=family, workload="skew")
        applied = _interrupted(spec, upto=3)
        target, report = recover(spec["directory"])
        assert report.clean
        assert report.last_seq == applied
        assert target.to_bytes() == run_clean(spec, upto=applied).to_bytes()

    @pytest.mark.parametrize("family", l0_algorithm_names())
    def test_l0_families(self, tmp_path, family):
        spec = _spec(tmp_path, kind="turnstile", family=family, workload="churn")
        applied = _interrupted(spec, upto=3)
        target, report = recover(spec["directory"])
        assert report.clean
        assert target.to_bytes() == run_clean(spec, upto=applied).to_bytes()

    def test_keyed_store(self, tmp_path):
        spec = _spec(tmp_path, kind="store", family="linear-counting", workload="skew")
        applied = _interrupted(spec, upto=4)
        target, report = recover(spec["directory"])
        assert report.clean
        assert target.to_bytes() == run_clean(spec, upto=applied).to_bytes()

    def test_windowed_ring(self, tmp_path):
        spec = _spec(tmp_path, kind="windowed", family="hyperloglog", workload="bursty")
        applied = _interrupted(spec, upto=4)
        target, report = recover(spec["directory"])
        assert report.clean
        assert target.to_bytes() == run_clean(spec, upto=applied).to_bytes()

    def test_resume_then_continue(self, tmp_path):
        """Checkpointer.open over an interrupted log continues bit-identically."""
        spec = _spec(tmp_path, kind="estimator", family="bjkst", workload="cold-keys")
        trees = list(iter_delta_trees(spec))
        _interrupted(spec, upto=2)
        checkpointer, report = Checkpointer.open(
            spec["directory"], lambda: build_target(spec)
        )
        assert report is not None and report.clean
        for tree in trees[2:]:
            checkpointer.ingest(**tree)
        checkpointer.snapshot()
        checkpointer.close()
        clean = run_clean(spec)
        assert checkpointer.target.to_bytes() == clean.to_bytes()
        recovered, report = recover(spec["directory"])
        assert report.clean
        assert recovered.to_bytes() == clean.to_bytes()


class TestDamageTolerance:
    def _interrupt(self, tmp_path, upto=5, snapshot_every=3):
        spec = _spec(
            tmp_path,
            kind="estimator",
            family="hyperloglog",
            workload="skew",
            snapshot_every=snapshot_every,
        )
        applied = _interrupted(spec, upto=upto)
        return spec, applied

    def test_torn_tail_is_truncated_and_quarantined(self, tmp_path):
        spec, applied = self._interrupt(tmp_path)
        with DurableLog(str(tmp_path)) as log:
            live = log.segment_paths()[-1][1]
        frame = encode_record(RECORD_KIND_DELTA, applied + 1, b"never finished")
        with open(live, "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        target, report = recover(spec["directory"])
        assert not report.clean
        assert [fault for _, fault, _ in report.faults] == ["torn"]
        assert report.quarantined and ".quarantine" in report.quarantined[0]
        assert report.last_seq == applied
        assert target.to_bytes() == run_clean(spec, upto=applied).to_bytes()
        # The tail was truncated away: a second recovery is clean.
        target2, report2 = recover(spec["directory"])
        assert report2.clean
        assert target2.to_bytes() == target.to_bytes()

    def test_corrupt_record_stops_at_last_good(self, tmp_path):
        spec, applied = self._interrupt(tmp_path, upto=5, snapshot_every=None)
        with DurableLog(str(tmp_path)) as log:
            seg = log.segment_paths()[-1][1]
        scan = scan_segment(seg)
        victim = scan.records[2]  # corrupt the 3rd record's payload
        with open(seg, "r+b") as handle:
            handle.seek(victim.offset + 25 + len(victim.payload) // 2)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        target, report = recover(spec["directory"])
        assert [fault for _, fault, _ in report.faults] == ["corrupt"]
        assert "checksum mismatch" in report.faults[0][2]
        assert report.last_seq == victim.seq - 1
        # Everything from the bad frame on is unverifiable: it lands in
        # the quarantine file, not in the recovered state.
        assert report.quarantined
        assert target.to_bytes() == run_clean(spec, upto=victim.seq - 1).to_bytes()

    def test_damaged_snapshot_falls_back_to_older(self, tmp_path):
        spec, applied = self._interrupt(tmp_path, upto=7, snapshot_every=3)
        with DurableLog(str(tmp_path)) as log:
            snapshots = log.snapshot_paths()
        assert len(snapshots) >= 2
        newest_seq, newest_path = snapshots[-1]
        with open(newest_path, "r+b") as handle:
            handle.seek(30)
            handle.write(b"\xff\xff\xff\xff")
        target, report = recover(spec["directory"])
        assert report.snapshots_skipped == [newest_path]
        assert report.snapshot_seq < newest_seq
        assert report.last_seq == applied  # the suffix replay caught back up
        assert target.to_bytes() == run_clean(spec, upto=applied).to_bytes()

    def test_missing_segment_reports_gap(self, tmp_path):
        spec = _spec(
            tmp_path,
            kind="estimator",
            family="hyperloglog",
            workload="skew",
            snapshot_every=None,
        )
        checkpointer = Checkpointer(
            build_target(spec), spec["directory"], keep_snapshots=10
        )
        for index, tree in enumerate(iter_delta_trees(spec)):
            checkpointer.ingest(**tree)
            if index in (1, 3):
                checkpointer.snapshot()  # seals wal-1, wal-3
        checkpointer.snapshot()  # seals the suffix segment, opens an empty one
        checkpointer.log.close()
        with DurableLog(str(tmp_path)) as log:
            segments = log.segment_paths()
            snapshots = log.snapshot_paths()
        assert len(segments) >= 4
        # Drop every snapshot except the seq-0 one, then remove the second
        # segment: replay from seq 0 must stop at the hole, not skip it,
        # and everything past the hole must be quarantined, not applied.
        for _, path in snapshots[1:]:
            os.unlink(path)
        os.unlink(segments[1][1])
        target, report = recover(spec["directory"])
        assert "gap" in [fault for _, fault, _ in report.faults]
        assert report.quarantined  # the unreachable suffix was set aside
        expected_last = segments[1][0] - 1
        assert report.last_seq == expected_last
        assert target.to_bytes() == run_clean(spec, upto=expected_last).to_bytes()

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="no usable snapshot"):
            recover(str(tmp_path))


class TestCompaction:
    def test_snapshots_and_segments_are_pruned(self, tmp_path):
        spec = _spec(tmp_path, kind="estimator", family="loglog", workload="skew")
        checkpointer = Checkpointer(
            build_target(spec), spec["directory"], snapshot_every=1, keep_snapshots=2
        )
        for tree in iter_delta_trees(spec):
            checkpointer.ingest(**tree)
        snapshots = checkpointer.log.snapshot_paths()
        segments = checkpointer.log.segment_paths()
        assert len(snapshots) == 2  # keep_snapshots bounds retention
        floor = snapshots[0][0]
        # Every retained segment is still needed by a retained snapshot.
        assert all(first_seq >= floor + 1 for first_seq, _ in segments[1:])
        checkpointer.close()
        target, report = recover(spec["directory"])
        assert report.clean
        assert target.to_bytes() == run_clean(spec).to_bytes()

    def test_snapshot_is_idempotent_at_a_seq(self, tmp_path):
        estimator = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        with Checkpointer(estimator, str(tmp_path)) as checkpointer:
            checkpointer.ingest(np.arange(64, dtype=np.uint64))
            first = checkpointer.snapshot()
            assert checkpointer.snapshot() == first


class TestCrashInjection:
    """Subprocess SIGKILL at seed-stamped offsets; recovery is bit-identical."""

    def _cycle(self, spec):
        outcome = run_crash_cycle(spec)
        assert outcome.killed, "child was expected to die by SIGKILL"
        assert outcome.bit_identical, "recovery diverged for %r" % (spec,)
        assert outcome.ok

    @pytest.mark.parametrize("cycle", range(KILL_CYCLES))
    def test_estimator_byte_offset_kills(self, tmp_path, cycle):
        spec = _spec(tmp_path / ("run-%d" % cycle), kind="estimator",
                     family="hyperloglog", seed=cycle)
        # Exact framed size of the full delta log (what the child would
        # append if never killed) sizes the seed-stamped kill offsets.
        sizing = sum(
            len(encode_record(RECORD_KIND_DELTA, index + 1, serialize.dumps_tree(
                {"op": "ingest", "items": tree["items"],
                 "deltas": tree["deltas"], "keys": None, "ts": None})))
            for index, tree in enumerate(iter_delta_trees(spec))
        )
        at = kill_points(spec, KILL_CYCLES, sizing)[cycle]
        spec["kill"] = {"mode": "bytes", "at": at}
        self._cycle(spec)

    def test_windowed_record_kill_with_torn_tail(self, tmp_path):
        spec = _spec(tmp_path, kind="windowed", family="hyperloglog",
                     workload="bursty")
        spec["kill"] = {"mode": "records", "at": 3, "torn": True}
        outcome = run_crash_cycle(spec)
        assert outcome.killed and outcome.bit_identical
        assert [fault for _, fault, _ in outcome.report.faults] == ["torn"]
        assert outcome.report.quarantined

    def test_turnstile_record_kill(self, tmp_path):
        spec = _spec(tmp_path, kind="turnstile", family="knw-l0",
                     workload="churn")
        spec["kill"] = {"mode": "records", "at": 2}
        self._cycle(spec)

    def test_store_kill_and_no_kill_completion(self, tmp_path):
        spec = _spec(tmp_path / "killed", kind="store", family="hyperloglog",
                     workload="skew")
        spec["kill"] = {"mode": "records", "at": 2}
        self._cycle(spec)
        clean_spec = _spec(tmp_path / "clean", kind="store",
                           family="hyperloglog", workload="skew")
        outcome = run_crash_cycle(clean_spec)
        assert not outcome.killed
        assert outcome.bit_identical and outcome.ok
        assert outcome.applied_records == outcome.total_records


class TestRunnerPersistence:
    def test_f0_results_match_and_recover(self, tmp_path):
        stream = distinct_items_stream(UNIVERSE, 900, repetitions=2, seed=31)
        persisted = run_f0_by_name(
            "bjkst", stream, EPS, seed=SEED,
            checkpoint_positions=[600, 1200],
            batch_size=128, persist_dir=str(tmp_path),
        )
        reference = run_f0_by_name(
            "bjkst", stream, EPS, seed=SEED,
            checkpoint_positions=[600, 1200], batch_size=128,
        )
        assert persisted == reference
        target, report = recover(str(tmp_path))
        assert report.clean
        direct = make_f0_estimator("bjkst", UNIVERSE, EPS, seed=SEED)
        for start in range(0, len(stream), 128):
            direct.update_batch(stream.item_array()[start : start + 128])
        assert target.to_bytes() == direct.to_bytes()

    def test_l0_results_match(self, tmp_path):
        stream = insert_delete_stream(UNIVERSE, 500, 0.4, seed=33)
        persisted = run_l0_by_name(
            "ganguly", stream, EPS, seed=SEED,
            batch_size=200, persist_dir=str(tmp_path),
        )
        reference = run_l0_by_name(
            "ganguly", stream, EPS, seed=SEED, batch_size=200,
        )
        assert persisted == reference

    def test_workers_with_persist_dir_raises(self, tmp_path):
        stream = distinct_items_stream(UNIVERSE, 400, seed=35)
        with pytest.raises(ParameterError, match="persist_dir is incompatible"):
            run_f0_by_name(
                "hyperloglog", stream, EPS, seed=SEED,
                workers=2, persist_dir=str(tmp_path),
            )


class TestResultSpool:
    @pytest.fixture(scope="class", autouse=True)
    def _teardown_pool(self):
        yield
        shutdown_pool()

    def _plan(self, items, fault=None):
        return IngestPlan(
            axis="range",
            recipe="clone",
            discipline="merge-reduce",
            kind="items",
            shards=shard_items(items, 3),
            fault=fault,
            retries=0,
        )

    def test_crash_resume_is_bit_identical(self, tmp_path):
        items = np.random.RandomState(41).randint(
            0, UNIVERSE, size=3000
        ).astype(np.uint64)
        sequential = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        sequential.update_batch(items)
        # First attempt: shard 1 keeps failing, the coordinator "dies".
        broken = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        with pytest.raises(Exception):
            execute_plan(
                self._plan(items, fault={1: ShardFault("raise", failures=5)}),
                broken,
                execution="inline",
                spool_dir=str(tmp_path),
            )
        # The spool survived with the two delivered shard results.
        resumed = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        execute_plan(
            self._plan(items), resumed, execution="inline",
            spool_dir=str(tmp_path),
        )
        assert resumed.to_bytes() == sequential.to_bytes()
        # Success destroyed the spool: nothing resumable remains.
        leftovers = [
            name for name in os.listdir(str(tmp_path)) if name.startswith("wal-")
        ]
        assert leftovers == []

    def test_mismatched_plan_fails_fast(self, tmp_path):
        items = np.random.RandomState(43).randint(
            0, UNIVERSE, size=1200
        ).astype(np.uint64)
        target = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        with pytest.raises(Exception):
            execute_plan(
                self._plan(items, fault={0: ShardFault("raise", failures=5)}),
                target,
                execution="inline",
                spool_dir=str(tmp_path),
            )
        other = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED + 1)
        with pytest.raises(PersistenceError, match="does not match this plan"):
            execute_plan(
                self._plan(items), other, execution="inline",
                spool_dir=str(tmp_path),
            )


class TestMonitorPersistence:
    def _records(self):
        _, records = packet_trace(
            UNIVERSE, packets=1100, distinct_flows=150,
            scanner_destinations=120, seed=7,
        )
        return records

    def _monitor(self, **kwargs):
        return FlowCardinalityMonitor(
            universe_size=UNIVERSE, eps=EPS, window_packets=300,
            mergeable=True, track_active_flows=True, window_history=4,
            **kwargs,
        )

    def test_recover_on_construct_is_bit_identical(self, tmp_path):
        records = self._records()
        reference = self._monitor()
        ref_reports = reference.observe_batch(records)
        reference.observe_flow_events_batch(records[:10], [1] * 10)

        durable = self._monitor(persist_dir=str(tmp_path))
        assert durable.persistent and durable.last_recovery is None
        reports = durable.observe_batch(records)
        durable.observe_flow_events_batch(records[:10], [1] * 10)
        assert reports == ref_reports
        assert durable.to_bytes() == reference.to_bytes()

        # Die without the closing snapshot; reconstruct over the directory.
        durable._checkpointer.log.close()
        resumed = self._monitor(persist_dir=str(tmp_path))
        assert resumed.last_recovery is not None and resumed.last_recovery.clean
        assert resumed.to_bytes() == reference.to_bytes()
        assert resumed.reports == ref_reports

        # The recovered monitor keeps behaving identically.
        more = resumed.observe_batch(records[:400])
        ref_more = reference.observe_batch(records[:400])
        assert more == ref_more
        assert resumed.to_bytes() == reference.to_bytes()
        resumed.close()
        target, report = recover(str(tmp_path))
        assert report.clean
        assert target.to_bytes() == reference.to_bytes()

    def test_scalar_paths_route_through_the_wal(self, tmp_path):
        records = self._records()[:150]
        reference = self._monitor()
        with self._monitor(persist_dir=str(tmp_path)) as durable:
            for record in records:
                durable.observe(record)
                reference.observe_batch([record])
            durable.observe_flow_open(records[0])
            durable.observe_flow_close(records[1])
            reference.observe_flow_events_batch([records[0]], [1])
            reference.observe_flow_events_batch([records[1]], [-1])
            assert durable.to_bytes() == reference.to_bytes()
        # close() released the lock and left cleanly recoverable state.
        target, report = recover(str(tmp_path))
        assert report.clean
        assert target.to_bytes() == reference.to_bytes()

    def test_sharded_ingest_is_refused_when_persistent(self, tmp_path):
        with self._monitor(persist_dir=str(tmp_path)) as durable:
            with pytest.raises(ParameterError, match="incompatible with persist_dir"):
                durable.ingest_window_shards([self._records()[:50]])

    def test_wrong_object_type_in_directory(self, tmp_path):
        estimator = make_f0_estimator("hyperloglog", UNIVERSE, EPS, seed=SEED)
        Checkpointer(estimator, str(tmp_path)).close()
        with pytest.raises(PersistenceError, match="not a FlowCardinalityMonitor"):
            self._monitor(persist_dir=str(tmp_path))


class TestPoolObservability:
    def test_restarts_counter(self):
        shutdown_pool()
        before = pool_stats()["restarts"]
        get_pool(1)
        assert pool_stats()["restarts"] == before  # fresh build, not a restart
        reset_pool()
        assert pool_stats()["restarts"] == before + 1
        get_pool(1)
        get_pool(2)  # growth replaces the live pool
        assert pool_stats()["restarts"] == before + 2
        shutdown_pool()  # explicit teardown is not a restart
        assert pool_stats()["restarts"] == before + 2
        stats = pool_stats()
        assert set(stats) == {"alive", "size", "created", "restarts"}
        assert not stats["alive"]
