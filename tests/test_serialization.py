"""Serialization round-trips: the transport contract of the sharded engine.

For every estimator in the registry (and the median amplification
wrappers), ``load_state_dict(state_dict())`` and ``from_bytes(to_bytes())``
must reproduce the sketch *bit-identically*: equal snapshots, equal
estimates, equal byte encodings — and, the strongest form, identical
behaviour under **further ingestion**, which requires the revived sketch
to restore internal aliasing exactly (e.g. the single ``random.Random``
shared by the three RoughEstimator copies' lazily materialised hash
functions).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.rough_estimator import FastRoughEstimator, RoughEstimator
from repro.estimators.base import CardinalityEstimator, TurnstileEstimator
from repro.estimators.median import MedianEstimator, MedianTurnstileEstimator
from repro.estimators.registry import (
    f0_algorithm_names,
    l0_algorithm_names,
    make_f0_estimator,
    make_l0_estimator,
)
from repro.exceptions import SerializationError
from repro.serialize import FORMAT_MAGIC, FORMAT_VERSION, dumps, loads, snapshot

UNIVERSE = 1 << 20
MAGNITUDE = 1 << 16


def _f0_items(count, seed):
    return np.random.RandomState(seed).randint(0, UNIVERSE, size=count).astype(np.uint64)


def _assert_plain_tree(node):
    """state_dict() must contain only plain values (the documented contract)."""
    if node is None or isinstance(node, (bool, int, float, str, bytes)):
        return
    if isinstance(node, list):
        for entry in node:
            _assert_plain_tree(entry)
        return
    if isinstance(node, dict):
        for key, entry in node.items():
            assert isinstance(key, str)
            _assert_plain_tree(entry)
        return
    raise AssertionError("state_dict leaked a %r" % type(node).__name__)


@pytest.mark.parametrize("name", f0_algorithm_names())
def test_f0_round_trip_bit_identical(name):
    estimator = make_f0_estimator(name, UNIVERSE, 0.1, seed=11)
    estimator.update_batch(_f0_items(2500, seed=3))
    state = estimator.state_dict()
    _assert_plain_tree(state)
    blob = estimator.to_bytes()

    revived = CardinalityEstimator.from_bytes(blob)
    assert type(revived) is type(estimator)
    assert revived.state_dict() == state
    assert revived.estimate() == estimator.estimate()
    assert revived.to_bytes() == blob

    # The strongest check: the revived sketch must keep *behaving*
    # identically, which catches broken aliasing of shared components.
    extra = _f0_items(1500, seed=5)
    estimator.update_batch(extra)
    revived.update_batch(extra)
    assert revived.state_dict() == estimator.state_dict()
    assert revived.estimate() == estimator.estimate()


@pytest.mark.parametrize("name", f0_algorithm_names())
def test_f0_load_state_dict_into_fresh_instance(name):
    source = make_f0_estimator(name, UNIVERSE, 0.1, seed=23)
    source.update_batch(_f0_items(2000, seed=7))
    target = make_f0_estimator(name, UNIVERSE, 0.1, seed=24)  # different seed on purpose
    target.load_state_dict(source.state_dict())
    assert target.state_dict() == source.state_dict()
    assert target.estimate() == source.estimate()


@pytest.mark.parametrize("name", l0_algorithm_names())
def test_l0_round_trip_bit_identical(name):
    estimator = make_l0_estimator(name, UNIVERSE, 0.2, MAGNITUDE, seed=13)
    items = _f0_items(1200, seed=9)
    estimator.update_batch(items, [1] * len(items))
    estimator.update_batch(items[:400], [-1] * 400)
    state = estimator.state_dict()
    _assert_plain_tree(state)
    blob = estimator.to_bytes()

    revived = TurnstileEstimator.from_bytes(blob)
    assert type(revived) is type(estimator)
    assert revived.state_dict() == state
    assert revived.estimate() == estimator.estimate()
    assert revived.to_bytes() == blob

    extra = _f0_items(600, seed=15)
    estimator.update_batch(extra, [1] * len(extra))
    revived.update_batch(extra, [1] * len(extra))
    assert revived.state_dict() == estimator.state_dict()
    assert revived.estimate() == estimator.estimate()


def test_median_wrapper_round_trips():
    wrapper = MedianEstimator(
        lambda index: make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=40 + index),
        repetitions=5,
    )
    wrapper.update_batch(_f0_items(2000, seed=21))
    revived = MedianEstimator.from_bytes(wrapper.to_bytes())
    assert revived.state_dict() == wrapper.state_dict()
    assert revived.estimate() == wrapper.estimate()
    assert revived.repetitions == wrapper.repetitions

    turnstile = MedianTurnstileEstimator(
        lambda index: make_l0_estimator(
            "knw-l0", UNIVERSE, 0.2, MAGNITUDE, seed=50 + index
        ),
        repetitions=3,
    )
    items = _f0_items(700, seed=22)
    turnstile.update_batch(items, [1] * len(items))
    revived = MedianTurnstileEstimator.from_bytes(turnstile.to_bytes())
    assert revived.state_dict() == turnstile.state_dict()
    assert revived.estimate() == turnstile.estimate()


def test_rough_estimator_round_trip_preserves_shared_rng():
    """The three copies' lazy h3 draw from ONE shared RNG; reviving must
    restore that aliasing or continued ingestion diverges."""
    estimator = RoughEstimator(UNIVERSE, seed=31, use_uniform_family=True)
    estimator.update_batch(_f0_items(1500, seed=33))
    revived = RoughEstimator.from_bytes(estimator.to_bytes())
    rngs = {id(copy.h3._rng) for copy in revived._copies}
    assert len(rngs) == 1, "shared RNG was split into per-copy clones"
    extra = _f0_items(1500, seed=35)
    estimator.update_batch(extra)
    revived.update_batch(extra)
    assert revived.state_dict() == estimator.state_dict()
    assert revived.estimate() == estimator.estimate()


def test_fast_rough_estimator_round_trip():
    estimator = FastRoughEstimator(UNIVERSE, seed=37)
    estimator.update_batch(_f0_items(1200, seed=39))
    revived = FastRoughEstimator.from_bytes(estimator.to_bytes())
    assert revived.state_dict() == estimator.state_dict()
    assert revived.estimate() == estimator.estimate()


def test_shared_hash_bundle_aliasing_restored():
    """KNW shares one F0HashBundle between the small-F0 and Figure 3
    regimes; the revived sketch must share a single bundle object too."""
    estimator = make_f0_estimator("knw", UNIVERSE, 0.1, seed=41)
    estimator.update_batch(_f0_items(2000, seed=43))
    revived = CardinalityEstimator.from_bytes(estimator.to_bytes())
    assert revived.hashes is revived.small.hashes
    assert revived.hashes is revived.core.hashes


def test_framing_rejects_garbage():
    estimator = make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=1)
    blob = estimator.to_bytes()
    assert blob[: len(FORMAT_MAGIC)] == FORMAT_MAGIC
    assert blob[len(FORMAT_MAGIC)] == FORMAT_VERSION

    with pytest.raises(SerializationError):
        loads(b"NOPE" + blob[4:])
    with pytest.raises(SerializationError):
        loads(blob[: len(blob) // 2])  # truncation
    with pytest.raises(SerializationError):
        loads(blob[: len(FORMAT_MAGIC)] + bytes([FORMAT_VERSION + 1]) + blob[5:])
    with pytest.raises(SerializationError):
        loads(blob + b"trailing")


def test_from_bytes_enforces_class():
    hll = make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=1)
    blob = hll.to_bytes()
    from repro.baselines.kmv import KMinimumValues

    with pytest.raises(SerializationError):
        KMinimumValues.from_bytes(blob)
    # The base class accepts any member of its family.
    assert CardinalityEstimator.from_bytes(blob).estimate() == hll.estimate()


def test_load_state_dict_enforces_class():
    hll = make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=1)
    kmv = make_f0_estimator("kmv", UNIVERSE, 0.1, seed=1)
    with pytest.raises(SerializationError):
        kmv.load_state_dict(hll.state_dict())


def test_payload_cannot_name_classes_outside_the_package():
    hll = make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=1)
    state = snapshot(hll)
    state["__object__"] = "os:system"
    with pytest.raises(SerializationError):
        loads(dumps(None, state=state))


def test_snapshot_rejects_unsupported_state():
    hll = make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=1)
    hll._rogue = lambda: None  # a callable is not serializable state
    with pytest.raises(SerializationError):
        hll.state_dict()


def test_state_dict_equality_is_insertion_order_insensitive():
    """Two sketches holding equal dict/set state built in different orders
    must snapshot identically — the property the shard-merge equivalence
    relies on."""
    a = make_f0_estimator("kmv", UNIVERSE, 0.1, seed=3)
    b = make_f0_estimator("kmv", UNIVERSE, 0.1, seed=3)
    items = _f0_items(1000, seed=45)
    a.update_batch(items)
    b.update_batch(items[::-1].copy())
    assert a.state_dict() == b.state_dict()


def test_scalar_and_batch_ingested_sketches_serialize_identically():
    scalar = make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=47)
    batched = make_f0_estimator("hyperloglog", UNIVERSE, 0.1, seed=47)
    items = _f0_items(1500, seed=49)
    for item in items.tolist():
        scalar.update(item)
    batched.update_batch(items)
    assert scalar.to_bytes() == batched.to_bytes()


def test_round_trip_through_random_stream_positions():
    """Serialize mid-stream at random cut points; resuming from bytes must
    match never-serialized ingestion."""
    rng = random.Random(51)
    items = _f0_items(4000, seed=53)
    reference = make_f0_estimator("knw", UNIVERSE, 0.1, seed=55)
    resumed = make_f0_estimator("knw", UNIVERSE, 0.1, seed=55)
    cursor = 0
    while cursor < len(items):
        take = rng.randrange(1, 700)
        chunk = items[cursor : cursor + take]
        reference.update_batch(chunk)
        resumed.update_batch(chunk)
        resumed = CardinalityEstimator.from_bytes(resumed.to_bytes())
        cursor += take
    assert resumed.state_dict() == reference.state_dict()
    assert resumed.estimate() == reference.estimate()


# ---------------------------------------------------------------------------
# Adversarial decoding: corrupted or truncated frames must fail *closed*.
# ---------------------------------------------------------------------------

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

_FUZZ_UNIVERSE = 1 << 10
_FUZZ_FAMILIES = [("f0", name) for name in f0_algorithm_names()] + [
    ("l0", name) for name in l0_algorithm_names()
]


@lru_cache(maxsize=None)
def _fuzz_blob(kind, name):
    """One small ingested sketch per registry family, encoded once."""
    if kind == "f0":
        estimator = make_f0_estimator(name, _FUZZ_UNIVERSE, 0.25, seed=61)
        items = np.random.RandomState(63).randint(0, _FUZZ_UNIVERSE, size=200)
        estimator.update_batch(items.astype(np.uint64))
    else:
        estimator = make_l0_estimator(name, _FUZZ_UNIVERSE, 0.25, 1 << 8, seed=61)
        items = np.random.RandomState(65).randint(0, _FUZZ_UNIVERSE, size=150)
        estimator.update_batch(items.astype(np.uint64), [1] * len(items))
    return estimator.to_bytes()


@pytest.mark.parametrize("kind,name", _FUZZ_FAMILIES)
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_mutated_frames_decode_or_raise_serialization_error(kind, name, data):
    """Byte-flip and truncation fuzzing over every registry family.

    The decoder's contract is all-or-nothing: any mutation of a valid
    frame either still decodes (a flip that the checksum happens to
    tolerate is acceptable) or raises exactly ``SerializationError`` —
    never ``KeyError``/``ValueError``/``struct.error``/recursion blowups
    from half-parsed trees.
    """
    blob = bytearray(_fuzz_blob(kind, name))
    mode = data.draw(st.sampled_from(("flip", "truncate", "both")))
    if mode in ("flip", "both"):
        for _ in range(data.draw(st.integers(min_value=1, max_value=8))):
            position = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
            blob[position] ^= 1 << data.draw(st.integers(min_value=0, max_value=7))
    if mode in ("truncate", "both"):
        blob = blob[: data.draw(st.integers(min_value=0, max_value=max(0, len(blob) - 1)))]
    try:
        loads(bytes(blob))
    except SerializationError:
        pass
