"""Tests for the Figure-1 baseline algorithms."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AMSDistinctEstimator,
    BJKSTSampler,
    FlajoletMartinPCSA,
    GibbonsTirthapuraSampler,
    HyperLogLogCounter,
    KMinimumValues,
    LinearCounter,
    LogLogCounter,
    MultiScaleBitmapCounter,
    hll_registers_for_eps,
    kmv_size_for_eps,
    registers_for_eps,
)
from repro.exceptions import MergeError, ParameterError
from repro.streams import distinct_items_stream, duplicated_union_streams

UNIVERSE = 1 << 18
TRUTH = 8000


@pytest.fixture(scope="module")
def workload():
    return distinct_items_stream(UNIVERSE, TRUTH, repetitions=2, seed=500)


def relative(estimate: float) -> float:
    return abs(estimate - TRUTH) / TRUTH


class TestSizing:
    def test_loglog_registers_for_eps(self):
        assert registers_for_eps(0.1) >= (1.3 / 0.1) ** 2 / 2
        with pytest.raises(ParameterError):
            registers_for_eps(0.0)

    def test_hll_registers_for_eps(self):
        assert hll_registers_for_eps(0.05) >= 256

    def test_kmv_size_for_eps(self):
        assert kmv_size_for_eps(0.1) == 100
        assert kmv_size_for_eps(0.9) == 16


class TestAccuracy:
    def test_flajolet_martin(self, workload):
        estimator = FlajoletMartinPCSA(UNIVERSE, maps=128, seed=1)
        assert relative(estimator.process_stream(workload)) < 0.25

    def test_ams_constant_factor_only(self, workload):
        estimator = AMSDistinctEstimator(UNIVERSE, seed=2)
        estimate = estimator.process_stream(workload)
        assert TRUTH / 8 <= estimate <= TRUTH * 8

    def test_gibbons_tirthapura(self, workload):
        estimator = GibbonsTirthapuraSampler(UNIVERSE, eps=0.1, seed=3)
        assert relative(estimator.process_stream(workload)) < 0.2

    def test_kmv(self, workload):
        estimator = KMinimumValues(UNIVERSE, eps=0.1, seed=4)
        assert relative(estimator.process_stream(workload)) < 0.25

    def test_kmv_exact_below_k(self):
        estimator = KMinimumValues(UNIVERSE, k=256, seed=5)
        for item in range(100):
            estimator.update(item)
        assert estimator.estimate() == 100.0

    def test_bjkst(self, workload):
        estimator = BJKSTSampler(UNIVERSE, eps=0.1, seed=6)
        assert relative(estimator.process_stream(workload)) < 0.2

    def test_loglog(self, workload):
        estimator = LogLogCounter(UNIVERSE, eps=0.05, seed=7)
        assert relative(estimator.process_stream(workload)) < 0.25

    def test_hyperloglog(self, workload):
        estimator = HyperLogLogCounter(UNIVERSE, eps=0.05, seed=8)
        assert relative(estimator.process_stream(workload)) < 0.15

    def test_hyperloglog_small_range_correction(self):
        estimator = HyperLogLogCounter(UNIVERSE, registers=256, seed=9)
        for item in range(50):
            estimator.update(item)
        assert abs(estimator.estimate() - 50) / 50 < 0.3

    def test_linear_counting_accurate_at_low_load(self, workload):
        estimator = LinearCounter(UNIVERSE, bits=65536, seed=10)
        assert relative(estimator.process_stream(workload)) < 0.05

    def test_linear_counting_saturates_gracefully(self):
        estimator = LinearCounter(UNIVERSE, bits=64, seed=11)
        for item in range(5000):
            estimator.update(item)
        assert estimator.estimate() > 0  # finite, no crash

    def test_multiscale_bitmap(self, workload):
        estimator = MultiScaleBitmapCounter(UNIVERSE, bits_per_scale=1024, seed=12)
        assert relative(estimator.process_stream(workload)) < 0.3


class TestMergeability:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: FlajoletMartinPCSA(UNIVERSE, maps=64, seed=seed),
            lambda seed: AMSDistinctEstimator(UNIVERSE, seed=seed),
            lambda seed: GibbonsTirthapuraSampler(UNIVERSE, eps=0.2, seed=seed),
            lambda seed: KMinimumValues(UNIVERSE, eps=0.2, seed=seed),
            lambda seed: BJKSTSampler(UNIVERSE, eps=0.2, seed=seed),
            lambda seed: LogLogCounter(UNIVERSE, eps=0.1, seed=seed),
            lambda seed: HyperLogLogCounter(UNIVERSE, eps=0.1, seed=seed),
            lambda seed: LinearCounter(UNIVERSE, bits=8192, seed=seed),
        ],
    )
    def test_merge_equals_union_pass(self, factory):
        left, right = duplicated_union_streams(UNIVERSE, 1200, overlap_fraction=0.5, seed=700)
        union = left.concat(right)
        merged = factory(99)
        other = factory(99)
        solo = factory(99)
        merged.process_stream(left)
        other.process_stream(right)
        solo.process_stream(union)
        merged.merge(other)
        assert merged.estimate() == pytest.approx(solo.estimate(), rel=1e-9)

    def test_merge_rejects_different_seeds(self):
        a = HyperLogLogCounter(UNIVERSE, eps=0.1, seed=1)
        b = HyperLogLogCounter(UNIVERSE, eps=0.1, seed=2)
        with pytest.raises(MergeError):
            a.merge(b)

    def test_merge_rejects_wrong_type(self):
        a = KMinimumValues(UNIVERSE, eps=0.2, seed=1)
        b = LogLogCounter(UNIVERSE, eps=0.2, seed=1)
        with pytest.raises(MergeError):
            a.merge(b)


class TestSpaceAccounting:
    def test_oracle_model_flagged(self):
        assert HyperLogLogCounter(UNIVERSE, eps=0.1, seed=1).requires_random_oracle
        assert LogLogCounter(UNIVERSE, eps=0.1, seed=1).requires_random_oracle
        assert FlajoletMartinPCSA(UNIVERSE, seed=1).requires_random_oracle
        assert not KMinimumValues(UNIVERSE, eps=0.1, seed=1).requires_random_oracle
        assert not BJKSTSampler(UNIVERSE, eps=0.1, seed=1).requires_random_oracle

    def test_register_sketches_are_small(self):
        hll = HyperLogLogCounter(UNIVERSE, eps=0.05, seed=1)
        kmv = KMinimumValues(UNIVERSE, eps=0.05, seed=1)
        # HLL registers are log log n bits each; KMV stores log n bits per
        # value — the classic space gap in Figure 1.
        assert hll.space_bits() < kmv.space_bits()

    def test_space_breakdowns_sum(self):
        for estimator in (
            FlajoletMartinPCSA(UNIVERSE, seed=1),
            AMSDistinctEstimator(UNIVERSE, seed=1),
            GibbonsTirthapuraSampler(UNIVERSE, eps=0.2, seed=1),
            KMinimumValues(UNIVERSE, eps=0.2, seed=1),
            BJKSTSampler(UNIVERSE, eps=0.2, seed=1),
            LogLogCounter(UNIVERSE, eps=0.1, seed=1),
            HyperLogLogCounter(UNIVERSE, eps=0.1, seed=1),
            LinearCounter(UNIVERSE, bits=1024, seed=1),
            MultiScaleBitmapCounter(UNIVERSE, bits_per_scale=256, seed=1),
        ):
            breakdown = estimator.space_breakdown().as_dict()
            assert estimator.space_bits() == sum(breakdown.values())
