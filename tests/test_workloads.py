"""Workload-zoo stress suite: cross-path equivalence and accuracy envelopes.

For every registry family, on every workload class it can legally ingest,
the five ingestion paths must agree:

* **scalar** — the ``update``/``update(item, delta)`` loop (the reference).
* **batch** — vectorized ``update_batch`` chunks.
* **grouped store** — a :class:`repro.store.SketchStore` row fed through
  the grouped scatter (skipped for the seedless ``exact``/``exact-l0``
  templates, which the object store refuses by design).
* **sharded parallel** — :mod:`repro.parallel` merge-reduce over shards
  (mergeable families only; bit-identical when ``shard_deterministic``,
  approximation-equivalent for the lazily-drawn default ``knw`` — the
  same carve-out the parallel engine documents).
* **windowed** — :class:`repro.window.WindowedSketch` epoch rollups
  (mergeable families only).

"Agree" means *bit-identical* ``state_dict`` — after scrubbing the
scalar-loop memo caches (``_last_item`` / ``_last_extended_bin``), which
the repo's batch-equivalence suite likewise excludes — plus an accuracy
envelope against the generator's exact ground truth.  Envelopes are
per-family: engineering configurations get a multiple of the sizing
``eps``; the paper-faithful constant configurations (``knw-paper``,
``knw-l0-paper``) and the order-of-magnitude AMS baseline are only
sanity-bounded at this scaled-down sketch size (their constants want far
larger sketches than a test-sized universe justifies).

Scale is env-tunable: ``WORKLOAD_TEST_UNIVERSE``, ``WORKLOAD_TEST_LENGTH``,
``WORKLOAD_TEST_KEYS``, ``WORKLOAD_TEST_EPOCHS``,
``WORKLOAD_TEST_EPOCH_UPDATES`` override the defaults (see
:func:`repro.streams.workloads.scale_from_env`).  Envelope assertions are
calibrated at the default scale and are skipped under overrides.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro import serialize
from repro.estimators.registry import (
    f0_algorithm_names,
    l0_algorithm_names,
    make_f0_estimator,
    make_l0_estimator,
)
from repro.exceptions import ParameterError
from repro.parallel import (
    mergeable_f0_names,
    mergeable_l0_names,
    parallel_ingest_into,
    parallel_ingest_updates_into,
)
from repro.store import SketchStore
from repro.streams import (
    WorkloadScale,
    make_workload,
    scale_from_env,
    workload_class,
    workload_class_names,
    workload_fingerprint,
)
from repro.window import WindowedSketch

DEFAULT_TEST_SCALE = WorkloadScale(
    universe_size=1 << 14,
    length=1_500,
    key_count=16,
    epochs=4,
    updates_per_epoch=200,
)
TEST_SCALE = scale_from_env(default=DEFAULT_TEST_SCALE, prefix="WORKLOAD_TEST")
AT_DEFAULT_SCALE = TEST_SCALE == DEFAULT_TEST_SCALE

EPS = 0.2
WORKLOAD_SEED = 1031
ENVELOPE_SEEDS = (1, 2, 3, 4, 5)

CLASSES = workload_class_names()
INSERTION_CLASSES = [c for c in CLASSES if not workload_class(c).turnstile]
TURNSTILE_CLASSES = [c for c in CLASSES if workload_class(c).turnstile]

#: Registry templates without an explicit seed; the object sketch store
#: refuses them (every row must share seed-derived hash functions).
STORELESS = {"exact", "exact-l0"}

#: Maximum allowed *median* relative error (over ENVELOPE_SEEDS) per
#: family, on every workload class.  Tiers: exact/deterministic families
#: must be (near-)exact; engineering configurations get 3x the sizing
#: eps; the AMS baseline is an order-of-magnitude estimator; the
#: paper-constant configurations are sanity-bounded only (their
#: guarantees assume sketch sizes a test universe cannot justify).
ENVELOPE = {
    "exact": 0.01,
    "exact-l0": 0.01,
    "bjkst": 0.1,
    "gibbons-tirthapura": 0.1,
    "hyperloglog": 3 * EPS,
    "loglog": 3 * EPS,
    "kmv": 3 * EPS,
    "multiscale-bitmap": 3 * EPS,
    "flajolet-martin": 3 * EPS,
    "knw": 3 * EPS,
    "knw-fast": 3 * EPS,
    "knw-l0": 3 * EPS,
    "ganguly": 3 * EPS,
    "linear-counting": 1.0,
    "ams": 2.5,
    "knw-paper": 1.25,
    "knw-l0-paper": 1.25,
}

#: Scalar-loop memo caches excluded from bit-identity comparisons (the
#: batch-equivalence suite's state extractors exclude them the same way).
_CACHE_FIELDS = {"_last_item", "_last_extended_bin"}


def canonical_state(estimator):
    """``state_dict()`` with per-item memo caches scrubbed."""

    def scrub(node):
        if isinstance(node, dict):
            return {
                key: scrub(value)
                for key, value in node.items()
                if key not in _CACHE_FIELDS
            }
        if isinstance(node, list):
            return [scrub(entry) for entry in node]
        return node

    return scrub(estimator.state_dict())


def _stream(cls_name):
    return make_workload(cls_name, "stream", seed=WORKLOAD_SEED, scale=TEST_SCALE)


def _magnitude_bound(stream):
    return max(len(stream) * stream.max_update_magnitude(), 1)


def _shard_deterministic(factory):
    return bool(getattr(factory(0), "shard_deterministic", True))


# ---------------------------------------------------------------------------
# Cross-path grid: F0 families x insertion-only classes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cls_name", INSERTION_CLASSES)
@pytest.mark.parametrize("family", f0_algorithm_names())
def test_f0_cross_path_bit_identity(family, cls_name):
    stream = _stream(cls_name)
    items = stream.item_array()
    universe = stream.universe_size

    def fresh(seed=7):
        return make_f0_estimator(family, universe, EPS, seed)

    reference = fresh()
    reference.update_batch(items)
    reference_state = canonical_state(reference)
    reference_estimate = reference.estimate()

    # scalar loop == batch
    scalar = fresh()
    for item in items.tolist():
        scalar.update(item)
    assert canonical_state(scalar) == reference_state
    assert scalar.estimate() == reference_estimate

    # uneven batch split == one batch
    split = fresh()
    for start in range(0, len(items), 311):
        split.update_batch(items[start : start + 311])
    assert canonical_state(split) == reference_state

    # grouped-store row == batch
    if family not in STORELESS:
        store = SketchStore.for_family(family, universe, keys=["k"], eps=EPS, seed=7)
        store.update_batch("k", items)
        assert canonical_state(store.sketch("k")) == reference_state
        assert store.estimate("k") == reference_estimate

    # sharded merge-reduce: bit-identical when shard-deterministic,
    # approximation-equivalent otherwise (the knw lazily-drawn family)
    if family in mergeable_f0_names():
        if _shard_deterministic(fresh):
            sharded = fresh()
            parallel_ingest_into(sharded, items, shards=4, execution="inline")
            assert canonical_state(sharded) == reference_state
            assert sharded.estimate() == reference_estimate
        else:
            # Lazily-drawn hash family: sharding is approximation- (not
            # bit-) equivalent, and individual runs may FAIL (estimate 0)
            # with constant probability — so bound the median over seeds.
            truth = stream.ground_truth()
            errors = []
            for seed in ENVELOPE_SEEDS:
                sharded = fresh(seed)
                parallel_ingest_into(sharded, items, shards=4, execution="inline")
                errors.append(abs(sharded.estimate() - truth) / max(truth, 1))
            assert statistics.median(errors) <= ENVELOPE[family]

    # windowed single-epoch rollup == batch (mergeable families only)
    if family in mergeable_f0_names():
        ring = WindowedSketch(fresh(), retention=2)
        ring.ingest_timestamped(np.zeros(len(items), dtype=np.int64), items)
        assert canonical_state(ring.window_sketch(1)) == reference_state
        assert ring.estimate_window(1) == reference_estimate


@pytest.mark.parametrize("cls_name", CLASSES)
@pytest.mark.parametrize("family", l0_algorithm_names())
def test_l0_cross_path_bit_identity(family, cls_name):
    """L0 families ingest every class: insertion-only streams are legal
    turnstile streams whose deltas are all +1."""
    stream = _stream(cls_name)
    items = stream.item_array()
    deltas = stream.delta_array()
    universe = stream.universe_size
    bound = _magnitude_bound(stream)

    def fresh(seed=7):
        return make_l0_estimator(family, universe, EPS, bound, seed)

    reference = fresh()
    reference.update_batch(items, deltas)
    reference_state = canonical_state(reference)
    reference_estimate = reference.estimate()

    scalar = fresh()
    for item, delta in zip(items.tolist(), deltas.tolist()):
        scalar.update(item, delta)
    assert canonical_state(scalar) == reference_state
    assert scalar.estimate() == reference_estimate

    split = fresh()
    for start in range(0, len(items), 311):
        split.update_batch(items[start : start + 311], deltas[start : start + 311])
    assert canonical_state(split) == reference_state

    if family not in STORELESS:
        store = SketchStore.for_family(
            family, universe, keys=["k"], eps=EPS, seed=7, magnitude_bound=bound
        )
        store.update_batch("k", items, deltas)
        assert canonical_state(store.sketch("k")) == reference_state
        assert store.estimate("k") == reference_estimate

    if family in mergeable_l0_names():
        sharded = fresh()
        parallel_ingest_updates_into(
            sharded, (items, deltas), shards=4, execution="inline"
        )
        assert canonical_state(sharded) == reference_state
        assert sharded.estimate() == reference_estimate

        ring = WindowedSketch(fresh(), retention=2)
        ring.ingest_timestamped(np.zeros(len(items), dtype=np.int64), items, deltas)
        assert canonical_state(ring.window_sketch(1)) == reference_state
        assert ring.estimate_window(1) == reference_estimate


# ---------------------------------------------------------------------------
# Accuracy envelopes: every family, every class it can ingest
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    not AT_DEFAULT_SCALE, reason="envelopes calibrated at the default scale"
)
@pytest.mark.parametrize("cls_name", INSERTION_CLASSES)
@pytest.mark.parametrize("family", f0_algorithm_names())
def test_f0_within_envelope(family, cls_name):
    stream = _stream(cls_name)
    items = stream.item_array()
    truth = stream.ground_truth()
    errors = []
    for seed in ENVELOPE_SEEDS:
        estimator = make_f0_estimator(family, stream.universe_size, EPS, seed)
        estimator.update_batch(items)
        errors.append(abs(estimator.estimate() - truth) / max(truth, 1))
    assert statistics.median(errors) <= ENVELOPE[family], (
        "%s on %s: median error %.3f over envelope %.3f (truth %d)"
        % (family, cls_name, statistics.median(errors), ENVELOPE[family], truth)
    )


@pytest.mark.skipif(
    not AT_DEFAULT_SCALE, reason="envelopes calibrated at the default scale"
)
@pytest.mark.parametrize("cls_name", CLASSES)
@pytest.mark.parametrize("family", l0_algorithm_names())
def test_l0_within_envelope(family, cls_name):
    stream = _stream(cls_name)
    items = stream.item_array()
    deltas = stream.delta_array()
    truth = stream.ground_truth()
    bound = _magnitude_bound(stream)
    errors = []
    for seed in ENVELOPE_SEEDS:
        estimator = make_l0_estimator(family, stream.universe_size, EPS, bound, seed)
        estimator.update_batch(items, deltas)
        errors.append(abs(estimator.estimate() - truth) / max(truth, 1))
    assert statistics.median(errors) <= ENVELOPE[family], (
        "%s on %s: median error %.3f over envelope %.3f (truth %d)"
        % (family, cls_name, statistics.median(errors), ENVELOPE[family], truth)
    )


# ---------------------------------------------------------------------------
# Grouped-store path over the keyed shapes
# ---------------------------------------------------------------------------

_KEYED_F0_FAMILIES = [n for n in f0_algorithm_names() if n not in STORELESS]
_KEYED_L0_FAMILIES = [n for n in l0_algorithm_names() if n not in STORELESS]


@pytest.mark.parametrize("cls_name", INSERTION_CLASSES)
@pytest.mark.parametrize("family", _KEYED_F0_FAMILIES)
def test_keyed_grouped_store_paths_agree(family, cls_name):
    """Grouped sweeps, per-key batches, and the scalar loop build
    byte-identical stores; each row equals a standalone same-seed sketch."""
    workload = make_workload(cls_name, "keyed", seed=WORKLOAD_SEED, scale=TEST_SCALE)
    universe = workload.universe_size

    def build():
        return SketchStore.for_family(family, universe, eps=EPS, seed=7)

    grouped = build()
    for keys, items in workload.iter_grouped_batches(257):
        grouped.update_grouped(keys, items)

    one_sweep = build()
    one_sweep.update_grouped(workload.keys, workload.items)
    assert one_sweep.to_bytes() == grouped.to_bytes()

    # The scalar loop populates per-row memo caches, so compare rows
    # through the canonical (cache-scrubbed) state rather than raw bytes.
    scalar = build()
    for key, item in zip(workload.keys.tolist(), workload.items.tolist()):
        scalar.update(key, item)
    assert scalar.keys == grouped.keys
    for key in grouped.keys:
        assert canonical_state(scalar.sketch(key)) == canonical_state(
            grouped.sketch(key)
        )

    # spot-check rows against standalone clones of the store template
    per_key_items = {}
    for key, item in zip(workload.keys.tolist(), workload.items.tolist()):
        per_key_items.setdefault(key, []).append(item)
    for key in list(per_key_items)[:3]:
        standalone = grouped.make_sketch()
        standalone.update_batch(np.asarray(per_key_items[key], dtype=np.uint64))
        assert canonical_state(grouped.sketch(key)) == canonical_state(standalone)


@pytest.mark.parametrize("cls_name", TURNSTILE_CLASSES)
@pytest.mark.parametrize("family", _KEYED_L0_FAMILIES)
def test_keyed_turnstile_grouped_store_paths_agree(family, cls_name):
    workload = make_workload(cls_name, "keyed", seed=WORKLOAD_SEED, scale=TEST_SCALE)
    assert workload.deltas is not None
    universe = workload.universe_size
    bound = max(len(workload), 1)

    def build():
        return SketchStore.for_family(
            family, universe, eps=EPS, seed=7, magnitude_bound=bound
        )

    grouped = build()
    for keys, items, deltas in workload.iter_grouped_update_batches(257):
        grouped.update_grouped(keys, items, deltas)

    one_sweep = build()
    one_sweep.update_grouped(workload.keys, workload.items, workload.deltas)
    assert one_sweep.to_bytes() == grouped.to_bytes()

    scalar = build()
    for key, item, delta in zip(
        workload.keys.tolist(), workload.items.tolist(), workload.deltas.tolist()
    ):
        scalar.update(key, item, delta)
    assert scalar.keys == grouped.keys
    for key in grouped.keys:
        assert canonical_state(scalar.sketch(key)) == canonical_state(
            grouped.sketch(key)
        )

    per_key = {}
    for key, item, delta in zip(
        workload.keys.tolist(), workload.items.tolist(), workload.deltas.tolist()
    ):
        per_key.setdefault(key, ([], []))
        per_key[key][0].append(item)
        per_key[key][1].append(delta)
    for key in list(per_key)[:3]:
        standalone = grouped.make_sketch()
        items, deltas = per_key[key]
        standalone.update_batch(
            np.asarray(items, dtype=np.uint64), np.asarray(deltas, dtype=np.int64)
        )
        assert canonical_state(grouped.sketch(key)) == canonical_state(standalone)


def test_keyed_churn_ground_truth_is_exact_per_key_support():
    """The churn workload's declared truth is the exact per-key support."""
    workload = make_workload("churn", "keyed", seed=WORKLOAD_SEED, scale=TEST_SCALE)
    truth = workload.ground_truth()
    recount = {}
    for key, item, delta in zip(
        workload.keys.tolist(), workload.items.tolist(), workload.deltas.tolist()
    ):
        net = recount.setdefault(key, {})
        net[item] = net.get(item, 0) + delta
    assert truth == {
        key: sum(1 for value in net.values() if value) for key, net in recount.items()
    }


# ---------------------------------------------------------------------------
# Windowed path: rollups over the timestamped shapes
# ---------------------------------------------------------------------------

_WINDOW_F0_FAMILIES = mergeable_f0_names(shard_deterministic_only=True)


@pytest.mark.parametrize("cls_name", INSERTION_CLASSES)
@pytest.mark.parametrize("family", _WINDOW_F0_FAMILIES)
def test_windowed_rollup_equals_fresh_sketch_over_window(family, cls_name):
    """For shard-deterministic families the k-epoch rollup is bit-identical
    to a fresh same-seed sketch fed exactly the window's updates."""
    workload = make_workload(
        cls_name, "windowed", seed=WORKLOAD_SEED, scale=TEST_SCALE
    )
    template = make_f0_estimator(family, workload.universe_size, EPS, 7)
    blob = template.to_bytes()
    ring = WindowedSketch(template, retention=workload.epoch_count)
    ring.ingest_timestamped(workload.epochs, workload.items, batch_size=509)
    for width in {1, max(workload.epoch_count // 2, 1), workload.epoch_count}:
        fresh = serialize.loads(blob)
        _, window_items, _ = workload.window_slice(width)
        if len(window_items):
            fresh.update_batch(window_items)
        assert canonical_state(ring.window_sketch(width)) == canonical_state(fresh), (
            "%s on %s: rollup diverged at width %d" % (family, cls_name, width)
        )


@pytest.mark.parametrize("family", mergeable_l0_names())
def test_windowed_turnstile_rollup_equals_fresh_sketch(family):
    workload = make_workload("churn", "windowed", seed=WORKLOAD_SEED, scale=TEST_SCALE)
    assert workload.deltas is not None
    bound = max(len(workload), 1)
    template = make_l0_estimator(family, workload.universe_size, EPS, bound, 7)
    blob = template.to_bytes()
    ring = WindowedSketch(template, retention=workload.epoch_count)
    ring.ingest_timestamped(
        workload.epochs, workload.items, workload.deltas, batch_size=509
    )
    for width in {1, workload.epoch_count}:
        fresh = serialize.loads(blob)
        _, window_items, window_deltas = workload.window_slice(width)
        if len(window_items):
            fresh.update_batch(window_items, window_deltas)
        assert canonical_state(ring.window_sketch(width)) == canonical_state(fresh)


def test_bursty_gaps_close_as_empty_epochs_and_stay_exact():
    """The bursty class's long silent gaps must not disturb the rollup:
    with the exact mergeable family, every window answer is exactly the
    workload's ground truth, across gap-spanning widths."""
    workload = make_workload("bursty", "windowed", seed=WORKLOAD_SEED, scale=TEST_SCALE)
    busy_epochs = len(set(workload.epochs.tolist()))
    assert workload.epoch_count > busy_epochs, "bursty workload must contain gaps"
    ring = WindowedSketch(
        make_f0_estimator("exact", workload.universe_size, EPS, 7),
        retention=workload.epoch_count,
    )
    ring.ingest_timestamped(workload.epochs, workload.items)
    for width in range(1, workload.epoch_count + 1):
        assert ring.estimate_window(width) == workload.ground_truth_window(width)


def test_windowed_ingest_batch_size_invariance():
    workload = make_workload("churn", "windowed", seed=WORKLOAD_SEED, scale=TEST_SCALE)
    bound = max(len(workload), 1)

    def ingest(batch_size):
        ring = WindowedSketch(
            make_l0_estimator("knw-l0", workload.universe_size, EPS, bound, 7),
            retention=workload.epoch_count,
        )
        ring.ingest_timestamped(
            workload.epochs, workload.items, workload.deltas, batch_size=batch_size
        )
        return ring

    reference = ingest(None)
    reference_states = [
        canonical_state(reference.window_sketch(width))
        for width in range(1, workload.epoch_count + 1)
    ]
    for batch_size in (1, 97, 4096):
        ring = ingest(batch_size)
        states = [
            canonical_state(ring.window_sketch(width))
            for width in range(1, workload.epoch_count + 1)
        ]
        assert states == reference_states


# ---------------------------------------------------------------------------
# Seed determinism (satellite): byte-identical re-generation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shape", ["stream", "keyed", "windowed"])
@pytest.mark.parametrize("cls_name", CLASSES)
def test_generators_are_seed_deterministic(cls_name, shape):
    first = make_workload(cls_name, shape, seed=99, scale=TEST_SCALE)
    second = make_workload(cls_name, shape, seed=99, scale=TEST_SCALE)
    other = make_workload(cls_name, shape, seed=100, scale=TEST_SCALE)
    fingerprint = workload_fingerprint(first)
    assert fingerprint == workload_fingerprint(second)
    assert fingerprint != workload_fingerprint(other)


def test_fingerprint_covers_sketch_state_reproducibility():
    """Same-seed workloads drive a sketch into byte-identical state —
    the property the fingerprint regression stands in for."""
    first = make_workload("skew", "stream", seed=5, scale=TEST_SCALE)
    second = make_workload("skew", "stream", seed=5, scale=TEST_SCALE)
    a = make_f0_estimator("hyperloglog", first.universe_size, EPS, 3)
    b = make_f0_estimator("hyperloglog", second.universe_size, EPS, 3)
    a.update_batch(first.item_array())
    b.update_batch(second.item_array())
    assert a.to_bytes() == b.to_bytes()


# ---------------------------------------------------------------------------
# Sweep reachability by class name
# ---------------------------------------------------------------------------


def test_all_classes_reachable_from_sweeps_by_name():
    from repro.analysis import (
        accuracy_sweep,
        keyed_accuracy_sweep,
        l0_accuracy_sweep,
        windowed_accuracy_sweep,
        workload_class_grid,
    )

    for cls_name in INSERTION_CLASSES:
        points = accuracy_sweep(
            ["hyperloglog"], cls_name, [EPS], [1], workload_scale=TEST_SCALE
        )
        assert points and points[0].truth > 0
    for cls_name in TURNSTILE_CLASSES:
        points = l0_accuracy_sweep(
            ["knw-l0"], cls_name, [EPS], [1], workload_scale=TEST_SCALE
        )
        assert points and points[0].truth > 0
    keyed = keyed_accuracy_sweep(
        ["hyperloglog"], "cold-keys", [EPS], [1], workload_scale=TEST_SCALE
    )
    assert keyed[0].key_count == TEST_SCALE.key_count
    keyed_churn = keyed_accuracy_sweep(
        ["knw-l0"], "churn", [EPS], [1], workload_scale=TEST_SCALE
    )
    assert keyed_churn[0].key_count == TEST_SCALE.key_count
    windowed = windowed_accuracy_sweep(
        ["hyperloglog"], "bursty", [1, 2], EPS, [1], workload_scale=TEST_SCALE
    )
    assert {point.window for point in windowed} == {1, 2}
    windowed_churn = windowed_accuracy_sweep(
        ["knw-l0"], "churn", [1], EPS, [1], workload_scale=TEST_SCALE
    )
    assert windowed_churn[0].truth > 0
    grid = workload_class_grid(
        ["hyperloglog"], ["knw-l0"], [EPS], [1], workload_scale=TEST_SCALE
    )
    assert sorted(grid) == sorted(CLASSES)


def test_turnstile_class_rejected_from_f0_sweep():
    from repro.analysis import accuracy_sweep

    with pytest.raises(ParameterError):
        accuracy_sweep(["hyperloglog"], "churn", [EPS], [1], workload_scale=TEST_SCALE)


def test_unknown_class_and_shape_raise():
    from repro.analysis import resolve_workload_factory

    with pytest.raises(ParameterError):
        make_workload("no-such-class")
    with pytest.raises(ParameterError):
        make_workload("skew", shape="no-such-shape")
    with pytest.raises(ParameterError):
        resolve_workload_factory(12345, "stream")
