"""Durability tax and recovery speed of the write-ahead-logged ingest path.

The durability subsystem promises that wrapping a sketch in a
:class:`~repro.durability.Checkpointer` costs a bounded constant factor
over bare batched ingestion, because the log amortises one serialized
delta record plus one ``fsync`` over every ``update_batch`` call.  Two
ingest paths are timed over the same batched workload:

* ``unlogged`` — ``update_batch`` straight into the estimator;
* ``logged`` — ``Checkpointer.ingest`` per batch (encode the delta,
  apply the decoded record, append + fsync), with periodic snapshots.

Acceptance gate (asserted at full scale): the logged path must stay
within 2x of the unlogged wall-clock for the ``knw`` family at 1M
items in 64Ki batches.  The gate is skipped — with the measured table
still printed — when the workload has been shrunk for a smoke run.

Recovery is then timed cold: ``recover()`` over the directory the
logged run left behind (newest snapshot + delta suffix), reported as
both bytes/s over the scanned log and the normalised seconds-per-GB
figure.  A correctness check always runs: the recovered sketch must be
bit-identical (``to_bytes``) to the live one.

Environment knobs (for CI smoke runs and local experiments):

* ``BENCH_DURABILITY_ITEMS`` — total items ingested (default 1_000_000).
* ``BENCH_DURABILITY_BATCH`` — items per batch (default 65536).
* ``BENCH_DURABILITY_SNAPSHOT_EVERY`` — delta records between automatic
  snapshots (default 16).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import BENCH_UNIVERSE, emit, metric, record, run_once

from repro.durability import Checkpointer, recover
from repro.estimators.registry import make_f0_estimator

#: Full-scale defaults; override via the environment for smoke runs.
ITEMS = int(os.environ.get("BENCH_DURABILITY_ITEMS", 1_000_000))
BATCH = int(os.environ.get("BENCH_DURABILITY_BATCH", 65536))
SNAPSHOT_EVERY = int(os.environ.get("BENCH_DURABILITY_SNAPSHOT_EVERY", 16))

EPS = 0.05
SEED = 13

#: Family under the assertion gate and its allowed slowdown.
GATED_FAMILY = "knw"
GATE_OVERHEAD = 2.0

#: Scale below which the gate is skipped (smoke runs).
GATE_ITEMS = 1_000_000

_GIB = float(1 << 30)


def _batches():
    items = np.random.RandomState(20100610).randint(
        0, BENCH_UNIVERSE, size=ITEMS
    ).astype(np.uint64)
    return [items[start : start + BATCH] for start in range(0, ITEMS, BATCH)]


def _directory_bytes(directory):
    return sum(
        os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory)
    )


def test_durability_overhead_and_recovery(benchmark, tmp_path_factory):
    batches = _batches()
    directory = str(tmp_path_factory.mktemp("durability"))

    def run():
        unlogged = make_f0_estimator(GATED_FAMILY, BENCH_UNIVERSE, EPS, SEED)
        start = time.perf_counter()
        for batch in batches:
            unlogged.update_batch(batch)
        unlogged_seconds = time.perf_counter() - start

        checkpointer = Checkpointer(
            make_f0_estimator(GATED_FAMILY, BENCH_UNIVERSE, EPS, SEED),
            directory,
            snapshot_every=SNAPSHOT_EVERY,
        )
        start = time.perf_counter()
        for batch in batches:
            checkpointer.ingest(batch)
        logged_seconds = time.perf_counter() - start
        live_bytes = checkpointer.target.to_bytes()
        checkpointer.close()

        log_bytes = _directory_bytes(directory)
        start = time.perf_counter()
        recovered, report = recover(directory)
        recovery_seconds = time.perf_counter() - start
        assert report.clean, report.summary()
        assert recovered.to_bytes() == live_bytes
        assert recovered.estimate() == unlogged.estimate()
        return unlogged_seconds, logged_seconds, log_bytes, recovery_seconds

    unlogged_seconds, logged_seconds, log_bytes, recovery_seconds = run_once(
        benchmark, run
    )

    overhead = logged_seconds / unlogged_seconds if unlogged_seconds else float("inf")
    recovery_rate = log_bytes / recovery_seconds if recovery_seconds else float("inf")
    seconds_per_gib = _GIB / recovery_rate
    emit(
        "E14: durability tax and recovery speed (%s, %d items, %d-item batches)"
        % (GATED_FAMILY, ITEMS, BATCH),
        "\n".join(
            [
                "unlogged ingest:  %8.3f s  (%.0f items/s)"
                % (unlogged_seconds, ITEMS / unlogged_seconds),
                "logged ingest:    %8.3f s  (%.0f items/s)"
                % (logged_seconds, ITEMS / logged_seconds),
                "overhead:         %8.2fx  (gate: <= %.1fx)"
                % (overhead, GATE_OVERHEAD),
                "log size:         %8.1f KiB over %d delta batches"
                % (log_bytes / 1024.0, len(batches)),
                "recovery:         %8.3f s  (%.1f MiB/s, %.1f s/GiB)"
                % (
                    recovery_seconds,
                    recovery_rate / (1 << 20),
                    seconds_per_gib,
                ),
            ]
        ),
    )
    record(
        "durability",
        {
            "unlogged_items_per_s": metric(
                ITEMS / unlogged_seconds, "higher", "rate", "items/s"
            ),
            "logged_items_per_s": metric(
                ITEMS / logged_seconds, "higher", "rate", "items/s"
            ),
            "logged_overhead": metric(overhead, "lower", "rate", "x"),
            "recovery_bytes_per_s": metric(
                recovery_rate, "higher", "rate", "bytes/s"
            ),
        },
        scale={"items": ITEMS, "batch": BATCH, "snapshot_every": SNAPSHOT_EVERY},
    )

    if ITEMS >= GATE_ITEMS:
        assert overhead <= GATE_OVERHEAD, (
            "durable ingest overhead %.2fx above the %.1fx gate"
            % (overhead, GATE_OVERHEAD)
        )
