"""E8 — Theorem 10 vs. Ganguly: L0 accuracy, space, and deletion handling.

Compares the KNW L0 estimator against the Ganguly-style baseline on
turnstile streams with increasing deletion fractions, plus the mixed-sign
workload only KNW supports.  Space is reported for a realistically large
frequency bound (the regime where KNW's loglog(mM) fingerprints beat
Ganguly's log(mM) counters).
"""

from __future__ import annotations

from conftest import emit, metric, record, run_once

from repro.analysis import Table, format_bits
from repro.analysis.metrics import relative_error
from repro.l0 import GangulyStyleL0Estimator, KNWHammingNormEstimator
from repro.streams import insert_delete_stream, mixed_sign_stream

UNIVERSE = 1 << 14
EPS = 0.1
SEEDS = [1, 2, 3]
DELETE_FRACTIONS = [0.0, 0.25, 0.5]
MAGNITUDE_BOUND = 1 << 40  # a realistically large mM for the space comparison


def test_l0_accuracy_and_space(benchmark):
    def experiment():
        rows = []
        for fraction in DELETE_FRACTIONS:
            knw_errors, ganguly_errors = [], []
            knw_space = ganguly_space = 0
            for seed in SEEDS:
                stream = insert_delete_stream(
                    UNIVERSE, 3_000, delete_fraction=fraction, copies=2, seed=200 + seed
                )
                truth = stream.ground_truth()
                knw = KNWHammingNormEstimator(
                    UNIVERSE, eps=EPS, magnitude_bound=MAGNITUDE_BOUND, seed=seed
                )
                ganguly = GangulyStyleL0Estimator(
                    UNIVERSE, eps=EPS, magnitude_bound=MAGNITUDE_BOUND, seed=seed
                )
                knw_errors.append(relative_error(knw.process_stream(stream), truth))
                ganguly_errors.append(relative_error(ganguly.process_stream(stream), truth))
                knw_space = knw.space_bits()
                ganguly_space = ganguly.space_bits()
            rows.append(
                (
                    fraction,
                    sum(knw_errors) / len(knw_errors),
                    sum(ganguly_errors) / len(ganguly_errors),
                    knw_space,
                    ganguly_space,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = Table(
        "E8a: L0 estimation, eps=%.2f, mM=2^40, %d seeds" % (EPS, len(SEEDS)),
        ["delete fraction", "knw-l0 mean err", "ganguly mean err", "knw-l0 space", "ganguly space"],
    )
    for fraction, knw_err, ganguly_err, knw_space, ganguly_space in rows:
        table.add_row([
            "%.2f" % fraction,
            "%.3f" % knw_err,
            "%.3f" % ganguly_err,
            format_bits(knw_space),
            format_bits(ganguly_space),
        ])
    emit("E8a: KNW L0 vs Ganguly-style baseline", table.render_text())
    metrics = {}
    for fraction, knw_err, ganguly_err, knw_space, ganguly_space in rows:
        metrics["knw_l0_delete%.2f_error" % fraction] = metric(knw_err, "lower", "error")
        metrics["ganguly_delete%.2f_error" % fraction] = metric(
            ganguly_err, "lower", "error"
        )
    metrics["knw_l0_space_bits"] = metric(rows[0][3], "lower", "space", "bits")
    metrics["ganguly_space_bits"] = metric(rows[0][4], "lower", "space", "bits")
    record("l0_comparison", metrics, scale={"universe": UNIVERSE, "distinct": 3_000})

    for fraction, knw_err, _, _, _ in rows:
        assert knw_err <= 4 * EPS


def test_l0_mixed_sign_only_knw(benchmark):
    def experiment():
        stream = mixed_sign_stream(UNIVERSE, 1_000, 1_000, seed=7)
        truth = stream.ground_truth()
        knw = KNWHammingNormEstimator(
            UNIVERSE, eps=EPS, magnitude_bound=MAGNITUDE_BOUND, seed=9
        )
        ganguly = GangulyStyleL0Estimator(
            UNIVERSE, eps=EPS, magnitude_bound=MAGNITUDE_BOUND, seed=9
        )
        return {
            "truth": truth,
            "knw": knw.process_stream(stream),
            "ganguly": ganguly.process_stream(stream),
        }

    result = run_once(benchmark, experiment)
    body = (
        "truth = %d\nknw-l0 estimate = %.1f (rel. err %.3f)\n"
        "ganguly estimate = %.1f (rel. err %.3f)  <- requires non-negative frequencies;\n"
        "mixed-sign streams are outside its contract, which is the paper's point."
        % (
            result["truth"],
            result["knw"],
            relative_error(result["knw"], result["truth"]),
            result["ganguly"],
            relative_error(result["ganguly"], result["truth"]),
        )
    )
    emit("E8b: mixed-sign frequencies (KNW handles, Ganguly does not)", body)
    record(
        "l0_comparison",
        {
            "knw_l0_mixed_sign_error": metric(
                relative_error(result["knw"], result["truth"]), "lower", "error"
            )
        },
    )
    assert relative_error(result["knw"], result["truth"]) <= 4 * EPS
