"""E3 — Figure 1, reporting time: cost of producing an estimate mid-stream.

The paper's reporting time is O(1): the fast implementation maintains the
occupancy count incrementally and evaluates the logarithm via the Appendix
A.2 lookup table.  The benchmark times ``estimate()`` on warm sketches and
checks that the fast KNW report does not scale with eps.  The
register-scanning baselines (LogLog/HLL) still do Theta(1/eps^2) *work*
per report, but since their estimators read the registers through one
bulk ``PackedCounterArray.to_numpy`` pass, the interpreter-level cost no
longer scales with 1/eps^2 — only the (far cheaper) vector reductions do.
"""

from __future__ import annotations

import random

import pytest
from conftest import BENCH_UNIVERSE, mean_seconds, metric, record

from repro.estimators.registry import make_f0_estimator

ALGORITHMS = ["knw", "knw-fast", "hyperloglog", "loglog", "kmv", "bjkst"]


def _warm(algorithm: str, eps: float):
    estimator = make_f0_estimator(algorithm, BENCH_UNIVERSE, eps, seed=9)
    rng = random.Random(21)
    for _ in range(4_000):
        estimator.update(rng.randrange(BENCH_UNIVERSE))
    return estimator


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_reporting_time(benchmark, algorithm):
    estimator = _warm(algorithm, eps=0.05)
    benchmark.group = "reporting-time eps=0.05"
    benchmark(estimator.estimate)
    record(
        "reporting_time",
        {
            "%s_report_seconds"
            % algorithm: metric(mean_seconds(benchmark), "lower", "rate", "s/report")
            if mean_seconds(benchmark) is not None
            else None
        },
        scale={"universe": BENCH_UNIVERSE, "warm_items": 4_000},
    )


def test_fast_knw_reporting_independent_of_eps(benchmark):
    import time

    def measure(eps: float) -> float:
        estimator = _warm("knw-fast", eps)
        start = time.perf_counter()
        for _ in range(300):
            estimator.estimate()
        return (time.perf_counter() - start) / 300

    def experiment():
        return {eps: measure(eps) for eps in (0.2, 0.05, 0.02)}

    timings = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nE3 shape check: knw-fast per-report seconds by eps:", timings)
    record(
        "reporting_time",
        {"report_eps_scaling_ratio": metric(timings[0.02] / timings[0.2], "lower", "ratio")},
    )
    assert timings[0.02] < 5.0 * timings[0.2]
