"""E11 — Motivating applications (Section 1): end-to-end quality of the apps.

Runs the three database-domain applications on synthetic workloads with
known ground truth and reports estimation quality and footprint:

* query optimiser: per-column NDV error;
* network monitor: per-window distinct-flow error and scan detection;
* data cleaning: Hamming-distance error for similar/dissimilar column pairs.
"""

from __future__ import annotations

import random

from conftest import emit, metric, record, run_once

from repro.analysis import Table, format_bits
from repro.analysis.metrics import relative_error
from repro.apps import ColumnStatisticsCollector, FlowCardinalityMonitor, SimilarColumnFinder
from repro.streams import packet_trace, table_column

UNIVERSE = 1 << 18


def test_query_optimizer_ndv_quality(benchmark):
    def experiment():
        collector = ColumnStatisticsCollector(
            ["low_card", "mid_card", "high_card"], UNIVERSE, eps=0.05, seed=4
        )
        truths = {}
        for name, distinct in (("low_card", 40), ("mid_card", 2_000), ("high_card", 12_000)):
            column = table_column(UNIVERSE, rows=25_000, distinct_values=distinct, seed=hash(name) % 1000)
            collector.ingest_column(name, [u.item for u in column])
            truths[name] = distinct
        rows = []
        for name, truth in truths.items():
            estimate = collector.ndv(name)
            rows.append((name, truth, estimate, relative_error(estimate, truth)))
        return rows, collector.space_bits()

    rows, space = run_once(benchmark, experiment)
    table = Table(
        "E11a: query-optimizer NDV statistics (eps=0.05, footprint %s)" % format_bits(space),
        ["column", "exact NDV", "estimated NDV", "rel. error"],
    )
    for name, truth, estimate, error in rows:
        table.add_row([name, truth, "%.0f" % estimate, "%.3f" % error])
    emit("E11a: query optimiser", table.render_text())
    record(
        "applications",
        dict(
            {
                "ndv_%s_error" % name: metric(error, "lower", "error")
                for name, _, _, error in rows
            },
            ndv_space_bits=metric(space, "lower", "space", "bits"),
        ),
        scale={"universe": UNIVERSE},
    )
    for _, _, _, error in rows:
        assert error < 0.2


def test_network_monitor_quality(benchmark):
    def experiment():
        stream, records = packet_trace(
            UNIVERSE, packets=20_000, distinct_flows=3_000, scanner_destinations=800, seed=6
        )
        monitor = FlowCardinalityMonitor(
            universe_size=UNIVERSE, eps=0.05, window_packets=50_000,
            scan_fanout_threshold=400, seed=2,
        )
        for record in records:
            monitor.observe(record)
        report = monitor.flush()
        return stream.ground_truth(), report

    truth, report = run_once(benchmark, experiment)
    error = relative_error(report.distinct_flows, truth)
    body = (
        "distinct flows: exact %d, estimated %.0f (rel. err %.3f)\n"
        "scan suspects flagged: %d (expected 1 scanning host)"
        % (truth, report.distinct_flows, error, len(report.scan_suspects))
    )
    emit("E11b: network monitor", body)
    record(
        "applications",
        {
            "monitor_distinct_flows_error": metric(error, "lower", "error"),
            "monitor_scan_suspects": metric(
                len(report.scan_suspects), "higher", "count"
            ),
        },
    )
    assert error < 0.25
    assert len(report.scan_suspects) >= 1


def test_data_cleaning_quality(benchmark):
    def experiment():
        rng = random.Random(13)
        base = [rng.randrange(UNIVERSE) for _ in range(6_000)]
        dirty = list(base)
        for position in rng.sample(range(6_000), 600):
            dirty[position] = rng.randrange(UNIVERSE)
        unrelated = [rng.randrange(UNIVERSE) for _ in range(6_000)]
        finder = SimilarColumnFinder(UNIVERSE, eps=0.1, seed=3)
        dirty_estimate = finder.pair_report_streaming(base, dirty)
        unrelated_estimate = finder.pair_report_streaming(base, unrelated)
        from collections import Counter

        def exact(left, right):
            difference = Counter(left)
            difference.subtract(Counter(right))
            return sum(1 for count in difference.values() if count != 0)

        return {
            "dirty": (exact(base, dirty), dirty_estimate),
            "unrelated": (exact(base, unrelated), unrelated_estimate),
        }

    results = run_once(benchmark, experiment)
    table = Table(
        "E11c: data cleaning — Hamming distance between column multisets",
        ["pair", "exact distance", "estimated distance", "rel. error"],
    )
    for pair, (truth, estimate) in results.items():
        table.add_row([pair, truth, "%.0f" % estimate, "%.3f" % relative_error(estimate, truth)])
    emit("E11c: data cleaning", table.render_text())
    record(
        "applications",
        {
            "cleaning_%s_error"
            % pair: metric(relative_error(estimate, truth), "lower", "error")
            for pair, (truth, estimate) in results.items()
        },
    )
    dirty_truth, dirty_estimate = results["dirty"]
    unrelated_truth, unrelated_estimate = results["unrelated"]
    assert relative_error(dirty_estimate, dirty_truth) < 0.35
    assert relative_error(unrelated_estimate, unrelated_truth) < 0.35
    assert dirty_estimate < unrelated_estimate
