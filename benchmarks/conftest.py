"""Shared helpers for the benchmark harness.

Every benchmark corresponds to an experiment id in DESIGN.md (E1-E12) and
regenerates a table or guarantee the paper reports.  Macro-benchmarks (the
table-producing ones) run their workload once via ``benchmark.pedantic`` and
print the resulting table so it lands in ``bench_output.txt``; the
micro-benchmarks (per-update / per-report timing) use pytest-benchmark's
normal repeated timing.
"""

from __future__ import annotations

import json
import os
import time

import pytest

#: Universe size shared by the benchmarks (2^20, as in DESIGN.md's E1 row).
BENCH_UNIVERSE = 1 << 20

#: Moderate universe for the heavier sweeps.
SMALL_BENCH_UNIVERSE = 1 << 16

#: Where ``record`` writes its ``BENCH_<name>.json`` files.  The committed
#: regression baselines live in ``benchmarks/baselines/`` and are compared
#: against a results directory by ``benchmarks/report.py``.
RESULTS_DIR = os.environ.get(
    "BENCH_RESULTS_DIR", os.path.join(os.path.dirname(__file__), "results")
)

#: Modules recorded in this process — repeated ``record`` calls for the
#: same name merge; a name first seen this run replaces any stale file.
_RECORDED_THIS_RUN = set()


def run_once(benchmark, function):
    """Run a macro-benchmark exactly once and return its result."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


def metric(value, direction="higher", kind="rate", unit=None):
    """Describe one recorded metric.

    Args:
        value: the measurement.
        direction: ``"higher"`` if bigger is better (rates, speedups) or
            ``"lower"`` (errors, space, latencies).
        kind: ``"rate"`` for wall-clock-dependent measurements (gated
            loosely by ``report.py`` since they vary across machines) or a
            machine-portable kind — ``"ratio"``, ``"error"``, ``"space"``,
            ``"count"`` — gated at the strict threshold.
        unit: optional human-readable unit (``"items/s"``, ``"bits"``).
    """
    entry = {"value": float(value), "direction": direction, "kind": kind}
    if unit is not None:
        entry["unit"] = unit
    return entry


def mean_seconds(benchmark):
    """Mean per-round seconds of a pytest-benchmark run (None if absent)."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean = getattr(stats, "mean", None)
    return None if mean is None else float(mean)


def record(name, metrics, scale=None, environment=None):
    """Persist benchmark metrics to ``BENCH_<name>.json`` for ``report.py``.

    Args:
        name: the bench module's short name (``batch_throughput`` for
            ``bench_batch_throughput.py``) — one JSON file per module.
        metrics: mapping of metric name to :func:`metric` entry (plain
            numbers are accepted and treated as higher-better rates).
            ``None`` values are skipped.
        scale: the workload-size knobs the run used; ``report.py`` only
            compares runs whose scale dicts match exactly.  Throughput
            benches include the active kernel backend here, so numbers
            from different backends are never compared apples-to-oranges.
        environment: free-form metadata about the machine/configuration
            the run used (e.g. ``repro.kernels.kernel_backend_info()``);
            stored in the payload for trajectory analysis, never gated.
    """
    path = os.path.join(RESULTS_DIR, "BENCH_%s.json" % name)
    payload = None
    if name in _RECORDED_THIS_RUN and os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    if payload is None:
        payload = {
            "benchmark": name,
            "date": time.strftime("%Y-%m-%d", time.gmtime()),
            "scale": {},
            "metrics": {},
        }
    if scale:
        payload["scale"].update({key: scale[key] for key in sorted(scale)})
    if environment:
        payload.setdefault("environment", {}).update(
            {key: environment[key] for key in sorted(environment)}
        )
    for key, entry in metrics.items():
        if entry is None:
            continue
        if not isinstance(entry, dict):
            entry = metric(entry)
        elif entry.get("value") is None:
            continue
        payload["metrics"][key] = entry
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    _RECORDED_THIS_RUN.add(name)


def emit(title: str, body: str) -> None:
    """Print a clearly delimited experiment report (captured by ``tee``)."""
    banner = "=" * max(len(title), 20)
    print("\n%s\n%s\n%s\n%s" % (banner, title, banner, body))


@pytest.fixture(scope="session")
def bench_universe() -> int:
    """The universe size used by the Figure-1 style benchmarks."""
    return BENCH_UNIVERSE
