"""Shared helpers for the benchmark harness.

Every benchmark corresponds to an experiment id in DESIGN.md (E1-E12) and
regenerates a table or guarantee the paper reports.  Macro-benchmarks (the
table-producing ones) run their workload once via ``benchmark.pedantic`` and
print the resulting table so it lands in ``bench_output.txt``; the
micro-benchmarks (per-update / per-report timing) use pytest-benchmark's
normal repeated timing.
"""

from __future__ import annotations

import pytest

#: Universe size shared by the benchmarks (2^20, as in DESIGN.md's E1 row).
BENCH_UNIVERSE = 1 << 20

#: Moderate universe for the heavier sweeps.
SMALL_BENCH_UNIVERSE = 1 << 16


def run_once(benchmark, function):
    """Run a macro-benchmark exactly once and return its result."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    """Print a clearly delimited experiment report (captured by ``tee``)."""
    banner = "=" * max(len(title), 20)
    print("\n%s\n%s\n%s\n%s" % (banner, title, banner, body))


@pytest.fixture(scope="session")
def bench_universe() -> int:
    """The universe size used by the Figure-1 style benchmarks."""
    return BENCH_UNIVERSE
