"""E5 — Theorem 1: RoughEstimator is a constant-factor approximation at all times.

Feeds a growing-then-flat workload and records the ratio estimate/F0(t) at
many checkpoints, for both the Figure 2 estimator and the Lemma 5 fast
variant.  The paper's guarantee is a ratio in [1, 8] (resp. [1, 16]) once
F0(t) >= K_RE simultaneously for every t; the benchmark reports the
observed min/max ratios over the whole stream.
"""

from __future__ import annotations

from conftest import BENCH_UNIVERSE, emit, metric, record, run_once

from repro.analysis import Table
from repro.core import FastRoughEstimator, RoughEstimator
from repro.streams import growing_then_repeating_stream


def _ratio_profile(estimator, stream, sample_every: int = 400):
    seen = set()
    ratios = []
    for index, update in enumerate(stream):
        estimator.update(update.item)
        seen.add(update.item)
        if index % sample_every == 0 and len(seen) >= 8 * estimator.counters_per_copy:
            estimate = estimator.estimate()
            if estimate > 0:
                ratios.append(estimate / len(seen))
    return ratios


def test_rough_estimator_all_times(benchmark):
    stream = growing_then_repeating_stream(BENCH_UNIVERSE, 25_000, 15_000, seed=31)

    def experiment():
        reference = RoughEstimator(BENCH_UNIVERSE, counters_per_copy=16, seed=5)
        fast = FastRoughEstimator(BENCH_UNIVERSE, counters_per_copy=16, seed=5)
        return {
            "figure-2": _ratio_profile(reference, stream),
            "lemma-5-fast": _ratio_profile(fast, stream),
        }

    profiles = run_once(benchmark, experiment)
    table = Table(
        "E5: RoughEstimator estimate / F0(t) over all checkpoints",
        ["variant", "checkpoints", "min ratio", "max ratio"],
    )
    for variant, ratios in profiles.items():
        table.add_row([
            variant,
            len(ratios),
            "%.2f" % min(ratios),
            "%.2f" % max(ratios),
        ])
    emit("E5: RoughEstimator constant-factor guarantee at all times", table.render_text())
    metrics = {}
    for variant, ratios in profiles.items():
        slug = variant.replace("-", "_")
        metrics["rough_%s_min_ratio" % slug] = metric(min(ratios), "higher", "ratio")
        metrics["rough_%s_max_ratio" % slug] = metric(max(ratios), "lower", "ratio")
    record("rough_estimator", metrics, scale={"universe": BENCH_UNIVERSE})

    for variant, ratios in profiles.items():
        assert ratios, variant
        # Constant-factor band (paper: [1, 8] / [1, 16] asymptotically; the
        # finite-size check allows a factor-2 margin on each side).
        assert min(ratios) >= 0.4, variant
        assert max(ratios) <= 32.0, variant
