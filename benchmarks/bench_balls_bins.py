"""E7 — Lemmas 1-3: balls-and-bins concentration under limited independence.

Throws A balls into K bins using (a) a truly random assignment, (b) the
k-wise independent family with the independence Lemma 2 prescribes, and
(c) a deliberately weak 2-wise family, and compares the empirical mean and
variance of the occupied-bin count against Fact 1 and the Lemma 1 bound.
The paper's point: (b) already matches (a); this is what lets the sketch
drop the random-oracle assumption.
"""

from __future__ import annotations

import random

from conftest import emit, metric, record, run_once

from repro.analysis import Table
from repro.core.balls_bins import occupancy_statistics, simulate_occupancy
from repro.hashing.kwise import KWiseHash, required_independence

BALLS = 120
BINS = 4096
TRIALS = 60


def test_limited_independence_occupancy(benchmark):
    def experiment():
        def kwise_factory(independence):
            def factory(rng: random.Random):
                return KWiseHash(BALLS, BINS, independence=independence, rng=rng)

            return factory

        lemma2_independence = required_independence(BINS, 0.05)
        return {
            "truly random": occupancy_statistics(
                simulate_occupancy(BALLS, BINS, TRIALS, seed=1)
            ),
            "k-wise (Lemma 2, k=%d)" % lemma2_independence: occupancy_statistics(
                simulate_occupancy(
                    BALLS, BINS, TRIALS, seed=2, hash_factory=kwise_factory(lemma2_independence)
                )
            ),
            "pairwise only": occupancy_statistics(
                simulate_occupancy(BALLS, BINS, TRIALS, seed=3, hash_factory=kwise_factory(2))
            ),
        }

    results = run_once(benchmark, experiment)
    expected = next(iter(results.values()))["expected_occupied"]
    variance_bound = next(iter(results.values()))["variance_bound"]
    table = Table(
        "E7: occupied bins, A=%d balls, K=%d bins, %d trials (Fact 1 E[X]=%.1f, Lemma 1 bound=%.1f)"
        % (BALLS, BINS, TRIALS, expected, variance_bound),
        ["hash family", "mean occupied", "rel. gap to E[X]", "variance", "mean inverted estimate"],
    )
    for family, stats in results.items():
        table.add_row([
            family,
            "%.2f" % stats["mean_occupied"],
            "%.4f" % (abs(stats["mean_occupied"] - expected) / expected),
            "%.2f" % stats["variance_occupied"],
            "%.1f" % stats["mean_estimate"],
        ])
    emit("E7: balls and bins with limited independence", table.render_text())
    record(
        "balls_bins",
        {
            "occupancy_gap_%s"
            % family.split(" ")[0].replace("-", "_"): metric(
                abs(stats["mean_occupied"] - expected) / expected, "lower", "error"
            )
            for family, stats in results.items()
        },
        scale={"balls": BALLS, "bins": BINS, "trials": TRIALS},
    )

    for family, stats in results.items():
        assert abs(stats["mean_occupied"] - expected) / expected < 0.05, family
        assert stats["variance_occupied"] <= 2 * variance_bound, family
