"""E1 — Figure 1, space column: bits used by each algorithm at equal accuracy.

Reproduces the shape of the paper's Figure 1 space comparison: for each
algorithm and each accuracy target eps, measure the sketch size in bits
(word-RAM accounting via ``space_bits()``) after processing the same
workload.  The KNW rows should scale as ``O(eps^-2 + log n)`` while the
pre-KNW non-oracle algorithms carry an extra ``log n`` factor on the
``eps^-2`` term, and the oracle-model algorithms (LogLog/HLL/bitmaps) are
flagged as such.
"""

from __future__ import annotations

from conftest import BENCH_UNIVERSE, emit, metric, record, run_once

from repro.analysis import Table, format_bits, space_sweep
from repro.estimators.registry import make_f0_estimator
from repro.streams import distinct_items_stream

EPS_VALUES = [0.2, 0.1, 0.05, 0.02]
ALGORITHMS = [
    "knw",
    "knw-fast",
    "knw-paper",
    "flajolet-martin",
    "ams",
    "gibbons-tirthapura",
    "kmv",
    "bjkst",
    "loglog",
    "linear-counting",
    "multiscale-bitmap",
    "hyperloglog",
    "exact",
]


def test_figure1_space_column(benchmark):
    stream = distinct_items_stream(BENCH_UNIVERSE, 20_000, repetitions=1, seed=11)

    def experiment():
        return space_sweep(ALGORITHMS, stream, EPS_VALUES, seed=3)

    results = run_once(benchmark, experiment)

    table = Table(
        "E1 / Figure 1 (space): sketch size in bits, universe 2^20, F0 = 20000",
        ["algorithm", "oracle model"] + ["eps=%.2f" % eps for eps in EPS_VALUES],
    )
    for algorithm in ALGORITHMS:
        estimator = make_f0_estimator(algorithm, BENCH_UNIVERSE, 0.1, seed=1)
        oracle = "yes" if estimator.requires_random_oracle else "no"
        row = [algorithm, oracle]
        for eps in EPS_VALUES:
            row.append(format_bits(results[algorithm][eps]))
        table.add_row(row)
    emit("E1: Figure 1 space column", table.render_text())
    record(
        "figure1_space",
        {
            "%s_eps%.2f_space_bits"
            % (algorithm, eps): metric(results[algorithm][eps], "lower", "space", "bits")
            for algorithm in ALGORITHMS
            for eps in EPS_VALUES
        },
        scale={"universe": BENCH_UNIVERSE, "distinct": 20_000},
    )

    # Shape assertions: KNW must beat the eps^-2 * log(n) algorithms at the
    # finest accuracy, and every sketch must beat exact storage.
    assert results["knw"][0.02] < results["kmv"][0.02]
    assert results["knw"][0.02] < results["gibbons-tirthapura"][0.02]
    assert results["knw"][0.02] < results["exact"][0.02]
    # The eps^-2 term must dominate scaling between eps=0.2 and eps=0.02
    # (the log(n)-sized components are shared, so the ratio is below the
    # raw 100x bin ratio but must still clearly grow).
    assert results["knw"][0.02] > 3 * results["knw"][0.2]
