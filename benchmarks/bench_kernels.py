"""Per-kernel microbenchmark: NumPy reference vs. compiled backend.

Times each seam kernel (:mod:`repro.kernels`) on every backend that loads
in this environment, side by side, at array sizes where the fused C
passes should dominate:

* ``hash_affine`` — the fused pairwise Carter--Wegman chain
  (``affine_mod_range``) with the 2^61 - 1 Mersenne field.
* ``hash_kwise`` — the fused k-wise Horner chain (``kwise_mod_range``)
  at the independence the KNW F0 estimator actually draws (k = 12).
* ``residue_scatter`` — ``grouped_residue_sums``, the turnstile
  scatter-accumulate core.
* ``grouped_max`` / ``grouped_or`` — the sketch-store register scatters.
* ``mulmod_arrays`` — the element-by-element field multiply.
* ``lsb`` — the batched least-significant-bit extraction.

Acceptance gate (asserted at full scale when the compiled backend is
available): the compiled backend must beat the NumPy reference by >= 5x
on at least two kernels.  When the machine cannot build the compiled
backend the gate is *skipped loudly* — the forced-backend CI matrix is
then the proof that the NumPy fallback path still works.

Environment knobs:

* ``BENCH_KERNEL_ITEMS`` — elements per kernel call (default 1_000_000).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from conftest import emit, metric, record, run_once

from repro.exceptions import KernelBackendError
from repro.kernels import available_backends, load_backend

#: Full-scale default; override via the environment for smoke runs.
ELEMENTS = int(os.environ.get("BENCH_KERNEL_ITEMS", 1_000_000))

#: Element count below which the speedup gate is skipped (smoke runs).
GATE_SCALE = 1_000_000

#: The compiled backend must beat NumPy by this factor on this many kernels.
GATE_SPEEDUP = 5.0
GATE_KERNELS = 2

MERSENNE61 = (1 << 61) - 1

#: Independence drawn by the KNW F0 estimator's h3 at typical parameters.
KWISE_K = 12


def _backends():
    loaded = {}
    for name in available_backends():
        try:
            loaded[name] = load_backend(name)
        except KernelBackendError as exc:
            loaded[name] = None
            emit(
                "bench_kernels backend %r" % name,
                "UNAVAILABLE in this environment: %s" % exc,
            )
    return loaded


def _inputs():
    rng = np.random.default_rng(0xBE7C)
    keys = rng.integers(0, 1 << 32, size=ELEMENTS, dtype=np.uint64)
    field = rng.integers(0, MERSENNE61, size=ELEMENTS, dtype=np.uint64)
    groups = rng.integers(0, 1 << 16, size=ELEMENTS).astype(np.int64)
    values = rng.integers(0, 64, size=ELEMENTS).astype(np.int64)
    masks = (1 << (values % 8)).astype(np.uint8)
    coefficients = [int(c) for c in rng.integers(1, MERSENNE61, size=KWISE_K)]
    a, b = coefficients[0], coefficients[1]
    kernels = {
        "hash_affine": lambda backend: backend.affine_mod_range(
            a, b, keys, MERSENNE61, 1 << 32, 1 << 16
        ),
        "hash_kwise": lambda backend: backend.kwise_mod_range(
            coefficients, keys, MERSENNE61, 1 << 32, 1 << 16
        ),
        "residue_scatter": lambda backend: backend.grouped_residue_sums(
            groups, 1 << 16, field, MERSENNE61
        ),
        "grouped_max": lambda backend: backend.grouped_max_scatter(
            np.zeros(1 << 16, dtype=np.uint8), groups, values
        ),
        "grouped_or": lambda backend: backend.grouped_or_scatter(
            np.zeros(1 << 16, dtype=np.uint8), groups, masks
        ),
        "mulmod_arrays": lambda backend: backend.mulmod_arrays(
            field, keys, MERSENNE61, 1 << 32
        ),
        "lsb": lambda backend: backend.lsb64_batch(keys, 64),
    }
    return kernels


def _rate(fn, backend) -> float:
    """Elements/second for one kernel on one backend (best of 3 passes)."""
    fn(backend)  # warm up (first-touch allocations, lazy imports)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fn(backend)
        best = min(best, time.perf_counter() - start)
    return ELEMENTS / best


def test_kernel_backend_comparison(benchmark):
    """E-kernels: per-kernel elements/sec per backend plus the 5x gate."""
    backends = _backends()
    kernels = _inputs()

    def experiment():
        rows = {}
        for kernel_name, fn in kernels.items():
            rows[kernel_name] = {
                backend_name: (_rate(fn, backend) if backend else None)
                for backend_name, backend in backends.items()
            }
        return rows

    rows = run_once(benchmark, experiment)
    names = sorted(backends)
    header = "%-16s" % "kernel" + "".join("%16s" % n for n in names)
    if "compiled" in names and "numpy" in names:
        header += "%10s" % "speedup"
    lines = [header + "   (elements/s, %d elements)" % ELEMENTS]
    speedups = {}
    for kernel_name, per_backend in rows.items():
        line = "%-16s" % kernel_name
        for name in names:
            rate = per_backend[name]
            line += "%16s" % ("-" if rate is None else "%.3g" % rate)
        if per_backend.get("compiled") and per_backend.get("numpy"):
            speedups[kernel_name] = per_backend["compiled"] / per_backend["numpy"]
            line += "%9.1fx" % speedups[kernel_name]
        lines.append(line)
    emit("E-kernels -- kernel backend comparison", "\n".join(lines))

    metrics = {}
    for kernel_name, per_backend in rows.items():
        for name in names:
            if per_backend[name] is not None:
                metrics["%s_%s_elements_per_s" % (kernel_name, name)] = metric(
                    per_backend[name], "higher", "rate", "elements/s"
                )
        if kernel_name in speedups:
            metrics["%s_compiled_speedup" % kernel_name] = metric(
                speedups[kernel_name], "higher", "ratio"
            )
    record(
        "kernels",
        metrics,
        scale={
            "elements": ELEMENTS,
            "compiled_available": int(backends.get("compiled") is not None),
        },
    )

    if ELEMENTS < GATE_SCALE:
        emit(
            "E-kernels gate",
            "skipped: smoke-scale arrays (%d elements < %d)"
            % (ELEMENTS, GATE_SCALE),
        )
        return
    if backends.get("compiled") is None:
        emit(
            "E-kernels gate",
            "SKIPPED: compiled backend unavailable on this machine — the "
            "NumPy fallback is covered by the forced-backend CI matrix",
        )
        return
    fast = sorted(
        (s for s in speedups.values() if s >= GATE_SPEEDUP), reverse=True
    )
    assert len(fast) >= GATE_KERNELS, (
        "compiled backend beat numpy %.0fx on only %d kernel(s) "
        "(need >= %dx on >= %d): %s"
        % (
            GATE_SPEEDUP,
            len(fast),
            GATE_SPEEDUP,
            GATE_KERNELS,
            {k: round(v, 2) for k, v in sorted(speedups.items())},
        )
    )


def test_backends_agree_on_the_benchmark_inputs():
    """The comparison is only meaningful if outputs coincide bit-for-bit."""
    backends = {n: b for n, b in _backends().items() if b is not None}
    if len(backends) < 2:
        pytest.skip("only one backend available")
    kernels = _inputs()
    reference = backends.pop("numpy")
    for kernel_name, fn in kernels.items():
        if kernel_name in ("grouped_max", "grouped_or"):
            continue  # in-place mutators, checked separately below
        expected = fn(reference)
        for name, backend in backends.items():
            got = fn(backend)
            if isinstance(expected, list):
                assert got == expected, (kernel_name, name)
            else:
                assert got.dtype == expected.dtype, (kernel_name, name)
                assert np.array_equal(got, expected), (kernel_name, name)
    rng = np.random.default_rng(7)
    groups = rng.integers(0, 256, size=10_000).astype(np.int64)
    values = rng.integers(0, 64, size=10_000).astype(np.int64)
    masks = (1 << (values % 8)).astype(np.uint8)
    ref_max = np.zeros(256, dtype=np.uint8)
    ref_or = np.zeros(256, dtype=np.uint8)
    reference.grouped_max_scatter(ref_max, groups, values)
    reference.grouped_or_scatter(ref_or, groups, masks)
    for name, backend in backends.items():
        mine_max = np.zeros(256, dtype=np.uint8)
        mine_or = np.zeros(256, dtype=np.uint8)
        backend.grouped_max_scatter(mine_max, groups, values)
        backend.grouped_or_scatter(mine_or, groups, masks)
        assert np.array_equal(mine_max, ref_max), name
        assert np.array_equal(mine_or, ref_or), name
