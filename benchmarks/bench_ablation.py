"""E12 — Ablations of the KNW design choices called out in DESIGN.md.

Three ablations, each isolating one design decision of the paper:

* **Offset rebasing** — the compressed Figure 3 representation vs. the
  uncompressed Figure 4 bitmatrix: same estimator, very different space.
* **Offset divisor** — the paper's conservative ``K/32`` subsampling target
  vs. the practical ``K/2`` setting (accuracy at identical space).
* **h3 independence** — the Lemma 2 k-wise family vs. plain pairwise
  hashing vs. the Siegel-style family used by the fast variant (accuracy
  at the same structure).
"""

from __future__ import annotations

from conftest import SMALL_BENCH_UNIVERSE, emit, metric, record, run_once

from repro.analysis import Table, format_bits
from repro.analysis.metrics import relative_error
from repro.core import BitMatrixSkeleton, KNWDistinctCounter, KNWFigure3Sketch
from repro.streams import distinct_items_stream

DISTINCT = 8_000
SEEDS = [1, 2, 3]
EPS = 0.05


def _mean(values):
    return sum(values) / len(values)


def test_ablation_offset_rebasing_space(benchmark):
    def experiment():
        stream = distinct_items_stream(SMALL_BENCH_UNIVERSE, DISTINCT, seed=41)
        compressed = KNWFigure3Sketch(
            SMALL_BENCH_UNIVERSE, eps=EPS, seed=1, offset_divisor=2
        )
        uncompressed = BitMatrixSkeleton(SMALL_BENCH_UNIVERSE, eps=EPS, seed=1)
        compressed.process_stream(stream)
        uncompressed.process_stream(stream)
        return {
            "figure-3 compressed counters": compressed.space_bits(),
            "figure-4 full bitmatrix": uncompressed.space_bits(),
        }

    spaces = run_once(benchmark, experiment)
    table = Table(
        "E12a: offset rebasing ablation — space of the counter state (eps=%.2f)" % EPS,
        ["representation", "space"],
    )
    for name, bits in spaces.items():
        table.add_row([name, format_bits(bits)])
    emit("E12a: offset rebasing (Figure 3 vs Figure 4)", table.render_text())
    record(
        "ablation",
        {
            "figure3_space_bits": metric(
                spaces["figure-3 compressed counters"], "lower", "space", "bits"
            ),
            "figure4_space_bits": metric(
                spaces["figure-4 full bitmatrix"], "lower", "space", "bits"
            ),
        },
        scale={"universe": SMALL_BENCH_UNIVERSE, "distinct": DISTINCT},
    )
    assert spaces["figure-3 compressed counters"] < spaces["figure-4 full bitmatrix"]


def test_ablation_offset_divisor_accuracy(benchmark):
    def experiment():
        results = {}
        for divisor in (32, 8, 2):
            errors = []
            for seed in SEEDS:
                stream = distinct_items_stream(
                    SMALL_BENCH_UNIVERSE, DISTINCT, seed=500 + seed
                )
                counter = KNWDistinctCounter(
                    SMALL_BENCH_UNIVERSE, eps=EPS, seed=seed, offset_divisor=divisor
                )
                errors.append(relative_error(counter.process_stream(stream), DISTINCT))
            results[divisor] = _mean(errors)
        return results

    results = run_once(benchmark, experiment)
    table = Table(
        "E12b: offset divisor ablation (paper uses 32), eps=%.2f, F0=%d" % (EPS, DISTINCT),
        ["offset divisor c (b = est - log2(K/c))", "mean rel. error"],
    )
    for divisor, error in sorted(results.items()):
        table.add_row([divisor, "%.3f" % error])
    emit("E12b: offset divisor", table.render_text())
    record(
        "ablation",
        {
            "offset_divisor_%d_error" % divisor: metric(error, "lower", "error")
            for divisor, error in results.items()
        },
    )
    # The practical divisor keeps more sampled items and must not be less
    # accurate than the paper's conservative setting.
    assert results[2] <= results[32] + 0.02


def test_ablation_h3_independence(benchmark):
    def experiment():
        from repro.core import FastKNWDistinctCounter

        results = {}
        errors = []
        for seed in SEEDS:
            stream = distinct_items_stream(SMALL_BENCH_UNIVERSE, DISTINCT, seed=700 + seed)
            counter = KNWDistinctCounter(SMALL_BENCH_UNIVERSE, eps=EPS, seed=seed)
            errors.append(relative_error(counter.process_stream(stream), DISTINCT))
        results["k-wise (Lemma 2)"] = _mean(errors)
        errors = []
        for seed in SEEDS:
            stream = distinct_items_stream(SMALL_BENCH_UNIVERSE, DISTINCT, seed=700 + seed)
            counter = FastKNWDistinctCounter(SMALL_BENCH_UNIVERSE, eps=EPS, seed=seed)
            errors.append(relative_error(counter.process_stream(stream), DISTINCT))
        results["Siegel-style (Theorem 7, fast variant)"] = _mean(errors)
        return results

    results = run_once(benchmark, experiment)
    table = Table(
        "E12c: h3 hash-family ablation, eps=%.2f, F0=%d, %d seeds" % (EPS, DISTINCT, len(SEEDS)),
        ["h3 family", "mean rel. error"],
    )
    for family, error in results.items():
        table.add_row([family, "%.3f" % error])
    emit("E12c: h3 independence", table.render_text())
    record(
        "ablation",
        {
            "h3_kwise_error": metric(results["k-wise (Lemma 2)"], "lower", "error"),
            "h3_siegel_error": metric(
                results["Siegel-style (Theorem 7, fast variant)"], "lower", "error"
            ),
        },
    )
    for family, error in results.items():
        assert error <= 4 * EPS, family
