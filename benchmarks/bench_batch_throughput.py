"""Batch-ingestion throughput: ``update_batch`` vs. the scalar ``update`` loop.

The vectorized batch pipeline exists for one reason — ingesting heavy
streams at hardware speed instead of interpreter speed — so this benchmark
measures exactly that: items/second through the scalar loop vs. through
``update_batch``, on a 10^6-item uniform stream, for the hot estimators.

Acceptance gate (asserted, not just printed): HyperLogLog and KMV must
ingest at least 10x faster through the batch path.  The KNW estimators are
reported alongside (their batch speedups are far larger, since their
scalar updates do the most per-item Python work) together with a
batch-size sensitivity row.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import BENCH_UNIVERSE, emit, metric, record, run_once

from repro.baselines.hyperloglog import HyperLogLogCounter
from repro.baselines.kmv import KMinimumValues
from repro.core.knw import KNWDistinctCounter
from repro.estimators.registry import make_f0_estimator
from repro.kernels import get_backend, kernel_backend_info

#: Stream length for the headline throughput numbers.
STREAM_LENGTH = 1_000_000

#: Items driven through the scalar loop (its rate is steady, so a prefix
#: suffices; the batch path always ingests the full stream).
SCALAR_SAMPLE = 200_000

#: Chunk length for the batch path.
BATCH_LENGTH = 1 << 17

#: Estimators under the assertion gate and their required speedups.
GATED = {"hyperloglog": 10.0, "kmv": 10.0}


def _stream() -> np.ndarray:
    rng = np.random.default_rng(20100607)
    return rng.integers(0, BENCH_UNIVERSE, size=STREAM_LENGTH, dtype=np.uint64)


def _scalar_rate(estimator, item_list) -> float:
    update = estimator.update
    start = time.perf_counter()
    for item in item_list:
        update(item)
    return len(item_list) / (time.perf_counter() - start)


def _batch_rate(estimator, items, batch_length=BATCH_LENGTH) -> float:
    start = time.perf_counter()
    for cursor in range(0, len(items), batch_length):
        estimator.update_batch(items[cursor : cursor + batch_length])
    return len(items) / (time.perf_counter() - start)


def _best_of(measure, rounds: int = 3) -> float:
    return max(measure() for _ in range(rounds))


FACTORIES = {
    "hyperloglog": lambda: HyperLogLogCounter(BENCH_UNIVERSE, eps=0.05, seed=1),
    "kmv": lambda: KMinimumValues(BENCH_UNIVERSE, eps=0.05, seed=2),
    "knw": lambda: KNWDistinctCounter(BENCH_UNIVERSE, eps=0.05, seed=3),
    "knw-paper": lambda: make_f0_estimator("knw-paper", BENCH_UNIVERSE, 0.05, seed=4),
}


def test_batch_throughput_table(benchmark):
    """E-batch: the items/sec table plus the 10x acceptance assertions."""
    items = _stream()
    item_list = items[:SCALAR_SAMPLE].tolist()
    np.unique(np.arange(4, dtype=np.uint64))  # trigger numpy lazy imports

    def experiment():
        rows = {}
        for name, factory in FACTORIES.items():
            scalar = _best_of(lambda: _scalar_rate(factory(), item_list))
            batch = _best_of(lambda: _batch_rate(factory(), items))
            rows[name] = (scalar, batch, batch / scalar)
        return rows

    rows = run_once(benchmark, experiment)
    lines = ["%-12s %14s %14s %9s" % ("algorithm", "scalar it/s", "batch it/s", "speedup")]
    for name, (scalar, batch, speedup) in rows.items():
        lines.append("%-12s %14.0f %14.0f %8.1fx" % (name, scalar, batch, speedup))
    emit(
        "E-batch -- update_batch vs scalar update, %d items" % STREAM_LENGTH,
        "\n".join(lines),
    )
    metrics = {}
    for name, (scalar, batch, speedup) in rows.items():
        metrics["%s_scalar_items_per_s" % name] = metric(scalar, "higher", "rate", "items/s")
        metrics["%s_batch_items_per_s" % name] = metric(batch, "higher", "rate", "items/s")
        metrics["%s_batch_speedup" % name] = metric(speedup, "higher", "ratio")
    record(
        "batch_throughput",
        metrics,
        scale={
            "universe": BENCH_UNIVERSE,
            "items": STREAM_LENGTH,
            "kernel_backend": get_backend(),
        },
        environment={"kernels": kernel_backend_info()},
    )
    for name, floor in GATED.items():
        assert rows[name][2] >= floor, (
            "%s batch ingestion is only %.1fx the scalar loop (need >= %.0fx)"
            % (name, rows[name][2], floor)
        )


@pytest.mark.parametrize("batch_length", [1 << 12, 1 << 15, 1 << 18])
def test_batch_size_sensitivity(benchmark, batch_length):
    """Throughput as a function of chunk size (HyperLogLog)."""
    items = _stream()

    def experiment():
        return _batch_rate(
            HyperLogLogCounter(BENCH_UNIVERSE, eps=0.05, seed=1),
            items,
            batch_length=batch_length,
        )

    rate = run_once(benchmark, experiment)
    emit(
        "E-batch sensitivity -- chunk %d" % batch_length,
        "hyperloglog batch ingest: %.0f items/s" % rate,
    )
    record(
        "batch_throughput",
        {
            "hyperloglog_chunk%d_items_per_s"
            % batch_length: metric(rate, "higher", "rate", "items/s")
        },
    )


def test_batch_and_scalar_agree_on_the_benchmark_stream():
    """The throughput comparison is only meaningful if states coincide."""
    items = _stream()[:100_000]
    scalar = KMinimumValues(BENCH_UNIVERSE, eps=0.05, seed=2)
    batched = KMinimumValues(BENCH_UNIVERSE, eps=0.05, seed=2)
    for item in items.tolist():
        scalar.update(item)
    batched.update_batch(items)
    assert scalar.estimate() == batched.estimate()
