"""E2 — Figure 1, update-time column: per-update cost of each algorithm.

The paper's claim is O(1) worst-case update time, independent of eps and n.
Python wall-clock constants are interpreter-dominated, so the meaningful
reproduction is the *shape*: the KNW update cost should not grow when eps
shrinks (unlike e.g. AMS whose update evaluates eps-many hash repetitions,
or KMV whose update maintains a size-1/eps^2 structure), and should not
grow with the stream position.
"""

from __future__ import annotations

import itertools
import random

import pytest
from conftest import BENCH_UNIVERSE, mean_seconds, metric, record

from repro.estimators.registry import make_f0_estimator

ALGORITHMS = ["knw", "knw-fast", "hyperloglog", "kmv", "bjkst", "ams", "linear-counting"]
EPS_VALUES = [0.1, 0.02]


def _prefill(estimator, count: int, seed: int) -> None:
    rng = random.Random(seed)
    for _ in range(count):
        estimator.update(rng.randrange(BENCH_UNIVERSE))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("eps", EPS_VALUES)
def test_update_time(benchmark, algorithm, eps):
    """Time one stream update on a sketch that has already absorbed 5000 items."""
    estimator = make_f0_estimator(algorithm, BENCH_UNIVERSE, eps, seed=7)
    _prefill(estimator, 5_000, seed=13)
    items = itertools.cycle(
        [random.Random(17).randrange(BENCH_UNIVERSE) for _ in range(512)]
    )
    benchmark.group = "update-time eps=%.2f" % eps
    benchmark(lambda: estimator.update(next(items)))
    record(
        "figure1_update_time",
        {
            "%s_eps%.2f_update_seconds"
            % (algorithm, eps): metric(
                mean_seconds(benchmark), "lower", "rate", "s/update"
            )
            if mean_seconds(benchmark) is not None
            else None
        },
        scale={"universe": BENCH_UNIVERSE, "prefill": 5_000},
    )


def test_knw_update_time_independent_of_eps(benchmark):
    """The KNW per-update cost must not blow up as eps shrinks (O(1) claim)."""
    import time

    def measure(eps: float) -> float:
        estimator = make_f0_estimator("knw-fast", BENCH_UNIVERSE, eps, seed=3)
        _prefill(estimator, 2_000, seed=5)
        rng = random.Random(11)
        items = [rng.randrange(BENCH_UNIVERSE) for _ in range(4_000)]
        start = time.perf_counter()
        for item in items:
            estimator.update(item)
        return (time.perf_counter() - start) / len(items)

    def experiment():
        return {eps: measure(eps) for eps in (0.2, 0.05, 0.02)}

    timings = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nE2 shape check: knw-fast per-update seconds by eps:", timings)
    record(
        "figure1_update_time",
        {"update_eps_scaling_ratio": metric(timings[0.02] / timings[0.2], "lower", "ratio")},
    )
    # Allow interpreter noise but reject an eps^-2-style blow-up (25x here).
    assert timings[0.02] < 5.0 * timings[0.2]
