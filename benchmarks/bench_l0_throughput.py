"""Turnstile (L0) batch-ingestion throughput: ``update_batch`` vs the scalar loop.

The L0 sketches' scalar updates do the most per-item Python work in the
library — several Carter--Wegman evaluations plus fingerprint field
arithmetic per update — so they have the most to gain from the vectorized
turnstile pipeline.  This benchmark measures updates/second through the
scalar ``update(item, delta)`` loop vs. through ``update_batch(items,
deltas)`` on an insert+delete turnstile stream, and gates the tentpole
speedup.

Acceptance gate (asserted at full scale): ``knw-l0`` and ``ganguly`` must
ingest at least 10x faster through the batch path on a 10^6-update
stream.  The gate is skipped — with the measured table still printed —
when the stream has been shrunk below 10^6 updates for a smoke run.

Environment knobs (for CI smoke runs and local experiments):

* ``BENCH_L0_ITEMS`` — turnstile stream length (default 1_000_000).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import BENCH_UNIVERSE, emit, run_once, metric, record

from repro.estimators.registry import make_l0_estimator
from repro.kernels import get_backend, kernel_backend_info

#: Full-scale default; override via the environment for smoke runs.
STREAM_LENGTH = int(os.environ.get("BENCH_L0_ITEMS", 1_000_000))

#: Updates driven through the scalar loop (its rate is steady, so a prefix
#: suffices; the batch path always ingests the full stream).
SCALAR_SAMPLE = min(20_000, STREAM_LENGTH)

#: Chunk length for the batch path.
BATCH_LENGTH = 1 << 17

#: Relative-error target: K = 128 bins keeps sketch construction cheap
#: while the per-update work stays representative.
EPS = 0.1

#: Magnitude bound covering the |delta| = 1 stream below.
MAGNITUDE_BOUND = 1 << 30

#: Estimators under the assertion gate and their required speedups.
GATED = {"knw-l0": 10.0, "ganguly": 10.0}

#: Stream length below which the gate is skipped (smoke runs).
GATE_SCALE = 1_000_000


def _stream() -> "tuple[np.ndarray, np.ndarray]":
    """Build an insert-then-delete turnstile stream.

    75% of the updates insert uniformly random items; the remaining 25%
    delete a permutation sample of the *insert occurrences*, so every
    frequency stays non-negative (Ganguly's requirement) while the
    deletion path is genuinely exercised.
    """
    rng = np.random.default_rng(20100609)
    inserts = (3 * STREAM_LENGTH) // 4
    items = rng.integers(0, BENCH_UNIVERSE, size=inserts, dtype=np.uint64)
    deleted = items[rng.permutation(inserts)[: STREAM_LENGTH - inserts]]
    all_items = np.concatenate([items, deleted])
    deltas = np.concatenate(
        [
            np.ones(inserts, dtype=np.int64),
            -np.ones(STREAM_LENGTH - inserts, dtype=np.int64),
        ]
    )
    return all_items, deltas


def _factory(name: str):
    return make_l0_estimator(name, BENCH_UNIVERSE, EPS, MAGNITUDE_BOUND, seed=11)


def _scalar_rate(estimator, item_list, delta_list) -> float:
    update = estimator.update
    start = time.perf_counter()
    for item, delta in zip(item_list, delta_list):
        update(item, delta)
    return len(item_list) / (time.perf_counter() - start)


def _batch_rate(estimator, items, deltas, batch_length=BATCH_LENGTH) -> float:
    start = time.perf_counter()
    for cursor in range(0, len(items), batch_length):
        estimator.update_batch(
            items[cursor : cursor + batch_length],
            deltas[cursor : cursor + batch_length],
        )
    return len(items) / (time.perf_counter() - start)


def test_l0_batch_throughput_table(benchmark):
    """E-L0-batch: turnstile updates/sec table plus the 10x gate."""
    items, deltas = _stream()
    item_list = items[:SCALAR_SAMPLE].tolist()
    delta_list = deltas[:SCALAR_SAMPLE].tolist()
    np.unique(np.arange(4, dtype=np.uint64))  # trigger numpy lazy imports

    def experiment():
        rows = {}
        for name in GATED:
            scalar = _scalar_rate(_factory(name), item_list, delta_list)
            batch = _batch_rate(_factory(name), items, deltas)
            rows[name] = (scalar, batch, batch / scalar)
        return rows

    rows = run_once(benchmark, experiment)
    lines = [
        "%-12s %14s %14s %9s"
        % ("algorithm", "scalar upd/s", "batch upd/s", "speedup")
    ]
    for name, (scalar, batch, speedup) in rows.items():
        lines.append("%-12s %14.0f %14.0f %8.1fx" % (name, scalar, batch, speedup))
    emit(
        "E-L0-batch -- turnstile update_batch vs scalar update, %d updates"
        % STREAM_LENGTH,
        "\n".join(lines),
    )
    metrics = {}
    for name, (scalar, batch, speedup) in rows.items():
        metrics["%s_scalar_updates_per_s" % name] = metric(
            scalar, "higher", "rate", "updates/s"
        )
        metrics["%s_batch_updates_per_s" % name] = metric(
            batch, "higher", "rate", "updates/s"
        )
        metrics["%s_batch_speedup" % name] = metric(speedup, "higher", "ratio")
    record(
        "l0_throughput",
        metrics,
        scale={"updates": STREAM_LENGTH, "kernel_backend": get_backend()},
        environment={"kernels": kernel_backend_info()},
    )
    if STREAM_LENGTH < GATE_SCALE:
        emit(
            "E-L0-batch gate",
            "skipped: smoke-scale stream (%d updates < %d)"
            % (STREAM_LENGTH, GATE_SCALE),
        )
        return
    for name, floor in GATED.items():
        assert rows[name][2] >= floor, (
            "%s batch ingestion is only %.1fx the scalar loop (need >= %.0fx)"
            % (name, rows[name][2], floor)
        )


def test_batch_and_scalar_agree_on_the_benchmark_stream():
    """The throughput comparison is only meaningful if states coincide."""
    items, deltas = _stream()
    items, deltas = items[:50_000], deltas[:50_000]
    for name in GATED:
        scalar = _factory(name)
        for item, delta in zip(items.tolist(), deltas.tolist()):
            scalar.update(item, delta)
        batched = _factory(name)
        batched.update_batch(items, deltas)
        assert batched.state_dict() == scalar.state_dict(), name
        assert batched.estimate() == scalar.estimate(), name
