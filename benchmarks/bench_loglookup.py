"""E10 — Lemma 7: the O(1) natural-log lookup table.

Measures (a) the worst-case relative error of the table against math.log
over its whole domain for several K, verifying the 1/sqrt(K) guarantee,
(b) the table's space, and (c) the lookup cost relative to math.log.
"""

from __future__ import annotations

import math

from conftest import emit, mean_seconds, metric, record, run_once

from repro.analysis import Table, format_bits
from repro.bitstructs import LogLookupTable

BIN_SIZES = [64, 256, 1024, 4096]


def test_loglookup_error_and_space(benchmark):
    def experiment():
        rows = []
        for bins in BIN_SIZES:
            table = LogLookupTable(bins)
            worst = max(
                table.relative_error(c) for c in range(1, table.max_argument + 1)
            )
            rows.append((bins, table.relative_accuracy, worst, table.space_bits()))
        return rows

    rows = run_once(benchmark, experiment)
    table = Table(
        "E10: log-lookup table accuracy vs the Lemma 7 guarantee",
        ["K", "guaranteed rel. accuracy", "measured worst error", "table space"],
    )
    for bins, guarantee, worst, space in rows:
        table.add_row([bins, "%.4f" % guarantee, "%.5f" % worst, format_bits(space)])
    emit("E10: Appendix A.2 lookup table", table.render_text())
    metrics = {}
    for bins, _, worst, space in rows:
        metrics["loglookup_k%d_worst_error" % bins] = metric(worst, "lower", "error")
        metrics["loglookup_k%d_space_bits" % bins] = metric(space, "lower", "space", "bits")
    record("loglookup", metrics)
    for bins, guarantee, worst, _ in rows:
        assert worst <= guarantee


def test_loglookup_query_cost(benchmark):
    table = LogLookupTable(4096)
    benchmark.group = "log evaluation"
    benchmark(lambda: table.lookup(1234))
    record(
        "loglookup",
        {
            "loglookup_query_seconds": metric(
                mean_seconds(benchmark), "lower", "rate", "s/query"
            )
            if mean_seconds(benchmark) is not None
            else None
        },
    )


def test_math_log_reference_cost(benchmark):
    benchmark.group = "log evaluation"
    benchmark(lambda: math.log(1.0 - 1234 / 4096.0))
