"""E6 — Theorem 4: the small-F0 subroutine and the regime handover.

Sweeps the true cardinality from 1 to a few times K and records the
combined estimator's error at each point, verifying that the estimate is
exact below the 100-item buffer, stays within the eps band through the
2K-bit bitvector regime, and hands over to the Figure 3 sketch without a
discontinuity.
"""

from __future__ import annotations

from conftest import SMALL_BENCH_UNIVERSE, emit, metric, record, run_once

from repro.analysis import Table
from repro.core import KNWDistinctCounter
from repro.streams import distinct_items_stream

CARDINALITIES = [1, 10, 50, 100, 150, 300, 600, 1200, 2500, 5000]
EPS = 0.05
SEEDS = [1, 2, 3]


def test_small_f0_handover(benchmark):
    def experiment():
        rows = []
        for cardinality in CARDINALITIES:
            errors = []
            for seed in SEEDS:
                stream = distinct_items_stream(
                    SMALL_BENCH_UNIVERSE, cardinality, repetitions=2, seed=100 + seed
                )
                counter = KNWDistinctCounter(SMALL_BENCH_UNIVERSE, eps=EPS, seed=seed)
                estimate = counter.process_stream(stream)
                errors.append(abs(estimate - cardinality) / cardinality)
            rows.append((cardinality, sum(errors) / len(errors), max(errors)))
        return rows

    rows = run_once(benchmark, experiment)
    table = Table(
        "E6: combined estimator error across the small-F0 handover (eps=%.2f)" % EPS,
        ["true F0", "mean rel. error", "max rel. error"],
    )
    for cardinality, mean_error, max_error in rows:
        table.add_row([cardinality, "%.3f" % mean_error, "%.3f" % max_error])
    emit("E6: small-F0 regime and handover", table.render_text())
    metrics = {}
    for cardinality, mean_error, max_error in rows:
        metrics["small_f0_%d_mean_error" % cardinality] = metric(
            mean_error, "lower", "error"
        )
    record("small_f0", metrics, scale={"universe": SMALL_BENCH_UNIVERSE})

    for cardinality, mean_error, max_error in rows:
        if cardinality <= 100:
            assert max_error == 0.0  # exact below the buffer limit
        else:
            assert mean_error <= 0.25
