"""Sharded multi-process ingestion vs. serial batched ingestion.

The parallel engine exists to turn cores into throughput: partition a
heavy stream, ingest every shard in a worker process through the
vectorized batch pipeline, merge-reduce the serialized shard sketches.
This benchmark measures that end to end — stream sharding, worker
fan-out, state transport, merge — against the strongest serial baseline
(the ``update_batch`` fast path, not the scalar loop), and checks the
merged estimate agrees with the serial one.

Acceptance gate (asserted when the hardware can express it): at
8 workers on a >= 10M-item stream, at least one estimator must ingest
at least 2x faster than serial batched ingestion.  The gate needs
actual parallel hardware, so it is skipped — with the measured table
still printed — when fewer than 4 usable cores are available or when
the stream has been shrunk below 10M items for a smoke run.

Environment knobs (for CI smoke runs and local experiments):

* ``BENCH_PARALLEL_ITEMS`` — stream length (default 10_000_000).
* ``BENCH_PARALLEL_WORKERS`` — worker count (default 8).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import emit, metric, record, run_once

from repro.parallel import parallel_ingest_f0
from repro.estimators.registry import make_f0_estimator

#: Universe for the parallel benchmark (large enough that 10M items stay
#: far from exhausting it).
PARALLEL_UNIVERSE = 1 << 26

#: Full-scale defaults; override via the environment for smoke runs.
STREAM_LENGTH = int(os.environ.get("BENCH_PARALLEL_ITEMS", 10_000_000))
WORKERS = int(os.environ.get("BENCH_PARALLEL_WORKERS", 8))

#: Chunk length for both the serial baseline and the shard workers.
BATCH_LENGTH = 1 << 16

#: Estimators measured.  ``knw-paper`` carries the acceptance gate
#: honours: its per-item work is the heaviest, so it has the most to
#: gain from fan-out; HyperLogLog bounds the other end (its batch path
#: is so fast that transport overhead dominates).
ESTIMATORS = ["hyperloglog", "kmv", "knw-paper"]

#: Speedup at least one estimator must reach at full scale.
SPEEDUP_FLOOR = 2.0

#: Cores below which the speedup gate cannot be expressed.
MIN_GATE_CORES = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _stream() -> np.ndarray:
    rng = np.random.default_rng(20100608)
    return rng.integers(0, PARALLEL_UNIVERSE, size=STREAM_LENGTH, dtype=np.uint64)


def _serial_seconds(name: str, items: np.ndarray) -> "tuple[float, float]":
    estimator = make_f0_estimator(name, PARALLEL_UNIVERSE, 0.05, seed=1)
    start = time.perf_counter()
    for cursor in range(0, len(items), BATCH_LENGTH):
        estimator.update_batch(items[cursor : cursor + BATCH_LENGTH])
    return time.perf_counter() - start, estimator.estimate()


def _parallel_seconds(name: str, items: np.ndarray) -> "tuple[float, float]":
    start = time.perf_counter()
    estimator = parallel_ingest_f0(
        name,
        items,
        0.05,
        1,
        universe_size=PARALLEL_UNIVERSE,
        workers=WORKERS,
        batch_size=BATCH_LENGTH,
        execution="processes",
    )
    return time.perf_counter() - start, estimator.estimate()


def test_parallel_ingest_speedup(benchmark):
    """E-parallel: 8-worker sharded ingest vs serial batched ingest."""
    items = _stream()
    truth_scale = len(items)

    def experiment():
        rows = {}
        for name in ESTIMATORS:
            serial_s, serial_estimate = _serial_seconds(name, items)
            parallel_s, parallel_estimate = _parallel_seconds(name, items)
            rows[name] = (serial_s, parallel_s, serial_s / parallel_s,
                          serial_estimate, parallel_estimate)
        return rows

    rows = run_once(benchmark, experiment)
    lines = [
        "%-12s %10s %10s %9s" % ("algorithm", "serial s", "8-way s", "speedup")
    ]
    for name, (serial_s, parallel_s, speedup, _, _) in rows.items():
        lines.append(
            "%-12s %10.2f %10.2f %8.2fx" % (name, serial_s, parallel_s, speedup)
        )
    cores = _usable_cores()
    emit(
        "E-parallel -- sharded ingest, %d items, %d workers, %d cores"
        % (truth_scale, WORKERS, cores),
        "\n".join(lines),
    )
    metrics = {}
    for name, (serial_s, parallel_s, speedup, _, _) in rows.items():
        metrics["%s_serial_items_per_s" % name] = metric(
            truth_scale / serial_s, "higher", "rate", "items/s"
        )
        metrics["%s_parallel_items_per_s" % name] = metric(
            truth_scale / parallel_s, "higher", "rate", "items/s"
        )
        metrics["%s_parallel_speedup" % name] = metric(speedup, "higher", "rate")
    record(
        "parallel_ingest",
        metrics,
        scale={"items": truth_scale, "workers": WORKERS},
    )

    # Sharded and serial ingestion must agree (bit-identical for the
    # seed-determined estimators) regardless of the timing outcome.
    for name, (_, _, _, serial_estimate, parallel_estimate) in rows.items():
        assert parallel_estimate == serial_estimate, (
            "%s sharded estimate %r diverged from serial %r"
            % (name, parallel_estimate, serial_estimate)
        )

    if cores < MIN_GATE_CORES:
        emit(
            "E-parallel gate",
            "skipped: %d usable core(s) cannot express a %d-worker speedup"
            % (cores, WORKERS),
        )
        return
    if truth_scale < 10_000_000:
        emit(
            "E-parallel gate",
            "skipped: smoke-scale stream (%d items < 10M)" % truth_scale,
        )
        return
    best = max(speedup for _, _, speedup, _, _ in rows.values())
    assert best >= SPEEDUP_FLOOR, (
        "no estimator reached %.1fx over serial batched ingest at %d workers "
        "(best %.2fx)" % (SPEEDUP_FLOOR, WORKERS, best)
    )
