"""Sharded multi-process ingestion vs. serial batched ingestion.

The parallel engine exists to turn cores into throughput: partition a
heavy stream, ingest every shard in a worker process through the
vectorized batch pipeline, merge-reduce the serialized shard sketches.
This benchmark measures that end to end — stream sharding, worker
fan-out, state transport, merge — against the strongest serial baseline
(the ``update_batch`` fast path, not the scalar loop), and checks the
merged estimate agrees with the serial one.

Acceptance gate (asserted when the hardware can express it): at
8 workers on a >= 10M-item stream, at least one estimator must ingest
at least 2x faster than serial batched ingestion.  The gate needs
actual parallel hardware, so it is skipped — with the measured table
still printed — when fewer than 4 usable cores are available or when
the stream has been shrunk below 10M items for a smoke run.

Environment knobs (for CI smoke runs and local experiments):

* ``BENCH_PARALLEL_ITEMS`` — stream length (default 10_000_000).
* ``BENCH_PARALLEL_WORKERS`` — worker count (default 8).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import emit, metric, record, run_once

from repro.parallel import (
    parallel_ingest_f0,
    parallel_merge_shards,
    shard_items,
    shutdown_pool,
)
from repro.estimators.registry import make_f0_estimator

#: Universe for the parallel benchmark (large enough that 10M items stay
#: far from exhausting it).
PARALLEL_UNIVERSE = 1 << 26

#: Full-scale defaults; override via the environment for smoke runs.
STREAM_LENGTH = int(os.environ.get("BENCH_PARALLEL_ITEMS", 10_000_000))
WORKERS = int(os.environ.get("BENCH_PARALLEL_WORKERS", 8))

#: Chunk length for both the serial baseline and the shard workers.
BATCH_LENGTH = 1 << 16

#: Estimators measured.  ``knw-paper`` carries the acceptance gate
#: honours: its per-item work is the heaviest, so it has the most to
#: gain from fan-out; HyperLogLog bounds the other end (its batch path
#: is so fast that transport overhead dominates).
ESTIMATORS = ["hyperloglog", "kmv", "knw-paper"]

#: Speedup at least one estimator must reach at full scale.
SPEEDUP_FLOOR = 2.0

#: Pipelined-handoff speedup over the barrier path required at full
#: scale with skewed shard sizes (the coordinator merges fast shards
#: while the straggler is still ingesting).
PIPELINE_FLOOR = 1.2

#: Cores below which the speedup gates cannot be expressed.
MIN_GATE_CORES = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _stream() -> np.ndarray:
    rng = np.random.default_rng(20100608)
    return rng.integers(0, PARALLEL_UNIVERSE, size=STREAM_LENGTH, dtype=np.uint64)


def _serial_seconds(name: str, items: np.ndarray) -> "tuple[float, float]":
    estimator = make_f0_estimator(name, PARALLEL_UNIVERSE, 0.05, seed=1)
    start = time.perf_counter()
    for cursor in range(0, len(items), BATCH_LENGTH):
        estimator.update_batch(items[cursor : cursor + BATCH_LENGTH])
    return time.perf_counter() - start, estimator.estimate()


def _parallel_seconds(name: str, items: np.ndarray) -> "tuple[float, float]":
    start = time.perf_counter()
    estimator = parallel_ingest_f0(
        name,
        items,
        0.05,
        1,
        universe_size=PARALLEL_UNIVERSE,
        workers=WORKERS,
        batch_size=BATCH_LENGTH,
        execution="processes",
    )
    return time.perf_counter() - start, estimator.estimate()


def test_parallel_ingest_speedup(benchmark):
    """E-parallel: 8-worker sharded ingest vs serial batched ingest."""
    items = _stream()
    truth_scale = len(items)

    def experiment():
        rows = {}
        for name in ESTIMATORS:
            serial_s, serial_estimate = _serial_seconds(name, items)
            parallel_s, parallel_estimate = _parallel_seconds(name, items)
            rows[name] = (serial_s, parallel_s, serial_s / parallel_s,
                          serial_estimate, parallel_estimate)
        return rows

    rows = run_once(benchmark, experiment)
    lines = [
        "%-12s %10s %10s %9s" % ("algorithm", "serial s", "8-way s", "speedup")
    ]
    for name, (serial_s, parallel_s, speedup, _, _) in rows.items():
        lines.append(
            "%-12s %10.2f %10.2f %8.2fx" % (name, serial_s, parallel_s, speedup)
        )
    cores = _usable_cores()
    emit(
        "E-parallel -- sharded ingest, %d items, %d workers, %d cores"
        % (truth_scale, WORKERS, cores),
        "\n".join(lines),
    )
    metrics = {}
    for name, (serial_s, parallel_s, speedup, _, _) in rows.items():
        metrics["%s_serial_items_per_s" % name] = metric(
            truth_scale / serial_s, "higher", "rate", "items/s"
        )
        metrics["%s_parallel_items_per_s" % name] = metric(
            truth_scale / parallel_s, "higher", "rate", "items/s"
        )
        metrics["%s_parallel_speedup" % name] = metric(speedup, "higher", "rate")
    record(
        "parallel_ingest",
        metrics,
        scale={"items": truth_scale, "workers": WORKERS},
    )

    # Sharded and serial ingestion must agree (bit-identical for the
    # seed-determined estimators) regardless of the timing outcome.
    for name, (_, _, _, serial_estimate, parallel_estimate) in rows.items():
        assert parallel_estimate == serial_estimate, (
            "%s sharded estimate %r diverged from serial %r"
            % (name, parallel_estimate, serial_estimate)
        )

    if cores < MIN_GATE_CORES:
        emit(
            "E-parallel gate",
            "skipped: %d usable core(s) cannot express a %d-worker speedup"
            % (cores, WORKERS),
        )
        return
    if truth_scale < 10_000_000:
        emit(
            "E-parallel gate",
            "skipped: smoke-scale stream (%d items < 10M)" % truth_scale,
        )
        return
    best = max(speedup for _, _, speedup, _, _ in rows.values())
    assert best >= SPEEDUP_FLOOR, (
        "no estimator reached %.1fx over serial batched ingest at %d workers "
        "(best %.2fx)" % (SPEEDUP_FLOOR, WORKERS, best)
    )


def _skewed_shards(items: np.ndarray) -> "list[np.ndarray]":
    """One straggler shard holding half the stream, the rest spread thin.

    The shape that separates the handoff disciplines: under a barrier
    the coordinator idles on the straggler before merging anything;
    pipelined, it deserializes and merges every fast shard while the
    straggler is still ingesting.
    """
    half = len(items) // 2
    thin = np.array_split(items[half:], max(2 * WORKERS - 1, 3))
    return [items[:half]] + [shard for shard in thin if len(shard)]


def _handoff_seconds(name: str, shards, handoff: str) -> "tuple[float, float]":
    estimator = make_f0_estimator(name, PARALLEL_UNIVERSE, 0.05, seed=1)
    start = time.perf_counter()
    parallel_merge_shards(
        estimator,
        shards,
        workers=WORKERS,
        batch_size=BATCH_LENGTH,
        execution="processes",
        handoff=handoff,
    )
    return time.perf_counter() - start, estimator.estimate()


def test_pipelined_vs_barrier_handoff(benchmark):
    """E-handoff: completion-order merging vs the legacy all-shard barrier."""
    items = _stream()
    shards = _skewed_shards(items)
    name = "knw-paper"  # heaviest merge cost => most overlap to reclaim

    def experiment():
        barrier_s, barrier_estimate = _handoff_seconds(name, shards, "barrier")
        pipelined_s, pipelined_estimate = _handoff_seconds(name, shards, "pipelined")
        return barrier_s, pipelined_s, barrier_estimate, pipelined_estimate

    barrier_s, pipelined_s, barrier_estimate, pipelined_estimate = run_once(
        benchmark, experiment
    )
    speedup = barrier_s / pipelined_s
    cores = _usable_cores()
    emit(
        "E-handoff -- skewed shards (%d of them, straggler=50%%), %d items, "
        "%d workers, %d cores" % (len(shards), len(items), WORKERS, cores),
        "%-12s %10s %12s %9s\n%-12s %10.2f %12.2f %8.2fx"
        % ("algorithm", "barrier s", "pipelined s", "speedup",
           name, barrier_s, pipelined_s, speedup),
    )
    record(
        "parallel_ingest",
        {
            "handoff_barrier_items_per_s": metric(
                len(items) / barrier_s, "higher", "rate", "items/s"
            ),
            "handoff_pipelined_items_per_s": metric(
                len(items) / pipelined_s, "higher", "rate", "items/s"
            ),
            "handoff_pipelined_speedup": metric(speedup, "higher", "rate"),
        },
        scale={"items": len(items), "workers": WORKERS},
    )

    # Both disciplines must produce the same sketch regardless of timing.
    assert pipelined_estimate == barrier_estimate, (
        "pipelined estimate %r diverged from barrier %r"
        % (pipelined_estimate, barrier_estimate)
    )

    if cores < MIN_GATE_CORES:
        emit(
            "E-handoff gate",
            "skipped: %d usable core(s) cannot express handoff overlap" % cores,
        )
        return
    if len(items) < 10_000_000:
        emit(
            "E-handoff gate",
            "skipped: smoke-scale stream (%d items < 10M)" % len(items),
        )
        return
    assert speedup >= PIPELINE_FLOOR, (
        "pipelined handoff reached only %.2fx over the barrier path "
        "(floor %.1fx) on skewed shards" % (speedup, PIPELINE_FLOOR)
    )


#: Items per call in the warm-vs-cold pool experiment: small enough that
#: pool startup dominates a cold call, so reuse is what is measured.
POOL_CALL_ITEMS = 1 << 16

#: Warm calls measured (the median is compared against the cold call).
POOL_WARM_CALLS = 5


def test_warm_pool_vs_cold_pool(benchmark):
    """E-pool: persistent-pool reuse vs per-call pool startup."""
    rng = np.random.default_rng(20100609)
    items = rng.integers(0, PARALLEL_UNIVERSE, size=POOL_CALL_ITEMS, dtype=np.uint64)
    shards = shard_items(items, max(WORKERS, 2))

    def ingest_once() -> float:
        estimator = make_f0_estimator("hyperloglog", PARALLEL_UNIVERSE, 0.05, seed=1)
        start = time.perf_counter()
        parallel_merge_shards(
            estimator,
            shards,
            workers=WORKERS,
            batch_size=BATCH_LENGTH,
            execution="processes",
        )
        return time.perf_counter() - start

    def experiment():
        shutdown_pool()  # the cold call pays worker startup in full
        cold_s = ingest_once()
        warm = sorted(ingest_once() for _ in range(POOL_WARM_CALLS))
        return cold_s, warm[len(warm) // 2]

    cold_s, warm_s = run_once(benchmark, experiment)
    emit(
        "E-pool -- %d-item sharded calls, %d workers"
        % (POOL_CALL_ITEMS, WORKERS),
        "cold (fresh pool) %8.4f s\nwarm (reused pool) %8.4f s  (%.1fx)"
        % (cold_s, warm_s, cold_s / warm_s),
    )
    record(
        "parallel_ingest",
        {
            "cold_pool_calls_per_s": metric(1.0 / cold_s, "higher", "rate", "calls/s"),
            "warm_pool_calls_per_s": metric(1.0 / warm_s, "higher", "rate", "calls/s"),
            "warm_over_cold_speedup": metric(cold_s / warm_s, "higher", "rate"),
        },
        scale={"items": STREAM_LENGTH, "workers": WORKERS},
    )
    # Reuse must beat startup: a warm call does strictly less work than a
    # cold one (same shards, no worker spawn), and the workload is sized
    # so spawn cost dominates.  Holds on any core count.
    assert warm_s < cold_s, (
        "warm persistent-pool call (%.4fs) did not beat cold pool startup "
        "(%.4fs)" % (warm_s, cold_s)
    )
