"""Sliding-window rollup throughput: memoized merge-rollup vs naive re-ingest.

The tentpole gate of the windowed subsystem: a
:class:`~repro.window.windowed.WindowedSketch` answers "distinct over
the last ``k`` epochs" by merging a memoized closed-epoch rollup with
the open epoch — one clone plus one merge per query, independent of the
window's raw size — where the pre-windowed answer was to re-ingest the
window's updates into a fresh sketch per query.

Two query paths are timed over the same timestamped workload, asking
every width of a query schedule once per simulated reporting tick:

* ``rollup`` — ``estimate_window(k)`` on the ring (memoized suffix
  merges over the closed epochs, one final merge with the open epoch);
* ``re-ingest`` — a fresh same-seed sketch fed the window's raw updates
  through ``update_batch``, then ``estimate()`` (the strongest
  non-windowed implementation of the same query).

Acceptance gate (asserted at full scale): the rollup path must answer
the query schedule at least 10x faster than re-ingest for the
``hyperloglog`` family at 32 epochs x ~31k updates.  The gate is
skipped — with the measured table still printed — when the workload has
been shrunk below full scale for a smoke run.

A correctness check always runs: both paths must return *identical*
estimates for every query (the rollup is bit-exact for
shard-deterministic mergeable families).

Environment knobs (for CI smoke runs and local experiments):

* ``BENCH_WINDOW_EPOCHS`` — epoch count (default 32).
* ``BENCH_WINDOW_ITEMS`` — total update count (default 1_000_000).
* ``BENCH_WINDOW_QUERIES`` — reporting ticks timed (default 20).
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_UNIVERSE, emit, metric, record, run_once

from repro.estimators.registry import make_f0_estimator
from repro.streams.generators import windowed_uniform_stream
from repro.window import WindowedSketch

#: Full-scale defaults; override via the environment for smoke runs.
EPOCHS = int(os.environ.get("BENCH_WINDOW_EPOCHS", 32))
STREAM_LENGTH = int(os.environ.get("BENCH_WINDOW_ITEMS", 1_000_000))
QUERY_TICKS = int(os.environ.get("BENCH_WINDOW_QUERIES", 20))

#: Window widths asked at every reporting tick.
WIDTHS = [width for width in (1, 4, EPOCHS // 2, EPOCHS) if 1 <= width <= EPOCHS]

#: Accuracy target (sizes the sketches).
EPS = 0.05

#: Family under the assertion gate and its required speedup.
GATED_FAMILY = "hyperloglog"
GATE_SPEEDUP = 10.0

#: Scale below which the gate is skipped (smoke runs).
GATE_EPOCHS = 32
GATE_ITEMS = 1_000_000

SEED = 13


def _workload():
    return windowed_uniform_stream(
        BENCH_UNIVERSE,
        epochs=EPOCHS,
        updates_per_epoch=max(STREAM_LENGTH // EPOCHS, 1),
        distinct_per_epoch=max((STREAM_LENGTH // EPOCHS) // 2, 1),
        seed=20100610,
    )


def test_windowed_rollup_speedup(benchmark):
    workload = _workload()

    ring = WindowedSketch(
        make_f0_estimator(GATED_FAMILY, BENCH_UNIVERSE, EPS, SEED),
        retention=EPOCHS,
    )
    ingest_start = time.perf_counter()
    ring.ingest_timestamped(workload.epochs, workload.items, batch_size=1 << 16)
    ingest_seconds = time.perf_counter() - ingest_start

    def timed_rollup():
        start = time.perf_counter()
        answers = []
        for _ in range(QUERY_TICKS):
            for width in WIDTHS:
                answers.append(ring.estimate_window(width))
        return time.perf_counter() - start, answers

    def timed_reingest():
        start = time.perf_counter()
        answers = []
        for _ in range(QUERY_TICKS):
            for width in WIDTHS:
                fresh = make_f0_estimator(GATED_FAMILY, BENCH_UNIVERSE, EPS, SEED)
                _, window_items, _ = workload.window_slice(width)
                fresh.update_batch(window_items)
                answers.append(fresh.estimate())
        return time.perf_counter() - start, answers

    def run():
        rollup_seconds, rollup_answers = timed_rollup()
        reingest_seconds, reingest_answers = timed_reingest()
        return rollup_seconds, rollup_answers, reingest_seconds, reingest_answers

    rollup_seconds, rollup_answers, reingest_seconds, reingest_answers = run_once(
        benchmark, run
    )

    # The rollup is exact: both paths must answer identically.
    assert rollup_answers == reingest_answers

    queries = QUERY_TICKS * len(WIDTHS)
    speedup = reingest_seconds / rollup_seconds if rollup_seconds else float("inf")
    emit(
        "E13: windowed rollup vs naive re-ingest (%s, %d epochs, %d updates)"
        % (GATED_FAMILY, EPOCHS, len(workload)),
        "\n".join(
            [
                "ingest (once):    %8.3f s" % ingest_seconds,
                "rollup:           %8.3f s  (%.1f queries/s over %d queries)"
                % (rollup_seconds, queries / rollup_seconds, queries),
                "re-ingest:        %8.3f s  (%.1f queries/s)"
                % (reingest_seconds, queries / reingest_seconds),
                "speedup:          %8.1fx" % speedup,
            ]
        ),
    )
    record(
        "windowed",
        {
            "ingest_items_per_s": metric(
                len(workload) / ingest_seconds, "higher", "rate", "items/s"
            ),
            "rollup_queries_per_s": metric(
                queries / rollup_seconds, "higher", "rate", "queries/s"
            ),
            "rollup_speedup": metric(speedup, "higher", "ratio"),
        },
        scale={"epochs": EPOCHS, "items": len(workload), "queries": QUERY_TICKS},
    )

    if EPOCHS >= GATE_EPOCHS and STREAM_LENGTH >= GATE_ITEMS:
        assert speedup >= GATE_SPEEDUP, (
            "windowed rollup speedup %.1fx below the %.0fx gate"
            % (speedup, GATE_SPEEDUP)
        )
