"""E14 — Workload zoo: per-class accuracy grid and generation throughput.

Runs every workload class in :mod:`repro.streams.workloads` through the
sweep harness's class-name axis (``workload_class_grid``) — churn lands on
the L0 harness, the insertion-only classes on the F0 harness — and prints
the per-class accuracy grid that README.md's workload-zoo section quotes.
Also times the generators themselves: materialising a zoo stream is pure
NumPy and must stay far faster than ingesting it.

Scale knobs (smoke-friendly defaults are the committed baseline scale):

* ``BENCH_WORKLOAD_UNIVERSE`` / ``BENCH_WORKLOAD_LENGTH`` /
  ``BENCH_WORKLOAD_KEYS`` / ``BENCH_WORKLOAD_EPOCHS`` /
  ``BENCH_WORKLOAD_EPOCH_UPDATES`` — the :class:`WorkloadScale` fields
  (see :func:`repro.streams.workloads.scale_from_env`).
* ``BENCH_WORKLOAD_SEEDS`` — trial seeds per (class, algorithm) cell.
"""

from __future__ import annotations

import os
import time

from conftest import emit, metric, record, run_once

from repro.analysis import format_workload_grid, workload_class_grid
from repro.streams import (
    WorkloadScale,
    make_workload,
    workload_class,
    workload_class_names,
)

SCALE = WorkloadScale(
    universe_size=int(os.environ.get("BENCH_WORKLOAD_UNIVERSE", 1 << 14)),
    length=int(os.environ.get("BENCH_WORKLOAD_LENGTH", 4_000)),
    key_count=int(os.environ.get("BENCH_WORKLOAD_KEYS", 32)),
    epochs=int(os.environ.get("BENCH_WORKLOAD_EPOCHS", 6)),
    updates_per_epoch=int(os.environ.get("BENCH_WORKLOAD_EPOCH_UPDATES", 400)),
)
SEED_COUNT = int(os.environ.get("BENCH_WORKLOAD_SEEDS", 3))

F0_ALGORITHMS = ["knw", "hyperloglog", "bjkst"]
L0_ALGORITHMS = ["knw-l0", "ganguly"]
EPS = 0.1


def test_workload_class_grid(benchmark):
    """The README accuracy grid: every class, F0 and L0 registry families."""

    def experiment():
        return workload_class_grid(
            F0_ALGORITHMS,
            L0_ALGORITHMS,
            [EPS],
            list(range(1, SEED_COUNT + 1)),
            workload_scale=SCALE,
        )

    grid = run_once(benchmark, experiment)
    emit("E14: workload-zoo accuracy grid", format_workload_grid(grid))
    metrics = {}
    for cls_name, points in grid.items():
        for point in points:
            metrics["%s_%s_mean_error" % (cls_name, point.algorithm)] = metric(
                point.summary.mean, "lower", "error"
            )
    record(
        "workloads",
        metrics,
        scale={
            "universe": SCALE.universe_size,
            "length": SCALE.length,
            "seeds": SEED_COUNT,
        },
    )
    for cls_name, points in grid.items():
        assert points, cls_name
        for point in points:
            assert point.truth > 0, (cls_name, point.algorithm)


def test_workload_generation_throughput(benchmark):
    """Materialising zoo streams must stay cheap relative to ingestion."""

    def experiment():
        rates = {}
        for cls_name in workload_class_names():
            start = time.perf_counter()
            trials = 5
            for seed in range(trials):
                stream = make_workload(cls_name, "stream", seed=seed, scale=SCALE)
            elapsed = time.perf_counter() - start
            rates[cls_name] = trials * len(stream) / elapsed
        return rates

    rates = run_once(benchmark, experiment)
    lines = [
        "%-12s %14.0f updates/s (%s)"
        % (cls_name, rate, workload_class(cls_name).stresses)
        for cls_name, rate in sorted(rates.items())
    ]
    emit("E14: zoo generation throughput", "\n".join(lines))
    record(
        "workloads",
        {
            "%s_generation_updates_per_s" % cls_name: metric(
                rate, "higher", "rate", "updates/s"
            )
            for cls_name, rate in rates.items()
        },
    )
