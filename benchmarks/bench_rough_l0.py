"""E9 — Theorem 11: RoughL0Estimator constant-factor approximation.

Measures the ratio estimate/L0 across magnitudes of L0 and deletion
fractions; the paper guarantees ``L0/110 <= estimate <= L0`` with
probability at least 9/16 (with its constants), and the measured ratios
should sit comfortably inside a constant band.
"""

from __future__ import annotations

from conftest import emit, metric, record, run_once

from repro.analysis import Table
from repro.l0 import RoughL0Estimator
from repro.streams import insert_delete_stream

UNIVERSE = 1 << 14
SUPPORTS = [100, 500, 2000, 6000]
SEEDS = [1, 2, 3]


def test_rough_l0_constant_factor(benchmark):
    def experiment():
        rows = []
        for support in SUPPORTS:
            ratios = []
            for seed in SEEDS:
                stream = insert_delete_stream(
                    UNIVERSE, 2 * support, delete_fraction=0.5, seed=300 + seed
                )
                truth = stream.ground_truth()
                rough = RoughL0Estimator(
                    UNIVERSE, magnitude_bound=4, seed=seed, capacity=16
                )
                estimate = rough.process_stream(stream)
                ratios.append(estimate / truth)
            rows.append((support, min(ratios), max(ratios)))
        return rows

    rows = run_once(benchmark, experiment)
    table = Table(
        "E9: RoughL0Estimator estimate / L0 (deletion fraction 0.5, %d seeds)" % len(SEEDS),
        ["true L0", "min ratio", "max ratio"],
    )
    for support, low, high in rows:
        table.add_row([support, "%.3f" % low, "%.3f" % high])
    emit("E9: RoughL0Estimator constant-factor guarantee", table.render_text())
    metrics = {}
    for support, low, high in rows:
        metrics["rough_l0_support%d_min_ratio" % support] = metric(low, "higher", "ratio")
        metrics["rough_l0_support%d_max_ratio" % support] = metric(high, "lower", "ratio")
    record("rough_l0", metrics, scale={"universe": UNIVERSE})

    for support, low, high in rows:
        assert low >= 1.0 / 110.0
        assert high <= 4.0
