"""Keyed sketch-store throughput: ``update_grouped`` vs a dict of sketches.

The tentpole gate of the keyed-store subsystem: a
:class:`~repro.store.store.SketchStore` holds 100k per-key sketches as
struct-of-arrays state and ingests a 10^6-update keyed batch in one hash
pass plus a sort/group scatter per chunk, where the dict-of-sketches
pattern the applications used before pays at least one Python
``update_batch`` call (validation, hashing, packed-buffer rewrite) per
*touched key* per chunk.

Two baselines are measured for each gated family:

* ``dict-scalar`` — one ``update(item)`` call per update on a dict of
  independent sketches (the pre-refactor per-record application path),
  timed on a prefix sample;
* ``dict-batch`` — group the chunk by key in Python, then one vectorized
  ``update_batch`` per touched key (the strongest dict-of-sketches
  implementation), timed in full.

Acceptance gate (asserted at full scale): the grouped store path must
ingest at least 10x faster than the *stronger* dict-of-sketches baseline
for ``hyperloglog`` and ``linear-counting`` at 100k keys / 10^6 updates.
The gate is skipped — with the measured table still printed — when the
workload has been shrunk below full scale for a smoke run.

A state-equivalence check always runs: a sample of store rows must be
bit-identical to the corresponding dict sketches.

Environment knobs (for CI smoke runs and local experiments):

* ``BENCH_STORE_KEYS`` — distinct key count (default 100_000).
* ``BENCH_STORE_ITEMS`` — keyed update count (default 1_000_000).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import BENCH_UNIVERSE, emit, metric, record, run_once

from repro.kernels import get_backend, kernel_backend_info
from repro.store import SketchStore, make_sketch_array

#: Full-scale defaults; override via the environment for smoke runs.
KEY_COUNT = int(os.environ.get("BENCH_STORE_KEYS", 100_000))
STREAM_LENGTH = int(os.environ.get("BENCH_STORE_ITEMS", 1_000_000))

#: Updates driven through the scalar dict loop (its rate is steady, so a
#: prefix suffices; the other paths always ingest the full workload).
SCALAR_SAMPLE = min(20_000, STREAM_LENGTH)

#: Chunk length for the grouped and dict-batch paths.
BATCH_LENGTH = 1 << 17

#: Per-key accuracy target (sizes the per-key sketches).
EPS = 0.1

#: Families under the assertion gate and their required speedups over the
#: dict-batch baseline.
GATED = {"hyperloglog": 10.0, "linear-counting": 10.0}

#: Scale below which the gate is skipped (smoke runs).
GATE_KEYS = 100_000
GATE_ITEMS = 1_000_000

SEED = 11


def _workload():
    """A skew-free keyed workload: uniform keys, uniform items."""
    rng = np.random.default_rng(20100609)
    keys = rng.integers(0, KEY_COUNT, size=STREAM_LENGTH, dtype=np.int64)
    items = rng.integers(0, BENCH_UNIVERSE, size=STREAM_LENGTH, dtype=np.uint64)
    return keys, items


def _store(family: str) -> SketchStore:
    return SketchStore.for_family(family, BENCH_UNIVERSE, eps=EPS, seed=SEED)


def _dict_scalar_rate(family: str, keys, items) -> float:
    """The pre-refactor path: a dict of sketches, one update() per event."""
    template = make_sketch_array(family, BENCH_UNIVERSE, eps=EPS, seed=SEED)
    sketches = {}
    key_list = keys.tolist()
    item_list = items.tolist()
    start = time.perf_counter()
    for key, item in zip(key_list, item_list):
        sketch = sketches.get(key)
        if sketch is None:
            sketch = sketches[key] = template.make_sketch()
        sketch.update(item)
    return len(key_list) / (time.perf_counter() - start)


def _dict_batch_rate(family: str, keys, items) -> float:
    """The strongest dict-of-sketches variant: per-key update_batch calls."""
    template = make_sketch_array(family, BENCH_UNIVERSE, eps=EPS, seed=SEED)
    sketches = {}
    start = time.perf_counter()
    for cursor in range(0, len(items), BATCH_LENGTH):
        chunk_keys = keys[cursor : cursor + BATCH_LENGTH]
        chunk_items = items[cursor : cursor + BATCH_LENGTH]
        order = np.argsort(chunk_keys, kind="stable")
        sorted_keys = chunk_keys[order]
        sorted_items = chunk_items[order]
        boundaries = np.flatnonzero(
            np.concatenate(
                (np.ones(1, dtype=bool), sorted_keys[1:] != sorted_keys[:-1])
            )
        )
        ends = np.append(boundaries[1:], len(sorted_keys))
        touched = sorted_keys[boundaries].tolist()
        for index, key in enumerate(touched):
            sketch = sketches.get(key)
            if sketch is None:
                sketch = sketches[key] = template.make_sketch()
            sketch.update_batch(
                sorted_items[int(boundaries[index]) : int(ends[index])]
            )
    return len(items) / (time.perf_counter() - start)


def _grouped_rate(family: str, keys, items):
    """The store path: grouped vectorized sweeps over the whole batch."""
    store = _store(family)
    start = time.perf_counter()
    for cursor in range(0, len(items), BATCH_LENGTH):
        store.update_grouped(
            keys[cursor : cursor + BATCH_LENGTH],
            items[cursor : cursor + BATCH_LENGTH],
        )
    return len(items) / (time.perf_counter() - start), store


def _check_state_equivalence(family: str, store: SketchStore, keys, items) -> None:
    """A sample of store rows must equal the dict sketches bit-for-bit."""
    template = make_sketch_array(family, BENCH_UNIVERSE, eps=EPS, seed=SEED)
    sample = store.keys[:: max(len(store) // 16, 1)][:16]
    for key in sample:
        reference = template.make_sketch()
        mask = keys == key
        reference.update_batch(items[mask])
        exported = store.sketch(key)
        assert exported.state_dict() == reference.state_dict(), (
            "store row for key %r diverged from its independent sketch" % key
        )


def test_sketch_store_throughput_table(benchmark):
    """E-store: keyed updates/sec table plus the 10x grouped-vs-dict gate."""
    keys, items = _workload()
    scalar_keys = keys[:SCALAR_SAMPLE]
    scalar_items = items[:SCALAR_SAMPLE]
    np.unique(np.arange(4, dtype=np.uint64))  # trigger numpy lazy imports

    def experiment():
        rows = {}
        for family in GATED:
            scalar = _dict_scalar_rate(family, scalar_keys, scalar_items)
            dict_batch = _dict_batch_rate(family, keys, items)
            grouped, store = _grouped_rate(family, keys, items)
            _check_state_equivalence(family, store, keys, items)
            rows[family] = (scalar, dict_batch, grouped, grouped / dict_batch)
        return rows

    rows = run_once(benchmark, experiment)
    lines = [
        "%-16s %14s %14s %14s %9s"
        % ("family", "dict upd/s", "dict-batch/s", "grouped upd/s", "speedup")
    ]
    for family, (scalar, dict_batch, grouped, speedup) in rows.items():
        lines.append(
            "%-16s %14.0f %14.0f %14.0f %8.1fx"
            % (family, scalar, dict_batch, grouped, speedup)
        )
    lines.append(
        "(speedup column: grouped store vs the per-key update_batch dict)"
    )
    emit(
        "E-store: keyed store grouped ingestion, %d keys / %d updates"
        % (KEY_COUNT, STREAM_LENGTH),
        "\n".join(lines),
    )
    metrics = {}
    for family, (scalar, dict_batch, grouped, speedup) in rows.items():
        metrics["%s_dict_updates_per_s" % family] = metric(
            scalar, "higher", "rate", "updates/s"
        )
        metrics["%s_grouped_updates_per_s" % family] = metric(
            grouped, "higher", "rate", "updates/s"
        )
        metrics["%s_grouped_speedup" % family] = metric(speedup, "higher", "ratio")
    record(
        "sketch_store",
        metrics,
        scale={
            "keys": KEY_COUNT,
            "updates": STREAM_LENGTH,
            "kernel_backend": get_backend(),
        },
        environment={"kernels": kernel_backend_info()},
    )
    if KEY_COUNT >= GATE_KEYS and STREAM_LENGTH >= GATE_ITEMS:
        for family, required in GATED.items():
            speedup = rows[family][3]
            assert speedup >= required, (
                "%s grouped path achieved only %.1fx over the dict-of-sketches "
                "baseline (gate: %.0fx)" % (family, speedup, required)
            )
    else:
        emit(
            "E-store gate",
            "skipped: smoke scale (%d keys / %d updates < %d / %d)"
            % (KEY_COUNT, STREAM_LENGTH, GATE_KEYS, GATE_ITEMS),
        )
