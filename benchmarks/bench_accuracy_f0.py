"""E4 — Theorem 3: (1 +/- O(eps)) accuracy of the KNW F0 estimator.

Runs the KNW estimator (practical constants, fast variant, and the literal
paper constants) plus the main baselines over the same workloads across
independent seeds, and reports mean/p90 relative error and the fraction of
trials within (1 +/- eps) and (1 +/- 2 eps).

The paper's guarantee has an unspecified constant inside O(eps) and a 2/3
success probability; EXPERIMENTS.md records the measured constants.
"""

from __future__ import annotations

from conftest import SMALL_BENCH_UNIVERSE, emit, metric, record, run_once

from repro.analysis import Table, accuracy_sweep
from repro.streams import distinct_items_stream, zipf_stream

ALGORITHMS = ["knw", "knw-fast", "knw-paper", "hyperloglog", "kmv", "bjkst"]
EPS_VALUES = [0.1, 0.05]
SEEDS = [1, 2, 3, 4, 5]


def test_accuracy_uniform_workload(benchmark):
    def experiment():
        return accuracy_sweep(
            algorithms=ALGORITHMS,
            stream_factory=lambda seed: distinct_items_stream(
                SMALL_BENCH_UNIVERSE, 8_000, repetitions=2, seed=seed
            ),
            eps_values=EPS_VALUES,
            seeds=SEEDS,
        )

    points = run_once(benchmark, experiment)
    table = Table(
        "E4a: F0 accuracy, 8000 distinct items, %d seeds" % len(SEEDS),
        ["eps", "algorithm", "mean err", "p90 err", "bias", "within eps", "within 2eps"],
    )
    for point in points:
        table.add_row([
            "%.2f" % point.eps,
            point.algorithm,
            "%.3f" % point.summary.mean,
            "%.3f" % point.summary.p90,
            "%+.3f" % point.summary.mean_bias,
            "%.2f" % point.within_band,
            "%.2f" % point.within_2band,
        ])
    emit("E4a: F0 accuracy (uniform duplication)", table.render_text())
    record(
        "accuracy_f0",
        {
            "uniform_%s_eps%.2f_mean_error"
            % (point.algorithm, point.eps): metric(point.summary.mean, "lower", "error")
            for point in points
        },
        scale={"universe": SMALL_BENCH_UNIVERSE, "distinct": 8_000, "seeds": len(SEEDS)},
    )

    knw_points = [p for p in points if p.algorithm == "knw"]
    for point in knw_points:
        # The practical configuration should land within a small constant
        # times eps on average (measured constant recorded in EXPERIMENTS.md).
        assert point.summary.mean <= 4 * point.eps


def test_accuracy_zipf_workload(benchmark):
    def experiment():
        return accuracy_sweep(
            algorithms=["knw", "knw-fast", "hyperloglog"],
            stream_factory=lambda seed: zipf_stream(
                SMALL_BENCH_UNIVERSE, 30_000, skew=1.2, seed=seed
            ),
            eps_values=[0.05],
            seeds=SEEDS,
        )

    points = run_once(benchmark, experiment)
    table = Table(
        "E4b: F0 accuracy on a Zipf(1.2) workload",
        ["eps", "algorithm", "truth", "mean err", "p90 err"],
    )
    for point in points:
        table.add_row([
            "%.2f" % point.eps,
            point.algorithm,
            point.truth,
            "%.3f" % point.summary.mean,
            "%.3f" % point.summary.p90,
        ])
    emit("E4b: F0 accuracy (Zipf duplication)", table.render_text())
    record(
        "accuracy_f0",
        {
            "zipf_%s_eps%.2f_mean_error"
            % (point.algorithm, point.eps): metric(point.summary.mean, "lower", "error")
            for point in points
        },
    )
    for point in points:
        if point.algorithm.startswith("knw"):
            assert point.summary.mean <= 4 * point.eps
