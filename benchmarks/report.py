"""Compare recorded benchmark results against the committed baselines.

Every ``benchmarks/bench_*`` module records a ``BENCH_<name>.json`` (via
``conftest.record``) into a results directory; the blessed copies live in
``benchmarks/baselines/``.  This script diffs the two and exits nonzero
when any metric regresses past its threshold:

* machine-portable metrics (``kind`` of ``ratio`` / ``error`` / ``space``
  / ``count``) are gated at ``--threshold`` (default 20%);
* wall-clock ``rate`` metrics are gated at the looser ``--rate-threshold``
  (default 50%), since absolute throughput shifts between machines.

Comparisons only happen when the run's ``scale`` dict matches the
baseline's exactly — a smoke-scale run is never judged against full-scale
numbers.  ``--update`` copies the current results over the baselines
(bless a new reference after an intentional change).

Usage::

    python benchmarks/report.py                  # diff results vs baselines
    python benchmarks/report.py --update         # bless current results
    python benchmarks/report.py --results DIR    # diff an explicit directory
"""

from __future__ import annotations

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINES = os.path.join(HERE, "baselines")
DEFAULT_RESULTS = os.path.join(HERE, "results")

#: Metric kinds whose values are comparable across machines.
PORTABLE_KINDS = {"ratio", "error", "space", "count"}


def load_dir(directory):
    """Load every ``BENCH_*.json`` in ``directory`` keyed by benchmark name."""
    records = {}
    if not os.path.isdir(directory):
        return records
    for filename in sorted(os.listdir(directory)):
        if not (filename.startswith("BENCH_") and filename.endswith(".json")):
            continue
        with open(os.path.join(directory, filename), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        records[payload.get("benchmark", filename[6:-5])] = payload
    return records


def compare_metric(name, entry, baseline_entry, threshold, rate_threshold):
    """Return (status, detail) for one metric; status in ok/regression/info."""
    value = float(entry["value"])
    base = float(baseline_entry["value"])
    direction = entry.get("direction", "higher")
    kind = entry.get("kind", "rate")
    limit = threshold if kind in PORTABLE_KINDS else rate_threshold
    if direction == "higher":
        regressed = value < base * (1.0 - limit)
        change = (value - base) / base if base else 0.0
    else:
        regressed = value > base * (1.0 + limit)
        change = (base - value) / base if base else 0.0
    detail = "%-38s %12.4g -> %12.4g  (%+.1f%%, %s/%s, limit %d%%)" % (
        name,
        base,
        value,
        100.0 * change,
        direction,
        kind,
        round(100 * limit),
    )
    return ("regression" if regressed else "ok"), detail


def diff(baselines, results, threshold, rate_threshold):
    """Print the comparison and return the number of regressions."""
    regressions = 0
    compared = 0
    for name in sorted(results):
        result = results[name]
        baseline = baselines.get(name)
        print("== %s" % name)
        if baseline is None:
            print("   no committed baseline (run with --update to bless)")
            continue
        if baseline.get("scale") != result.get("scale"):
            print(
                "   scale mismatch, skipping (baseline %s vs run %s)"
                % (baseline.get("scale"), result.get("scale"))
            )
            continue
        base_metrics = baseline.get("metrics", {})
        for metric_name in sorted(result.get("metrics", {})):
            entry = result["metrics"][metric_name]
            baseline_entry = base_metrics.get(metric_name)
            if baseline_entry is None:
                print("   %-38s (new metric, no baseline)" % metric_name)
                continue
            status, detail = compare_metric(
                metric_name, entry, baseline_entry, threshold, rate_threshold
            )
            compared += 1
            if status == "regression":
                regressions += 1
                print("   REGRESSION %s" % detail)
            else:
                print("   ok %s" % detail)
    for name in sorted(set(baselines) - set(results)):
        print("== %s\n   baseline present but no result recorded this run" % name)
    print(
        "\n%d metric(s) compared, %d regression(s)" % (compared, regressions)
    )
    return regressions


def update(baselines_dir, results):
    os.makedirs(baselines_dir, exist_ok=True)
    for name, payload in sorted(results.items()):
        destination = os.path.join(baselines_dir, "BENCH_%s.json" % name)
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("blessed %s" % destination)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", default=DEFAULT_BASELINES)
    parser.add_argument("--results", default=DEFAULT_RESULTS)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional regression for portable metrics (default 0.20)",
    )
    parser.add_argument(
        "--rate-threshold",
        type=float,
        default=0.50,
        help="allowed fractional regression for wall-clock rates (default 0.50)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy current results over the committed baselines",
    )
    options = parser.parse_args(argv)

    results = load_dir(options.results)
    if not results:
        print("no BENCH_*.json results found in %s" % options.results)
        return 0 if options.update else 1
    if options.update:
        update(options.baselines, results)
        return 0
    baselines = load_dir(options.baselines)
    regressions = diff(
        baselines, results, options.threshold, options.rate_threshold
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
