"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode on environments without the
``wheel`` package (offline machines where ``pip install -e .`` must fall
back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
