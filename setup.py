"""Packaging metadata for the KNW distinct-elements reproduction.

All metadata lives here (there is no ``pyproject.toml`` in this repo, so
this file is the single source of truth); ``src/repro/_version.py`` holds
the version. The layout is a standard ``src/`` tree::

    pip install -e .            # runtime (numpy only)
    pip install -e ".[bench]"   # + the pytest/pytest-benchmark harness
    pip install -e ".[dev]"     # + the lint/test toolchain (pinned ruff)
"""

import os

from setuptools import find_packages, setup


def _read_version():
    version_path = os.path.join(
        os.path.dirname(__file__), "src", "repro", "_version.py"
    )
    namespace = {}
    with open(version_path, "r", encoding="utf-8") as handle:
        exec(handle.read(), namespace)
    return namespace["__version__"]


def _read_long_description():
    readme_path = os.path.join(os.path.dirname(__file__), "README.md")
    if not os.path.exists(readme_path):
        return ""
    with open(readme_path, "r", encoding="utf-8") as handle:
        return handle.read()


setup(
    name="repro-knw-distinct-elements",
    version=_read_version(),
    description=(
        "Reproduction of Kane-Nelson-Woodruff (PODS 2010) optimal distinct "
        "elements estimation: F0/L0 sketches, Figure-1 baselines, a "
        "NumPy-vectorized batch-ingestion pipeline, and an experiment harness"
    ),
    long_description=_read_long_description(),
    long_description_content_type="text/markdown",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # The compiled kernel backend builds its shared library from this
    # bundled C source at first use (a C toolchain is the only requirement).
    package_data={"repro.kernels": ["*.c"]},
    # 3.10 floor: the word-RAM code relies on int.bit_count() (3.10+).
    python_requires=">=3.10",
    install_requires=[
        # The batch-ingestion pipeline (repro.vectorize and every
        # update_batch override) vectorizes over numpy arrays; the scalar
        # API degrades gracefully without it, but it is a declared
        # dependency so batch ingestion works out of the box.
        "numpy>=1.22",
    ],
    extras_require={
        "bench": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
        ],
        # The compiled kernel backend needs no Python packages — only a C
        # compiler on PATH (cc/gcc/clang).  The extra exists so
        # ``pip install ".[compiled]"`` documents the intent; the backend
        # is built lazily from the bundled _kernels.c at first use.
        "compiled": [],
        # Developer toolchain: the test runner plus the pinned base
        # linter that backs the CI lint gate (the contract linter,
        # ``python -m repro.lint``, ships with the package and needs
        # nothing beyond numpy).  ruff is pinned exactly so the gate
        # cannot drift as new ruff releases add rules.
        "dev": [
            "pytest>=7.0",
            "hypothesis>=6.0",
            "ruff==0.5.7",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)
