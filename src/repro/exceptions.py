"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch everything the library may raise
with a single ``except`` clause while still being able to distinguish the
individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` library."""


class ParameterError(ReproError, ValueError):
    """An estimator or substrate was configured with invalid parameters.

    Examples include a relative-error target outside ``(0, 1)``, a universe
    size that is not a positive power of two where one is required, or a
    negative number of repetitions.
    """


class SketchFailure(ReproError, RuntimeError):
    """A randomized sketch hit its (low-probability) failure event.

    The KNW algorithm of Figure 3 explicitly outputs ``FAIL`` when the
    bit-packed counter storage would exceed its budget; that event is
    surfaced to callers as this exception.  The failure probability is
    bounded by the paper's analysis (at most 1/32 for the main algorithm).
    """


class UpdateError(ReproError, ValueError):
    """A stream update was outside the domain an estimator accepts.

    Raised, for instance, when an item identifier falls outside ``[0, n)``
    for a sketch built over a universe of size ``n``, or when a deletion is
    fed to an insertion-only estimator.
    """


class MergeError(ReproError, ValueError):
    """Two sketches could not be merged.

    Sketches are only mergeable when they were built with identical
    parameters *and* identical random seeds (so that their hash functions
    agree).  Anything else raises this exception rather than silently
    producing a meaningless combined sketch.
    """


class StreamFormatError(ReproError, ValueError):
    """A serialized stream or dataset description could not be parsed."""


class WorkerFailureError(ReproError, RuntimeError):
    """A sharded-ingestion shard kept failing past its retry budget.

    The plan executor (:mod:`repro.parallel.plan`) retries a shard whose
    worker raised or died, re-ingesting only that shard; when a shard
    exhausts its bounded retry budget — or the failure broke an executor
    the engine does not own and so cannot rebuild — the whole ingestion
    fails with this exception.  The ``__cause__`` chain carries the last
    underlying worker error.
    """


class PersistenceError(ReproError, RuntimeError):
    """The durable-log subsystem could not provide its guarantees.

    Raised when a :class:`repro.durability.DurableLog` directory is already
    held by another writer (single-writer advisory lock), when no usable
    snapshot survives in a directory being recovered, or when a durable
    result spool does not match the plan being resumed.  Note that *damaged
    data* (torn tails, checksum failures) does **not** raise — recovery
    quarantines it and reports through ``RecoveryReport`` instead.
    """


class KernelBackendError(ReproError, RuntimeError):
    """A kernel backend could not be loaded or was explicitly refused.

    The vectorize layer dispatches its hot kernels through a backend seam
    (:mod:`repro.kernels`).  Selecting ``REPRO_KERNEL_BACKEND=auto`` (the
    default) degrades gracefully — a missing C toolchain just falls back
    to the NumPy reference backend with a one-time warning — but *forcing*
    a backend that cannot load (``REPRO_KERNEL_BACKEND=compiled`` on a
    machine without a C compiler, or ``set_backend("compiled")``) raises
    this exception rather than silently running slower than requested.
    The message names the missing prerequisite and the knobs to fix it.
    """


class SerializationError(ReproError, ValueError):
    """A sketch could not be serialized or deserialized.

    Raised when a sketch holds state outside the supported type set (a
    bug in the sketch, not the caller), when a byte payload fails the
    framing checks (bad magic, unsupported version, truncation), or when
    ``from_bytes`` is asked to revive a payload whose recorded class does
    not match the requested one.
    """
