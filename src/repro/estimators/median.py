"""Median-of-repetitions probability amplification.

Every guarantee in the paper is stated with constant success probability
(2/3 for the headline results, 11/20 for the Figure 3 analysis) and then
amplified: "This probability can be amplified by independent repetition"
— run ``Theta(log(1/delta))`` independent copies and report the median
estimate.  This module provides that wrapper generically for both the F0
and L0 estimator interfaces, so any sketch in the library can be lifted to
a ``1 - delta`` success probability, and so the benchmarks can measure the
space/accuracy trade-off of amplification.
"""

from __future__ import annotations

import math
import statistics
from typing import Callable, List, Sequence

from ..exceptions import MergeError, ParameterError, SketchFailure
from .base import CardinalityEstimator, ItemBatch, TurnstileEstimator

__all__ = [
    "MedianEstimator",
    "MedianTurnstileEstimator",
    "repetitions_for_failure_probability",
]


def repetitions_for_failure_probability(delta: float, base_failure: float = 1.0 / 3.0) -> int:
    """Return how many independent copies the median trick needs.

    A Chernoff bound gives failure probability at most
    ``exp(-2 r (1/2 - base_failure)^2)`` for ``r`` repetitions, so
    ``r = ceil(ln(1/delta) / (2 (1/2 - base_failure)^2))`` suffices.
    The count is rounded up to the next odd integer so the median is a
    single repetition's output.

    Args:
        delta: target failure probability, in (0, 1).
        base_failure: failure probability of a single copy (< 1/2).
    """
    if not 0.0 < delta < 1.0:
        raise ParameterError("delta must lie in (0, 1)")
    if not 0.0 < base_failure < 0.5:
        raise ParameterError("base_failure must lie in (0, 1/2)")
    gap = 0.5 - base_failure
    repetitions = int(math.ceil(math.log(1.0 / delta) / (2.0 * gap * gap)))
    repetitions = max(repetitions, 1)
    if repetitions % 2 == 0:
        repetitions += 1
    return repetitions


def _median_ignoring_failures(values: Sequence[float]) -> float:
    """Return the median of the values, dropping failed (None/NaN) copies."""
    usable: List[float] = [value for value in values if value == value]  # filters NaN
    if not usable:
        raise SketchFailure("every repetition of the sketch failed")
    return float(statistics.median(usable))


class MedianEstimator(CardinalityEstimator):
    """Median-of-k wrapper around any insertion-only F0 estimator.

    Attributes:
        repetitions: number of independent copies.
    """

    def __init__(
        self,
        factory: Callable[[int], CardinalityEstimator],
        repetitions: int,
    ) -> None:
        """Create the wrapper.

        Args:
            factory: callable taking a repetition index (usable as a seed
                offset) and returning a fresh, independently seeded
                estimator.
            repetitions: number of copies; must be a positive odd integer.
        """
        if repetitions <= 0:
            raise ParameterError("repetitions must be positive")
        if repetitions % 2 == 0:
            raise ParameterError("repetitions must be odd so the median is well defined")
        self.repetitions = repetitions
        self._copies: List[CardinalityEstimator] = [
            factory(index) for index in range(repetitions)
        ]
        self.name = "median-%dx-%s" % (repetitions, self._copies[0].name)
        self.requires_random_oracle = any(
            copy.requires_random_oracle for copy in self._copies
        )
        self.shard_deterministic = all(
            getattr(copy, "shard_deterministic", True) for copy in self._copies
        )

    def update(self, item: int) -> None:
        """Feed the item to every copy."""
        for copy in self._copies:
            copy.update(item)

    def update_batch(self, items: ItemBatch) -> None:
        """Forward the whole batch to every copy.

        Without this override the wrapper would fall back to the base
        per-item loop and silently discard the copies' vectorized
        ``update_batch`` fast paths; forwarding preserves both the
        throughput and the batch/scalar equivalence contract (each copy
        guarantees it individually).
        """
        for copy in self._copies:
            copy.update_batch(items)

    def merge(self, other: "CardinalityEstimator") -> None:
        """Merge another median wrapper by merging the copies pairwise.

        Amplification commutes with stream union: copy ``i`` of both
        wrappers was built by the same factory with the same repetition
        index (hence the same seed derivation), so merging copy ``i``
        into copy ``i`` yields exactly the wrapper a single node would
        have produced over the concatenated stream.  Requires equal
        repetition counts; each pairwise merge further validates that the
        copies themselves are merge-compatible (same type, parameters,
        and explicit seed), so mismatched factories still fail loudly.
        """
        if not isinstance(other, MedianEstimator):
            raise MergeError("can only merge MedianEstimator with its own kind")
        if other.repetitions != self.repetitions:
            raise MergeError(
                "cannot merge median wrappers with %d vs %d repetitions"
                % (self.repetitions, other.repetitions)
            )
        for mine, theirs in zip(self._copies, other._copies):
            mine.merge(theirs)

    def estimate(self) -> float:
        """Return the median of the copies' estimates.

        Copies that raise :class:`SketchFailure` (the explicit FAIL output
        of Figure 3) are excluded from the median, matching how independent
        repetition recovers from individual failures.
        """
        values: List[float] = []
        for copy in self._copies:
            try:
                values.append(copy.estimate())
            except SketchFailure:
                values.append(float("nan"))
        return _median_ignoring_failures(values)

    def space_bits(self) -> int:
        """Return the summed space of all copies."""
        return sum(copy.space_bits() for copy in self._copies)

    @property
    def copies(self) -> Sequence[CardinalityEstimator]:
        """The underlying repetitions (read-only by convention)."""
        return self._copies


class MedianTurnstileEstimator(TurnstileEstimator):
    """Median-of-k wrapper around any turnstile L0 estimator."""

    def __init__(
        self,
        factory: Callable[[int], TurnstileEstimator],
        repetitions: int,
    ) -> None:
        """Create the wrapper (same contract as :class:`MedianEstimator`)."""
        if repetitions <= 0:
            raise ParameterError("repetitions must be positive")
        if repetitions % 2 == 0:
            raise ParameterError("repetitions must be odd so the median is well defined")
        self.repetitions = repetitions
        self._copies: List[TurnstileEstimator] = [
            factory(index) for index in range(repetitions)
        ]
        self.name = "median-%dx-%s" % (repetitions, self._copies[0].name)
        self.requires_nonnegative_frequencies = any(
            copy.requires_nonnegative_frequencies for copy in self._copies
        )
        self.shard_deterministic = all(
            getattr(copy, "shard_deterministic", True) for copy in self._copies
        )

    def update(self, item: int, delta: int) -> None:
        """Feed the update to every copy."""
        for copy in self._copies:
            copy.update(item, delta)

    def merge(self, other: "TurnstileEstimator") -> None:
        """Merge another median wrapper by merging the copies pairwise.

        Same argument as :meth:`MedianEstimator.merge`: copy ``i`` of both
        wrappers came from the same factory with the same repetition
        index, so pairwise merging reproduces the single-node wrapper
        over the concatenated stream.  Each pairwise merge validates the
        copies' own compatibility (type, parameters, explicit seed).
        """
        if not isinstance(other, MedianTurnstileEstimator):
            raise MergeError(
                "can only merge MedianTurnstileEstimator with its own kind"
            )
        if other.repetitions != self.repetitions:
            raise MergeError(
                "cannot merge median wrappers with %d vs %d repetitions"
                % (self.repetitions, other.repetitions)
            )
        for mine, theirs in zip(self._copies, other._copies):
            mine.merge(theirs)

    def clear(self) -> None:
        """Clear every copy (see :meth:`TurnstileEstimator.clear`)."""
        for copy in self._copies:
            copy.clear()

    def update_batch(self, items: ItemBatch, deltas: ItemBatch) -> None:
        """Forward the whole batch of signed updates to every copy.

        Same rationale as :meth:`MedianEstimator.update_batch`: without
        the override the wrapper would take the base scalar loop and lose
        the copies' batch paths.  Each copy re-validates the chunk; the
        first copy does so before mutating anything, so a malformed batch
        still leaves the wrapper untouched.
        """
        for copy in self._copies:
            copy.update_batch(items, deltas)

    def estimate(self) -> float:
        """Return the median of the copies' estimates (skipping failed copies)."""
        values: List[float] = []
        for copy in self._copies:
            try:
                values.append(copy.estimate())
            except SketchFailure:
                values.append(float("nan"))
        return _median_ignoring_failures(values)

    def space_bits(self) -> int:
        """Return the summed space of all copies."""
        return sum(copy.space_bits() for copy in self._copies)

    @property
    def copies(self) -> Sequence[TurnstileEstimator]:
        """The underlying repetitions (read-only by convention)."""
        return self._copies
