"""Exact reference estimators.

These keep the full state the streaming algorithms are designed to avoid —
a hash set of seen identifiers for F0, the full frequency dictionary for
L0 — and therefore use linear space.  They exist as ground truth for tests
and benchmarks (the paper's lower-bound discussion is exactly that exact
computation requires linear space, so the space benchmark includes them to
show what the sketches are saving).
"""

from __future__ import annotations

from typing import Dict, Set

from ..vectorize import HAS_NUMPY, as_delta_array, as_key_array, np
from .base import CardinalityEstimator, ItemBatch, TurnstileEstimator

__all__ = ["ExactDistinctCounter", "ExactHammingNorm"]


class ExactDistinctCounter(CardinalityEstimator):
    """Exact F0 via a set of seen identifiers (linear space, zero error)."""

    name = "exact-f0"

    def __init__(self, universe_size: int) -> None:
        """Create the counter.

        Args:
            universe_size: size of the identifier universe (used only for
                space accounting — ``log2(n)`` bits per stored identifier).
        """
        self.universe_size = max(universe_size, 2)
        self._seen: Set[int] = set()

    def update(self, item: int) -> None:
        """Record one identifier."""
        self._seen.add(item)

    def estimate(self) -> float:
        """Return the exact number of distinct identifiers seen."""
        return float(len(self._seen))

    def merge(self, other: "CardinalityEstimator") -> None:
        """Union the seen-sets of two exact counters."""
        if not isinstance(other, ExactDistinctCounter):
            from ..exceptions import MergeError

            raise MergeError("can only merge ExactDistinctCounter with its own kind")
        self._seen |= other._seen

    def space_bits(self) -> int:
        """Return ``|seen| * ceil(log2(n))`` bits — the linear-space cost."""
        id_bits = max((self.universe_size - 1).bit_length(), 1)
        return max(len(self._seen), 1) * id_bits

    def __contains__(self, item: int) -> bool:
        return item in self._seen


class ExactHammingNorm(TurnstileEstimator):
    """Exact L0 via the full frequency dictionary (linear space, zero error)."""

    name = "exact-l0"

    def __init__(self, universe_size: int) -> None:
        """Create the counter.

        Args:
            universe_size: size of the identifier universe (space accounting).
        """
        self.universe_size = max(universe_size, 2)
        self._frequencies: Dict[int, int] = {}

    def update(self, item: int, delta: int) -> None:
        """Apply ``x_item += delta`` exactly."""
        new_value = self._frequencies.get(item, 0) + delta
        if new_value == 0:
            self._frequencies.pop(item, None)
        else:
            self._frequencies[item] = new_value

    def update_batch(self, items: ItemBatch, deltas: ItemBatch) -> None:
        """Apply a chunk of updates, summing per distinct item first.

        The dictionary entry for an item is the plain sum of its deltas
        (entries at zero are dropped), so folding one per-item chunk
        total into the dictionary is bit-identical to the scalar loop.
        """
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            return super().update_batch(items, deltas)
        keys = as_key_array(items)
        deltas = as_delta_array(deltas, expected_length=len(keys))
        if keys.size == 0:
            return
        touched, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(len(touched), dtype=object)
        np.add.at(sums, inverse, deltas.astype(object))
        frequencies = self._frequencies
        for item, delta_sum in zip(touched.tolist(), sums.tolist()):
            item = int(item)
            new_value = frequencies.get(item, 0) + int(delta_sum)
            if new_value == 0:
                frequencies.pop(item, None)
            else:
                frequencies[item] = new_value

    def merge(self, other: "TurnstileEstimator") -> None:
        """Add another exact counter's frequency vector into this one."""
        if not isinstance(other, ExactHammingNorm):
            from ..exceptions import MergeError

            raise MergeError("can only merge ExactHammingNorm with its own kind")
        for item, value in other._frequencies.items():
            new_value = self._frequencies.get(item, 0) + value
            if new_value == 0:
                self._frequencies.pop(item, None)
            else:
                self._frequencies[item] = new_value

    def clear(self) -> None:
        """Drop the whole frequency dictionary."""
        self._frequencies = {}

    def estimate(self) -> float:
        """Return the exact number of non-zero frequencies."""
        return float(len(self._frequencies))

    def frequency(self, item: int) -> int:
        """Return the exact current frequency of ``item``."""
        return self._frequencies.get(item, 0)

    def space_bits(self) -> int:
        """Return the linear-space cost of the dictionary.

        Each entry stores an identifier (``log2(n)`` bits) and a counter
        (one machine word).
        """
        from ..hashing.bitops import WORD_SIZE

        id_bits = max((self.universe_size - 1).bit_length(), 1)
        return max(len(self._frequencies), 1) * (id_bits + WORD_SIZE)
