"""Abstract interfaces shared by every cardinality estimator in the library.

Two estimator families exist, mirroring the paper's two problems:

* :class:`CardinalityEstimator` — insertion-only F0 estimation: the sketch
  sees item identifiers and estimates the number of distinct identifiers.
* :class:`TurnstileEstimator` — L0 (Hamming norm) estimation: the sketch
  sees signed updates ``(i, v)`` and estimates the number of coordinates
  with non-zero frequency.

Both expose ``estimate()`` which may be called at any time mid-stream
(the paper's "reporting" operation) and ``space_bits()`` for the word-RAM
space accounting used by the Figure-1 benchmark.  Insertion-only sketches
additionally support ``merge`` when two sketches share parameters and
seeds, which the union-of-streams application relies on.

Ingestion comes in two granularities:

* ``update(item)`` — the paper's per-item streaming operation;
* ``update_batch(items)`` — bulk ingestion of a chunk of items.  The
  contract is *exact equivalence*: feeding a stream through any sequence
  of batches must leave the sketch in the same state (and produce the
  same estimates) as the per-item loop, so batching is purely a
  throughput optimisation.  The base implementation is the loop; the hot
  estimators override it with NumPy-vectorized paths (see
  :mod:`repro.vectorize`).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, Optional, Sequence, Union

from .. import serialize
from ..exceptions import MergeError, SerializationError, UpdateError
from ..streams.model import MaterializedStream, Update

__all__ = [
    "SerializableState",
    "CardinalityEstimator",
    "TurnstileEstimator",
    "describe_estimator",
]

#: The types accepted by ``update_batch``: any integer sequence, including
#: a NumPy integer ndarray (the zero-copy fast path for vectorized
#: overrides).
ItemBatch = Union[Sequence[int], "object"]


class SerializableState:
    """Serialization surface shared by every sketch in the library.

    Four methods, with torch-like semantics:

    * :meth:`state_dict` / :meth:`load_state_dict` — capture and restore
      the complete sketch state as a plain-value tree.  ``load`` expects
      an instance of the *same class* (construct it with any valid
      parameters, then load); all fields — including nested hash
      families, packed bit buffers, and shared RNGs with their exact
      aliasing structure — are replaced by the captured ones, so the
      restored sketch is bit-identical: equal ``state_dict()``, equal
      estimates, and equal behaviour under further ingestion.
    * :meth:`to_bytes` / :meth:`from_bytes` — the framed wire form of the
      same snapshot (see :mod:`repro.serialize` for the format), used by
      the sharded ingestion engine (:mod:`repro.parallel`) to transport
      worker sketches to the merge coordinator.
    """

    def state_dict(self) -> Dict[str, Any]:
        """Return a plain-value snapshot of the complete sketch state."""
        return serialize.snapshot(self)

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot into this instance (in place)."""
        serialize.restore(self, state)

    def to_bytes(self) -> bytes:
        """Serialize the sketch to framed bytes (see :mod:`repro.serialize`)."""
        return serialize.dumps(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SerializableState":
        """Revive a sketch serialized with :meth:`to_bytes`.

        The payload's recorded class must be ``cls`` or a subclass; call
        this on the class you expect (or on a base class to accept any
        estimator of that family).
        """
        revived = serialize.loads(data)
        if not isinstance(revived, cls):
            raise SerializationError(
                "payload contains a %s, not a %s"
                % (type(revived).__name__, cls.__name__)
            )
        return revived


class CardinalityEstimator(SerializableState, abc.ABC):
    """Base class for insertion-only distinct-elements (F0) estimators."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "cardinality-estimator"

    #: Whether the analysis of this estimator assumes a random oracle
    #: (a truly random hash function).  Mirrors the "Notes" column of the
    #: paper's Figure 1 and is surfaced in the comparison tables.
    requires_random_oracle: bool = False

    #: Whether same-seed sketches fed disjoint shards and merged are
    #: *bit-identical* to one sketch fed the concatenation.  True for
    #: every estimator whose hash functions are fully determined by the
    #: seed; set to False by configurations whose lazily materialised
    #: hash families draw values in first-occurrence order (the draw
    #: order then differs between sharded and sequential ingestion, so
    #: merged estimates are merely approximation-equivalent).  The
    #: sharded execution engine (:mod:`repro.parallel`) surfaces this
    #: flag when callers ask which estimators shard exactly.
    shard_deterministic: bool = True

    @abc.abstractmethod
    def update(self, item: int) -> None:
        """Process one stream item (an identifier in ``[0, n)``)."""

    @abc.abstractmethod
    def estimate(self) -> float:
        """Return the current estimate of the number of distinct items."""

    @abc.abstractmethod
    def space_bits(self) -> int:
        """Return the sketch size in bits under word-RAM accounting."""

    # -- optional capabilities -----------------------------------------------------

    def merge(self, other: "CardinalityEstimator") -> None:
        """Merge another sketch of the same type/parameters/seed into this one.

        Subclasses that support merging override this; the default refuses.
        """
        raise MergeError("%s does not support merging" % type(self).__name__)

    # -- batch ingestion ------------------------------------------------------------

    def update_batch(self, items: ItemBatch) -> None:
        """Process a chunk of stream items, equivalently to an ``update`` loop.

        Semantics (binding for every override):

        * **Equivalence** — after ``update_batch(items)`` the sketch state
          and all subsequent ``estimate()`` results are identical to
          ``for x in items: update(x)``.  Splitting a stream into batches
          of any sizes never changes the outcome; batching is purely a
          throughput optimisation.
        * **Order sensitivity** — items are logically applied in order.
          Most sketches are order-insensitive (their per-counter reduction
          is a max/OR/bottom-k), but order-dependent tie-breaking (e.g.
          lazily materialised hash families drawing values at first
          occurrence) follows first-occurrence order within the batch.
        * **Dtype** — ``items`` may be any integer sequence; vectorized
          overrides accept (and are fastest with) a NumPy integer array,
          converted once to ``uint64``.  Identifiers must lie in
          ``[0, universe_size)``.  *Vectorized overrides* validate the
          whole batch before any state is mutated, so a rejected batch
          leaves the sketch untouched; this base (loop) implementation,
          like the scalar loop itself, applies the prefix preceding the
          offending item.
        * **Known deviation** — the KNW Figure 3 sketch evaluates its
          space-budget FAIL test once per ingested chunk (after
          rebasing) rather than after every item; a stream whose budget
          only *transiently* exceeds the threshold at a stale base can
          latch FAIL under the scalar loop but not under batching.  See
          :meth:`repro.core.knw.KNWFigure3Sketch.update_batch`.  All
          other state is bit-identical.
        * **Merging** — batch ingestion composes with :meth:`merge`
          exactly like scalar ingestion: same-seed sketches fed disjoint
          batches and then merged agree with one sketch fed the
          concatenation, whenever the estimator supports merging at all.

        The base implementation is the plain loop (correct for every
        subclass); hot estimators override it with vectorized paths.
        """
        for item in items:
            self.update(int(item))

    # -- convenience ----------------------------------------------------------------

    def update_many(self, items: Iterable[int]) -> None:
        """Feed every identifier from an iterable to :meth:`update`.

        Unlike :meth:`update_batch` this accepts lazy iterables and never
        materialises them; use it for unbounded sources, and
        :meth:`update_batch` for chunked high-throughput ingestion.
        """
        for item in items:
            self.update(item)

    def process_stream(
        self,
        stream: MaterializedStream,
        batch_size: Optional[int] = None,
    ) -> float:
        """Feed an entire insertion-only stream and return the final estimate.

        Args:
            stream: the insertion-only stream to ingest.
            batch_size: when given, ingest via :meth:`update_batch` in
                chunks of this many items (the vectorized fast path);
                when ``None``, use the per-item loop.

        Raises:
            UpdateError: if the stream contains deletions.
        """
        if batch_size is not None:
            if not stream.is_insertion_only():
                raise UpdateError(
                    "insertion-only estimator %s received a turnstile stream"
                    % self.name
                )
            for chunk in stream.iter_item_batches(batch_size):
                self.update_batch(chunk)
            return self.estimate()
        for update in stream:
            if update.delta != 1:
                raise UpdateError(
                    "insertion-only estimator %s received delta %d"
                    % (self.name, update.delta)
                )
            self.update(update.item)
        return self.estimate()


class TurnstileEstimator(SerializableState, abc.ABC):
    """Base class for turnstile L0 (Hamming norm) estimators."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "turnstile-estimator"

    #: Whether the estimator requires all frequencies to stay non-negative
    #: (true for Ganguly's algorithm, false for KNW's).
    requires_nonnegative_frequencies: bool = False

    #: Whether same-seed sketches fed disjoint shards and merged are
    #: *bit-identical* to one sketch fed the concatenation.  The library's
    #: turnstile sketches are all *linear* (their counters are sums of
    #: deltas modulo fixed primes) with eagerly drawn hash functions, so
    #: — unlike the lazily-drawn F0 configurations — every mergeable L0
    #: sketch shards exactly.  Mirrors
    #: :attr:`CardinalityEstimator.shard_deterministic`.
    shard_deterministic: bool = True

    @abc.abstractmethod
    def update(self, item: int, delta: int) -> None:
        """Apply the update ``x_item += delta``."""

    @abc.abstractmethod
    def estimate(self) -> float:
        """Return the current estimate of ``|{i : x_i != 0}|``."""

    @abc.abstractmethod
    def space_bits(self) -> int:
        """Return the sketch size in bits under word-RAM accounting."""

    # -- optional capabilities -----------------------------------------------------

    def merge(self, other: "TurnstileEstimator") -> None:
        """Merge another sketch of the same type/parameters/seed into this one.

        Linear turnstile sketches (all of the library's L0 estimators)
        override this with counter-wise modular addition; the default
        refuses.  Merging two same-seed sketches fed disjoint streams is
        bit-identical to one sketch fed the concatenation, which is what
        the sharded ingestion engine (:mod:`repro.parallel`) relies on.
        """
        raise MergeError("%s does not support merging" % type(self).__name__)

    def clear(self) -> None:
        """Reset all accumulated counters, keeping the hash randomness.

        After ``clear()`` the sketch is bit-identical to a freshly
        constructed instance with the same parameters and seed.  Because
        turnstile merges are *additive* (not idempotent like the F0
        max/OR merges), the sharded ingestion engine clears each worker's
        clone before feeding it its shard — otherwise a mid-stream
        coordinator's prior state would be counted once per shard.
        Subclasses with mergeable state override this; the default
        refuses.
        """
        raise MergeError("%s does not support clearing" % type(self).__name__)

    # -- batch ingestion ------------------------------------------------------------

    def update_batch(self, items: ItemBatch, deltas: ItemBatch) -> None:
        """Apply a chunk of signed updates ``x_items[i] += deltas[i]``.

        Same contract as
        :meth:`CardinalityEstimator.update_batch` — exact equivalence with
        the per-update loop, order-sensitive application, integer
        sequences or NumPy arrays for both ``items`` and ``deltas``.  The
        library's L0 sketches are linear (every counter is a sum of
        deltas modulo a fixed prime), so their vectorized overrides are
        bit-identical to the scalar loop in every state word: hashes
        evaluate once over the whole chunk and each touched counter pays
        one exact modular fold of its chunk total (see
        :meth:`repro.l0.knw_l0.KNWHammingNormEstimator.update_batch`).
        Vectorized overrides validate the whole batch before any state is
        mutated; this base (loop) implementation, like the scalar loop
        itself, applies the prefix preceding the offending update.
        """
        if len(items) != len(deltas):
            raise UpdateError("update_batch requires as many deltas as items")
        for item, delta in zip(items, deltas):
            self.update(int(item), int(delta))

    # -- convenience ----------------------------------------------------------------

    def apply(self, update: Update) -> None:
        """Apply one :class:`repro.streams.model.Update`."""
        self.update(update.item, update.delta)

    def process_stream(
        self,
        stream: MaterializedStream,
        batch_size: Optional[int] = None,
    ) -> float:
        """Feed an entire turnstile stream and return the final estimate.

        Args:
            stream: the turnstile stream to ingest.
            batch_size: when given, ingest via :meth:`update_batch` in
                chunks of this many updates (mirroring
                :meth:`CardinalityEstimator.process_stream`, so turnstile
                callers can be written against the batch API uniformly);
                when ``None``, use the per-update loop.
        """
        if batch_size is not None:
            for items, deltas in stream.iter_update_batches(batch_size):
                self.update_batch(items, deltas)
            return self.estimate()
        for update in stream:
            self.update(update.item, update.delta)
        return self.estimate()


def describe_estimator(estimator: object) -> str:
    """Return a one-line description of an estimator for reports.

    Includes the class name, the declared algorithm name, the current space
    in bits, and whether the analysis assumes a random oracle.
    """
    name = getattr(estimator, "name", type(estimator).__name__)
    space: Optional[int]
    try:
        space = estimator.space_bits()  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - defensive; all estimators implement it
        space = None
    oracle = getattr(estimator, "requires_random_oracle", False)
    pieces = [str(name)]
    if space is not None:
        pieces.append("%d bits" % space)
    if oracle:
        pieces.append("random-oracle model")
    return ", ".join(pieces)
