"""Abstract interfaces shared by every cardinality estimator in the library.

Two estimator families exist, mirroring the paper's two problems:

* :class:`CardinalityEstimator` — insertion-only F0 estimation: the sketch
  sees item identifiers and estimates the number of distinct identifiers.
* :class:`TurnstileEstimator` — L0 (Hamming norm) estimation: the sketch
  sees signed updates ``(i, v)`` and estimates the number of coordinates
  with non-zero frequency.

Both expose ``estimate()`` which may be called at any time mid-stream
(the paper's "reporting" operation) and ``space_bits()`` for the word-RAM
space accounting used by the Figure-1 benchmark.  Insertion-only sketches
additionally support ``merge`` when two sketches share parameters and
seeds, which the union-of-streams application relies on.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional

from ..exceptions import MergeError, UpdateError
from ..streams.model import MaterializedStream, Update

__all__ = ["CardinalityEstimator", "TurnstileEstimator", "describe_estimator"]


class CardinalityEstimator(abc.ABC):
    """Base class for insertion-only distinct-elements (F0) estimators."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "cardinality-estimator"

    #: Whether the analysis of this estimator assumes a random oracle
    #: (a truly random hash function).  Mirrors the "Notes" column of the
    #: paper's Figure 1 and is surfaced in the comparison tables.
    requires_random_oracle: bool = False

    @abc.abstractmethod
    def update(self, item: int) -> None:
        """Process one stream item (an identifier in ``[0, n)``)."""

    @abc.abstractmethod
    def estimate(self) -> float:
        """Return the current estimate of the number of distinct items."""

    @abc.abstractmethod
    def space_bits(self) -> int:
        """Return the sketch size in bits under word-RAM accounting."""

    # -- optional capabilities -----------------------------------------------------

    def merge(self, other: "CardinalityEstimator") -> None:
        """Merge another sketch of the same type/parameters/seed into this one.

        Subclasses that support merging override this; the default refuses.
        """
        raise MergeError("%s does not support merging" % type(self).__name__)

    # -- convenience ----------------------------------------------------------------

    def update_many(self, items: Iterable[int]) -> None:
        """Feed every identifier from an iterable to :meth:`update`."""
        for item in items:
            self.update(item)

    def process_stream(self, stream: MaterializedStream) -> float:
        """Feed an entire insertion-only stream and return the final estimate.

        Raises:
            UpdateError: if the stream contains deletions.
        """
        for update in stream:
            if update.delta != 1:
                raise UpdateError(
                    "insertion-only estimator %s received delta %d"
                    % (self.name, update.delta)
                )
            self.update(update.item)
        return self.estimate()


class TurnstileEstimator(abc.ABC):
    """Base class for turnstile L0 (Hamming norm) estimators."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "turnstile-estimator"

    #: Whether the estimator requires all frequencies to stay non-negative
    #: (true for Ganguly's algorithm, false for KNW's).
    requires_nonnegative_frequencies: bool = False

    @abc.abstractmethod
    def update(self, item: int, delta: int) -> None:
        """Apply the update ``x_item += delta``."""

    @abc.abstractmethod
    def estimate(self) -> float:
        """Return the current estimate of ``|{i : x_i != 0}|``."""

    @abc.abstractmethod
    def space_bits(self) -> int:
        """Return the sketch size in bits under word-RAM accounting."""

    # -- convenience ----------------------------------------------------------------

    def apply(self, update: Update) -> None:
        """Apply one :class:`repro.streams.model.Update`."""
        self.update(update.item, update.delta)

    def process_stream(self, stream: MaterializedStream) -> float:
        """Feed an entire turnstile stream and return the final estimate."""
        for update in stream:
            self.update(update.item, update.delta)
        return self.estimate()


def describe_estimator(estimator: object) -> str:
    """Return a one-line description of an estimator for reports.

    Includes the class name, the declared algorithm name, the current space
    in bits, and whether the analysis assumes a random oracle.
    """
    name = getattr(estimator, "name", type(estimator).__name__)
    space: Optional[int]
    try:
        space = estimator.space_bits()  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - defensive; all estimators implement it
        space = None
    oracle = getattr(estimator, "requires_random_oracle", False)
    pieces = [str(name)]
    if space is not None:
        pieces.append("%d bits" % space)
    if oracle:
        pieces.append("random-oracle model")
    return ", ".join(pieces)
