"""Name -> factory registry for estimators.

The experiment harness, the benchmarks, and the examples all need to
instantiate "every algorithm in Figure 1" uniformly.  This module provides
that single place: each F0 algorithm is registered under a short name with
a factory taking ``(universe_size, eps, seed)``, and each L0 algorithm with
a factory taking ``(universe_size, eps, magnitude_bound, seed)``.

The default parameterisation of every baseline is chosen so that its
*target* standard error matches ``eps``, which is what makes the space
comparison (bits needed for the same accuracy target) meaningful.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..exceptions import ParameterError
from .base import CardinalityEstimator, TurnstileEstimator

__all__ = [
    "F0Factory",
    "L0Factory",
    "register_f0",
    "register_l0",
    "make_f0_estimator",
    "make_l0_estimator",
    "f0_algorithm_names",
    "l0_algorithm_names",
]

F0Factory = Callable[[int, float, Optional[int]], CardinalityEstimator]
L0Factory = Callable[[int, float, int, Optional[int]], TurnstileEstimator]

_F0_REGISTRY: Dict[str, F0Factory] = {}
_L0_REGISTRY: Dict[str, L0Factory] = {}


def register_f0(name: str, factory: F0Factory) -> None:
    """Register an insertion-only F0 estimator factory under ``name``."""
    if not name:
        raise ParameterError("estimator name must be non-empty")
    _F0_REGISTRY[name] = factory


def register_l0(name: str, factory: L0Factory) -> None:
    """Register a turnstile L0 estimator factory under ``name``."""
    if not name:
        raise ParameterError("estimator name must be non-empty")
    _L0_REGISTRY[name] = factory


def f0_algorithm_names() -> List[str]:
    """Return the registered F0 algorithm names (sorted)."""
    _ensure_builtins()
    return sorted(_F0_REGISTRY)


def l0_algorithm_names() -> List[str]:
    """Return the registered L0 algorithm names (sorted)."""
    _ensure_builtins()
    return sorted(_L0_REGISTRY)


def make_f0_estimator(
    name: str, universe_size: int, eps: float, seed: Optional[int] = None
) -> CardinalityEstimator:
    """Instantiate a registered F0 estimator.

    Args:
        name: registry key (see :func:`f0_algorithm_names`).
        universe_size: the universe size ``n``.
        eps: target relative error / standard error.
        seed: RNG seed.
    """
    _ensure_builtins()
    if name not in _F0_REGISTRY:
        raise ParameterError(
            "unknown F0 algorithm %r (known: %s)" % (name, ", ".join(sorted(_F0_REGISTRY)))
        )
    return _F0_REGISTRY[name](universe_size, eps, seed)


def make_l0_estimator(
    name: str,
    universe_size: int,
    eps: float,
    magnitude_bound: int,
    seed: Optional[int] = None,
) -> TurnstileEstimator:
    """Instantiate a registered L0 estimator."""
    _ensure_builtins()
    if name not in _L0_REGISTRY:
        raise ParameterError(
            "unknown L0 algorithm %r (known: %s)" % (name, ", ".join(sorted(_L0_REGISTRY)))
        )
    return _L0_REGISTRY[name](universe_size, eps, magnitude_bound, seed)


_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Populate the registry with the library's own algorithms (lazily).

    Imports are deferred to avoid import cycles (core/baseline modules do
    not import the registry).
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True

    from ..baselines import (
        AMSDistinctEstimator,
        BJKSTSampler,
        FlajoletMartinPCSA,
        GibbonsTirthapuraSampler,
        HyperLogLogCounter,
        KMinimumValues,
        LinearCounter,
        LogLogCounter,
        MultiScaleBitmapCounter,
    )
    from ..core import FastKNWDistinctCounter, KNWDistinctCounter
    from ..l0 import GangulyStyleL0Estimator, KNWHammingNormEstimator
    from .exact import ExactDistinctCounter, ExactHammingNorm

    register_f0("knw", lambda n, eps, seed: KNWDistinctCounter(n, eps=eps, seed=seed))
    register_f0(
        "knw-paper",
        lambda n, eps, seed: KNWDistinctCounter(
            n, eps=eps, seed=seed, offset_divisor=32, rough_uniform_family=False
        ),
    )
    register_f0(
        "knw-fast", lambda n, eps, seed: FastKNWDistinctCounter(n, eps=eps, seed=seed)
    )
    register_f0("exact", lambda n, eps, seed: ExactDistinctCounter(n))
    register_f0(
        "flajolet-martin",
        lambda n, eps, seed: FlajoletMartinPCSA(
            n, maps=max(16, int(round((0.78 / eps) ** 2))), seed=seed
        ),
    )
    register_f0("ams", lambda n, eps, seed: AMSDistinctEstimator(n, seed=seed))
    register_f0(
        "gibbons-tirthapura",
        lambda n, eps, seed: GibbonsTirthapuraSampler(n, eps=eps, seed=seed),
    )
    register_f0("kmv", lambda n, eps, seed: KMinimumValues(n, eps=eps, seed=seed))
    register_f0("bjkst", lambda n, eps, seed: BJKSTSampler(n, eps=eps, seed=seed))
    register_f0("loglog", lambda n, eps, seed: LogLogCounter(n, eps=eps, seed=seed))
    register_f0(
        "linear-counting",
        lambda n, eps, seed: LinearCounter(
            n, bits=max(64, int(round(4.0 / (eps * eps)))), seed=seed
        ),
    )
    register_f0(
        "multiscale-bitmap",
        lambda n, eps, seed: MultiScaleBitmapCounter(
            n, bits_per_scale=max(64, int(round(2.0 / (eps * eps)))), seed=seed
        ),
    )
    register_f0(
        "hyperloglog", lambda n, eps, seed: HyperLogLogCounter(n, eps=eps, seed=seed)
    )

    register_l0(
        "knw-l0",
        lambda n, eps, mm, seed: KNWHammingNormEstimator(
            n, eps=eps, magnitude_bound=mm, seed=seed
        ),
    )
    register_l0(
        "knw-l0-paper",
        lambda n, eps, mm, seed: KNWHammingNormEstimator(
            n, eps=eps, magnitude_bound=mm, seed=seed, row_selection="paper"
        ),
    )
    register_l0(
        "ganguly",
        lambda n, eps, mm, seed: GangulyStyleL0Estimator(
            n, eps=eps, magnitude_bound=mm, seed=seed
        ),
    )
    register_l0("exact-l0", lambda n, eps, mm, seed: ExactHammingNorm(n))
