"""Estimator framework: abstract interfaces, exact references, amplification.

* :mod:`repro.estimators.base` — the F0 / L0 estimator interfaces and the
  merge protocol.
* :mod:`repro.estimators.exact` — exact (linear-space) references.
* :mod:`repro.estimators.median` — median-of-repetitions amplification.
* :mod:`repro.estimators.registry` — name -> factory registry used by the
  experiment harness and the Figure-1 benchmarks.
"""

from .base import CardinalityEstimator, TurnstileEstimator, describe_estimator
from .exact import ExactDistinctCounter, ExactHammingNorm
from .median import (
    MedianEstimator,
    MedianTurnstileEstimator,
    repetitions_for_failure_probability,
)

__all__ = [
    "CardinalityEstimator",
    "TurnstileEstimator",
    "describe_estimator",
    "ExactDistinctCounter",
    "ExactHammingNorm",
    "MedianEstimator",
    "MedianTurnstileEstimator",
    "repetitions_for_failure_probability",
]
