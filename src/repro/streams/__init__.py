"""Stream model and workload generators.

* :mod:`repro.streams.model` — update/stream value types and ground truth.
* :mod:`repro.streams.generators` — insertion-only workloads (uniform,
  Zipf, sequential, adversarial, grow-then-repeat, union pairs), keyed
  per-entity workloads for the sketch store, and timestamped workloads
  for the sliding-window layer.
* :mod:`repro.streams.turnstile` — turnstile workloads with deletions for
  the L0 algorithms.
* :mod:`repro.streams.workloads` — the workload zoo: five named adversarial
  and realistic stream classes (skew, churn, bursty, cold-keys,
  adversarial), each in stream/keyed/windowed shape with exact ground
  truth, plus the class registry the sweeps resolve names against.
* :mod:`repro.streams.datasets` — synthetic packet traces, query logs, and
  table columns matching the paper's motivating applications.
"""

from .datasets import FlowRecord, packet_trace, query_log, table_column
from .generators import (
    KeyedWorkload,
    WindowedWorkload,
    distinct_items_stream,
    duplicated_union_streams,
    growing_then_repeating_stream,
    iter_item_chunks,
    keyed_uniform_stream,
    low_bits_adversarial_stream,
    sequential_stream,
    uniform_random_stream,
    windowed_uniform_stream,
    zipf_stream,
)
from .model import (
    MaterializedStream,
    Update,
    exact_f0,
    exact_l0,
    frequency_vector,
    stream_from_items,
)
from .turnstile import (
    fluctuating_stream,
    insert_delete_stream,
    mixed_sign_stream,
    paired_columns,
)
from .workloads import (
    DEFAULT_SCALE,
    NEAR_COLLISION_MODES,
    SMOKE_SCALE,
    WorkloadClass,
    WorkloadScale,
    bursty_keyed_workload,
    bursty_stream,
    bursty_windowed_workload,
    churn_keyed_workload,
    churn_stream,
    churn_windowed_workload,
    cold_key_stream,
    cold_key_windowed_workload,
    cold_key_workload,
    make_workload,
    near_collision_keyed_workload,
    near_collision_stream,
    near_collision_windowed_workload,
    scale_from_env,
    skewed_keyed_workload,
    skewed_stream,
    skewed_windowed_workload,
    workload_class,
    workload_class_names,
    workload_fingerprint,
    zipf_rank_probabilities,
)

__all__ = [
    "FlowRecord",
    "packet_trace",
    "query_log",
    "table_column",
    "KeyedWorkload",
    "keyed_uniform_stream",
    "WindowedWorkload",
    "windowed_uniform_stream",
    "distinct_items_stream",
    "duplicated_union_streams",
    "growing_then_repeating_stream",
    "iter_item_chunks",
    "low_bits_adversarial_stream",
    "sequential_stream",
    "uniform_random_stream",
    "zipf_stream",
    "MaterializedStream",
    "Update",
    "exact_f0",
    "exact_l0",
    "frequency_vector",
    "stream_from_items",
    "fluctuating_stream",
    "insert_delete_stream",
    "mixed_sign_stream",
    "paired_columns",
    "DEFAULT_SCALE",
    "NEAR_COLLISION_MODES",
    "SMOKE_SCALE",
    "WorkloadClass",
    "WorkloadScale",
    "bursty_keyed_workload",
    "bursty_stream",
    "bursty_windowed_workload",
    "churn_keyed_workload",
    "churn_stream",
    "churn_windowed_workload",
    "cold_key_stream",
    "cold_key_windowed_workload",
    "cold_key_workload",
    "make_workload",
    "near_collision_keyed_workload",
    "near_collision_stream",
    "near_collision_windowed_workload",
    "scale_from_env",
    "skewed_keyed_workload",
    "skewed_stream",
    "skewed_windowed_workload",
    "workload_class",
    "workload_class_names",
    "workload_fingerprint",
    "zipf_rank_probabilities",
]
