"""Synthetic datasets modelled on the paper's motivating applications.

Section 1 of the paper motivates distinct-elements estimation with three
database/networking workloads; real traces of those workloads (Code Red
packet headers, search-engine query logs, warehouse table columns) are not
available offline, so this module synthesises workloads with the same
*structure* — the algorithms only ever see item identifiers, so matching
the identifier-multiplicity structure preserves the exercised behaviour
(see the substitution table in DESIGN.md).

* :func:`packet_trace` — network flows: source/destination/port tuples with
  a configurable number of distinct flows, heavy-hitter flows, and an
  optional "scanning host" that touches many distinct destinations in a
  burst (the port-scan / DDoS-spread detection scenario).
* :func:`query_log` — search-engine queries with Zipf popularity and a
  long tail of one-off queries.
* :func:`table_column` — a relational column with a target number of
  distinct values and configurable null fraction / skew, the input to the
  query-optimizer application.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..exceptions import ParameterError
from .model import MaterializedStream, Update

__all__ = ["packet_trace", "query_log", "table_column", "FlowRecord"]


@dataclass(frozen=True)
class FlowRecord:
    """A synthetic packet header: the fields the network application hashes.

    Attributes:
        source: source address identifier.
        destination: destination address identifier.
        destination_port: destination port number.
    """

    source: int
    destination: int
    destination_port: int

    def flow_id(self, universe_size: int) -> int:
        """Map the (source, destination, port) triple into ``[0, universe_size)``.

        A fixed mixing function (not a random hash — the estimator supplies
        its own hashing) packs the fields and folds them into the universe.
        """
        packed = (self.source * 1_000_003 + self.destination) * 65_537 + self.destination_port
        return packed % universe_size


def packet_trace(
    universe_size: int,
    packets: int,
    distinct_flows: int,
    heavy_flow_fraction: float = 0.1,
    scanner_destinations: int = 0,
    seed: Optional[int] = None,
) -> Tuple[MaterializedStream, List[FlowRecord]]:
    """Synthesise a packet trace for the network-monitoring application.

    Args:
        universe_size: size of the flow-identifier universe.
        packets: number of packets in the trace (before the scan burst).
        distinct_flows: number of distinct (source, destination, port) flows.
        heavy_flow_fraction: fraction of flows that are "heavy" and receive
            most of the traffic (matching the usual flow-size skew).
        scanner_destinations: when positive, one extra source sends a single
            packet to this many distinct destinations at the end of the
            trace — the port-scan signature the application must detect via
            a jump in distinct flows.
        seed: RNG seed.

    Returns:
        ``(stream, flows)`` where ``stream`` is the insertion-only stream of
        flow identifiers and ``flows`` is the underlying list of records
        (useful for application-level reporting).
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if packets < 0:
        raise ParameterError("packets must be non-negative")
    if distinct_flows <= 0:
        raise ParameterError("distinct_flows must be positive")
    if not 0.0 <= heavy_flow_fraction <= 1.0:
        raise ParameterError("heavy_flow_fraction must lie in [0, 1]")
    if scanner_destinations < 0:
        raise ParameterError("scanner_destinations must be non-negative")
    rng = random.Random(seed)
    flows = [
        FlowRecord(
            source=rng.randrange(1 << 24),
            destination=rng.randrange(1 << 24),
            destination_port=rng.choice([80, 443, 53, 22, 25, rng.randrange(1024, 65536)]),
        )
        for _ in range(distinct_flows)
    ]
    heavy_count = max(1, int(round(distinct_flows * heavy_flow_fraction)))
    heavy_flows = flows[:heavy_count]
    records: List[FlowRecord] = []
    for index in range(packets):
        if index < distinct_flows:
            # Guarantee every flow appears at least once so the distinct
            # count is exactly distinct_flows.
            records.append(flows[index % distinct_flows])
        elif rng.random() < 0.8:
            records.append(rng.choice(heavy_flows))
        else:
            records.append(rng.choice(flows))
    scanner_source = rng.randrange(1 << 24)
    for _ in range(scanner_destinations):
        records.append(
            FlowRecord(
                source=scanner_source,
                destination=rng.randrange(1 << 24),
                destination_port=rng.randrange(1, 1024),
            )
        )
    updates = [Update(record.flow_id(universe_size), 1) for record in records]
    stream = MaterializedStream(updates, universe_size, name="packet-trace")
    return (stream, records)


def query_log(
    universe_size: int,
    queries: int,
    distinct_queries: int,
    skew: float = 1.05,
    seed: Optional[int] = None,
) -> MaterializedStream:
    """Synthesise a search-engine query log.

    Query popularity is Zipf-distributed over ``distinct_queries`` query
    identifiers, but every identifier is guaranteed to appear at least once
    so the ground-truth distinct count is exact.

    Args:
        universe_size: size of the query-identifier universe.
        queries: total number of log records.
        distinct_queries: number of distinct queries (must be <= queries).
        skew: Zipf exponent of the popularity distribution.
        seed: RNG seed.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if distinct_queries <= 0:
        raise ParameterError("distinct_queries must be positive")
    if queries < distinct_queries:
        raise ParameterError("queries must be at least distinct_queries")
    if distinct_queries > universe_size:
        raise ParameterError("distinct_queries cannot exceed the universe size")
    if skew <= 0:
        raise ParameterError("skew must be positive")
    rng = random.Random(seed)
    identifiers = rng.sample(range(universe_size), distinct_queries)
    weights = [1.0 / ((rank + 1) ** skew) for rank in range(distinct_queries)]
    total_weight = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total_weight
        cumulative.append(acc)

    def draw() -> int:
        u = rng.random()
        lo, hi = 0, distinct_queries - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return identifiers[lo]

    items = list(identifiers)
    items.extend(draw() for _ in range(queries - distinct_queries))
    rng.shuffle(items)
    return MaterializedStream(
        [Update(item, 1) for item in items], universe_size, name="query-log"
    )


def table_column(
    universe_size: int,
    rows: int,
    distinct_values: int,
    null_fraction: float = 0.0,
    seed: Optional[int] = None,
    name: str = "table-column",
) -> MaterializedStream:
    """Synthesise a relational column for the query-optimizer application.

    Args:
        universe_size: size of the value universe (e.g. the domain of a key).
        rows: number of rows in the column.
        distinct_values: number of distinct non-null values; the optimizer's
            job is to estimate this from a single pass.
        null_fraction: fraction of rows that are NULL (skipped by the
            estimator, as real systems skip NULLs for NDV statistics).
        seed: RNG seed.
        name: label for reports.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if rows <= 0:
        raise ParameterError("rows must be positive")
    if not 0 < distinct_values <= min(rows, universe_size):
        raise ParameterError("distinct_values must lie in (0, min(rows, universe_size)]")
    if not 0.0 <= null_fraction < 1.0:
        raise ParameterError("null_fraction must lie in [0, 1)")
    rng = random.Random(seed)
    values = rng.sample(range(universe_size), distinct_values)
    non_null_rows = rows - int(round(rows * null_fraction))
    non_null_rows = max(non_null_rows, distinct_values)
    items = list(values)
    items.extend(rng.choice(values) for _ in range(non_null_rows - distinct_values))
    rng.shuffle(items)
    return MaterializedStream(
        [Update(item, 1) for item in items], universe_size, name=name
    )
