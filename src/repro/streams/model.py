"""Stream model: items, updates, and replayable streams.

The paper works with two stream models:

* **Insertion-only (cash-register)**: a stream ``i_1, ..., i_m`` of item
  identifiers in ``[n]``; the quantity of interest is
  ``F0 = |{i_1, ..., i_m}|``.
* **Turnstile**: a stream of updates ``(i, v)`` with ``v`` possibly
  negative, acting on a frequency vector ``x`` by ``x_i += v``; the
  quantity of interest is ``L0 = |{i : x_i != 0}|``.

This module defines the small value types for both models plus
:class:`MaterializedStream`, a replayable stream that also knows its exact
ground truth (``F0(t)`` / ``L0(t)`` at requested checkpoints), which the
experiment harness and the tests use to score estimators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import ParameterError, StreamFormatError
from ..vectorize import HAS_NUMPY, np

__all__ = [
    "Update",
    "MaterializedStream",
    "exact_f0",
    "exact_l0",
    "frequency_vector",
]


@dataclass(frozen=True)
class Update:
    """A single turnstile update ``x_item += delta``.

    In the insertion-only model every update has ``delta == 1``.

    Attributes:
        item: the item identifier, an integer in ``[0, n)``.
        delta: the signed change to the item's frequency.
    """

    item: int
    delta: int = 1

    def __post_init__(self) -> None:
        if self.item < 0:
            raise ParameterError("item identifiers must be non-negative")
        if self.delta == 0:
            raise ParameterError("zero-delta updates are not part of the model")


def exact_f0(items: Iterable[int]) -> int:
    """Return the exact number of distinct items in an insertion-only stream."""
    return len(set(items))


def frequency_vector(updates: Iterable[Update]) -> Dict[int, int]:
    """Return the non-zero entries of the frequency vector after ``updates``."""
    frequencies: Dict[int, int] = {}
    for update in updates:
        new_value = frequencies.get(update.item, 0) + update.delta
        if new_value == 0:
            frequencies.pop(update.item, None)
        else:
            frequencies[update.item] = new_value
    return frequencies


def exact_l0(updates: Iterable[Update]) -> int:
    """Return the exact Hamming norm (number of non-zero frequencies)."""
    return len(frequency_vector(updates))


class MaterializedStream:
    """A fully materialised, replayable stream with ground-truth tracking.

    The stream is a sequence of :class:`Update` values.  For insertion-only
    workloads every delta is ``+1`` and ``ground_truth`` equals F0; for
    turnstile workloads it equals L0.

    Attributes:
        universe_size: the ``n`` of the model — all items lie in ``[0, n)``.
        name: a short human-readable label used by the benchmark tables.
    """

    def __init__(
        self,
        updates: Sequence[Update],
        universe_size: int,
        name: str = "stream",
    ) -> None:
        """Wrap a sequence of updates.

        Args:
            updates: the stream contents, in order.
            universe_size: size of the identifier universe; every update's
                item must lie in ``[0, universe_size)``.
            name: label for reports.
        """
        if universe_size <= 0:
            raise ParameterError("universe_size must be positive")
        self.universe_size = universe_size
        self.name = name
        self._updates: List[Update] = list(updates)
        for update in self._updates:
            if update.item >= universe_size:
                raise StreamFormatError(
                    "item %d outside universe [0, %d)" % (update.item, universe_size)
                )

    # -- basic container behaviour ------------------------------------------------

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __getitem__(self, index: int) -> Update:
        return self._updates[index]

    @property
    def updates(self) -> Sequence[Update]:
        """The underlying update sequence (read-only view by convention)."""
        return self._updates

    def items(self) -> Iterator[int]:
        """Yield just the item identifiers (useful for insertion-only sketches)."""
        for update in self._updates:
            yield update.item

    def item_array(self):
        """Return the item identifiers as a ``uint64`` NumPy array (cached).

        This is the zero-copy input to the vectorized ``update_batch``
        paths; slicing it (as :meth:`iter_item_batches` does) creates views,
        so replaying a stream in batches does not copy the stream.  Falls
        back to a plain list when NumPy is unavailable.
        """
        cached = getattr(self, "_item_array", None)
        if cached is None:
            if HAS_NUMPY:
                cached = np.fromiter(
                    (update.item for update in self._updates),
                    dtype=np.uint64,
                    count=len(self._updates),
                )
            else:  # pragma: no cover - numpy is a declared dependency
                cached = [update.item for update in self._updates]
            self._item_array = cached
        return cached

    def delta_array(self):
        """Return the update deltas as an ``int64`` NumPy array (cached)."""
        cached = getattr(self, "_delta_array", None)
        if cached is None:
            if HAS_NUMPY:
                cached = np.fromiter(
                    (update.delta for update in self._updates),
                    dtype=np.int64,
                    count=len(self._updates),
                )
            else:  # pragma: no cover - numpy is a declared dependency
                cached = [update.delta for update in self._updates]
            self._delta_array = cached
        return cached

    def iter_item_batches(self, batch_size: int) -> Iterator["object"]:
        """Yield the item identifiers in chunks of ``batch_size``.

        Each chunk is a NumPy array view over :meth:`item_array` (no
        copying); the final chunk may be shorter.  This is the canonical
        way to drive an estimator's ``update_batch`` over a materialised
        stream.

        Args:
            batch_size: positive chunk length.
        """
        if batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        items = self.item_array()
        for start in range(0, len(self._updates), batch_size):
            yield items[start : start + batch_size]

    def iter_update_batches(
        self, batch_size: int
    ) -> Iterator[Tuple["object", "object"]]:
        """Yield ``(items, deltas)`` chunks of ``batch_size`` updates.

        The turnstile counterpart of :meth:`iter_item_batches`: each pair
        is a view over :meth:`item_array` / :meth:`delta_array` (no
        copying), sized for :meth:`TurnstileEstimator.update_batch
        <repro.estimators.base.TurnstileEstimator.update_batch>`.  The
        final pair may be shorter.

        Args:
            batch_size: positive chunk length.
        """
        if batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        items = self.item_array()
        deltas = self.delta_array()
        for start in range(0, len(self._updates), batch_size):
            yield items[start : start + batch_size], deltas[start : start + batch_size]

    def is_insertion_only(self) -> bool:
        """Return True when every update has ``delta == +1`` (cached).

        The answer is computed once — vectorized over the cached
        :meth:`delta_array` — and memoized, so hot callers that gate on
        the stream model per ingest (the sharded engine checks it for
        every :func:`repro.parallel.parallel_ingest_into` call) stop
        paying an O(n) Python walk over the ``Update`` objects each time.
        """
        cached = getattr(self, "_insertion_only", None)
        if cached is None:
            if HAS_NUMPY:
                deltas = self.delta_array()
                cached = bool((deltas == 1).all())
            else:  # pragma: no cover - numpy is a declared dependency
                cached = all(update.delta == 1 for update in self._updates)
            self._insertion_only = cached
        return cached

    # -- ground truth ---------------------------------------------------------------

    def ground_truth(self) -> int:
        """Return the exact F0 (insertion-only) or L0 (turnstile) of the full stream."""
        return exact_l0(self._updates)

    def ground_truth_at(self, positions: Sequence[int]) -> List[int]:
        """Return the exact F0/L0 after each prefix length in ``positions``.

        Args:
            positions: non-decreasing prefix lengths in ``[0, len(stream)]``.

        Returns:
            One ground-truth value per requested position.
        """
        for first, second in zip(positions, positions[1:]):
            if second < first:
                raise ParameterError("checkpoint positions must be non-decreasing")
        if positions and (positions[0] < 0 or positions[-1] > len(self._updates)):
            raise ParameterError("checkpoint positions out of range")
        results: List[int] = []
        frequencies: Dict[int, int] = {}
        cursor = 0
        for position in positions:
            while cursor < position:
                update = self._updates[cursor]
                new_value = frequencies.get(update.item, 0) + update.delta
                if new_value == 0:
                    frequencies.pop(update.item, None)
                else:
                    frequencies[update.item] = new_value
                cursor += 1
            results.append(len(frequencies))
        return results

    def prefix(self, length: int, name: Optional[str] = None) -> "MaterializedStream":
        """Return a new stream consisting of the first ``length`` updates."""
        if not 0 <= length <= len(self._updates):
            raise ParameterError("prefix length out of range")
        return MaterializedStream(
            self._updates[:length],
            self.universe_size,
            name=name or ("%s[:%d]" % (self.name, length)),
        )

    def concat(self, other: "MaterializedStream", name: Optional[str] = None) -> "MaterializedStream":
        """Return the concatenation of two streams over the same universe.

        Concatenation models taking the union of two observation points
        (e.g. two routers); mergeable sketches processed separately over the
        two halves must agree with a single sketch over the concatenation.
        """
        if other.universe_size != self.universe_size:
            raise ParameterError("cannot concatenate streams over different universes")
        return MaterializedStream(
            list(self._updates) + list(other._updates),
            self.universe_size,
            name=name or ("%s+%s" % (self.name, other.name)),
        )

    def checkpoints(self, count: int) -> List[int]:
        """Return up to ``count`` evenly spaced prefix lengths ending at the full length.

        Duplicate positions are dropped (requesting more checkpoints than
        the stream has updates would otherwise repeat prefixes, making
        the runner evaluate and record the same checkpoint several
        times); the final full-length checkpoint is always present.
        """
        if count <= 0:
            raise ParameterError("checkpoint count must be positive")
        total = len(self._updates)
        if count == 1 or total == 0:
            return [total]
        positions: List[int] = []
        for index in range(count):
            position = round(total * (index + 1) / count)
            if not positions or position != positions[-1]:
                positions.append(position)
        return positions

    def max_update_magnitude(self) -> int:
        """Return ``M``, the largest absolute update value (1 for insertion-only)."""
        return max((abs(update.delta) for update in self._updates), default=1)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "MaterializedStream(name=%r, length=%d, universe_size=%d)"
            % (self.name, len(self._updates), self.universe_size)
        )


def stream_from_items(
    items: Iterable[int], universe_size: int, name: str = "stream"
) -> MaterializedStream:
    """Build an insertion-only stream from raw item identifiers."""
    return MaterializedStream(
        [Update(item, 1) for item in items], universe_size, name=name
    )
