"""Insertion-only workload generators.

The evaluation needs streams whose distinct-count and duplication structure
can be controlled precisely:

* ``uniform_random_stream`` — each update is a uniform item; duplication is
  whatever the birthday structure produces.
* ``distinct_items_stream`` — exactly ``distinct`` items, each appearing a
  configurable number of times, in random order (the workhorse for accuracy
  benchmarks, since the ground truth is chosen rather than observed).
* ``zipf_stream`` — heavy-tailed repetition, the classic database/network
  skew model.
* ``sequential_stream`` — items ``0, 1, 2, ...`` in order (an adversarial
  case for schemes that subsample on raw identifiers rather than hashes).
* ``low_bits_adversarial_stream`` — identifiers chosen so their low-order
  bits are maximally non-uniform, stressing the ``lsb``-based subsampling.
* ``growing_then_repeating_stream`` — F0 grows and then plateaus, the shape
  that exercises RoughEstimator's "correct at all times" guarantee.

Every generator returns a :class:`repro.streams.model.MaterializedStream`
and takes an explicit ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import ParameterError
from ..hashing.bitops import reverse_bits
from ..vectorize import HAS_NUMPY, np
from .model import MaterializedStream, Update

__all__ = [
    "uniform_random_stream",
    "distinct_items_stream",
    "zipf_stream",
    "sequential_stream",
    "low_bits_adversarial_stream",
    "growing_then_repeating_stream",
    "duplicated_union_streams",
    "iter_item_chunks",
    "KeyedWorkload",
    "WindowedWorkload",
    "windowed_uniform_stream",
    "keyed_uniform_stream",
]


def iter_item_chunks(items: Iterable[int], chunk_size: int) -> Iterator["object"]:
    """Yield identifiers from any (possibly unbounded) source in chunks.

    The batch-ingestion counterpart of feeding an iterator item by item:
    each yielded chunk is a ``uint64`` NumPy array of up to ``chunk_size``
    identifiers, ready for ``update_batch``.  Materialised streams should
    prefer :meth:`repro.streams.model.MaterializedStream.iter_item_batches`
    (zero-copy views); this helper exists for live sources — sockets,
    generators, database cursors — where only a bounded window may be
    buffered at a time.

    Args:
        items: any iterable of non-negative integers.
        chunk_size: positive maximum chunk length.
    """
    if chunk_size <= 0:
        raise ParameterError("chunk_size must be positive")
    iterator = iter(items)
    while True:
        window = list(itertools.islice(iterator, chunk_size))
        if not window:
            return
        if HAS_NUMPY:
            yield np.asarray(window, dtype=np.uint64)
        else:  # pragma: no cover - numpy is a declared dependency
            yield window


def _check_universe(universe_size: int) -> None:
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")


def uniform_random_stream(
    universe_size: int,
    length: int,
    seed: Optional[int] = None,
    name: str = "uniform",
) -> MaterializedStream:
    """Return a stream of ``length`` uniform draws from ``[0, universe_size)``."""
    _check_universe(universe_size)
    if length < 0:
        raise ParameterError("length must be non-negative")
    rng = random.Random(seed)
    updates = [Update(rng.randrange(universe_size), 1) for _ in range(length)]
    return MaterializedStream(updates, universe_size, name=name)


def distinct_items_stream(
    universe_size: int,
    distinct: int,
    repetitions: int = 1,
    seed: Optional[int] = None,
    shuffle: bool = True,
    name: str = "distinct",
) -> MaterializedStream:
    """Return a stream containing exactly ``distinct`` distinct items.

    Args:
        universe_size: size of the identifier universe.
        distinct: exact number of distinct identifiers (the ground-truth F0).
        repetitions: how many times each identifier appears.
        seed: RNG seed for identifier selection and shuffling.
        shuffle: when False, all copies of an item appear consecutively.
        name: label for reports.
    """
    _check_universe(universe_size)
    if not 0 <= distinct <= universe_size:
        raise ParameterError("distinct must lie in [0, universe_size]")
    if repetitions <= 0:
        raise ParameterError("repetitions must be positive")
    rng = random.Random(seed)
    identifiers = rng.sample(range(universe_size), distinct)
    items: List[int] = []
    for identifier in identifiers:
        items.extend([identifier] * repetitions)
    if shuffle:
        rng.shuffle(items)
    return MaterializedStream([Update(item, 1) for item in items], universe_size, name=name)


def zipf_stream(
    universe_size: int,
    length: int,
    skew: float = 1.1,
    seed: Optional[int] = None,
    name: str = "zipf",
) -> MaterializedStream:
    """Return a stream whose item frequencies follow a Zipf distribution.

    The rank-r item has probability proportional to ``r^-skew``; ranks are
    mapped to random identifiers so the heavy items do not have special
    low-order-bit structure.

    Args:
        universe_size: size of the identifier universe.
        length: number of updates.
        skew: Zipf exponent; must be positive.
        seed: RNG seed.
        name: label for reports.
    """
    _check_universe(universe_size)
    if length < 0:
        raise ParameterError("length must be non-negative")
    if skew <= 0:
        raise ParameterError("skew must be positive")
    rng = random.Random(seed)
    support = min(universe_size, max(length, 1))
    weights = [1.0 / ((rank + 1) ** skew) for rank in range(support)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    identifiers = rng.sample(range(universe_size), support)

    def draw() -> int:
        u = rng.random()
        lo, hi = 0, support - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return identifiers[lo]

    updates = [Update(draw(), 1) for _ in range(length)]
    return MaterializedStream(updates, universe_size, name=name)


def sequential_stream(
    universe_size: int,
    distinct: int,
    name: str = "sequential",
) -> MaterializedStream:
    """Return the stream ``0, 1, ..., distinct-1`` (each item exactly once)."""
    _check_universe(universe_size)
    if not 0 <= distinct <= universe_size:
        raise ParameterError("distinct must lie in [0, universe_size]")
    updates = [Update(item, 1) for item in range(distinct)]
    return MaterializedStream(updates, universe_size, name=name)


def low_bits_adversarial_stream(
    universe_size: int,
    distinct: int,
    name: str = "lowbits-adversarial",
) -> MaterializedStream:
    """Return a stream of identifiers with adversarial low-order-bit structure.

    Identifiers are bit-reversed counters, so their *low* bits change as
    slowly as a counter's *high* bits.  Estimators that subsample on the raw
    identifier (rather than on a hash of it) are badly fooled by this
    workload; the KNW algorithms hash first, so their accuracy should be
    unaffected — which is exactly what the adversarial benchmark checks.
    """
    _check_universe(universe_size)
    if universe_size & (universe_size - 1):
        raise ParameterError("low_bits_adversarial_stream requires a power-of-two universe")
    if not 0 <= distinct <= universe_size:
        raise ParameterError("distinct must lie in [0, universe_size]")
    width = max(universe_size.bit_length() - 1, 1)
    updates = [Update(reverse_bits(item, width), 1) for item in range(distinct)]
    return MaterializedStream(updates, universe_size, name=name)


def growing_then_repeating_stream(
    universe_size: int,
    distinct: int,
    repeat_length: int,
    seed: Optional[int] = None,
    name: str = "grow-then-repeat",
) -> MaterializedStream:
    """Return a stream whose F0 grows to ``distinct`` and then stays flat.

    The first phase introduces ``distinct`` new identifiers; the second
    phase re-draws ``repeat_length`` updates uniformly from the already-seen
    identifiers.  RoughEstimator must remain a constant-factor
    approximation at *every* point of both phases (Theorem 1), so this is
    the canonical workload for experiment E5.
    """
    _check_universe(universe_size)
    if not 0 < distinct <= universe_size:
        raise ParameterError("distinct must lie in (0, universe_size]")
    if repeat_length < 0:
        raise ParameterError("repeat_length must be non-negative")
    rng = random.Random(seed)
    identifiers = rng.sample(range(universe_size), distinct)
    items = list(identifiers)
    items.extend(rng.choice(identifiers) for _ in range(repeat_length))
    return MaterializedStream([Update(item, 1) for item in items], universe_size, name=name)


@dataclass
class KeyedWorkload:
    """A keyed workload: aligned per-update (key, item[, delta]) arrays.

    The input shape of the keyed sketch store
    (:class:`repro.store.store.SketchStore`): update ``i`` applies item
    ``items[i]`` to the sketch of entity ``keys[i]``.  Without ``deltas``
    the workload is insertion-only and ground truth is the exact per-key
    distinct count (F0); with ``deltas`` it is a turnstile workload and
    ground truth is the exact per-key support size (L0).

    Attributes:
        universe_size: the identifier universe the items live in.
        keys: integer ndarray of per-update entity keys.
        items: ``uint64`` ndarray of per-update identifiers.
        deltas: optional ``int64`` ndarray of signed deltas (turnstile
            workloads); ``None`` for insertion-only workloads.
        name: label for reports.
    """

    universe_size: int
    keys: "object"
    items: "object"
    deltas: Optional["object"] = None
    name: str = "keyed"
    _truth: Optional[Dict[int, int]] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def key_count(self) -> int:
        """The number of distinct keys in the workload."""
        return len(self.ground_truth())

    def iter_grouped_batches(self, batch_size: int) -> Iterator[Tuple]:
        """Yield aligned ``(keys, items)`` chunks of up to ``batch_size`` updates.

        Insertion-only workloads only (the historical two-tuple shape);
        turnstile workloads iterate :meth:`iter_grouped_update_batches`.
        """
        if batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        if self.deltas is not None:
            raise ParameterError(
                "turnstile keyed workloads carry deltas; iterate "
                "iter_grouped_update_batches instead"
            )
        for start in range(0, len(self.items), batch_size):
            stop = start + batch_size
            yield self.keys[start:stop], self.items[start:stop]

    def iter_grouped_update_batches(self, batch_size: int) -> Iterator[Tuple]:
        """Yield aligned ``(keys, items, deltas)`` chunks of up to ``batch_size``.

        The turnstile counterpart of :meth:`iter_grouped_batches`; the
        ``deltas`` member of each triple is ``None`` for insertion-only
        workloads, matching the optional third argument of
        :meth:`repro.store.store.SketchStore.update_grouped`.
        """
        if batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        for start in range(0, len(self.items), batch_size):
            stop = start + batch_size
            yield (
                self.keys[start:stop],
                self.items[start:stop],
                None if self.deltas is None else self.deltas[start:stop],
            )

    def ground_truth(self) -> Dict[int, int]:
        """Return the exact per-key distinct/support counts (computed once)."""
        if self._truth is None:
            if HAS_NUMPY:
                pairs = np.stack(
                    (
                        np.asarray(self.keys, dtype=np.int64),
                        np.asarray(self.items, dtype=np.int64),
                    ),
                    axis=1,
                )
                if self.deltas is None:
                    distinct = np.unique(pairs, axis=0)
                    touched, counts = np.unique(distinct[:, 0], return_counts=True)
                else:
                    # Exact per-key L0: net delta per (key, item) pair, then
                    # count the pairs whose net frequency is non-zero.
                    distinct, inverse = np.unique(pairs, axis=0, return_inverse=True)
                    net = np.zeros(len(distinct), dtype=np.int64)
                    np.add.at(
                        net,
                        inverse.reshape(-1),
                        np.asarray(self.deltas, dtype=np.int64),
                    )
                    surviving = distinct[net != 0]
                    touched, counts = np.unique(surviving[:, 0], return_counts=True)
                    self._truth = dict(
                        zip(touched.tolist(), (int(c) for c in counts.tolist()))
                    )
                    # Keys whose support cancelled entirely still count as
                    # observed entities with L0 = 0.
                    for key in np.unique(pairs[:, 0]).tolist():
                        self._truth.setdefault(int(key), 0)
                    return self._truth
                self._truth = dict(
                    zip(touched.tolist(), (int(c) for c in counts.tolist()))
                )
            else:  # pragma: no cover - numpy is a declared dependency
                if self.deltas is None:
                    seen: Dict[int, set] = {}
                    for key, item in zip(self.keys, self.items):
                        seen.setdefault(int(key), set()).add(int(item))
                    self._truth = {key: len(values) for key, values in seen.items()}
                else:
                    net_by_key: Dict[int, Dict[int, int]] = {}
                    for key, item, delta in zip(self.keys, self.items, self.deltas):
                        freqs = net_by_key.setdefault(int(key), {})
                        freqs[int(item)] = freqs.get(int(item), 0) + int(delta)
                    self._truth = {
                        key: sum(1 for value in freqs.values() if value != 0)
                        for key, freqs in net_by_key.items()
                    }
        return self._truth


def keyed_uniform_stream(
    universe_size: int,
    key_count: int,
    length: int,
    distinct_per_key: Optional[int] = None,
    seed: Optional[int] = None,
    name: str = "keyed-uniform",
) -> KeyedWorkload:
    """Return a keyed workload of ``length`` updates over ``key_count`` entities.

    Every update picks a uniform key; its item is uniform over the key's
    own value pool (``distinct_per_key`` identifiers deterministically
    derived from the key) when a pool size is given, or over the whole
    universe otherwise.  This is the per-entity shape of the motivating
    applications — many sketches, each seeing a modest stream — at a
    controllable duplication level.

    Args:
        universe_size: size of the identifier universe.
        key_count: number of distinct entity keys (``0 .. key_count-1``
            are all possible; keys the RNG never draws stay absent).
        length: total number of keyed updates.
        distinct_per_key: optional per-key value-pool size (bounds each
            key's exact distinct count).
        seed: RNG seed.
        name: label for reports.
    """
    _check_universe(universe_size)
    if key_count <= 0:
        raise ParameterError("key_count must be positive")
    if length < 0:
        raise ParameterError("length must be non-negative")
    if distinct_per_key is not None and distinct_per_key <= 0:
        raise ParameterError("distinct_per_key must be positive")
    if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
        raise ParameterError("keyed_uniform_stream requires numpy")
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, key_count, size=length, dtype=np.int64)
    if distinct_per_key is None:
        items = rng.integers(0, universe_size, size=length, dtype=np.uint64)
    else:
        draws = rng.integers(0, distinct_per_key, size=length, dtype=np.uint64)
        items = (
            keys.astype(np.uint64) * np.uint64(distinct_per_key) + draws
        ) % np.uint64(universe_size)
    return KeyedWorkload(universe_size, keys, items, name=name)


@dataclass
class WindowedWorkload:
    """A timestamped workload: aligned per-update (epoch, item[, delta]) arrays.

    The input shape of the sliding-window layer
    (:class:`repro.window.windowed.WindowedSketch`): update ``i`` lands
    in epoch ``epochs[i]`` (non-decreasing — streams arrive in time
    order).  Ground truth is the exact distinct count over any suffix of
    epochs, i.e. the answer to "how many distinct identifiers in the
    last ``k`` windows".

    Attributes:
        universe_size: the identifier universe the items live in.
        epochs: non-decreasing ``int64`` ndarray of per-update epochs.
        items: ``uint64`` ndarray of per-update identifiers.
        deltas: optional ``int64`` ndarray of signed deltas (turnstile
            workloads); ``None`` for insertion-only workloads.
        name: label for reports.
    """

    universe_size: int
    epochs: "object"
    items: "object"
    deltas: Optional["object"] = None
    name: str = "windowed"

    def __len__(self) -> int:
        return len(self.items)

    @property
    def epoch_count(self) -> int:
        """Number of epochs spanned, first to last (gaps included)."""
        if len(self.items) == 0:
            return 0
        return int(self.epochs[-1]) - int(self.epochs[0]) + 1

    def window_slice(self, k: int) -> Tuple["object", "object", Optional["object"]]:
        """Return the raw updates of the newest ``k`` epochs.

        Args:
            k: window width in epochs, counting back from the final
                (most recent) epoch.

        Returns:
            ``(epochs, items, deltas)`` array views over the window.
        """
        if k < 1:
            raise ParameterError("window width must be at least 1 epoch")
        if len(self.items) == 0:
            return self.epochs[:0], self.items[:0], None if self.deltas is None else self.deltas[:0]
        first = int(self.epochs[-1]) - k + 1
        start = int(np.searchsorted(self.epochs, first, side="left"))
        return (
            self.epochs[start:],
            self.items[start:],
            None if self.deltas is None else self.deltas[start:],
        )

    def ground_truth_window(self, k: int) -> int:
        """Exact distinct count (F0) / non-zero count (L0) of the last ``k`` epochs."""
        _, items, deltas = self.window_slice(k)
        if deltas is None:
            return int(len(np.unique(items)))
        totals: Dict[int, int] = {}
        for item, delta in zip(items.tolist(), deltas.tolist()):
            totals[item] = totals.get(item, 0) + delta
        return sum(1 for value in totals.values() if value != 0)

    def ground_truth_all_windows(self) -> List[int]:
        """Exact window answers for every width 1..epoch_count."""
        return [
            self.ground_truth_window(k) for k in range(1, self.epoch_count + 1)
        ]


def windowed_uniform_stream(
    universe_size: int,
    epochs: int,
    updates_per_epoch: int,
    distinct_per_epoch: Optional[int] = None,
    seed: Optional[int] = None,
    name: str = "windowed-uniform",
) -> WindowedWorkload:
    """Return a timestamped workload of ``epochs`` equal-sized epochs.

    Each epoch draws its items uniformly — over the whole universe, or
    over an epoch-local pool of ``distinct_per_epoch`` identifiers
    (deterministically derived from the epoch number) when a pool size
    is given, so consecutive windows genuinely differ and the windowed
    ground truth exercises the rollup.

    Args:
        universe_size: size of the identifier universe.
        epochs: number of epochs (time buckets).
        updates_per_epoch: updates drawn per epoch.
        distinct_per_epoch: optional per-epoch value-pool size.
        seed: RNG seed.
        name: label for reports.
    """
    _check_universe(universe_size)
    if epochs <= 0:
        raise ParameterError("epochs must be positive")
    if updates_per_epoch < 0:
        raise ParameterError("updates_per_epoch must be non-negative")
    if distinct_per_epoch is not None and distinct_per_epoch <= 0:
        raise ParameterError("distinct_per_epoch must be positive")
    if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
        raise ParameterError("windowed_uniform_stream requires numpy")
    rng = np.random.default_rng(seed)
    length = epochs * updates_per_epoch
    epoch_column = np.repeat(np.arange(epochs, dtype=np.int64), updates_per_epoch)
    if distinct_per_epoch is None:
        items = rng.integers(0, universe_size, size=length, dtype=np.uint64)
    else:
        draws = rng.integers(0, distinct_per_epoch, size=length, dtype=np.uint64)
        items = (
            epoch_column.astype(np.uint64) * np.uint64(distinct_per_epoch) + draws
        ) % np.uint64(universe_size)
    return WindowedWorkload(universe_size, epoch_column, items, name=name)


def duplicated_union_streams(
    universe_size: int,
    distinct: int,
    overlap_fraction: float,
    seed: Optional[int] = None,
) -> Sequence[MaterializedStream]:
    """Return two streams whose identifier sets overlap by a chosen fraction.

    Used by the merge/union tests and the query-optimizer example: the union
    of the two streams has ``distinct * (2 - overlap_fraction)`` distinct
    identifiers, and a pair of mergeable sketches must estimate that union
    without double-counting the overlap.

    Args:
        universe_size: size of the identifier universe.
        distinct: number of distinct identifiers in each stream.
        overlap_fraction: fraction (in [0, 1]) of identifiers shared.
        seed: RNG seed.

    Returns:
        A pair of insertion-only streams.
    """
    _check_universe(universe_size)
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ParameterError("overlap_fraction must lie in [0, 1]")
    shared = int(round(distinct * overlap_fraction))
    needed = 2 * distinct - shared
    if needed > universe_size:
        raise ParameterError("universe too small for the requested overlap structure")
    rng = random.Random(seed)
    identifiers = rng.sample(range(universe_size), needed)
    shared_ids = identifiers[:shared]
    first_only = identifiers[shared: shared + (distinct - shared)]
    second_only = identifiers[shared + (distinct - shared):]
    first_items = shared_ids + first_only
    second_items = shared_ids + second_only
    rng.shuffle(first_items)
    rng.shuffle(second_items)
    first = MaterializedStream(
        [Update(item, 1) for item in first_items], universe_size, name="union-left"
    )
    second = MaterializedStream(
        [Update(item, 1) for item in second_items], universe_size, name="union-right"
    )
    return (first, second)
