"""Turnstile (insert + delete) workload generators for L0 estimation.

The L0 algorithm of Section 4 operates on a frequency vector updated by
signed increments; its distinguishing feature over F0 is that items whose
frequency returns to zero must stop counting, and that positive and
negative frequencies may coexist (the paper notes its algorithm — unlike
Ganguly's — does not require ``x_i >= 0``).

Generators here produce streams with controllable final L0, deletion
fraction, and cancellation structure:

* ``insert_delete_stream`` — inserts ``distinct`` items then deletes a
  chosen fraction of them completely, so the final L0 is exact by design.
* ``fluctuating_stream`` — random signed updates with a drift toward a
  target support size; exercises mid-stream L0 shrinkage and growth.
* ``mixed_sign_stream`` — frequencies driven both positive and negative
  (the case Ganguly's algorithm cannot handle).
* ``paired_columns`` — two column-like streams whose Hamming distance is
  controlled; used by the data-cleaning application and its benchmark.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..exceptions import ParameterError
from .model import MaterializedStream, Update

__all__ = [
    "insert_delete_stream",
    "fluctuating_stream",
    "mixed_sign_stream",
    "paired_columns",
]


def insert_delete_stream(
    universe_size: int,
    distinct: int,
    delete_fraction: float = 0.5,
    copies: int = 1,
    seed: Optional[int] = None,
    name: str = "insert-delete",
) -> MaterializedStream:
    """Insert ``distinct`` items (each ``copies`` times), then fully delete a fraction.

    The surviving support has size ``distinct - round(distinct * delete_fraction)``,
    which is the stream's exact final L0.

    Args:
        universe_size: size of the identifier universe.
        distinct: number of identifiers inserted.
        delete_fraction: fraction of identifiers whose frequency is driven
            back to zero by matching deletions.
        copies: frequency given to each inserted identifier.
        seed: RNG seed.
        name: label for reports.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if not 0 <= distinct <= universe_size:
        raise ParameterError("distinct must lie in [0, universe_size]")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ParameterError("delete_fraction must lie in [0, 1]")
    if copies <= 0:
        raise ParameterError("copies must be positive")
    rng = random.Random(seed)
    identifiers = rng.sample(range(universe_size), distinct)
    updates: List[Update] = []
    for identifier in identifiers:
        updates.extend(Update(identifier, 1) for _ in range(copies))
    deleted = identifiers[: int(round(distinct * delete_fraction))]
    for identifier in deleted:
        updates.extend(Update(identifier, -1) for _ in range(copies))
    rng.shuffle(updates)
    # Shuffling can momentarily drive a frequency negative (a deletion seen
    # before its insertion), which is legal in the turnstile model and is
    # precisely the generality the KNW L0 algorithm supports.
    return MaterializedStream(updates, universe_size, name=name)


def fluctuating_stream(
    universe_size: int,
    length: int,
    target_support: int,
    max_magnitude: int = 3,
    seed: Optional[int] = None,
    name: str = "fluctuating",
) -> MaterializedStream:
    """Random signed updates drifting toward a target support size.

    Each step either touches an already-supported item (possibly cancelling
    it) or introduces a new one, with probabilities biased so the support
    hovers near ``target_support``.

    Args:
        universe_size: size of the identifier universe.
        length: number of updates.
        target_support: the support size the stream drifts toward.
        max_magnitude: updates are drawn from ``[-max_magnitude, max_magnitude] \\ {0}``.
        seed: RNG seed.
        name: label for reports.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if length < 0:
        raise ParameterError("length must be non-negative")
    if not 0 < target_support <= universe_size:
        raise ParameterError("target_support must lie in (0, universe_size]")
    if max_magnitude <= 0:
        raise ParameterError("max_magnitude must be positive")
    rng = random.Random(seed)
    frequencies = {}
    updates: List[Update] = []
    for _ in range(length):
        grow = len(frequencies) < target_support and rng.random() < 0.7
        if grow or not frequencies:
            item = rng.randrange(universe_size)
            delta = rng.randint(1, max_magnitude)
        else:
            item = rng.choice(list(frequencies))
            current = frequencies[item]
            if rng.random() < 0.4:
                delta = -current  # full cancellation
            else:
                delta = rng.choice(
                    [d for d in range(-max_magnitude, max_magnitude + 1) if d not in (0, -current)]
                )
        updates.append(Update(item, delta))
        new_value = frequencies.get(item, 0) + delta
        if new_value == 0:
            frequencies.pop(item, None)
        else:
            frequencies[item] = new_value
    return MaterializedStream(updates, universe_size, name=name)


def mixed_sign_stream(
    universe_size: int,
    positive_items: int,
    negative_items: int,
    magnitude: int = 2,
    seed: Optional[int] = None,
    name: str = "mixed-sign",
) -> MaterializedStream:
    """A stream whose final frequencies include both positive and negative values.

    The final L0 is exactly ``positive_items + negative_items``.  Ganguly's
    algorithm requires all frequencies to be non-negative; the KNW L0
    algorithm does not, and this workload is what demonstrates that.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if positive_items < 0 or negative_items < 0:
        raise ParameterError("item counts must be non-negative")
    if positive_items + negative_items > universe_size:
        raise ParameterError("universe too small for the requested support")
    if magnitude <= 0:
        raise ParameterError("magnitude must be positive")
    rng = random.Random(seed)
    identifiers = rng.sample(range(universe_size), positive_items + negative_items)
    updates: List[Update] = []
    for identifier in identifiers[:positive_items]:
        updates.append(Update(identifier, magnitude))
    for identifier in identifiers[positive_items:]:
        updates.append(Update(identifier, -magnitude))
    rng.shuffle(updates)
    return MaterializedStream(updates, universe_size, name=name)


def paired_columns(
    universe_size: int,
    rows: int,
    differing_rows: int,
    seed: Optional[int] = None,
) -> Tuple[MaterializedStream, MaterializedStream, MaterializedStream]:
    """Two database columns plus their difference stream.

    Models the data-cleaning application from the paper's introduction
    (Cormode et al.: "how many row positions differ between two columns?").
    Column values are drawn from the universe; ``differing_rows`` positions
    get different values in the two columns, the rest agree.  The returned
    difference stream applies ``+1`` for every value of column A and ``-1``
    for every value of column B keyed by *value* (multiset difference), so
    its L0 counts values whose multiplicities differ — the Hamming-norm
    formulation used for similar-column discovery.

    Returns:
        ``(column_a, column_b, difference)`` streams.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if rows <= 0:
        raise ParameterError("rows must be positive")
    if not 0 <= differing_rows <= rows:
        raise ParameterError("differing_rows must lie in [0, rows]")
    rng = random.Random(seed)
    column_a_values = [rng.randrange(universe_size) for _ in range(rows)]
    column_b_values = list(column_a_values)
    differing_positions = rng.sample(range(rows), differing_rows)
    for position in differing_positions:
        new_value = rng.randrange(universe_size)
        while new_value == column_a_values[position]:
            new_value = rng.randrange(universe_size)
        column_b_values[position] = new_value
    column_a = MaterializedStream(
        [Update(value, 1) for value in column_a_values], universe_size, name="column-a"
    )
    column_b = MaterializedStream(
        [Update(value, 1) for value in column_b_values], universe_size, name="column-b"
    )
    difference_updates = [Update(value, 1) for value in column_a_values]
    difference_updates += [Update(value, -1) for value in column_b_values]
    difference = MaterializedStream(difference_updates, universe_size, name="column-difference")
    return (column_a, column_b, difference)
