"""Workload zoo: adversarial and realistic stream classes with exact truth.

Every sweep before this module fed uniform or near-uniform synthetic
streams, which is precisely the input the KNW10 guarantees do *not* need:
the paper's bounds are worst-case over adversarially chosen streams, so
the reproduction-level test is a suite of workloads an adversary (or a
production F0 service) would actually produce.  The zoo defines five
classes, each available in the three input shapes the library ingests —
a :class:`~repro.streams.model.MaterializedStream` (scalar / batch /
sharded paths), a :class:`~repro.streams.generators.KeyedWorkload` (the
grouped sketch-store path), and a
:class:`~repro.streams.generators.WindowedWorkload` (the sliding-window
path) — and each stresses a specific subsystem:

========== ==================================================================
class      stressed code path
========== ==================================================================
skew       Zipf/power-law key and item repetition: the sort/group scatter of
           ``SketchArray.update_grouped`` sees a few giant groups, and hot
           keys dominate ``SketchStore`` row traffic.
churn      insert-then-delete turnstile waves: L0 sketches driven near zero
           repeatedly (counter cancellation, ``SmallL0Recovery`` sparse/dense
           transitions), per-key and per-epoch deletions included.
bursty     timestamped bursts separated by long silent gaps: the
           ``repro/window`` epoch ring must close runs of empty epochs and
           keep rollups exact across them.
cold-keys  key-space growth over time: a stream of mostly-never-seen-before
           keys makes ``SketchStore`` grow through many geometric
           over-allocation steps (the millions-of-cold-keys regime, scaled).
adversarial identifiers with planted arithmetic structure (shared low bits,
           power-of-two strides, dense blocks, bit-reversed counters)
           probing the Mersenne/Barrett k-wise hash kernels — the
           BJKST-style lowest-bits stress case, generalized.
========== ==================================================================

Every generator takes an explicit ``seed`` and is deterministic in it;
:func:`workload_fingerprint` serializes a workload's update arrays through
:mod:`repro.serialize` so byte-identical reproducibility is testable.
Ground truth is always exact, computed from the materialized updates
(``ground_truth`` / per-key / per-window), never assumed.

The classes are reachable by name from :mod:`repro.analysis.sweeps`
(pass a class name wherever a stream/workload factory is accepted, or
call :func:`repro.analysis.sweeps.workload_class_grid` for the whole
error-vs-space grid per class).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from ..exceptions import ParameterError
from ..hashing.bitops import reverse_bits
from ..vectorize import HAS_NUMPY, np, require_numpy
from .generators import KeyedWorkload, WindowedWorkload
from .model import MaterializedStream, Update

__all__ = [
    "WorkloadScale",
    "DEFAULT_SCALE",
    "SMOKE_SCALE",
    "scale_from_env",
    "zipf_rank_probabilities",
    "skewed_stream",
    "skewed_keyed_workload",
    "skewed_windowed_workload",
    "churn_stream",
    "churn_keyed_workload",
    "churn_windowed_workload",
    "bursty_stream",
    "bursty_keyed_workload",
    "bursty_windowed_workload",
    "cold_key_stream",
    "cold_key_workload",
    "cold_key_windowed_workload",
    "near_collision_stream",
    "near_collision_keyed_workload",
    "near_collision_windowed_workload",
    "NEAR_COLLISION_MODES",
    "WorkloadClass",
    "workload_class",
    "workload_class_names",
    "make_workload",
    "workload_fingerprint",
]


# ---------------------------------------------------------------------------
# Scale vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadScale:
    """Shared size knobs every zoo class maps onto its own parameters.

    Attributes:
        universe_size: identifier universe ``n`` (items live in ``[0, n)``).
        length: total update count for the stream/keyed shapes.
        key_count: distinct entity keys for the keyed shapes.
        epochs: busy-epoch count for the windowed shapes (gappy classes
            spread these over a longer epoch axis).
        updates_per_epoch: updates per busy epoch.
    """

    universe_size: int = 1 << 16
    length: int = 20_000
    key_count: int = 256
    epochs: int = 12
    updates_per_epoch: int = 1_500

    def __post_init__(self) -> None:
        if self.universe_size <= 0:
            raise ParameterError("universe_size must be positive")
        if self.length < 0 or self.updates_per_epoch < 0:
            raise ParameterError("workload lengths must be non-negative")
        if self.key_count <= 0 or self.epochs <= 0:
            raise ParameterError("key_count and epochs must be positive")


#: The scale the sweeps and README grid run at.
DEFAULT_SCALE = WorkloadScale()

#: A CI-smoke scale: every class still exercises its target code path
#: (multiple store grow steps, multiple epoch gaps, several churn waves)
#: in well under a second per workload.
SMOKE_SCALE = WorkloadScale(
    universe_size=1 << 12,
    length=2_000,
    key_count=48,
    epochs=6,
    updates_per_epoch=250,
)


def scale_from_env(
    default: WorkloadScale = SMOKE_SCALE, prefix: str = "WORKLOAD"
) -> WorkloadScale:
    """Build a :class:`WorkloadScale` from ``<prefix>_*`` environment knobs.

    Recognised variables (all optional): ``<prefix>_UNIVERSE``,
    ``<prefix>_LENGTH``, ``<prefix>_KEYS``, ``<prefix>_EPOCHS``,
    ``<prefix>_EPOCH_UPDATES``.  This is how CI smoke steps and local
    full-scale runs drive the same suite at different sizes.
    """
    overrides = {}
    for attr, suffix in (
        ("universe_size", "UNIVERSE"),
        ("length", "LENGTH"),
        ("key_count", "KEYS"),
        ("epochs", "EPOCHS"),
        ("updates_per_epoch", "EPOCH_UPDATES"),
    ):
        raw = os.environ.get("%s_%s" % (prefix, suffix))
        if raw is not None:
            overrides[attr] = int(raw)
    return replace(default, **overrides) if overrides else default


def _require_scale(scale: Optional[WorkloadScale]) -> WorkloadScale:
    if scale is None:
        return DEFAULT_SCALE
    if not isinstance(scale, WorkloadScale):
        raise ParameterError("scale must be a WorkloadScale")
    return scale


def _stream_from_arrays(items, deltas, universe_size: int, name: str) -> MaterializedStream:
    if deltas is None:
        updates = [Update(int(item), 1) for item in items]
    else:
        updates = [
            Update(int(item), int(delta)) for item, delta in zip(items, deltas)
        ]
    return MaterializedStream(updates, universe_size, name=name)


# ---------------------------------------------------------------------------
# Skew: Zipf/power-law repetition on items and keys
# ---------------------------------------------------------------------------


def zipf_rank_probabilities(support: int, skew: float) -> List[float]:
    """Return the normalised Zipf(``skew``) probabilities of ranks ``0..support-1``.

    The rank-``r`` mass is proportional to ``(r + 1) ** -skew``.  Unlike
    :func:`repro.streams.generators.zipf_stream` this accepts ``skew == 0``
    (the exact uniform limit) so the edge behaviour is testable: at
    ``skew = 0`` every rank has probability ``1 / support``, and as
    ``skew`` grows the mass concentrates on rank 0 (the single-key
    limit — at ``skew >= ~1100`` the rank-1 weight underflows to zero in
    IEEE-754 and the distribution is *exactly* degenerate).
    """
    if support <= 0:
        raise ParameterError("support must be positive")
    if skew < 0:
        raise ParameterError("skew must be non-negative")
    weights = [float(rank + 1) ** -skew for rank in range(support)]
    total = sum(weights)
    return [weight / total for weight in weights]


def _zipf_draws(rng, support: int, skew: float, size: int):
    """Vectorized Zipf rank draws (``size`` ranks in ``[0, support)``)."""
    cumulative = np.cumsum(np.asarray(zipf_rank_probabilities(support, skew)))
    cumulative[-1] = 1.0  # guard the float tail so searchsorted stays in range
    return np.searchsorted(cumulative, rng.random(size), side="right").astype(
        np.int64
    )


def skewed_stream(
    universe_size: int,
    length: int,
    skew: float = 1.2,
    support: Optional[int] = None,
    seed: Optional[int] = None,
    name: str = "zoo-skew",
) -> MaterializedStream:
    """A power-law item stream: rank-``r`` identifier drawn with mass ``r^-skew``.

    Ranks map to a seed-deterministic permutation of identifiers so the
    heavy hitters carry no special bit structure (the adversarial class
    covers that separately).  The vectorized counterpart of
    :func:`repro.streams.generators.zipf_stream`, accepting ``skew >= 0``.
    """
    require_numpy("workload zoo generators")
    if length < 0:
        raise ParameterError("length must be non-negative")
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if support is None:
        support = min(universe_size, max(length, 1))
    if not 0 < support <= universe_size:
        raise ParameterError("support must lie in (0, universe_size]")
    rng = np.random.default_rng(seed)
    identifiers = rng.permutation(universe_size)[:support].astype(np.uint64)
    items = identifiers[_zipf_draws(rng, support, skew, length)]
    return _stream_from_arrays(items, None, universe_size, name)


def skewed_keyed_workload(
    scale: Optional[WorkloadScale] = None,
    key_skew: float = 1.3,
    item_skew: float = 1.05,
    seed: Optional[int] = None,
    name: str = "zoo-skew-keyed",
) -> KeyedWorkload:
    """Zipfian keys *and* items: a few giant per-key groups, many tiny ones.

    This is the shape that stresses the grouped-ingest sort/group
    scatter: ``np.unique`` over the key batch sees a handful of keys
    covering most updates, and the per-row update counts span orders of
    magnitude.
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    rng = np.random.default_rng(seed)
    key_ranks = _zipf_draws(rng, scale.key_count, key_skew, scale.length)
    keys = rng.permutation(scale.key_count)[key_ranks].astype(np.int64)
    item_support = min(scale.universe_size, max(scale.length, 1))
    item_ranks = _zipf_draws(rng, item_support, item_skew, scale.length)
    items = (
        rng.permutation(scale.universe_size)[:item_support]
        .astype(np.uint64)[item_ranks]
    )
    return KeyedWorkload(scale.universe_size, keys, items, name=name)


def skewed_windowed_workload(
    scale: Optional[WorkloadScale] = None,
    skew: float = 1.2,
    seed: Optional[int] = None,
    name: str = "zoo-skew-windowed",
) -> WindowedWorkload:
    """Per-epoch Zipf draws over one shared support: hot items recur forever.

    Consecutive windows overlap heavily in their heavy hitters, so the
    window rollup must deduplicate the same hot identifiers across every
    epoch it merges.
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    rng = np.random.default_rng(seed)
    length = scale.epochs * scale.updates_per_epoch
    support = min(scale.universe_size, max(length, 1))
    identifiers = rng.permutation(scale.universe_size)[:support].astype(np.uint64)
    items = identifiers[_zipf_draws(rng, support, skew, length)]
    epochs = np.repeat(
        np.arange(scale.epochs, dtype=np.int64), scale.updates_per_epoch
    )
    return WindowedWorkload(scale.universe_size, epochs, items, name=name)


# ---------------------------------------------------------------------------
# Churn: turnstile insert-then-delete waves driving L0 near zero
# ---------------------------------------------------------------------------


def churn_stream(
    universe_size: int,
    distinct: int,
    waves: int = 3,
    survivor_fraction: float = 0.05,
    copies: int = 1,
    seed: Optional[int] = None,
    name: str = "zoo-churn",
) -> MaterializedStream:
    """Turnstile waves: each wave inserts ``distinct`` fresh items, then
    deletes all but a ``survivor_fraction`` of them.

    Mid-stream, L0 repeatedly climbs to ``distinct`` and collapses to the
    survivor count — the regime where an L0 sketch's counters cancel back
    toward zero (and where estimators that only ever grow are exposed).
    The final exact L0 is ``waves * round(distinct * survivor_fraction)``
    because waves use disjoint identifier pools.

    Args:
        universe_size: identifier universe; must hold ``waves * distinct``
            disjoint identifiers.
        distinct: identifiers inserted per wave.
        waves: number of insert-then-delete waves.
        survivor_fraction: fraction of each wave's identifiers left alive.
        copies: multiplicity given to each inserted identifier (deletions
            match it, so cancellation is exact).
        seed: RNG seed.
        name: label for reports.
    """
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if distinct < 0:
        raise ParameterError("distinct must be non-negative")
    if waves <= 0:
        raise ParameterError("waves must be positive")
    if not 0.0 <= survivor_fraction <= 1.0:
        raise ParameterError("survivor_fraction must lie in [0, 1]")
    if copies <= 0:
        raise ParameterError("copies must be positive")
    if waves * distinct > universe_size:
        raise ParameterError("universe too small for disjoint churn waves")
    rng = random.Random(seed)
    pool = rng.sample(range(universe_size), waves * distinct)
    updates: List[Update] = []
    survivors = int(round(distinct * survivor_fraction))
    for wave in range(waves):
        wave_ids = pool[wave * distinct : (wave + 1) * distinct]
        inserts = [
            Update(identifier, 1)
            for identifier in wave_ids
            for _ in range(copies)
        ]
        rng.shuffle(inserts)
        updates.extend(inserts)
        doomed = wave_ids[survivors:]
        deletes = [
            Update(identifier, -1) for identifier in doomed for _ in range(copies)
        ]
        rng.shuffle(deletes)
        updates.extend(deletes)
    return MaterializedStream(updates, universe_size, name=name)


def churn_keyed_workload(
    scale: Optional[WorkloadScale] = None,
    survivor_fraction: float = 0.1,
    seed: Optional[int] = None,
    name: str = "zoo-churn-keyed",
) -> KeyedWorkload:
    """Per-key insert-then-delete churn (a turnstile keyed workload).

    Every key receives its own pool of identifiers, all inserted and then
    mostly deleted, with the update order shuffled across keys so the
    grouped turnstile scatter sees interleaved signed updates.  Ground
    truth is the exact per-key support size after cancellation.
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    per_key = max(scale.length // (2 * scale.key_count), 1)
    rng = np.random.default_rng(seed)
    keys: List = []
    items: List = []
    deltas: List = []
    survivors = int(round(per_key * survivor_fraction))
    for key in range(scale.key_count):
        pool = rng.choice(scale.universe_size, size=per_key, replace=False)
        keys.extend([key] * per_key)
        items.extend(pool.tolist())
        deltas.extend([1] * per_key)
        doomed = pool[survivors:]
        keys.extend([key] * len(doomed))
        items.extend(doomed.tolist())
        deltas.extend([-1] * len(doomed))
    order = rng.permutation(len(items))
    return KeyedWorkload(
        scale.universe_size,
        np.asarray(keys, dtype=np.int64)[order],
        np.asarray(items, dtype=np.uint64)[order],
        deltas=np.asarray(deltas, dtype=np.int64)[order],
        name=name,
    )


def churn_windowed_workload(
    scale: Optional[WorkloadScale] = None,
    survivor_fraction: float = 0.1,
    seed: Optional[int] = None,
    name: str = "zoo-churn-windowed",
) -> WindowedWorkload:
    """Timestamped churn: epoch ``e`` inserts a fresh pool, epoch ``e + 1``
    deletes most of it.

    A window covering both epochs sees the cancelled support; a window
    covering only the deletion epoch sees pure negative frequencies
    (legal in the turnstile model — exactly the generality the KNW L0
    sketch supports and Ganguly-style non-negative schemes do not).
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    rng = np.random.default_rng(seed)
    per_epoch = max(scale.updates_per_epoch // 2, 1)
    survivors = int(round(per_epoch * survivor_fraction))
    epoch_column: List[int] = []
    items: List[int] = []
    deltas: List[int] = []
    previous_doomed = None
    for epoch in range(scale.epochs):
        pool = rng.choice(scale.universe_size, size=per_epoch, replace=False)
        epoch_updates = pool.tolist()
        epoch_deltas = [1] * per_epoch
        if previous_doomed is not None:
            epoch_updates.extend(previous_doomed.tolist())
            epoch_deltas.extend([-1] * len(previous_doomed))
        order = rng.permutation(len(epoch_updates))
        items.extend(np.asarray(epoch_updates, dtype=np.int64)[order].tolist())
        deltas.extend(np.asarray(epoch_deltas, dtype=np.int64)[order].tolist())
        epoch_column.extend([epoch] * len(epoch_updates))
        previous_doomed = pool[survivors:]
    return WindowedWorkload(
        scale.universe_size,
        np.asarray(epoch_column, dtype=np.int64),
        np.asarray(items, dtype=np.uint64),
        deltas=np.asarray(deltas, dtype=np.int64),
        name=name,
    )


# ---------------------------------------------------------------------------
# Bursty: timestamped bursts with long silent gaps
# ---------------------------------------------------------------------------


def bursty_stream(
    universe_size: int,
    length: int,
    bursts: int = 6,
    burst_support: Optional[int] = None,
    seed: Optional[int] = None,
    name: str = "zoo-bursty",
) -> MaterializedStream:
    """Bursts of heavy repetition over small per-burst pools.

    Each burst hammers its own small identifier pool (mostly-disjoint
    across bursts), so F0 grows in steps: flat within a burst, jumping
    between bursts — the profile RoughEstimator's "correct at all times"
    guarantee must track.
    """
    require_numpy("workload zoo generators")
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if length < 0:
        raise ParameterError("length must be non-negative")
    if bursts <= 0:
        raise ParameterError("bursts must be positive")
    rng = np.random.default_rng(seed)
    per_burst = max(length // bursts, 1) if length else 0
    if burst_support is None:
        burst_support = max(min(per_burst // 8, universe_size // max(bursts, 1)), 1)
    items: List[int] = []
    produced = 0
    for burst in range(bursts):
        remaining = length - produced
        if remaining <= 0:
            break
        count = per_burst if burst < bursts - 1 else remaining
        pool = rng.choice(universe_size, size=burst_support, replace=False)
        items.extend(pool[rng.integers(0, burst_support, size=count)].tolist())
        produced += count
    return _stream_from_arrays(
        np.asarray(items, dtype=np.uint64), None, universe_size, name
    )


def bursty_keyed_workload(
    scale: Optional[WorkloadScale] = None,
    seed: Optional[int] = None,
    name: str = "zoo-bursty-keyed",
) -> KeyedWorkload:
    """One key active at a time: all of a burst's updates hit one entity.

    The grouped path degenerates to single-row scatters per batch — the
    opposite extreme from the skew class's many-group batches.
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    rng = np.random.default_rng(seed)
    per_key = max(scale.length // scale.key_count, 1)
    keys: List[int] = []
    items: List[int] = []
    active = rng.permutation(scale.key_count)
    for key in active.tolist():
        pool_size = max(per_key // 4, 1)
        pool = rng.integers(0, scale.universe_size, size=pool_size, dtype=np.uint64)
        keys.extend([key] * per_key)
        items.extend(pool[rng.integers(0, pool_size, size=per_key)].tolist())
    return KeyedWorkload(
        scale.universe_size,
        np.asarray(keys, dtype=np.int64),
        np.asarray(items, dtype=np.uint64),
        name=name,
    )


def bursty_windowed_workload(
    scale: Optional[WorkloadScale] = None,
    gap_epochs: int = 7,
    burst_epochs: int = 2,
    seed: Optional[int] = None,
    name: str = "zoo-bursty-windowed",
) -> WindowedWorkload:
    """Bursts of busy epochs separated by long runs of silent epochs.

    The epoch column jumps by ``gap_epochs`` between bursts, so the
    window ring must close every intervening epoch as empty
    (:meth:`~repro.window.windowed._EpochRing.advance_epoch`'s gap
    closing) and window queries spanning a gap must roll up across the
    empty epochs without drift.
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    if gap_epochs < 1 or burst_epochs < 1:
        raise ParameterError("gap_epochs and burst_epochs must be positive")
    rng = np.random.default_rng(seed)
    bursts = max(scale.epochs // burst_epochs, 1)
    epoch_column: List[int] = []
    items: List[int] = []
    epoch_cursor = 0
    for burst in range(bursts):
        pool_size = max(scale.updates_per_epoch // 4, 1)
        pool = rng.integers(0, scale.universe_size, size=pool_size, dtype=np.uint64)
        for _ in range(burst_epochs):
            draws = pool[
                rng.integers(0, pool_size, size=scale.updates_per_epoch)
            ]
            items.extend(draws.tolist())
            epoch_column.extend([epoch_cursor] * scale.updates_per_epoch)
            epoch_cursor += 1
        epoch_cursor += gap_epochs  # the silent gap: no updates at all
    return WindowedWorkload(
        scale.universe_size,
        np.asarray(epoch_column, dtype=np.int64),
        np.asarray(items, dtype=np.uint64),
        name=name,
    )


# ---------------------------------------------------------------------------
# Cold keys: key-space growth over time
# ---------------------------------------------------------------------------


def _growth_sequence(rng, total: int, fresh: int):
    """Return ``total`` draws where exactly ``fresh`` positions introduce a
    new sequential id and the rest revisit a uniformly random earlier id.

    The vectorized core of the cold-key generators: position 0 is always
    fresh, fresh positions are a seed-deterministic subset, and revisit
    positions draw uniformly from the ids introduced so far.
    """
    if not 1 <= fresh <= total:
        raise ParameterError("fresh must lie in [1, total]")
    revisit = np.zeros(total, dtype=bool)
    if total > 1:
        chosen = rng.choice(total - 1, size=total - fresh, replace=False) + 1
        revisit[chosen] = True
    introduced = np.cumsum(~revisit)  # ids introduced up to and including i
    values = introduced - 1  # fresh position i introduces id introduced[i]-1
    revisit_positions = np.flatnonzero(revisit)
    if len(revisit_positions):
        values = values.copy()
        values[revisit_positions] = (
            rng.random(len(revisit_positions)) * introduced[revisit_positions]
        ).astype(np.int64)
    return values.astype(np.int64)


def cold_key_stream(
    universe_size: int,
    length: int,
    distinct: Optional[int] = None,
    seed: Optional[int] = None,
    name: str = "zoo-cold",
) -> MaterializedStream:
    """F0 grows steadily for the whole stream: most items are new.

    ``distinct`` of the ``length`` updates introduce a never-seen
    identifier (default 3/4 of them); the rest revisit a uniform earlier
    one.  Sequential introduction ids map through a seed-deterministic
    permutation, so identifiers themselves carry no counter structure.
    """
    require_numpy("workload zoo generators")
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if length <= 0:
        raise ParameterError("cold_key_stream needs a positive length")
    if distinct is None:
        distinct = max((3 * length) // 4, 1)
    if not 1 <= distinct <= min(length, universe_size):
        raise ParameterError("distinct must lie in [1, min(length, universe_size)]")
    rng = np.random.default_rng(seed)
    sequence = _growth_sequence(rng, length, distinct)
    identifiers = rng.permutation(universe_size)[:distinct].astype(np.uint64)
    return _stream_from_arrays(identifiers[sequence], None, universe_size, name)


def cold_key_workload(
    scale: Optional[WorkloadScale] = None,
    revisit_fraction: float = 0.25,
    seed: Optional[int] = None,
    name: str = "zoo-cold-keyed",
) -> KeyedWorkload:
    """Key space that grows for the whole workload: mostly cold keys.

    Keys are introduced in increasing order over time (a fraction of
    updates revisit warm keys), so an incrementally fed
    :class:`~repro.store.store.SketchStore` grows through many
    geometric over-allocation steps rather than one up-front
    registration — the scaled-down millions-of-cold-keys regime.
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    if not 0.0 <= revisit_fraction < 1.0:
        raise ParameterError("revisit_fraction must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    length = max(scale.length, scale.key_count)
    keys = _growth_sequence(rng, length, scale.key_count)
    items = rng.integers(0, scale.universe_size, size=length, dtype=np.uint64)
    return KeyedWorkload(scale.universe_size, keys, items, name=name)


def cold_key_windowed_workload(
    scale: Optional[WorkloadScale] = None,
    seed: Optional[int] = None,
    name: str = "zoo-cold-windowed",
) -> WindowedWorkload:
    """Each epoch introduces a mostly-fresh identifier pool.

    Windows of increasing width therefore have near-linearly growing
    exact distinct counts — the window rollup must track growth rather
    than re-count a stable population.
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    rng = np.random.default_rng(seed)
    length = scale.epochs * scale.updates_per_epoch
    distinct = min(max((3 * length) // 4, 1), scale.universe_size, max(length, 1))
    sequence = _growth_sequence(rng, length, distinct)
    identifiers = rng.permutation(scale.universe_size)[:distinct].astype(np.uint64)
    epochs = np.repeat(
        np.arange(scale.epochs, dtype=np.int64), scale.updates_per_epoch
    )
    return WindowedWorkload(
        scale.universe_size, epochs, identifiers[sequence], name=name
    )


# ---------------------------------------------------------------------------
# Adversarial: planted arithmetic structure probing the hash kernels
# ---------------------------------------------------------------------------

#: Supported near-collision modes (see :func:`near_collision_stream`).
NEAR_COLLISION_MODES = ("bit-reversed", "shared-lowbits", "stride", "dense")


def _near_collision_items(
    universe_size: int, distinct: int, mode: str, cluster_bits: int
) -> List[int]:
    if universe_size <= 0:
        raise ParameterError("universe_size must be positive")
    if not 0 <= distinct <= universe_size:
        raise ParameterError("distinct must lie in [0, universe_size]")
    if cluster_bits < 0:
        raise ParameterError("cluster_bits must be non-negative")
    if mode == "bit-reversed":
        # Generalizes low_bits_adversarial_stream to non-power-of-two
        # universes: reverse counters in the universe's bit width and skip
        # reversals that land outside the universe.
        width = max((universe_size - 1).bit_length(), 1)
        items: List[int] = []
        counter = 0
        while len(items) < distinct:
            if counter >= (1 << width):  # pragma: no cover - defensive
                raise ParameterError("universe exhausted before distinct reached")
            value = reverse_bits(counter, width)
            if value < universe_size:
                items.append(value)
            counter += 1
        return items
    if mode == "shared-lowbits":
        # Every identifier shares the same low cluster_bits bits: lsb of the
        # raw identifier is constant, and polynomial hashes see inputs in
        # one arithmetic progression of gap 2^cluster_bits.
        gap = 1 << cluster_bits
        pattern = gap - 1 if cluster_bits else 0
        if pattern >= universe_size or distinct > (universe_size - 1 - pattern) // max(gap, 1) + 1:
            raise ParameterError(
                "universe too small for %d shared-lowbits identifiers" % distinct
            )
        return [pattern + index * gap for index in range(distinct)]
    if mode == "stride":
        # A maximal-stride arithmetic progression: identifiers differ only
        # in their top bits, the worst case for families that mix low bits
        # weakly (Barrett/Mersenne residues see structured differences).
        stride = max(universe_size // max(distinct, 1), 1)
        if distinct and (distinct - 1) * stride >= universe_size:
            raise ParameterError("universe too small for the stride progression")
        return [index * stride for index in range(distinct)]
    if mode == "dense":
        # A contiguous block at the top of the universe: maximal shared
        # high bits, every hash input numerically adjacent.
        base = universe_size - distinct
        return [base + index for index in range(distinct)]
    raise ParameterError(
        "unknown near-collision mode %r (known: %s)"
        % (mode, ", ".join(NEAR_COLLISION_MODES))
    )


def near_collision_stream(
    universe_size: int,
    distinct: int,
    mode: str = "shared-lowbits",
    cluster_bits: int = 12,
    repetitions: int = 1,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> MaterializedStream:
    """Identifiers with planted arithmetic structure, each appearing once
    (or ``repetitions`` times), in seed-shuffled order.

    Generalizes
    :func:`repro.streams.generators.low_bits_adversarial_stream`: the
    BJKST-style lowest-bits input is one mode among four, each probing a
    different weakness class of the k-wise hash kernels:

    * ``"bit-reversed"`` — low bits change as slowly as a counter's high
      bits (fools raw-identifier subsampling; works for any universe).
    * ``"shared-lowbits"`` — all identifiers share their low
      ``cluster_bits`` bits (constant raw lsb; inputs form one arithmetic
      progression of gap ``2**cluster_bits``).
    * ``"stride"`` — maximal-stride progression (identifiers differ only
      in top bits).
    * ``"dense"`` — one contiguous block of identifiers (maximal shared
      high bits).

    The KNW estimators hash before subsampling, so their accuracy must be
    unaffected by every mode — which is exactly what the workload-grid
    tests assert.
    """
    items = _near_collision_items(universe_size, distinct, mode, cluster_bits)
    if repetitions <= 0:
        raise ParameterError("repetitions must be positive")
    if repetitions > 1:
        items = [item for item in items for _ in range(repetitions)]
    rng = random.Random(seed)
    rng.shuffle(items)
    return MaterializedStream(
        [Update(item, 1) for item in items],
        universe_size,
        name=name or ("zoo-adversarial-%s" % mode),
    )


def near_collision_keyed_workload(
    scale: Optional[WorkloadScale] = None,
    mode: str = "shared-lowbits",
    cluster_bits: int = 6,
    seed: Optional[int] = None,
    name: str = "zoo-adversarial-keyed",
) -> KeyedWorkload:
    """Adversarial identifiers fanned out over strided keys.

    Keys form their own arithmetic progression (stressing the grouped
    path's sort over structured key values); each update's item comes
    from one shared near-collision identifier set.
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    distinct = min(
        max(scale.length // 2, 1),
        scale.universe_size // max(1 << cluster_bits, 1) or 1,
    )
    base_items = np.asarray(
        _near_collision_items(scale.universe_size, distinct, mode, cluster_bits),
        dtype=np.uint64,
    )
    rng = np.random.default_rng(seed)
    key_stride = max((1 << 62) // max(scale.key_count, 1), 1)
    key_values = np.arange(scale.key_count, dtype=np.int64) * key_stride
    keys = key_values[rng.integers(0, scale.key_count, size=scale.length)]
    items = base_items[rng.integers(0, len(base_items), size=scale.length)]
    return KeyedWorkload(scale.universe_size, keys, items, name=name)


def near_collision_windowed_workload(
    scale: Optional[WorkloadScale] = None,
    mode: str = "shared-lowbits",
    cluster_bits: int = 6,
    seed: Optional[int] = None,
    name: str = "zoo-adversarial-windowed",
) -> WindowedWorkload:
    """Per-epoch slices of one near-collision progression.

    Epoch ``e`` draws from a sliding slice of the structured identifier
    set, so consecutive windows share most of their (structured) support.
    """
    require_numpy("workload zoo generators")
    scale = _require_scale(scale)
    length = scale.epochs * scale.updates_per_epoch
    distinct = min(
        max(length // 2, 1),
        scale.universe_size // max(1 << cluster_bits, 1) or 1,
    )
    base_items = np.asarray(
        _near_collision_items(scale.universe_size, distinct, mode, cluster_bits),
        dtype=np.uint64,
    )
    rng = np.random.default_rng(seed)
    per_epoch_support = max(len(base_items) // max(scale.epochs, 1), 1)
    epoch_column: List[int] = []
    items: List[int] = []
    for epoch in range(scale.epochs):
        start = (epoch * per_epoch_support // 2) % len(base_items)
        window = np.take(
            base_items,
            np.arange(start, start + per_epoch_support) % len(base_items),
        )
        draws = window[
            rng.integers(0, len(window), size=scale.updates_per_epoch)
        ]
        items.extend(draws.tolist())
        epoch_column.extend([epoch] * scale.updates_per_epoch)
    return WindowedWorkload(
        scale.universe_size,
        np.asarray(epoch_column, dtype=np.int64),
        np.asarray(items, dtype=np.uint64),
        name=name,
    )


# ---------------------------------------------------------------------------
# The class registry: five named classes, three shapes each
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadClass:
    """One named zoo class: three input shapes plus metadata.

    Attributes:
        name: the registry key (``skew``, ``churn``, ...).
        description: one-line description for tables and docs.
        stresses: the code path this class exists to exercise.
        turnstile: True when the class's streams carry signed deltas
            (score it with L0 estimators; F0 sweeps reject it).
    """

    name: str
    description: str
    stresses: str
    turnstile: bool
    _stream: Callable = field(repr=False)
    _keyed: Callable = field(repr=False)
    _windowed: Callable = field(repr=False)

    def stream(
        self, seed: Optional[int] = None, scale: Optional[WorkloadScale] = None
    ) -> MaterializedStream:
        """Build the class's :class:`MaterializedStream` shape."""
        return self._stream(seed, _require_scale(scale))

    def keyed(
        self, seed: Optional[int] = None, scale: Optional[WorkloadScale] = None
    ) -> KeyedWorkload:
        """Build the class's :class:`KeyedWorkload` shape."""
        return self._keyed(seed, _require_scale(scale))

    def windowed(
        self, seed: Optional[int] = None, scale: Optional[WorkloadScale] = None
    ) -> WindowedWorkload:
        """Build the class's :class:`WindowedWorkload` shape."""
        return self._windowed(seed, _require_scale(scale))


_WORKLOAD_CLASSES: Dict[str, WorkloadClass] = {}


def _register(cls: WorkloadClass) -> None:
    _WORKLOAD_CLASSES[cls.name] = cls


_register(
    WorkloadClass(
        name="skew",
        description="Zipf/power-law key and item repetition",
        stresses="update_grouped sort/group scatter; SketchStore hot rows",
        turnstile=False,
        _stream=lambda seed, scale: skewed_stream(
            scale.universe_size, scale.length, seed=seed
        ),
        _keyed=lambda seed, scale: skewed_keyed_workload(scale, seed=seed),
        _windowed=lambda seed, scale: skewed_windowed_workload(scale, seed=seed),
    )
)

_register(
    WorkloadClass(
        name="churn",
        description="turnstile insert-then-delete waves (L0 near zero)",
        stresses="L0 counter cancellation; sparse/dense recovery transitions",
        turnstile=True,
        _stream=lambda seed, scale: churn_stream(
            scale.universe_size,
            max(min(scale.length // 8, scale.universe_size // 4), 1),
            waves=3,
            seed=seed,
        ),
        _keyed=lambda seed, scale: churn_keyed_workload(scale, seed=seed),
        _windowed=lambda seed, scale: churn_windowed_workload(scale, seed=seed),
    )
)

_register(
    WorkloadClass(
        name="bursty",
        description="bursty arrivals with long silent gaps",
        stresses="window ring gap closing; stepwise F0 growth",
        turnstile=False,
        _stream=lambda seed, scale: bursty_stream(
            scale.universe_size, scale.length, seed=seed
        ),
        _keyed=lambda seed, scale: bursty_keyed_workload(scale, seed=seed),
        _windowed=lambda seed, scale: bursty_windowed_workload(scale, seed=seed),
    )
)

_register(
    WorkloadClass(
        name="cold-keys",
        description="key-space growth over time (mostly cold keys)",
        stresses="SketchStore geometric over-allocation; growing F0",
        turnstile=False,
        _stream=lambda seed, scale: cold_key_stream(
            scale.universe_size, max(scale.length, 1), seed=seed
        ),
        _keyed=lambda seed, scale: cold_key_workload(scale, seed=seed),
        _windowed=lambda seed, scale: cold_key_windowed_workload(scale, seed=seed),
    )
)

def _adversarial_cluster_bits(scale: WorkloadScale) -> int:
    return max(scale.universe_size.bit_length() // 4, 1)


def _adversarial_stream(seed, scale: WorkloadScale) -> MaterializedStream:
    cluster_bits = _adversarial_cluster_bits(scale)
    distinct = min(
        max(scale.length // 2, 1), (scale.universe_size >> cluster_bits) or 1
    )
    return near_collision_stream(
        scale.universe_size,
        distinct,
        mode="shared-lowbits",
        cluster_bits=cluster_bits,
        seed=seed,
    )


_register(
    WorkloadClass(
        name="adversarial",
        description="near-collision identifiers with planted bit structure",
        stresses="Mersenne/Barrett k-wise hash kernels; lsb subsampling",
        turnstile=False,
        _stream=_adversarial_stream,
        _keyed=lambda seed, scale: near_collision_keyed_workload(
            scale, cluster_bits=_adversarial_cluster_bits(scale), seed=seed
        ),
        _windowed=lambda seed, scale: near_collision_windowed_workload(
            scale, cluster_bits=_adversarial_cluster_bits(scale), seed=seed
        ),
    )
)


def workload_class_names() -> List[str]:
    """Return the registered workload class names (zoo order)."""
    return list(_WORKLOAD_CLASSES)


def workload_class(name: str) -> WorkloadClass:
    """Look up a workload class by name."""
    cls = _WORKLOAD_CLASSES.get(name)
    if cls is None:
        raise ParameterError(
            "unknown workload class %r (known: %s)"
            % (name, ", ".join(_WORKLOAD_CLASSES))
        )
    return cls


def make_workload(
    name: str,
    shape: str = "stream",
    seed: Optional[int] = None,
    scale: Optional[WorkloadScale] = None,
):
    """Build one zoo workload by class name and input shape.

    Args:
        name: a class name (see :func:`workload_class_names`).
        shape: ``"stream"`` (:class:`MaterializedStream`), ``"keyed"``
            (:class:`KeyedWorkload`), or ``"windowed"``
            (:class:`WindowedWorkload`).
        seed: generator seed (determinism is byte-exact per seed).
        scale: size knobs; defaults to :data:`DEFAULT_SCALE`.
    """
    cls = workload_class(name)
    if shape == "stream":
        return cls.stream(seed, scale)
    if shape == "keyed":
        return cls.keyed(seed, scale)
    if shape == "windowed":
        return cls.windowed(seed, scale)
    raise ParameterError(
        "unknown workload shape %r (known: stream, keyed, windowed)" % (shape,)
    )


def workload_fingerprint(workload) -> bytes:
    """Serialize a workload's defining arrays to canonical bytes.

    Two generator calls with the same seed must produce byte-identical
    fingerprints (the seed-determinism regression contract); the encoding
    rides the :mod:`repro.serialize` wire format, so whatever canonical
    ordering and framing rules that format guarantees apply here too.
    """
    from .. import serialize

    if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
        require_numpy("workload_fingerprint")
    if isinstance(workload, MaterializedStream):
        state = {
            "shape": "stream",
            "universe_size": workload.universe_size,
            "name": workload.name,
            "items": np.asarray(workload.item_array(), dtype=np.uint64),
            "deltas": np.asarray(workload.delta_array(), dtype=np.int64),
        }
    elif isinstance(workload, KeyedWorkload):
        state = {
            "shape": "keyed",
            "universe_size": workload.universe_size,
            "name": workload.name,
            "keys": np.asarray(workload.keys, dtype=np.int64),
            "items": np.asarray(workload.items, dtype=np.uint64),
            "deltas": None
            if workload.deltas is None
            else np.asarray(workload.deltas, dtype=np.int64),
        }
    elif isinstance(workload, WindowedWorkload):
        state = {
            "shape": "windowed",
            "universe_size": workload.universe_size,
            "name": workload.name,
            "epochs": np.asarray(workload.epochs, dtype=np.int64),
            "items": np.asarray(workload.items, dtype=np.uint64),
            "deltas": None
            if workload.deltas is None
            else np.asarray(workload.deltas, dtype=np.int64),
        }
    else:
        raise ParameterError(
            "workload_fingerprint expects a MaterializedStream, KeyedWorkload, "
            "or WindowedWorkload"
        )
    return serialize.dumps_tree(state)
