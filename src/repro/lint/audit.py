"""Cross-module registry audit: import-time contract introspection.

The AST rules check what source *text* promises; this pass checks what
the imported package actually *provides*.  Three audits, all driven from
the same CLI and reported as ordinary findings:

* **estimator contract surface** — every registry estimator (F0 and L0)
  instantiates and exposes the full surface the harness, the stores, the
  plan executor, and the WAL rely on (``update_batch`` / ``merge`` /
  ``clear`` (L0) / ``state_dict`` / ``to_bytes`` and their inverses), and
  its empty-state ``to_bytes`` round-trips byte-stably;
* **WAL method resolution** — every name any class lists in
  ``WAL_METHODS`` resolves to a real callable method, so a recovered log
  can never reference a method that was renamed out from under it;
* **kernel-seam sync** — the seam-bypass rule's kernel list matches
  ``repro.kernels.REQUIRED_KERNELS`` exactly, so the static rule can
  never silently lag the real seam.

Importing the package needs numpy; when it is missing the audit degrades
to a single warning finding instead of failing the lint run.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from typing import Iterable, List

from .engine import Finding

__all__ = ["run_audit"]

#: Surface every estimator must expose (callable attributes).  F0
#: estimators take items (and bulk item iterables); L0 estimators take
#: (item, delta) updates, so their bulk surface is apply/clear instead
#: of update_many.
F0_SURFACE = (
    "update",
    "update_batch",
    "update_many",
    "merge",
    "estimate",
    "space_bits",
    "state_dict",
    "load_state_dict",
    "to_bytes",
    "from_bytes",
)
L0_SURFACE = (
    "update",
    "update_batch",
    "apply",
    "merge",
    "clear",
    "estimate",
    "space_bits",
    "state_dict",
    "load_state_dict",
    "to_bytes",
    "from_bytes",
)

_AUDIT_UNIVERSE = 1 << 16
_AUDIT_EPS = 0.25
_AUDIT_SEED = 7


def _class_path(klass: type) -> str:
    """Repo-relative source path of ``klass`` (best effort)."""
    try:
        source = inspect.getsourcefile(klass) or ""
    except TypeError:
        source = ""
    source = source.replace("\\", "/")
    marker = "/repro/"
    index = source.rfind(marker)
    if index >= 0:
        return "src/repro/" + source[index + len(marker) :]
    return "src/repro/estimators/registry.py"


def _finding(rule: str, path: str, message: str, severity: str = "error") -> Finding:
    return Finding(rule=rule, path=path, line=1, col=1, message=message, severity=severity)


def _audit_surface(
    estimator: object, surface: Iterable[str], name: str, findings: List[Finding]
) -> None:
    klass = type(estimator)
    path = _class_path(klass)
    for method in surface:
        attr = getattr(klass, method, None)
        if attr is None or not callable(attr):
            findings.append(
                _finding(
                    "audit-estimator-contract",
                    path,
                    "registry estimator %r (%s) is missing the contract "
                    "method %s()" % (name, klass.__name__, method),
                )
            )
    # Empty-state serialization must execute and be byte-stable: the
    # parallel recipes, the stores, and the WAL all clone through it.
    try:
        data = estimator.to_bytes()  # type: ignore[attr-defined]
        clone = klass.from_bytes(data)  # type: ignore[attr-defined]
        again = clone.to_bytes()
    except Exception as exc:
        findings.append(
            _finding(
                "audit-estimator-contract",
                path,
                "registry estimator %r (%s) failed the empty-state "
                "serialization round-trip: %s" % (name, klass.__name__, exc),
            )
        )
        return
    if again != data:
        findings.append(
            _finding(
                "audit-estimator-contract",
                path,
                "registry estimator %r (%s): to_bytes() is not byte-stable "
                "across one from_bytes round-trip" % (name, klass.__name__),
            )
        )


def _audit_registry(findings: List[Finding]) -> None:
    from ..estimators import registry

    for name in registry.f0_algorithm_names():
        estimator = registry.make_f0_estimator(
            name, _AUDIT_UNIVERSE, _AUDIT_EPS, seed=_AUDIT_SEED
        )
        _audit_surface(estimator, F0_SURFACE, name, findings)
    for name in registry.l0_algorithm_names():
        estimator = registry.make_l0_estimator(
            name, _AUDIT_UNIVERSE, _AUDIT_EPS, 8, seed=_AUDIT_SEED
        )
        _audit_surface(estimator, L0_SURFACE, name, findings)


def _iter_repro_classes():
    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        for _, value in vars(module).items():
            if inspect.isclass(value) and value.__module__ == info.name:
                yield value


def _audit_wal_methods(findings: List[Finding]) -> None:
    for klass in _iter_repro_classes():
        methods = klass.__dict__.get("WAL_METHODS")
        if methods is None:
            continue
        for name in methods:
            attr = getattr(klass, name, None)
            if attr is None or not callable(attr):
                findings.append(
                    _finding(
                        "audit-wal-methods",
                        _class_path(klass),
                        "%s.WAL_METHODS names %r, which does not resolve to "
                        "a method — a recovered log would fail to replay"
                        % (klass.__name__, name),
                    )
                )


def _audit_kernel_seam(findings: List[Finding]) -> None:
    from .. import kernels
    from .rules.kernel_seam import SEAM_KERNELS

    required = set(kernels.REQUIRED_KERNELS)
    listed = set(SEAM_KERNELS)
    for missing in sorted(required - listed):
        findings.append(
            _finding(
                "audit-kernel-seam-sync",
                "src/repro/lint/rules/kernel_seam.py",
                "kernel %r is in repro.kernels.REQUIRED_KERNELS but not in "
                "SEAM_KERNELS; the seam-bypass rule cannot see it" % missing,
            )
        )
    for extra in sorted(listed - required):
        findings.append(
            _finding(
                "audit-kernel-seam-sync",
                "src/repro/lint/rules/kernel_seam.py",
                "kernel %r is in SEAM_KERNELS but not in "
                "repro.kernels.REQUIRED_KERNELS; remove it" % extra,
            )
        )


def run_audit() -> List[Finding]:
    """Run every audit; returns findings (empty when the package is sound)."""
    findings: List[Finding] = []
    try:
        import numpy  # noqa: F401 - availability probe only
    except ImportError:
        return [
            _finding(
                "audit-unavailable",
                "src/repro/lint/audit.py",
                "numpy is unavailable; the registry audit was skipped",
                severity="warning",
            )
        ]
    _audit_registry(findings)
    _audit_wal_methods(findings)
    _audit_kernel_seam(findings)
    return findings
