"""Static-analysis pass enforcing this repository's correctness contracts.

The test suite checks the contracts dynamically; this package checks
them statically, at commit time, over every source file:

* **exact arithmetic** — no NumPy transcendentals, ``np.float*`` casts,
  or implicit float division on sketch estimate/ingest/merge paths;
* **determinism** — no unseeded RNG or wall-clock reads in library
  code, no order-dependent iteration inside the canonical encoders;
* **serialization discipline** — no pickle under ``src/``, no
  swallowing excepts on decode paths;
* **parallel hygiene** — pool construction only through ``get_pool``,
  fork-safe module state in the parallel package;
* **kernel-seam discipline** — backend kernels only via the
  ``repro.vectorize`` dispatch seam;

plus an import-time **registry audit** (estimator contract surface,
``WAL_METHODS`` resolution, seam/rule sync).  Run it as::

    python -m repro.lint [paths ...]

See :mod:`repro.lint.engine` for suppressions and baseline mechanics,
and ``docs/architecture.md`` ("Static analysis & contracts") for the
rule catalogue and how to add a rule.
"""

from .engine import Finding, LintResult, Rule, lint_paths, lint_source
from .rules import all_rules, rules_by_id

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "lint_paths",
    "lint_source",
    "all_rules",
    "rules_by_id",
]
