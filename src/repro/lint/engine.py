"""AST rule engine for the repo's contract linter.

The test suite can only spot-check the repo's correctness contracts
dynamically (exact integer arithmetic on estimate paths, seed
determinism, pickle-free serialization, pool discipline, the kernel
backend seam).  This engine makes them *static*: every rule in
:mod:`repro.lint.rules` walks the AST of each source file and emits
structured :class:`Finding`\\ s, and the CLI (``python -m repro.lint``)
gates on them at commit time.

Machinery provided here, shared by every rule:

* **File discovery** — :func:`discover_files` walks the given paths for
  ``*.py`` files, skipping caches and build output.
* **Per-rule visitor dispatch** — one AST walk per module; each rule
  declares the node types it wants (``Rule.node_types``) and is called
  for exactly those, with a :class:`ModuleContext` carrying the scope
  stack and resolved import aliases.
* **Suppressions** — an explicit per-line syntax::

      risky_line()  # lint: allow[rule-id] why this is intentional

  A suppression on a comment-only line applies to the next line.  The
  reason text is mandatory (``lint-missing-reason`` fires otherwise) and
  unused suppressions warn (``lint-unused-suppression``), so stale
  escapes cannot accumulate silently.
* **Baseline** — :func:`load_baseline` / :func:`apply_baseline` /
  :func:`format_baseline` implement a committed findings snapshot keyed
  by ``(rule, path, source-line fingerprint)``: pre-existing findings
  pass, *new* findings fail closed, and stale entries warn so the
  baseline shrinks monotonically.
"""

from __future__ import annotations

import ast
import hashlib
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Rule",
    "ModuleContext",
    "LintResult",
    "discover_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "apply_baseline",
    "format_baseline",
]

SEVERITIES = ("error", "warning")

#: Directory basenames never descended into during discovery.
_SKIP_DIRS = {
    "__pycache__",
    "_build",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "results",
    ".eggs",
}

#: The one suppression syntax: ``lint: allow[rule-a,rule-b] reason``
#: inside a comment.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]*)\]\s*(.*?)\s*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    col: int
    message: str
    severity: str = "error"
    snippet: str = ""

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline.

        Hashes the rule, path, and the *text* of the flagged line (not
        its number), so unrelated edits above a baselined finding do not
        churn the baseline file.
        """
        digest = hashlib.sha256(
            ("%s\0%s\0%s" % (self.rule, self.path, self.snippet)).encode("utf-8")
        )
        return digest.hexdigest()[:12]

    def render(self) -> str:
        return "%s:%d:%d: %s [%s] %s" % (
            self.path,
            self.line,
            self.col,
            self.rule,
            self.severity,
            self.message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id`, :attr:`description`, and
    :attr:`node_types`, and implement :meth:`visit`; the engine calls it
    once per matching AST node, inside one shared walk per module.
    Override :meth:`applies_to` to scope the rule to parts of the tree.
    """

    id: str = ""
    description: str = ""
    severity: str = "error"
    #: AST node classes this rule wants to see.
    node_types: Tuple[type, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        return True

    def visit(self, ctx: "ModuleContext", node: ast.AST) -> None:
        raise NotImplementedError


@dataclass
class _Suppression:
    rules: Tuple[str, ...]
    reason: str
    comment_line: int  # where the comment physically sits
    target_line: int  # the line whose findings it suppresses
    used: bool = False


class ModuleContext:
    """Everything a rule may need about the module being linted."""

    def __init__(self, relpath: str, source: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: Enclosing FunctionDef/AsyncFunctionDef/ClassDef nodes, outermost first.
        self.scope_stack: List[ast.AST] = []
        self.findings: List[Finding] = []
        #: local name -> dotted module path ("np" -> "numpy",
        #: "numpy_backend" -> "repro.kernels.numpy_backend").
        self.aliases: Dict[str, str] = {}
        self._cache: Dict[str, object] = {}
        self._collect_aliases()

    # -- alias resolution ------------------------------------------------------------

    def _module_package(self) -> List[str]:
        """Dotted package parts of this module, for relative imports."""
        parts = self.relpath.split("/")
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1].endswith(".py"):
            parts = parts[:-1] + ([] if parts[-1] == "__init__.py" else [])
        return parts

    def _collect_aliases(self) -> None:
        package = self._module_package()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self.resolve_import_from(node, package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = "%s.%s" % (base, alias.name) if base else alias.name

    def resolve_import_from(
        self, node: ast.ImportFrom, package: Optional[List[str]] = None
    ) -> Optional[str]:
        """Absolute dotted module a ``from X import ...`` refers to."""
        if package is None:
            package = self._module_package()
        if node.level == 0:
            return node.module or ""
        if node.level > len(package):
            return None  # escapes the linted tree; nothing to resolve against
        base_parts = package[: len(package) - (node.level - 1)]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute chain to a dotted name through the aliases.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        under ``import numpy as np``; plain names resolve through
        ``from``-import aliases.  Returns ``None`` for non-name bases
        (calls, subscripts).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])

    # -- scope helpers ---------------------------------------------------------------

    def enclosing_functions(self) -> List[str]:
        return [
            frame.name
            for frame in self.scope_stack
            if isinstance(frame, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def at_module_level(self) -> bool:
        return not self.scope_stack

    def module_calls(self, dotted: str) -> bool:
        """Whether the module calls ``dotted`` anywhere (cached per module)."""
        key = "calls:%s" % dotted
        cached = self._cache.get(key)
        if cached is None:
            cached = any(
                isinstance(node, ast.Call) and self.dotted_name(node.func) == dotted
                for node in ast.walk(self.tree)
            )
            self._cache[key] = cached
        return bool(cached)

    # -- reporting -------------------------------------------------------------------

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=rule.id,
                path=self.relpath,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                severity=rule.severity,
                snippet=self.snippet(line),
            )
        )


class _Walker(ast.NodeVisitor):
    """Single AST pass dispatching each node to the rules that want it."""

    def __init__(self, ctx: ModuleContext, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self._dispatch: Dict[type, List[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def visit(self, node: ast.AST) -> None:
        for rule in self._dispatch.get(type(node), ()):
            rule.visit(self.ctx, node)
        scoped = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
        if scoped:
            self.ctx.scope_stack.append(node)
        self.generic_visit(node)
        if scoped:
            self.ctx.scope_stack.pop()


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------


def _iter_comments(source: str, lines: Sequence[str]):
    """Yield ``(line, text)`` for real comment tokens only.

    Tokenizing (rather than regex-scanning every line) keeps suppression
    examples inside docstrings from registering as suppressions.  On
    tokenize failure (the file already failed to parse) fall back to the
    raw lines; the syntax-error finding dominates anyway.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        for number, text in enumerate(lines, start=1):
            if "#" in text:
                yield number, text


def _scan_suppressions(source: str, lines: Sequence[str]) -> List[_Suppression]:
    suppressions = []
    for number, text in _iter_comments(source, lines):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            piece.strip() for piece in match.group(1).split(",") if piece.strip()
        )
        own_line = number <= len(lines) and lines[number - 1].lstrip().startswith("#")
        target = number + 1 if own_line else number
        suppressions.append(
            _Suppression(
                rules=rules,
                reason=match.group(2).strip(),
                comment_line=number,
                target_line=target,
            )
        )
    return suppressions


def _apply_suppressions(
    relpath: str,
    findings: List[Finding],
    suppressions: List[_Suppression],
) -> List[Finding]:
    kept: List[Finding] = []
    for finding in findings:
        suppressed = False
        for suppression in suppressions:
            if (
                finding.line == suppression.target_line
                and finding.rule in suppression.rules
                and suppression.reason
            ):
                suppression.used = True
                suppressed = True
                break
        if not suppressed:
            kept.append(finding)
    for suppression in suppressions:
        if not suppression.rules or not suppression.reason:
            kept.append(
                Finding(
                    rule="lint-missing-reason",
                    path=relpath,
                    line=suppression.comment_line,
                    col=1,
                    message=(
                        "suppression must name at least one rule and carry a "
                        "reason: # lint: allow[rule-id] why"
                    ),
                    severity="error",
                )
            )
        elif not suppression.used:
            kept.append(
                Finding(
                    rule="lint-unused-suppression",
                    path=relpath,
                    line=suppression.comment_line,
                    col=1,
                    message=(
                        "suppression for %s matches no finding on line %d; "
                        "remove it" % (", ".join(suppression.rules), suppression.target_line)
                    ),
                    severity="warning",
                )
            )
    return kept


# --------------------------------------------------------------------------
# Running
# --------------------------------------------------------------------------


@dataclass
class LintResult:
    """Findings from one engine run, split by failure semantics."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.severity == "warning"]


def discover_files(paths: Sequence[str], root: str) -> List[str]:
    """Python files under ``paths`` (relative to ``root``), sorted."""
    found = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            found.append(absolute)
            continue
        for directory, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name not in _SKIP_DIRS and not name.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(directory, filename))
    return sorted(set(found))


def _relpath(absolute: str, root: str) -> str:
    rel = os.path.relpath(absolute, root)
    return rel.replace(os.sep, "/")


def lint_source(relpath: str, source: str, rules: Sequence[Rule]) -> List[Finding]:
    """Lint one in-memory module; the unit the fixture tests drive."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="lint-syntax-error",
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message="file does not parse: %s" % exc.msg,
                severity="error",
            )
        ]
    active = [rule for rule in rules if rule.applies_to(relpath)]
    ctx = ModuleContext(relpath, source, tree)
    if active:
        _Walker(ctx, active).visit(tree)
    return _apply_suppressions(
        relpath, ctx.findings, _scan_suppressions(source, ctx.lines)
    )


def lint_paths(
    paths: Sequence[str], rules: Sequence[Rule], root: Optional[str] = None
) -> LintResult:
    """Lint every Python file under ``paths`` with ``rules``."""
    root = root or os.getcwd()
    result = LintResult()
    for absolute in discover_files(paths, root):
        with open(absolute, "r", encoding="utf-8") as handle:
            source = handle.read()
        result.findings.extend(lint_source(_relpath(absolute, root), source, rules))
        result.files_checked += 1
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------
#
# Format: one entry per line, tab-separated:
#
#     rule-id<TAB>path<TAB>fingerprint<TAB>count
#
# ``count`` allows several identical lines (same rule, same source text)
# in one file.  Lines starting with ``#`` are comments.


def load_baseline(path: str) -> Dict[Tuple[str, str, str], int]:
    """Parse a baseline file into ``(rule, path, fingerprint) -> count``."""
    entries: Dict[Tuple[str, str, str], int] = {}
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise ValueError("malformed baseline line: %r" % raw.rstrip("\n"))
            rule, relpath, fingerprint, count = parts
            key = (rule, relpath, fingerprint)
            entries[key] = entries.get(key, 0) + int(count)
    return entries


def apply_baseline(
    findings: Iterable[Finding], baseline: Dict[Tuple[str, str, str], int]
) -> Tuple[List[Finding], List[Finding], List[Tuple[str, str, str]]]:
    """Split findings into (new, baselined) and report stale entries.

    A finding matches a baseline entry when rule, path, and line-text
    fingerprint agree, up to the entry's count.  Entries with no (or
    fewer) matching findings are *stale* — the caller warns so they get
    removed and the baseline only ever shrinks.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.fingerprint())
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = [key for key, count in remaining.items() if count > 0]
    return new, matched, sorted(stale)


def format_baseline(findings: Iterable[Finding]) -> str:
    """Serialize error findings into baseline-file text."""
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in findings:
        if finding.severity != "error":
            continue
        key = (finding.rule, finding.path, finding.fingerprint())
        counts[key] = counts.get(key, 0) + 1
    lines = [
        "# repro.lint baseline: pre-existing findings tolerated by the gate.",
        "# New findings fail closed; stale entries warn. Regenerate with:",
        "#     python -m repro.lint --write-baseline",
    ]
    for (rule, path, fingerprint), count in sorted(counts.items()):
        lines.append("%s\t%s\t%s\t%d" % (rule, path, fingerprint, count))
    return "\n".join(lines) + "\n"
