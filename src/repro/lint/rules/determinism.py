"""Seed-determinism rules.

Two same-seed estimators must hold byte-identical state after the same
updates — that contract underlies shard merging, WAL replay, and every
cross-worker bit-identity test.  Anything that injects ambient entropy
into library code breaks it silently:

* unseeded RNG construction or the module-global ``random``/legacy
  ``np.random`` state;
* wall-clock reads (``time.time`` & co.) outside the two modules whose
  *job* is timing (``durability`` stamps recovery reports, and
  ``benchmarks/`` lives outside ``src/``);
* unordered iteration feeding the canonical encoders in
  ``serialize.py``, whose output must not depend on dict/set history.
"""

from __future__ import annotations

import ast

from ..engine import ModuleContext, Rule

#: Module-global random.* functions that draw from the shared unseeded state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "seed",
    }
)

#: np.random names that are fine: explicitly-seeded generator machinery.
_NUMPY_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: serialize.py functions that produce the canonical encoding.
_CANONICAL_ENCODERS = frozenset({"encode", "snapshot", "dumps_tree", "_encode_tree"})


def _first_arg_is_seedless(node: ast.Call) -> bool:
    if not node.args and not node.keywords:
        return True
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return all(
        keyword.arg == "seed"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is None
        for keyword in node.keywords
    )


class _LibraryRule(Rule):
    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")


class UnseededRngRule(_LibraryRule):
    id = "det-unseeded-rng"
    description = (
        "unseeded RNG in library code; sketch state must be a deterministic "
        "function of the seed"
    )
    node_types = (ast.Call,)

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            return
        if dotted == "random.Random" and _first_arg_is_seedless(node):
            ctx.report(
                self, node, "random.Random() without a seed draws OS entropy"
            )
        elif dotted == "numpy.random.default_rng" and _first_arg_is_seedless(node):
            ctx.report(
                self, node, "np.random.default_rng() without a seed draws OS entropy"
            )
        elif dotted.startswith("random.") and dotted[len("random.") :] in _GLOBAL_RANDOM_FNS:
            ctx.report(
                self,
                node,
                "%s uses the process-global unseeded RNG; construct a seeded "
                "random.Random instead" % dotted,
            )
        elif dotted.startswith("numpy.random."):
            attr = dotted[len("numpy.random.") :].split(".")[0]
            if attr not in _NUMPY_RANDOM_OK:
                ctx.report(
                    self,
                    node,
                    "np.random.%s uses the legacy global RNG state; use a "
                    "seeded np.random.default_rng(seed)" % attr,
                )


class WallClockRule(Rule):
    id = "det-wall-clock"
    description = (
        "wall-clock read in library code; sketch state and canonical output "
        "must not depend on the clock"
    )
    node_types = (ast.Call,)

    def applies_to(self, relpath: str) -> bool:
        # durability/ legitimately stamps WAL/recovery metadata; benchmarks/
        # live outside src/ and time things by design.
        return relpath.startswith("src/repro/") and not relpath.startswith(
            "src/repro/durability/"
        )

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted in _WALL_CLOCK:
            ctx.report(
                self,
                node,
                "%s() reads the wall clock; library state must be "
                "reproducible (pass timestamps in explicitly)" % dotted,
            )


class SerializeDictOrderRule(Rule):
    id = "det-serialize-dict-order"
    description = (
        "unordered dict/set iteration inside a canonical encoder; sort "
        "before encoding so equal values serialize identically"
    )
    node_types = (
        ast.For,
        ast.ListComp,
        ast.SetComp,
        ast.GeneratorExp,
        ast.DictComp,
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath == "src/repro/serialize.py"

    def _check_iter(self, ctx: ModuleContext, owner: ast.AST, iter_node: ast.AST) -> None:
        if not isinstance(iter_node, ast.Call):
            return
        func = iter_node.func
        if isinstance(func, ast.Attribute) and func.attr in ("items", "keys", "values"):
            ctx.report(
                self,
                owner,
                "iterating .%s() directly inside a canonical encoder depends "
                "on insertion order; wrap in sorted(...)" % func.attr,
            )
        elif isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            ctx.report(
                self,
                owner,
                "iterating a set inside a canonical encoder has arbitrary "
                "order; wrap in sorted(...)",
            )

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if not any(
            name in _CANONICAL_ENCODERS for name in ctx.enclosing_functions()
        ):
            return
        if isinstance(node, ast.For):
            self._check_iter(ctx, node, node.iter)
        else:
            for generator in node.generators:  # type: ignore[attr-defined]
                self._check_iter(ctx, node, generator.iter)


RULES = (UnseededRngRule(), WallClockRule(), SerializeDictOrderRule())
