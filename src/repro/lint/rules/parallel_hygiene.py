"""Parallel-hygiene rules.

The plan executor runs every shard through one process-wide persistent
pool (``repro/parallel/pool.py``); worker processes are forked, so any
module-level mutable state in the ``parallel`` package leaks coordinator
state into children unless the module explicitly registers an
``os.register_at_fork`` handler to drop or reset it.  Two rules:

* no direct ``ProcessPoolExecutor``/``multiprocessing.Pool`` construction
  outside ``pool.py`` — everything goes through ``get_pool`` so pool
  lifecycle, restart accounting, and fork safety stay in one place;
* module-level mutable bindings in ``repro/parallel/`` require the
  module to register a fork handler.
"""

from __future__ import annotations

import ast
from typing import List

from ..engine import ModuleContext, Rule

#: The one module allowed to construct executors.
_POOL_MODULE = "src/repro/parallel/pool.py"

_POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "collections.defaultdict", "collections.Counter"}
)


class DirectPoolRule(Rule):
    id = "par-direct-pool"
    description = (
        "direct process-pool construction bypasses repro.parallel.get_pool "
        "(fork safety, restart accounting, persistent reuse)"
    )
    node_types = (ast.Call,)

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/") and relpath != _POOL_MODULE

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        dotted = ctx.dotted_name(node.func)
        if dotted in _POOL_CONSTRUCTORS:
            ctx.report(
                self,
                node,
                "%s constructed directly; use repro.parallel.get_pool so the "
                "process-wide pool lifecycle stays in one place" % dotted,
            )


class ModuleMutableStateRule(Rule):
    id = "par-module-mutable-state"
    description = (
        "module-level mutable state in the parallel package without a "
        "registered fork handler"
    )
    node_types = (ast.Assign, ast.AnnAssign)

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/parallel/")

    @staticmethod
    def _is_mutable_value(ctx: ModuleContext, value: ast.AST) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(value, ast.Call):
            return ctx.dotted_name(value.func) in _MUTABLE_CONSTRUCTORS
        return False

    @staticmethod
    def _targets(node: ast.AST) -> List[str]:
        if isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            targets = node.targets  # type: ignore[attr-defined]
        return [target.id for target in targets if isinstance(target, ast.Name)]

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if not ctx.at_module_level():
            return
        value = node.value  # type: ignore[attr-defined]
        if value is None or not self._is_mutable_value(ctx, value):
            return
        targets = self._targets(node)
        # __all__ and friends are module metadata, never mutated at runtime.
        if targets and all(name.startswith("__") for name in targets):
            return
        # A module that installs an at-fork handler owns its fork story;
        # one that does not must not carry fork-leakable state at all.
        if ctx.module_calls("os.register_at_fork"):
            return
        ctx.report(
            self,
            node,
            "module-level mutable state is inherited by forked pool workers; "
            "register an os.register_at_fork handler that resets it (see "
            "parallel/pool.py) or move it into function scope",
        )


RULES = (DirectPoolRule(), ModuleMutableStateRule())
