"""Kernel-seam discipline.

The hot kernels are dispatched through ``repro.vectorize`` into the
active backend (``repro.kernels.active()``); calling a backend module's
kernel directly pins the call site to one implementation, silently
skipping the compiled backend (a perf bug) or the reference (a
bit-identity bug under ``REPRO_KERNEL_BACKEND=compiled``).  This rule
flags any use of a seam kernel via ``numpy_backend``/``compiled_backend``
outside the ``repro/kernels`` package itself.

``SEAM_KERNELS`` mirrors ``repro.kernels.REQUIRED_KERNELS``; the audit
pass (``repro.lint.audit``) fails if the two drift apart, so adding a
kernel to the seam automatically extends this rule.
"""

from __future__ import annotations

import ast

from ..engine import ModuleContext, Rule

#: Kept in lockstep with repro.kernels.REQUIRED_KERNELS (audit-enforced).
SEAM_KERNELS = frozenset(
    {
        "mulmod",
        "affine_mod",
        "mod_range",
        "affine_mod_range",
        "mulmod_arrays",
        "kwise_mod_range",
        "grouped_residue_sums",
        "grouped_max_scatter",
        "grouped_or_scatter",
        "lsb64_batch",
    }
)

_BACKEND_MODULES = ("numpy_backend", "compiled_backend")


def _is_backend_module(dotted: str) -> bool:
    return dotted.rsplit(".", 1)[-1] in _BACKEND_MODULES


class SeamBypassRule(Rule):
    id = "seam-backend-bypass"
    description = (
        "backend kernel invoked directly instead of through the "
        "repro.vectorize dispatch seam"
    )
    node_types = (ast.ImportFrom, ast.Attribute)

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/") and not relpath.startswith(
            "src/repro/kernels/"
        )

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, ast.ImportFrom):
            module = ctx.resolve_import_from(node)
            if module is None or not _is_backend_module(module):
                return
            for alias in node.names:
                if alias.name in SEAM_KERNELS:
                    ctx.report(
                        self,
                        node,
                        "importing %s from %s bypasses the backend dispatch; "
                        "call repro.vectorize.%s instead"
                        % (alias.name, module, alias.name),
                    )
            return
        # Attribute access: numpy_backend.mulmod(...), including through
        # aliases ("from ..kernels import numpy_backend as nb").
        if not isinstance(node.value, (ast.Name, ast.Attribute)):
            return
        base = ctx.dotted_name(node.value)
        if base is None or not _is_backend_module(base):
            return
        if node.attr in SEAM_KERNELS:
            ctx.report(
                self,
                node,
                "%s.%s called directly bypasses the backend dispatch; call "
                "repro.vectorize.%s instead" % (base, node.attr, node.attr),
            )


RULES = (SeamBypassRule(),)
