"""The rule library: every contract rule, in one registry.

Each submodule encodes one family of repo contracts and exposes a
``RULES`` tuple of instantiated :class:`repro.lint.engine.Rule` objects;
:func:`all_rules` is the single aggregation point the CLI and the tests
consume.  Adding a rule means adding it to its family's ``RULES`` (or a
new submodule listed here) — nothing else to register.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..engine import Rule
from . import (
    determinism,
    exact_arithmetic,
    kernel_seam,
    parallel_hygiene,
    serialization,
)

__all__ = ["all_rules", "rules_by_id"]

_FAMILIES = (
    exact_arithmetic,
    determinism,
    serialization,
    parallel_hygiene,
    kernel_seam,
)


def all_rules() -> Tuple[Rule, ...]:
    """Every registered contract rule, in stable order."""
    rules = []
    for family in _FAMILIES:
        rules.extend(family.RULES)
    return tuple(rules)


def rules_by_id() -> Dict[str, Rule]:
    mapping = {}
    for rule in all_rules():
        if rule.id in mapping:
            raise ValueError("duplicate rule id %r" % rule.id)
        mapping[rule.id] = rule
    return mapping
