"""Serialization-discipline rules.

The wire format (``repro/serialize.py``) is deliberately pickle-free:
payloads cross process and trust boundaries (worker pools, WAL segments,
snapshot files), and the decode paths promise to raise exactly
``SerializationError`` on damage so recovery can stop conservatively
instead of guessing.  Two rules keep that discipline:

* no ``pickle``-family imports anywhere under ``src/`` (the one
  intentional exception — same-interpreter worker staging — carries an
  inline suppression);
* no broad ``except`` that *swallows* inside decode paths: a handler
  catching ``Exception`` (or everything) must re-raise, normally as
  ``SerializationError``.
"""

from __future__ import annotations

import ast

from ..engine import ModuleContext, Rule

_PICKLE_MODULES = ("pickle", "cPickle", "dill", "shelve", "marshal")

_DECODE_NAMES = frozenset(
    {
        "from_bytes",
        "load_state_dict",
        "loads",
        "loads_tree",
        "decode",
        "decode_frame",
        "revive",
        "restore",
        "rebuild_into",
        "read_tree",
        "read_varint",
    }
)
_DECODE_PREFIXES = ("_decode", "_read")


def _is_pickle_module(name: str) -> bool:
    return name in _PICKLE_MODULES or name.startswith(
        tuple(module + "." for module in _PICKLE_MODULES)
    )


class PickleImportRule(Rule):
    id = "ser-pickle-import"
    description = (
        "pickle-family import under src/; the wire format is repro.serialize "
        "(pickle executes arbitrary code on load and is not canonical)"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/")

    def visit(self, ctx: ModuleContext, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_pickle_module(alias.name):
                    ctx.report(
                        self,
                        node,
                        "import %s: persistent/wire state must go through "
                        "repro.serialize" % alias.name,
                    )
        else:
            module = ctx.resolve_import_from(node)  # type: ignore[arg-type]
            if module and _is_pickle_module(module):
                ctx.report(
                    self,
                    node,
                    "from %s import ...: persistent/wire state must go "
                    "through repro.serialize" % module,
                )


class BroadDecodeExceptRule(Rule):
    id = "ser-broad-decode-except"
    description = (
        "broad except swallowing errors on a decode path; decode failures "
        "must surface as SerializationError"
    )
    node_types = (ast.ExceptHandler,)

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = []
        if isinstance(handler.type, ast.Tuple):
            names = [
                item.id for item in handler.type.elts if isinstance(item, ast.Name)
            ]
        elif isinstance(handler.type, ast.Name):
            names = [handler.type.id]
        return any(name in ("Exception", "BaseException") for name in names)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(node, ast.Raise) for node in ast.walk(handler))

    def visit(self, ctx: ModuleContext, node: ast.ExceptHandler) -> None:
        functions = ctx.enclosing_functions()
        on_decode_path = any(
            name in _DECODE_NAMES or name.startswith(_DECODE_PREFIXES)
            for name in functions
        )
        if not on_decode_path:
            return
        if self._is_broad(node) and not self._reraises(node):
            ctx.report(
                self,
                node,
                "broad except on a decode path swallows the error; re-raise "
                "as SerializationError so recovery can stop conservatively",
            )


RULES = (PickleImportRule(), BroadDecodeExceptRule())
