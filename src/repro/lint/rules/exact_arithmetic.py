"""Exact-arithmetic rules: the PR-4 ulp-drift bug class.

The bit-identical contract (batch == scalar == grouped == sharded, every
state word) only holds because sketch state paths stay on exact integer
arithmetic and reporting paths use libm (``math.log`` / Python ``pow``)
rather than NumPy transcendentals, which may differ from libm by an ulp
and differ *across* NumPy builds.  These rules flag the three ways that
contract historically broke:

* NumPy transcendentals (``np.log`` & co.) on estimate/ingest/merge
  paths of the sketch packages;
* ``np.float*`` casts on those paths (silent precision truncation);
* implicit ``/`` (true division) inside *state-mutating* paths, which
  must use ``//`` to stay exact.
"""

from __future__ import annotations

import ast

from ..engine import ModuleContext, Rule

#: Packages whose estimate/ingest/merge paths carry the exactness contract.
SKETCH_PACKAGES = (
    "src/repro/estimators/",
    "src/repro/baselines/",
    "src/repro/l0/",
    "src/repro/store/",
    "src/repro/core/",
)

#: numpy functions whose results are not reproducible to the bit across
#: builds (or versus libm); reporting code must use math.* instead.
NUMPY_TRANSCENDENTALS = frozenset(
    {
        "log",
        "log2",
        "log10",
        "log1p",
        "exp",
        "exp2",
        "expm1",
        "sqrt",
        "cbrt",
        "power",
        "float_power",
        "sin",
        "cos",
        "tan",
        "arcsin",
        "arccos",
        "arctan",
        "arctan2",
        "sinh",
        "cosh",
        "tanh",
        "hypot",
    }
)

NUMPY_FLOAT_TYPES = frozenset({"float16", "float32", "float64", "float128"})

_MUTATOR_PREFIXES = ("_ingest", "_update", "_merge", "_apply")
_MUTATOR_NAMES = frozenset(
    {"update", "update_batch", "update_grouped", "update_many", "merge", "clear", "apply"}
)


def _in_contract_function(ctx: ModuleContext, include_estimate: bool) -> bool:
    for name in ctx.enclosing_functions():
        if include_estimate and name == "estimate":
            return True
        if name in _MUTATOR_NAMES or name.startswith(_MUTATOR_PREFIXES):
            return True
    return False


class _SketchPathRule(Rule):
    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(SKETCH_PACKAGES)


class NumpyTranscendentalRule(_SketchPathRule):
    id = "exact-np-transcendental"
    description = (
        "NumPy transcendental on an estimate/ingest/merge path; use math.* "
        "(libm) so estimates agree to the bit across NumPy builds"
    )
    node_types = (ast.Call,)

    def visit(self, ctx: ModuleContext, node: ast.Call) -> None:
        if not _in_contract_function(ctx, include_estimate=True):
            return
        dotted = ctx.dotted_name(node.func)
        if dotted is None or "." not in dotted:
            return
        base, _, attr = dotted.rpartition(".")
        if base == "numpy" and attr in NUMPY_TRANSCENDENTALS:
            ctx.report(
                self,
                node,
                "numpy.%s on a sketch estimate/ingest/merge path; use the "
                "math module (libm) for bit-stable results" % attr,
            )


class NumpyFloatCastRule(_SketchPathRule):
    id = "exact-np-float-cast"
    description = (
        "np.float* reference on an estimate/ingest/merge path; sketch state "
        "words are exact integers"
    )
    node_types = (ast.Attribute,)

    def visit(self, ctx: ModuleContext, node: ast.Attribute) -> None:
        if not _in_contract_function(ctx, include_estimate=True):
            return
        dotted = ctx.dotted_name(node)
        if dotted is None:
            return
        base, _, attr = dotted.rpartition(".")
        if base == "numpy" and attr in NUMPY_FLOAT_TYPES:
            ctx.report(
                self,
                node,
                "numpy.%s on a sketch estimate/ingest/merge path silently "
                "truncates exact integer state" % attr,
            )


class ImplicitFloatDivisionRule(_SketchPathRule):
    id = "exact-implicit-float-div"
    description = (
        "true division inside a state-mutating sketch path; use // to keep "
        "state words exact integers"
    )
    node_types = (ast.BinOp,)

    def visit(self, ctx: ModuleContext, node: ast.BinOp) -> None:
        if not isinstance(node.op, ast.Div):
            return
        # estimate() legitimately reports floats; mutation paths must not.
        if _in_contract_function(ctx, include_estimate=False):
            ctx.report(
                self,
                node,
                "implicit float division in a state-mutating path; sketch "
                "state arithmetic must stay exact (use //)",
            )


RULES = (NumpyTranscendentalRule(), NumpyFloatCastRule(), ImplicitFloatDivisionRule())
