"""Command line for the contract linter: ``python -m repro.lint``.

Exit status: 0 when every error-severity finding is covered by the
baseline (warnings — stale baseline entries, unused suppressions — never
fail the run); 1 when new findings exist; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from . import audit as audit_module
from .engine import (
    apply_baseline,
    format_baseline,
    lint_paths,
    load_baseline,
)
from .rules import all_rules

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_BASELINE = "lint-baseline.txt"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST contract linter for this repository.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: %s)" % " ".join(DEFAULT_PATHS),
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: <root>/%s when present)" % DEFAULT_BASELINE,
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the import-time registry/WAL/seam audit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print("%-28s %-8s %s" % (rule.id, rule.severity, rule.description))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    root = os.path.abspath(args.root or os.getcwd())
    missing = [
        path
        for path in args.paths
        if not os.path.exists(path if os.path.isabs(path) else os.path.join(root, path))
    ]
    if missing:
        print("error: no such path: %s" % ", ".join(missing), file=sys.stderr)
        return 2

    result = lint_paths(args.paths, all_rules(), root=root)
    if not args.no_audit:
        result.findings.extend(audit_module.run_audit())

    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)
    if args.write_baseline:
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write(format_baseline(result.findings))
        print(
            "wrote %d finding(s) to %s" % (len(result.errors), baseline_path)
        )
        return 0

    baseline = load_baseline(baseline_path)
    errors: List = result.errors
    new, baselined, stale = apply_baseline(errors, baseline)

    for finding in new:
        print(finding.render())
    for finding in result.warnings:
        print(finding.render())
    for rule, path, fingerprint in stale:
        print(
            "%s: stale-baseline [warning] entry %s %s no longer matches any "
            "finding; remove it from the baseline" % (path, rule, fingerprint)
        )
    print(
        "repro.lint: %d file(s), %d finding(s) (%d new, %d baselined, "
        "%d warning(s), %d stale baseline entr%s)"
        % (
            result.files_checked,
            len(errors),
            len(new),
            len(baselined),
            len(result.warnings),
            len(stale),
            "y" if len(stale) == 1 else "ies",
        )
    )
    return 1 if new else 0
