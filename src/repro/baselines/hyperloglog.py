"""HyperLogLog (Flajolet, Fusy, Gandouet, Meunier 2007).

The Figure 1 row ``[19]``: ``O(eps^-2 log log n + log n)`` bits in the
random-oracle model, standard error ``~1.04/sqrt(m)``.  It shares its
register state with LogLog but replaces the geometric-mean estimator with
the harmonic mean, plus the standard small- and large-range corrections.

This is the algorithm "everywhere" in practice; the benchmarks use it as
the main practical yardstick for the KNW estimator.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..bitstructs.packed import PackedCounterArray
from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.bitops import is_power_of_two, lsb, rho_batch
from ..hashing.random_oracle import RandomOracle
from ..vectorize import as_key_array, np

__all__ = ["HyperLogLogCounter", "hll_registers_for_eps"]


def hll_registers_for_eps(eps: float) -> int:
    """Return the register count whose standard error is about ``eps`` (1.04/sqrt m)."""
    if not 0.0 < eps < 1.0:
        raise ParameterError("eps must lie in (0, 1)")
    raw = (1.04 / eps) ** 2
    return 1 << max(int(math.ceil(math.log2(raw))), 4)


def _alpha(m: int) -> float:
    """Return the HyperLogLog bias-correction constant alpha_m."""
    if m <= 16:
        return 0.673
    if m <= 32:
        return 0.697
    if m <= 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLogCounter(CardinalityEstimator):
    """The HyperLogLog cardinality estimator (random-oracle model).

    Attributes:
        universe_size: the universe size ``n``.
        registers: number of registers ``m`` (a power of two).
    """

    name = "hyperloglog"
    requires_random_oracle = True

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        registers: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Create the counter.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: target standard error (sets the register count).
            registers: explicit register count (power of two); overrides ``eps``.
            seed: RNG seed.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.registers = registers if registers is not None else hll_registers_for_eps(eps)
        if not is_power_of_two(self.registers) or self.registers < 16:
            raise ParameterError("registers must be a power of two, at least 16")
        self.seed = seed
        rng = random.Random(seed)
        self._register_bits = self.registers.bit_length() - 1
        hash_bits = max((universe_size - 1).bit_length(), 1) + 8
        self._value_bits = hash_bits
        oracle_seed = rng.randrange(1 << 62) if seed is not None else None
        self._oracle = RandomOracle(
            universe_size, 1 << (self._register_bits + hash_bits), seed=oracle_seed
        )
        register_width = max(math.ceil(math.log2(self._value_bits + 2)), 1)
        self._registers = PackedCounterArray(self.registers, register_width)

    def update(self, item: int) -> None:
        """Route the item to a register and record max(rho)."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        value = self._oracle(item)
        register = value & (self.registers - 1)
        remainder = value >> self._register_bits
        rho = lsb(remainder, zero_value=self._value_bits - 1) + 1
        self._registers.maximize(register, min(rho, (1 << self._registers.width) - 1))

    def update_batch(self, items) -> None:
        """Vectorized ingestion of a chunk of items.

        One splitmix64 pass, one register slice, and one de Bruijn ``rho``
        extraction over the whole array, followed by a single grouped
        register maximisation — bit-identical to the scalar loop because
        the per-register reduction is a plain maximum.
        """
        keys = as_key_array(items, self.universe_size)
        if keys.size == 0:
            return
        values = self._oracle.hash_batch_validated(keys)
        registers = values & np.uint64(self.registers - 1)
        remainders = values >> np.uint64(self._register_bits)
        rho = rho_batch(remainders, zero_value=self._value_bits - 1)
        rho = np.minimum(rho, np.int64((1 << self._registers.width) - 1))
        self._registers.maximize_many(registers, rho)

    def estimate(self) -> float:
        """Return the bias-corrected harmonic-mean estimate.

        The register scan is one bulk :meth:`PackedCounterArray.to_numpy
        <repro.bitstructs.packed.PackedCounterArray.to_numpy>` read plus
        two vector reductions, so reporting time no longer scales with
        ``m = O(1/eps^2)`` Python-level register extractions.
        """
        m = self.registers
        if np is not None:
            # int32 exponents: np.ldexp has no int64-exponent loop on
            # platforms where C long is 32 bits (register values are < 64).
            values = self._registers.to_numpy().astype(np.int32)
            zero_registers = int(np.count_nonzero(values == 0))
            inverse_sum = float(np.ldexp(1.0, -values).sum())
        else:  # pragma: no cover - numpy is a declared dependency
            inverse_sum = 0.0
            zero_registers = 0
            for index in range(m):
                value = self._registers.get(index)
                if value == 0:
                    zero_registers += 1
                inverse_sum += 2.0 ** (-value)
        raw = _alpha(m) * m * m / inverse_sum
        if raw <= 2.5 * m and zero_registers > 0:
            # Small-range correction: fall back to linear counting.
            return m * math.log(m / zero_registers)
        return raw

    def merge(self, other: "CardinalityEstimator") -> None:
        """Take the register-wise maximum of two same-seed counters."""
        if not isinstance(other, HyperLogLogCounter):
            raise MergeError("can only merge HyperLogLogCounter with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.registers != self.registers
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError("HLL counters must share parameters and an explicit seed")
        for index in range(self.registers):
            self._registers.maximize(index, other._registers.get(index))

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add_component("registers", self._registers)
        breakdown.add_component("random-oracle", self._oracle)
        return breakdown

    def space_bits(self) -> int:
        """Return the counter's space in bits (random oracle not charged)."""
        return self.space_breakdown().total()
