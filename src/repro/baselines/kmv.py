"""k-minimum-values (bottom-k) estimation.

Bar-Yossef et al. (RANDOM 2002) Algorithm I — the Figure 1 row with
``O(eps^-2 log n)`` space and ``O(eps^-2)`` update time — keeps the ``k``
smallest hash values seen, for ``k = Theta(1/eps^2)``, and estimates F0 as
``(k - 1) * range / (k-th smallest value)``.  Beyer et al. (SIGMOD 2007,
Figure 1 row ``[6]``) refine the same sketch with an unbiased estimator and
multiset-operation support; both estimators are exposed here.

Only pairwise independence is required, so this baseline — unlike
LogLog/HLL — competes with KNW on equal hash-model footing, just with a
``log n`` factor more space.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.universal import PairwiseHash
from ..vectorize import as_key_array, np

__all__ = ["KMinimumValues", "kmv_size_for_eps"]


def kmv_size_for_eps(eps: float) -> int:
    """Return ``k = ceil(1/eps^2)`` (minimum 16)."""
    if not 0.0 < eps < 1.0:
        raise ParameterError("eps must lie in (0, 1)")
    return max(16, int(math.ceil(1.0 / (eps * eps))))


class KMinimumValues(CardinalityEstimator):
    """Bottom-k sketch over a pairwise-independent hash.

    Attributes:
        universe_size: the universe size ``n``.
        k: number of minimum hash values retained.
    """

    name = "kmv"
    requires_random_oracle = False

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        k: Optional[int] = None,
        seed: Optional[int] = None,
        unbiased: bool = True,
    ) -> None:
        """Create the sketch.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: target relative error (sets ``k`` when not given).
            k: explicit sketch size.
            seed: RNG seed.
            unbiased: use the Beyer et al. unbiased estimator
                ``(k - 1) / U_(k)`` instead of Bar-Yossef et al.'s
                ``k / U_(k)``.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.k = k if k is not None else kmv_size_for_eps(eps)
        if self.k < 2:
            raise ParameterError("k must be at least 2")
        self.seed = seed
        self.unbiased = unbiased
        rng = random.Random(seed)
        # Hash into a range cubically larger than the universe so that the
        # k smallest values are distinct w.h.p. (collisions would bias the
        # order statistics).
        self._hash_range = max(universe_size ** 3, 1 << 30)
        self._hash = PairwiseHash(universe_size, self._hash_range, rng=rng)
        self._values: List[int] = []  # sorted ascending, at most k entries
        self._members = set()

    def update(self, item: int) -> None:
        """Insert the item's hash value into the bottom-k set."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        value = self._hash(item)
        if value in self._members:
            return
        if len(self._values) < self.k:
            self._members.add(value)
            self._insert(value)
            return
        if value >= self._values[-1]:
            return
        evicted = self._values.pop()
        self._members.discard(evicted)
        self._members.add(value)
        self._insert(value)

    def update_batch(self, items) -> None:
        """Vectorized ingestion of a chunk of items.

        The sketch state is exactly "the ``k`` smallest distinct hash
        values seen so far", which is invariant to the order items arrive
        in, so the batch path may reduce the whole chunk at once: hash all
        items in one pass, deduplicate with ``np.unique``, discard values
        that cannot enter a saturated sketch (the retention threshold only
        *decreases* during a batch, so filtering against the pre-batch
        threshold is exact), and merge the few survivors into the sorted
        bottom-k.  Final ``_values``/``_members`` are bit-identical to the
        scalar loop's.
        """
        keys = as_key_array(items, self.universe_size)
        if keys.size == 0:
            return
        hashed = self._hash.hash_batch_validated(keys)
        if len(self._values) >= self.k:
            # values >= the current k-th smallest can never be admitted, at
            # batch start or later (the threshold is non-increasing), so the
            # cheap mask runs before any deduplication.  On a saturated
            # sketch it leaves roughly k survivors per batch.
            hashed = hashed[hashed < self._values[-1]]
        if hashed.size == 0:
            return
        if hashed.size <= 4 * self.k:
            # Few survivors: a Python set dedupes + filters in one go.
            fresh = sorted(set(hashed.tolist()) - self._members)
        else:
            hashed = np.unique(hashed)
            fresh = [value for value in hashed.tolist() if value not in self._members]
        if not fresh:
            return
        # `fresh` and `_values` are both sorted and disjoint: merge them and
        # keep the k smallest, exactly the loop's final state.
        merged: List[int] = []
        take = self.k
        mine, theirs = self._values, fresh
        i = j = 0
        while len(merged) < take and (i < len(mine) or j < len(theirs)):
            if j >= len(theirs) or (i < len(mine) and mine[i] < theirs[j]):
                merged.append(mine[i])
                i += 1
            else:
                merged.append(theirs[j])
                j += 1
        self._values = merged
        self._members = set(merged)

    def _insert(self, value: int) -> None:
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self._values.insert(lo, value)

    def estimate(self) -> float:
        """Return the order-statistics estimate of F0."""
        if len(self._values) < self.k:
            # Fewer than k distinct values seen: the sketch holds them all.
            return float(len(self._values))
        kth = self._values[-1]
        if kth == 0:
            return float(len(self._values))
        numerator = (self.k - 1) if self.unbiased else self.k
        return numerator * self._hash_range / kth

    def merge(self, other: "CardinalityEstimator") -> None:
        """Union two same-seed sketches and re-truncate to the bottom k."""
        if not isinstance(other, KMinimumValues):
            raise MergeError("can only merge KMinimumValues with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.k != self.k
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError("KMV sketches must share parameters and an explicit seed")
        combined = sorted(set(self._values) | set(other._values))[: self.k]
        self._values = combined
        self._members = set(combined)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost: ``k`` hash values of ``O(log n)`` bits."""
        breakdown = SpaceBreakdown(self.name)
        value_bits = max((self._hash_range - 1).bit_length(), 1)
        breakdown.add("bottom-k-values", self.k * value_bits)
        breakdown.add_component("hash", self._hash)
        return breakdown

    def space_bits(self) -> int:
        """Return the sketch's space in bits."""
        return self.space_breakdown().total()
