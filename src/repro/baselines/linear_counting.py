"""Linear counting / bitmap estimation (Whang et al.; Estan--Varghese--Fisk).

The Figure 1 row ``[17]`` (Estan et al.): a bitmap of ``b`` bits, each item
hashed to one bit; the estimate inverts the occupancy,
``b * ln(b / zeros)``.  Space is ``O(eps^-2 log n)`` when a single bitmap
must cover the full cardinality range (Estan et al. use multi-scale
bitmaps to mitigate this; the simple and the multiscale variants are both
provided).  The analysis assumes a random oracle.

Linear counting is also exactly the statistical core of the KNW small-F0
subroutine and of each row of the Figure 4 matrix, so this module is the
natural baseline for isolating what KNW's subsampling machinery adds.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..bitstructs.bitvector import BitVector
from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.random_oracle import RandomOracle
from ..vectorize import as_key_array

__all__ = ["LinearCounter", "MultiScaleBitmapCounter"]


class LinearCounter(CardinalityEstimator):
    """A single-bitmap linear counter.

    Attributes:
        universe_size: the universe size ``n``.
        bits: bitmap size ``b``.
    """

    name = "linear-counting"
    requires_random_oracle = True

    def __init__(
        self,
        universe_size: int,
        bits: int,
        seed: Optional[int] = None,
    ) -> None:
        """Create the counter.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            bits: bitmap size; accuracy degrades as the load ``F0/bits``
                grows beyond a few units, and the estimator saturates when
                every bit is set.
            seed: RNG seed.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if bits <= 1:
            raise ParameterError("bits must be at least 2")
        self.universe_size = universe_size
        self.bits = bits
        self.seed = seed
        rng = random.Random(seed)
        oracle_seed = rng.randrange(1 << 62) if seed is not None else None
        self._oracle = RandomOracle(universe_size, bits, seed=oracle_seed)
        self._bitmap = BitVector(bits)

    def update(self, item: int) -> None:
        """Set the item's bit."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        self._bitmap.set(self._oracle(item), 1)

    def update_batch(self, items) -> None:
        """Vectorized ingestion: hash the chunk, set the distinct bits.

        Bitmap state is an OR of item bits (order-insensitive), so one
        oracle pass plus one deduplicated bulk bit-set is bit-identical to
        the scalar loop.
        """
        keys = as_key_array(items, self.universe_size)
        if keys.size == 0:
            return
        self._bitmap.set_many(self._oracle.hash_batch_validated(keys))

    def estimate(self) -> float:
        """Return ``b * ln(b / zeros)`` (saturating when no zeros remain)."""
        zeros = self._bitmap.count_zeros()
        if zeros == 0:
            # Saturated: the bitmap carries no more information; report the
            # value at one remaining zero, the conventional saturation cap.
            zeros = 1
        return self.bits * math.log(self.bits / zeros)

    def merge(self, other: "CardinalityEstimator") -> None:
        """OR the bitmaps of two same-seed counters."""
        if not isinstance(other, LinearCounter):
            raise MergeError("can only merge LinearCounter with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.bits != self.bits
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError("linear counters must share parameters and an explicit seed")
        self._bitmap.union_update(other._bitmap)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add_component("bitmap", self._bitmap)
        breakdown.add_component("random-oracle", self._oracle)
        return breakdown

    def space_bits(self) -> int:
        """Return the counter's space in bits (random oracle not charged)."""
        return self.space_breakdown().total()


class MultiScaleBitmapCounter(CardinalityEstimator):
    """Estan-style multiresolution bitmap: one bitmap per sampling scale.

    Items are subsampled geometrically across ``scales`` bitmaps (bitmap
    ``s`` sees an item with probability ``2^-s``); reporting picks the
    densest non-saturated bitmap and scales its linear-counting estimate.
    This removes the single-bitmap saturation problem at the cost of a
    ``log n`` factor in space — the configuration whose space column the
    paper's Figure 1 cites as ``O(eps^-2 log n)``.
    """

    name = "multiscale-bitmap"
    requires_random_oracle = True

    def __init__(
        self,
        universe_size: int,
        bits_per_scale: int,
        scales: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Create the counter.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            bits_per_scale: bitmap size at each scale (``Theta(1/eps^2)``).
            scales: number of scales; defaults to ``log2(n) + 1``.
            seed: RNG seed.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if bits_per_scale <= 1:
            raise ParameterError("bits_per_scale must be at least 2")
        self.universe_size = universe_size
        self.bits_per_scale = bits_per_scale
        self.scales = scales if scales is not None else max((universe_size - 1).bit_length(), 1) + 1
        if self.scales <= 0:
            raise ParameterError("scales must be positive")
        self.seed = seed
        rng = random.Random(seed)
        oracle_seed = rng.randrange(1 << 62) if seed is not None else None
        # One oracle supplies both the scale (low bits) and the bit position.
        self._oracle = RandomOracle(
            universe_size, (1 << self.scales) * bits_per_scale, seed=oracle_seed
        )
        self._bitmaps: List[BitVector] = [
            BitVector(bits_per_scale) for _ in range(self.scales)
        ]

    def update(self, item: int) -> None:
        """Route the item to its sampling scale and set its bit there."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        value = self._oracle(item)
        scale_part = value % (1 << self.scales)
        position = value // (1 << self.scales)
        scale = 0
        while scale < self.scales - 1 and (scale_part >> scale) & 1:
            scale += 1
        self._bitmaps[scale].set(position % self.bits_per_scale, 1)

    def estimate(self) -> float:
        """Pick the first scale below ~70% occupancy and scale its estimate."""
        saturation = 0.7 * self.bits_per_scale
        for scale, bitmap in enumerate(self._bitmaps):
            ones = bitmap.count_ones()
            if ones <= saturation:
                zeros = bitmap.count_zeros()
                if zeros == 0:
                    zeros = 1
                linear = self.bits_per_scale * math.log(self.bits_per_scale / zeros)
                return float(1 << (scale + 1)) * linear
        return float(self.bits_per_scale) * (1 << self.scales)

    def merge(self, other: "CardinalityEstimator") -> None:
        """OR the per-scale bitmaps of two same-seed counters.

        Every scale's state is an OR of item bits, so the scale-wise
        union is the state a single counter would hold after both
        streams — the same argument as :meth:`LinearCounter.merge`.
        """
        if not isinstance(other, MultiScaleBitmapCounter):
            raise MergeError("can only merge MultiScaleBitmapCounter with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.bits_per_scale != self.bits_per_scale
            or other.scales != self.scales
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError(
                "multiscale bitmaps must share parameters and an explicit seed"
            )
        for mine, theirs in zip(self._bitmaps, other._bitmaps):
            mine.union_update(theirs)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add("bitmaps", self.scales * self.bits_per_scale)
        breakdown.add_component("random-oracle", self._oracle)
        return breakdown

    def space_bits(self) -> int:
        """Return the counter's space in bits (random oracle not charged)."""
        return self.space_breakdown().total()
