"""Gibbons--Tirthapura coordinated adaptive sampling (SPAA 2001).

The Figure 1 row ``[24]``: ``O(eps^-2 log n)`` space, ``O(eps^-2)``
expected update time, no random-oracle assumption.  The structure keeps
the full identifiers of all items whose hash level is at least the current
threshold, raising the threshold whenever the sample exceeds its budget —
the same level-sampling idea as BJKST but storing raw ``log n``-bit
identifiers (hence the extra ``log n`` factor in space) and with the
coordination property that makes samples over different streams
union-combinable, which is why the original paper targets unions of
distributed streams.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Set

from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.bitops import lsb
from ..hashing.universal import PairwiseHash

__all__ = ["GibbonsTirthapuraSampler"]


class GibbonsTirthapuraSampler(CardinalityEstimator):
    """Coordinated adaptive sampling over full item identifiers.

    Attributes:
        universe_size: the universe size ``n``.
        budget: maximum number of identifiers retained.
    """

    name = "gibbons-tirthapura"
    requires_random_oracle = False

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        budget: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Create the sampler.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: target relative error; the budget defaults to
                ``ceil(36/eps^2)`` per the original analysis.
            budget: explicit budget override.
            seed: RNG seed.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.budget = budget if budget is not None else max(
            32, int(math.ceil(36.0 / (eps * eps)))
        )
        self.seed = seed
        rng = random.Random(seed)
        self._level_limit = max((universe_size - 1).bit_length(), 1)
        self._hash = PairwiseHash(universe_size, universe_size, rng=rng)
        self._level = 0
        self._sample: Set[int] = set()

    def update(self, item: int) -> None:
        """Admit the item if its hash level is at least the current threshold."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        if lsb(self._hash(item), zero_value=self._level_limit) < self._level:
            return
        self._sample.add(item)
        while len(self._sample) > self.budget:
            self._level += 1
            self._sample = {
                member
                for member in self._sample
                if lsb(self._hash(member), zero_value=self._level_limit) >= self._level
            }

    def estimate(self) -> float:
        """Return ``|sample| * 2^level``."""
        return float(len(self._sample)) * (1 << self._level)

    def merge(self, other: "CardinalityEstimator") -> None:
        """Union two same-seed samplers (the coordination property)."""
        if not isinstance(other, GibbonsTirthapuraSampler):
            raise MergeError(
                "can only merge GibbonsTirthapuraSampler with its own kind"
            )
        if (
            other.universe_size != self.universe_size
            or other.budget != self.budget
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError("samplers must share parameters and an explicit seed")
        self._level = max(self._level, other._level)
        merged = {
            member
            for member in (self._sample | other._sample)
            if lsb(self._hash(member), zero_value=self._level_limit) >= self._level
        }
        self._sample = merged
        while len(self._sample) > self.budget:
            self._level += 1
            self._sample = {
                member
                for member in self._sample
                if lsb(self._hash(member), zero_value=self._level_limit) >= self._level
            }

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost: budget * log(n) bits of identifiers."""
        breakdown = SpaceBreakdown(self.name)
        id_bits = max((self.universe_size - 1).bit_length(), 1)
        breakdown.add("sample-identifiers", self.budget * id_bits)
        breakdown.add_component("hash", self._hash)
        breakdown.add("current-level", max(self._level_limit.bit_length(), 1))
        return breakdown

    def space_bits(self) -> int:
        """Return the sampler's space in bits."""
        return self.space_breakdown().total()
