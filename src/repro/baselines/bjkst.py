"""BJKST sampling-based F0 estimation (Bar-Yossef et al., RANDOM 2002).

"Algorithm II/III" of the Figure 1 rows: keep a sample of item
fingerprints restricted to the current sampling level; whenever the sample
overflows its ``Theta(1/eps^2)`` budget, raise the level (halving the
sampling probability) and prune.  The estimate is
``|sample| * 2^level``.  Space is ``O(eps^-2 (log(1/eps) + log log n) + log n)``
when items are stored as small fingerprints (as here, via a pairwise hash
into a range polynomial in the sample budget); update time is dominated by
the occasional prune, amortised ``O(1)`` per item.

This is the strongest pre-KNW algorithm without a random oracle, which is
why the paper's introduction singles the Bar-Yossef et al. trade-offs out
as the best previous work.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.bitops import lsb, lsb_batch
from ..hashing.universal import PairwiseHash
from ..vectorize import as_key_array, grouped_max_scatter, np

__all__ = ["BJKSTSampler"]


class BJKSTSampler(CardinalityEstimator):
    """Level-sampling F0 estimator with fingerprinted samples.

    Attributes:
        universe_size: the universe size ``n``.
        budget: maximum number of fingerprints retained.
    """

    name = "bjkst"
    requires_random_oracle = False

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        budget: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Create the estimator.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: target relative error; the budget defaults to
                ``ceil(24/eps^2)`` (the constant from the BJKST analysis).
            budget: explicit sample-size budget.
            seed: RNG seed.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.budget = budget if budget is not None else max(
            32, int(math.ceil(24.0 / (eps * eps)))
        )
        self.seed = seed
        rng = random.Random(seed)
        self._level_limit = max((universe_size - 1).bit_length(), 1)
        self._level_hash = PairwiseHash(universe_size, universe_size, rng=rng)
        # Fingerprints live in a range cubic in the budget so that the
        # sample is collision-free w.h.p. (the BJKST trick that replaces
        # storing full log(n)-bit identifiers).
        fingerprint_range = max(self.budget ** 3, 1 << 16)
        self._fingerprint_hash = PairwiseHash(universe_size, fingerprint_range, rng=rng)
        self._level = 0
        self._sample: Dict[int, int] = {}  # fingerprint -> its item level

    def update(self, item: int) -> None:
        """Admit the item if it survives the current sampling level."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        level = lsb(self._level_hash(item), zero_value=self._level_limit)
        if level < self._level:
            return
        fingerprint = self._fingerprint_hash(item)
        self._sample[fingerprint] = max(level, self._sample.get(fingerprint, -1))
        while len(self._sample) > self.budget:
            self._level += 1
            self._sample = {
                fp: lvl for fp, lvl in self._sample.items() if lvl >= self._level
            }

    def update_batch(self, items) -> None:
        """Vectorized ingestion of a chunk of items.

        The final (level, sample) state depends only on the multiset of
        ``(fingerprint, level)`` pairs — an item dropped early by the
        rising level could never have survived the final level either —
        so the batch path may compute all levels and fingerprints in two
        hash passes, group the per-fingerprint maximum level with the
        kernel seam's grouped max scatter, fold the result into the
        sample, and prune
        once.  The resulting level and sample dict equal the scalar
        loop's exactly.
        """
        keys = as_key_array(items, self.universe_size)
        if keys.size == 0:
            return
        levels = lsb_batch(
            self._level_hash.hash_batch_validated(keys), zero_value=self._level_limit
        )
        surviving = levels >= np.int64(self._level)
        if not bool(surviving.any()):
            return
        keys = keys[surviving]
        levels = levels[surviving]
        fingerprints = self._fingerprint_hash.hash_batch_validated(keys)
        unique_fps, inverse = np.unique(fingerprints, return_inverse=True)
        level_max = np.full(len(unique_fps), -1, dtype=np.int64)
        grouped_max_scatter(level_max, inverse, levels)
        sample = self._sample
        for fingerprint, level in zip(unique_fps.tolist(), level_max.tolist()):
            if level > sample.get(fingerprint, -1):
                sample[fingerprint] = level
        while len(sample) > self.budget:
            self._level += 1
            sample = {fp: lvl for fp, lvl in sample.items() if lvl >= self._level}
        self._sample = sample

    def estimate(self) -> float:
        """Return ``|sample| * 2^level``."""
        return float(len(self._sample)) * (1 << self._level)

    def merge(self, other: "CardinalityEstimator") -> None:
        """Merge two same-seed samplers (union samples, reconcile levels)."""
        if not isinstance(other, BJKSTSampler):
            raise MergeError("can only merge BJKSTSampler with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.budget != self.budget
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError("BJKST samplers must share parameters and an explicit seed")
        target_level = max(self._level, other._level)
        merged: Dict[int, int] = {}
        for source in (self._sample, other._sample):
            for fingerprint, level in source.items():
                if level >= target_level:
                    merged[fingerprint] = max(level, merged.get(fingerprint, -1))
        self._level = target_level
        self._sample = merged
        while len(self._sample) > self.budget:
            self._level += 1
            self._sample = {
                fp: lvl for fp, lvl in self._sample.items() if lvl >= self._level
            }

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost.

        Each retained sample entry is a fingerprint (``O(log(1/eps))``
        bits) plus its level (``O(log log n)`` bits); the budget (not the
        momentary occupancy) is charged, as the structure must reserve it.
        """
        breakdown = SpaceBreakdown(self.name)
        fingerprint_bits = max((self._fingerprint_hash.range_size - 1).bit_length(), 1)
        level_bits = max(self._level_limit.bit_length(), 1)
        breakdown.add("sample", self.budget * (fingerprint_bits + level_bits))
        breakdown.add_component("level-hash", self._level_hash)
        breakdown.add_component("fingerprint-hash", self._fingerprint_hash)
        breakdown.add("current-level", level_bits)
        return breakdown

    def space_bits(self) -> int:
        """Return the estimator's space in bits."""
        return self.space_breakdown().total()
