"""Durand--Flajolet LogLog counting (ESA 2003).

The Figure 1 row ``[16]``: ``O(eps^-2 log log n)`` bits (plus the random
oracle), additive/relative error ``~1.3/sqrt(m)`` with ``m`` registers.
Each register stores the maximum ``rho`` (1 + position of the lowest set
bit) of the items routed to it — i.e. exactly the quantity the KNW
counters store, which is why the paper describes its own counter state as
"identical as in the LogLog and HyperLogLog algorithms" up to the choice of
estimator and hash model.

The estimate is ``alpha_m * m * 2^{mean register}``.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..bitstructs.packed import PackedCounterArray
from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.bitops import is_power_of_two, lsb, rho_batch
from ..hashing.random_oracle import RandomOracle
from ..vectorize import as_key_array, np

__all__ = ["LogLogCounter", "registers_for_eps"]


def registers_for_eps(eps: float, constant: float = 1.30) -> int:
    """Return the register count whose standard error is about ``eps``.

    LogLog's standard error is ``~1.30/sqrt(m)``; the result is rounded up
    to a power of two so register routing is a bit-slice of the hash.
    """
    if not 0.0 < eps < 1.0:
        raise ParameterError("eps must lie in (0, 1)")
    raw = (constant / eps) ** 2
    return 1 << max(int(math.ceil(math.log2(raw))), 2)


class LogLogCounter(CardinalityEstimator):
    """The LogLog cardinality estimator (random-oracle model).

    Attributes:
        universe_size: the universe size ``n``.
        registers: number of registers ``m`` (a power of two).
    """

    name = "loglog"
    requires_random_oracle = True

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        registers: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Create the counter.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: target standard error (sets the register count).
            registers: explicit register count (power of two); overrides ``eps``.
            seed: RNG seed.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.registers = registers if registers is not None else registers_for_eps(eps)
        if not is_power_of_two(self.registers):
            raise ParameterError("registers must be a power of two")
        self.seed = seed
        rng = random.Random(seed)
        self._register_bits = self.registers.bit_length() - 1
        hash_bits = max((universe_size - 1).bit_length(), 1) + 8
        self._value_bits = hash_bits
        oracle_seed = rng.randrange(1 << 62) if seed is not None else None
        self._oracle = RandomOracle(universe_size, 1 << (self._register_bits + hash_bits), seed=oracle_seed)
        register_width = max(math.ceil(math.log2(self._value_bits + 2)), 1)
        self._registers = PackedCounterArray(self.registers, register_width)
        # alpha_m for the LogLog estimator (the m -> infinity constant).
        self._alpha = 0.39701

    def update(self, item: int) -> None:
        """Route the item to a register and record max(rho)."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        value = self._oracle(item)
        register = value & (self.registers - 1)
        remainder = value >> self._register_bits
        rho = lsb(remainder, zero_value=self._value_bits - 1) + 1
        self._registers.maximize(register, min(rho, (1 << self._registers.width) - 1))

    def update_batch(self, items) -> None:
        """Vectorized ingestion of a chunk of items (see HyperLogLog's note).

        The register state is a per-register maximum of ``rho`` values, so
        reducing the whole chunk at once is bit-identical to the loop.
        """
        keys = as_key_array(items, self.universe_size)
        if keys.size == 0:
            return
        values = self._oracle.hash_batch_validated(keys)
        registers = values & np.uint64(self.registers - 1)
        remainders = values >> np.uint64(self._register_bits)
        rho = rho_batch(remainders, zero_value=self._value_bits - 1)
        rho = np.minimum(rho, np.int64((1 << self._registers.width) - 1))
        self._registers.maximize_many(registers, rho)

    def estimate(self) -> float:
        """Return ``alpha * m * 2^{mean register}``.

        The register total comes from one bulk
        :meth:`PackedCounterArray.to_numpy
        <repro.bitstructs.packed.PackedCounterArray.to_numpy>` read (an
        exact integer sum), so reporting no longer pays ``m`` Python-level
        register extractions.
        """
        if np is not None:
            total = int(self._registers.to_numpy().sum())
        else:  # pragma: no cover - numpy is a declared dependency
            total = sum(self._registers.get(index) for index in range(self.registers))
        mean = total / self.registers
        return self._alpha * self.registers * (2.0 ** mean)

    def merge(self, other: "CardinalityEstimator") -> None:
        """Take the register-wise maximum of two same-seed counters."""
        if not isinstance(other, LogLogCounter):
            raise MergeError("can only merge LogLogCounter with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.registers != self.registers
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError("LogLog counters must share parameters and an explicit seed")
        for index in range(self.registers):
            self._registers.maximize(index, other._registers.get(index))

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost (``m`` registers of log log n bits)."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add_component("registers", self._registers)
        breakdown.add_component("random-oracle", self._oracle)
        return breakdown

    def space_bits(self) -> int:
        """Return the counter's space in bits (random oracle not charged)."""
        return self.space_breakdown().total()
