"""Baseline F0 estimators: the comparison rows of the paper's Figure 1.

| Module | Figure 1 row | Hash model |
|---|---|---|
| :mod:`repro.baselines.flajolet_martin` | [20] Flajolet--Martin 1985 | random oracle |
| :mod:`repro.baselines.ams` | [3] Alon--Matias--Szegedy | pairwise |
| :mod:`repro.baselines.gibbons_tirthapura` | [24] Gibbons--Tirthapura | pairwise |
| :mod:`repro.baselines.kmv` | [5]/[6] bottom-k (Bar-Yossef et al. / Beyer et al.) | pairwise |
| :mod:`repro.baselines.bjkst` | [4] Bar-Yossef et al. Algorithms II/III | pairwise |
| :mod:`repro.baselines.loglog` | [16] Durand--Flajolet LogLog | random oracle |
| :mod:`repro.baselines.linear_counting` | [17] Estan--Varghese--Fisk bitmaps | random oracle |
| :mod:`repro.baselines.hyperloglog` | [19] HyperLogLog | random oracle |

The KNW algorithms themselves live in :mod:`repro.core`; the turnstile
(L0) baseline of Ganguly lives in :mod:`repro.l0.ganguly`.
"""

from .ams import AMSDistinctEstimator
from .bjkst import BJKSTSampler
from .flajolet_martin import FlajoletMartinPCSA
from .gibbons_tirthapura import GibbonsTirthapuraSampler
from .hyperloglog import HyperLogLogCounter, hll_registers_for_eps
from .kmv import KMinimumValues, kmv_size_for_eps
from .linear_counting import LinearCounter, MultiScaleBitmapCounter
from .loglog import LogLogCounter, registers_for_eps

__all__ = [
    "AMSDistinctEstimator",
    "BJKSTSampler",
    "FlajoletMartinPCSA",
    "GibbonsTirthapuraSampler",
    "HyperLogLogCounter",
    "hll_registers_for_eps",
    "KMinimumValues",
    "kmv_size_for_eps",
    "LinearCounter",
    "MultiScaleBitmapCounter",
    "LogLogCounter",
    "registers_for_eps",
]
