"""Flajolet--Martin probabilistic counting (PCSA), FOCS 1983 / JCSS 1985.

The first row of the paper's Figure 1: ``O(log n)`` bits per sketch,
random-oracle model, constant relative error (the error decreases as
``0.78/sqrt(m)`` with ``m`` sketches under stochastic averaging).

Each of ``m`` bitmaps records, for the items routed to it, the set of
``rho`` values (position of the lowest set bit of the hash) observed.  The
estimate is ``m * 2^{mean lowest-unset-position} / 0.77351``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..bitstructs.bitvector import BitVector
from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.bitops import lsb, lsb_batch
from ..hashing.random_oracle import RandomOracle
from ..vectorize import as_key_array, np

__all__ = ["FlajoletMartinPCSA"]

#: The magic constant phi of the Flajolet--Martin analysis.
_PHI = 0.77351


class FlajoletMartinPCSA(CardinalityEstimator):
    """Probabilistic Counting with Stochastic Averaging.

    Attributes:
        universe_size: the universe size ``n``.
        maps: number of bitmaps (stochastic-averaging groups).
    """

    name = "flajolet-martin"
    requires_random_oracle = True

    def __init__(
        self,
        universe_size: int,
        maps: int = 64,
        seed: Optional[int] = None,
    ) -> None:
        """Create the sketch.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            maps: number of bitmaps; the standard error is roughly
                ``0.78 / sqrt(maps)``.
            seed: RNG seed (shared-seed sketches are mergeable).
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if maps <= 0:
            raise ParameterError("maps must be positive")
        self.universe_size = universe_size
        self.maps = maps
        self.seed = seed
        rng = random.Random(seed)
        self._bits = max((universe_size - 1).bit_length(), 1) + 4
        oracle_seed = rng.randrange(1 << 62) if seed is not None else None
        self._oracle = RandomOracle(universe_size, 1 << (self._bits + 8), seed=oracle_seed)
        self._bitmaps: List[BitVector] = [BitVector(self._bits) for _ in range(maps)]

    def update(self, item: int) -> None:
        """Hash the item, route it to a bitmap, and record its rho value."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        value = self._oracle(item)
        bitmap = self._bitmaps[value % self.maps]
        remainder = value // self.maps
        rho = lsb(remainder, zero_value=self._bits - 1)
        bitmap.set(min(rho, self._bits - 1), 1)

    def update_batch(self, items) -> None:
        """Vectorized ingestion: route and extract rho for the whole chunk.

        Bitmap state is an OR of per-item bits, so deduplicating the
        ``(bitmap, position)`` pairs before touching the bitvectors leaves
        state bit-identical to the scalar loop while doing Python-level
        work only per *distinct* touched bit (at most ``maps * bits``).
        """
        keys = as_key_array(items, self.universe_size)
        if keys.size == 0:
            return
        values = self._oracle.hash_batch_validated(keys)
        bitmap_indices = values % np.uint64(self.maps)
        remainders = values // np.uint64(self.maps)
        rho = lsb_batch(remainders, zero_value=self._bits - 1)
        rho = np.minimum(rho, np.int64(self._bits - 1))
        codes = np.unique(bitmap_indices.astype(np.int64) * np.int64(self._bits) + rho)
        for code in codes.tolist():
            self._bitmaps[code // self._bits].set(code % self._bits, 1)

    def _lowest_unset(self, bitmap: BitVector) -> int:
        for position in range(bitmap.length):
            if not bitmap.get(position):
                return position
        return bitmap.length

    def estimate(self) -> float:
        """Return ``maps * 2^{mean R} / phi`` where R is the lowest unset position."""
        total = sum(self._lowest_unset(bitmap) for bitmap in self._bitmaps)
        mean = total / self.maps
        return self.maps * (2.0 ** mean) / _PHI

    def merge(self, other: "CardinalityEstimator") -> None:
        """OR together the bitmaps of two same-seed sketches."""
        if not isinstance(other, FlajoletMartinPCSA):
            raise MergeError("can only merge FlajoletMartinPCSA with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.maps != self.maps
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError("PCSA sketches must share parameters and an explicit seed")
        for mine, theirs in zip(self._bitmaps, other._bitmaps):
            mine.union_update(theirs)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost (oracle charged at 0 bits, as in the model)."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add("bitmaps", self.maps * self._bits)
        breakdown.add_component("random-oracle", self._oracle)
        return breakdown

    def space_bits(self) -> int:
        """Return the sketch's space in bits (random oracle not charged)."""
        return self.space_breakdown().total()
