"""Alon--Matias--Szegedy F0 estimation (STOC 1996 / JCSS 1999).

The second row of Figure 1: ``O(log n)`` bits, ``O(log n)`` update time,
constant-factor error only (the AMS construction estimates F0 to within a
factor of ~2-5 with constant probability; it cannot be tuned to
``(1 +/- eps)``).  Its contribution was removing the random-oracle
assumption of Flajolet--Martin by using pairwise independent hashing.

The estimator tracks ``R = max_i rho(h(i))`` (the deepest lsb of a pairwise
hash over the stream) per repetition and outputs the median of ``2^{R+1/2}``.
"""

from __future__ import annotations

import random
import statistics
from typing import List, Optional

from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import MergeError, ParameterError
from ..hashing.bitops import lsb
from ..hashing.universal import PairwiseHash

__all__ = ["AMSDistinctEstimator"]


class AMSDistinctEstimator(CardinalityEstimator):
    """Median-of-repetitions AMS F0 estimator (constant-factor accuracy).

    Attributes:
        universe_size: the universe size ``n``.
        repetitions: number of independent max-rho trackers.
    """

    name = "alon-matias-szegedy"
    requires_random_oracle = False

    def __init__(
        self,
        universe_size: int,
        repetitions: int = 15,
        seed: Optional[int] = None,
    ) -> None:
        """Create the estimator.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            repetitions: number of independent hash functions (odd keeps the
                median a sample value).
            seed: RNG seed.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if repetitions <= 0:
            raise ParameterError("repetitions must be positive")
        self.universe_size = universe_size
        self.repetitions = repetitions
        self.seed = seed
        rng = random.Random(seed)
        self._level_limit = max((universe_size - 1).bit_length(), 1)
        self._hashes: List[PairwiseHash] = [
            PairwiseHash(universe_size, universe_size, rng=rng)
            for _ in range(repetitions)
        ]
        self._max_rho: List[int] = [-1] * repetitions

    def update(self, item: int) -> None:
        """Track the maximum rho value under each hash function."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        for index, hash_function in enumerate(self._hashes):
            rho = lsb(hash_function(item), zero_value=self._level_limit)
            if rho > self._max_rho[index]:
                self._max_rho[index] = rho

    def estimate(self) -> float:
        """Return the median over repetitions of ``2^{R + 1/2}``."""
        values = [
            0.0 if rho < 0 else 2.0 ** (rho + 0.5) for rho in self._max_rho
        ]
        return float(statistics.median(values))

    def merge(self, other: "CardinalityEstimator") -> None:
        """Take the element-wise maximum of the rho trackers (same seed required)."""
        if not isinstance(other, AMSDistinctEstimator):
            raise MergeError("can only merge AMSDistinctEstimator with its own kind")
        if (
            other.universe_size != self.universe_size
            or other.repetitions != self.repetitions
            or self.seed is None
            or other.seed != self.seed
        ):
            raise MergeError("AMS sketches must share parameters and an explicit seed")
        self._max_rho = [
            max(mine, theirs) for mine, theirs in zip(self._max_rho, other._max_rho)
        ]

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost."""
        breakdown = SpaceBreakdown(self.name)
        rho_bits = max(self._level_limit.bit_length(), 1)
        breakdown.add("max-rho-registers", self.repetitions * rho_bits)
        for index, hash_function in enumerate(self._hashes):
            breakdown.add("hash-%d" % index, hash_function.space_bits())
        return breakdown

    def space_bits(self) -> int:
        """Return the estimator's space in bits."""
        return self.space_breakdown().total()
