"""The KNW F0 algorithm: Figure 3 plus the small-F0 handover (Theorems 2-4).

Two classes live here:

* :class:`KNWFigure3Sketch` — a faithful implementation of the algorithm in
  Figure 3 of the paper: ``K = 1/eps^2`` offset counters rebased against
  the RoughEstimator output, the ``A``-tracked bit budget with an explicit
  FAIL output, and the balls-and-bins inversion estimator.  Its guarantee
  (Theorem 3) holds when ``F0 >= K/32``.
* :class:`KNWDistinctCounter` — the user-facing estimator: it combines the
  Figure 3 sketch with the Section 3.3 small-F0 subroutine (sharing the
  hash bundle, as the paper prescribes) so the ``(1 +/- eps)`` guarantee
  holds for every F0, and exposes merging for same-seed sketches (the
  union-of-streams use case from the introduction).

The time-optimal variant (Theorem 9) is in :mod:`repro.core.fast_knw`.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import MergeError, ParameterError, SketchFailure
from ..hashing.bitops import ceil_log2, is_power_of_two
from ..vectorize import as_key_array, grouped_max_scatter, np
from .balls_bins import invert_occupancy
from .hashes import F0HashBundle
from .rough_estimator import RoughEstimator
from .small_f0 import SmallF0Estimator

__all__ = ["KNWFigure3Sketch", "KNWDistinctCounter", "bins_for_eps", "BATCH_CHUNK"]

#: Internal chunk length of the vectorized Figure 3 ingestion path.  The
#: batch loop consults the RoughEstimator (and rebases) once per chunk
#: instead of once per item; a bounded chunk keeps the rebasing cadence —
#: and therefore the transient counter-offset magnitudes — close to the
#: scalar schedule while amortising the vectorization overhead.
BATCH_CHUNK = 8192


def bins_for_eps(eps: float, minimum: int = 32) -> int:
    """Return ``K = 1/eps^2`` rounded up to a power of two.

    The paper assumes ``1/eps^2`` is a power of two (Section 3.2); rounding
    up only helps accuracy and keeps the ``K/32`` thresholds integral.

    Args:
        eps: relative-error target in (0, 1).
        minimum: smallest allowed K (the Figure 3 constants need
            ``K >= 32`` so that ``K/32 >= 1``).
    """
    if not 0.0 < eps < 1.0:
        raise ParameterError("eps must lie in (0, 1)")
    raw = 1.0 / (eps * eps)
    bins = 1 << max(int(math.ceil(math.log2(raw))), 0)
    return max(bins, minimum)


def _counter_bits(value: int) -> int:
    """Return ``ceil(log2(value + 2))`` — the bit budget of one counter.

    ``value`` is a counter in ``{-1, 0, 1, ...}``; the paper charges
    ``ceil(log(C + 2))`` bits per counter in its ``A`` accounting.
    """
    return ceil_log2(value + 2)


class KNWFigure3Sketch(CardinalityEstimator):
    """The main space-optimal sketch of Figure 3 (valid for ``F0 >= K/32``).

    Attributes:
        universe_size: the universe size ``n``.
        bins: the number of counters ``K`` (a power of two).
        eps: the nominal relative-error target (``~ 1/sqrt(K)``).
    """

    name = "knw-figure3"
    requires_random_oracle = False

    #: The FAIL threshold of Figure 3: output FAIL if A exceeds 3K.
    FAIL_FACTOR = 3

    #: The paper's subsampling offset constant: ``b = est - log2(K / 32)``.
    PAPER_OFFSET_DIVISOR = 32

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        bins: Optional[int] = None,
        seed: Optional[int] = None,
        hashes: Optional[F0HashBundle] = None,
        rough: Optional[RoughEstimator] = None,
        rough_counters: Optional[int] = None,
        rough_uniform_family: bool = False,
        offset_divisor: Optional[int] = None,
    ) -> None:
        """Create the sketch.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: relative-error target; determines ``K`` when ``bins`` is
                not given.
            bins: explicit ``K`` (power of two, >= 32); overrides ``eps``.
            seed: RNG seed for all hash functions (hash bundle and
                RoughEstimator draw from independent sub-seeds).
            hashes: an externally shared :class:`F0HashBundle` (the combined
                estimator passes the bundle it also hands to the small-F0
                subroutine).  When given, its space is *not* charged to this
                sketch (the owner charges it once).
            rough: an externally provided RoughEstimator (same ownership
                convention as ``hashes``).
            rough_counters: ``K_RE`` override forwarded to the internally
                created RoughEstimator when ``rough`` is not supplied.
            rough_uniform_family: use the Pagh--Pagh style uniform family
                for the RoughEstimator's ``h3`` (the Lemma 5 fast
                configuration) instead of the ``2 K_RE``-wise polynomial.
            offset_divisor: the constant ``c`` in the rebasing rule
                ``b = max(0, est - log2(K/c))``.  The paper uses 32, chosen
                so the Lemma 3 variance analysis applies verbatim; smaller
                values keep more items in the sampled level (better
                accuracy constants at the same asymptotic space) and are
                benchmarked as an ablation (DESIGN.md section 5, E12).
                Defaults to the paper's 32.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.bins = bins if bins is not None else bins_for_eps(eps)
        if self.bins < 32 or not is_power_of_two(self.bins):
            raise ParameterError("bins (K) must be a power of two and at least 32")
        self.eps = eps
        self.seed = seed
        self.offset_divisor = (
            offset_divisor if offset_divisor is not None else self.PAPER_OFFSET_DIVISOR
        )
        if (
            self.offset_divisor < 1
            or self.offset_divisor > self.bins
            or not is_power_of_two(self.offset_divisor)
        ):
            raise ParameterError("offset_divisor must be a power of two in [1, bins]")
        rng = random.Random(seed)
        hash_seed = rng.randrange(1 << 62)
        rough_seed = rng.randrange(1 << 62)
        self._owns_hashes = hashes is None
        self.hashes = hashes if hashes is not None else F0HashBundle(
            universe_size, self.bins, eps_hint=eps, seed=hash_seed
        )
        if self.hashes.bins != self.bins:
            raise ParameterError("hash bundle bins do not match the sketch bins")
        self._owns_rough = rough is None
        self.rough = rough if rough is not None else RoughEstimator(
            universe_size,
            counters_per_copy=rough_counters,
            seed=rough_seed,
            use_uniform_family=rough_uniform_family,
        )
        # The Lemma 5 uniform family draws hash values lazily in
        # first-occurrence order, so sharded ingestion sees different
        # draws than sequential ingestion (see the base-class attribute).
        self.shard_deterministic = self.rough.shard_deterministic
        self._counters: List[int] = [-1] * self.bins
        self._bit_budget = sum(_counter_bits(c) for c in self._counters)  # the paper's A
        self._base_level = 0  # the paper's b
        self._est_exponent = 0  # the paper's est (2^est is the committed rough estimate)
        self._occupied = 0  # |{j : C_j >= 0}| maintained incrementally (the T of Step 7)
        self._failed = False

    # -- update path ----------------------------------------------------------------

    def update(self, item: int) -> None:
        """Process one stream item (Step 6 of Figure 3)."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        index = self.hashes.main_bin(item)
        level = self.hashes.level(item)
        current = self._counters[index]
        candidate = max(current, level - self._base_level)
        if candidate != current:
            self._bit_budget += _counter_bits(candidate) - _counter_bits(current)
            if current < 0 <= candidate:
                self._occupied += 1
            self._counters[index] = candidate
        if self._bit_budget > self.FAIL_FACTOR * self.bins:
            self._failed = True

        self.rough.update(item)
        rough_estimate = self.rough.estimate()
        if rough_estimate > float(1 << self._est_exponent):
            self._rebase(rough_estimate)

    def update_batch(self, items, extended_bins=None) -> None:
        """Vectorized ingestion of a chunk of items (Step 6, batched).

        The counter state commutes with rebasing — ``max`` with the
        shift-and-clamp of Steps (a)-(c) satisfies
        ``max(-1, max(a, b) + s) = max(max(-1, a + s), max(-1, b + s))`` —
        so the final counters, base level and occupancy are identical to
        the scalar loop's no matter how updates and rebases interleave.
        The batch path exploits this: it reduces up to :data:`BATCH_CHUNK`
        items into the counters at the current base with one grouped
        maximum, then feeds the same chunk to the RoughEstimator and
        rebases if its (monotone) estimate crossed a power of two.

        The one semantic difference from the loop is FAIL granularity: the
        ``A > 3K`` test runs once per chunk, *after* rebasing, instead of
        after every item.  A batch whose counters only transiently exceed
        the budget at a stale base — because the rebase that scalar
        processing would have performed items earlier is still pending —
        therefore does not latch FAIL spuriously; a sketch whose
        steady-state budget genuinely overflows still does.

        Args:
            items: the chunk of identifiers.
            extended_bins: optional precomputed
                :meth:`repro.core.hashes.F0HashBundle.extended_bin_batch`
                values for ``items`` (the combined estimator shares them
                with the small-F0 subroutine, as the paper prescribes).
        """
        keys = as_key_array(items, self.universe_size)
        for start in range(0, len(keys), BATCH_CHUNK):
            chunk = keys[start : start + BATCH_CHUNK]
            shared = None
            if extended_bins is not None:
                shared = extended_bins[start : start + BATCH_CHUNK]
            self._ingest_chunk(chunk, shared)

    def _ingest_chunk(self, keys, extended_bins) -> None:
        """Reduce one bounded chunk into the counters, then rebase once."""
        if len(keys) == 0:
            return
        indices = self.hashes.main_bin_batch(keys, extended_bins=extended_bins)
        levels = self.hashes.level_batch(keys)
        relative = levels - np.int64(self._base_level)
        before = np.array(self._counters, dtype=np.int64)
        after = before.copy()
        grouped_max_scatter(after, indices, relative)
        changed = np.nonzero(after != before)[0]
        for index in changed.tolist():
            old = int(before[index])
            new = int(after[index])
            self._bit_budget += _counter_bits(new) - _counter_bits(old)
            if old < 0 <= new:
                self._occupied += 1
            self._counters[index] = new

        self.rough.update_batch(keys)
        rough_estimate = self.rough.estimate()
        if rough_estimate > float(1 << self._est_exponent):
            self._rebase(rough_estimate)
        if self._bit_budget > self.FAIL_FACTOR * self.bins:
            self._failed = True

    def _rebase(self, rough_estimate: float) -> None:
        """Steps (a)-(c) of Figure 3: shift the counter offsets to the new base."""
        self._est_exponent = max(int(math.ceil(math.log2(rough_estimate))), 0)
        new_base = max(
            0, self._est_exponent - int(math.log2(self.bins // self.offset_divisor))
        )
        if new_base != self._base_level:
            shift = self._base_level - new_base
            occupied = 0
            for index, value in enumerate(self._counters):
                shifted = max(-1, value + shift) if value >= 0 else -1
                self._counters[index] = shifted
                if shifted >= 0:
                    occupied += 1
            self._occupied = occupied
            self._base_level = new_base
        self._bit_budget = sum(_counter_bits(value) for value in self._counters)

    # -- reporting ------------------------------------------------------------------

    def has_failed(self) -> bool:
        """Return True when the sketch has hit the Figure 3 FAIL condition."""
        return self._failed

    def occupied_counters(self) -> int:
        """Return ``T = |{j : C_j >= 0}|`` (maintained incrementally)."""
        return self._occupied

    def estimate(self) -> float:
        """Return ``2^b * ln(1 - T/K) / ln(1 - 1/K)`` (Step 7 of Figure 3).

        Raises:
            SketchFailure: if the sketch previously output FAIL (the
                probability of this event is at most 1/32 in the analysed
                regime; median amplification recovers from it).
        """
        if self._failed:
            raise SketchFailure(
                "KNW Figure 3 sketch exceeded its %dK-bit counter budget"
                % self.FAIL_FACTOR
            )
        balls = invert_occupancy(self._occupied, self.bins)
        return float(1 << self._base_level) * balls

    # -- merging --------------------------------------------------------------------

    def merge(self, other: "CardinalityEstimator") -> None:
        """Merge a same-seed, same-parameter sketch (distributed union).

        Both sketches must have been constructed with identical
        ``(universe_size, bins, seed)`` so their hash functions agree; the
        merged counters are the element-wise maximum after aligning the
        base levels, which is exactly the state a single sketch would have
        reached on the concatenated stream (up to the RoughEstimator-driven
        rebasing schedule, whose effect on the estimate is bounded by the
        same analysis).
        """
        if not isinstance(other, KNWFigure3Sketch):
            raise MergeError("can only merge KNWFigure3Sketch with its own kind")
        if (
            self.universe_size != other.universe_size
            or self.bins != other.bins
            or self.offset_divisor != other.offset_divisor
            or self.seed is None
            or self.seed != other.seed
        ):
            raise MergeError(
                "KNW sketches can only be merged when built with identical "
                "parameters and an identical, explicit seed"
            )
        target_base = max(self._base_level, other._base_level)
        self._shift_to_base(target_base)
        other_values = other._shifted_counters(target_base)
        occupied = 0
        for index in range(self.bins):
            merged = max(self._counters[index], other_values[index])
            self._counters[index] = merged
            if merged >= 0:
                occupied += 1
        self._occupied = occupied
        self._bit_budget = sum(_counter_bits(value) for value in self._counters)
        self._est_exponent = max(self._est_exponent, other._est_exponent)
        self._failed = self._failed or other._failed
        if self._owns_rough and other._owns_rough:
            self.rough.merge_max(other.rough)
            # Settle against the merged rough estimate, exactly as the
            # update path would: the combined occupancy can cross a power
            # of two that no individual shard crossed, and a single sketch
            # over the concatenated stream would have rebased there.  The
            # RoughEstimator state is a pure per-counter maximum, so (with
            # order-insensitive hash families) the merged rough estimate —
            # and therefore the settled ``est``/``b`` — equals the
            # single-stream one, making shard-and-merge bit-identical to
            # sequential ingestion.
            rough_estimate = self.rough.estimate()
            if rough_estimate > float(1 << self._est_exponent):
                self._rebase(rough_estimate)
        if self._bit_budget > self.FAIL_FACTOR * self.bins:
            self._failed = True

    def _shift_to_base(self, new_base: int) -> None:
        if new_base == self._base_level:
            return
        shift = self._base_level - new_base
        self._counters = [
            max(-1, value + shift) if value >= 0 else -1 for value in self._counters
        ]
        self._occupied = sum(1 for value in self._counters if value >= 0)
        self._base_level = new_base

    def _shifted_counters(self, new_base: int) -> List[int]:
        shift = self._base_level - new_base
        return [
            max(-1, value + shift) if value >= 0 else -1 for value in self._counters
        ]

    # -- space accounting -----------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space budget of the sketch.

        Components follow Theorem 2's accounting: the bit-packed counters
        (the paper's ``A`` plus one flag bit per counter), the registers
        ``b``, ``est``, ``A``, the hash bundle (when owned), and the
        RoughEstimator (when owned).
        """
        breakdown = SpaceBreakdown(self.name)
        breakdown.add("packed-counters", self._bit_budget + self.bins)
        loglog_n = max(math.ceil(math.log2(max(self.hashes.level_limit, 2))), 1)
        breakdown.add("base-level-b", loglog_n)
        breakdown.add("est-register", loglog_n)
        breakdown.add("bit-budget-register-A", max(self.bins.bit_length() + 2, 1))
        if self._owns_hashes:
            breakdown.add("hash-bundle", self.hashes.space_bits())
        if self._owns_rough:
            breakdown.add("rough-estimator", self.rough.space_bits())
        return breakdown

    def space_bits(self) -> int:
        """Return the sketch's total space in bits."""
        return self.space_breakdown().total()


class KNWDistinctCounter(CardinalityEstimator):
    """The complete KNW distinct-elements estimator (all F0 regimes).

    Combines, exactly as Section 3.3 prescribes:

    * the exact buffer + ``2K``-bit estimator for small F0, and
    * the Figure 3 sketch for ``F0 = Omega(K)``,

    sharing a single hash bundle between the two so the hash functions are
    paid for once.  The reported estimate follows Theorem 4's handover: the
    small-F0 estimate until it declares LARGE, the Figure 3 estimate after.

    Attributes:
        universe_size: the universe size ``n``.
        eps: the relative-error target.
        bins: the ``K = 1/eps^2`` (rounded to a power of two).
    """

    name = "knw"
    requires_random_oracle = False

    #: Default offset divisor for the user-facing estimator.  The paper's
    #: analysis uses 32 (see ``KNWFigure3Sketch.PAPER_OFFSET_DIVISOR``);
    #: with it the sampled level keeps at most K/32 items, which makes the
    #: hidden constant in the (1 +/- O(eps)) guarantee large at practical
    #: eps.  A divisor of 2 keeps the same structure, the same asymptotic
    #: space, and the same worst-case load bound (at most K/2 sampled
    #: items, so no saturation and no change to the FAIL analysis) while
    #: bringing the empirical error close to eps.  Both settings are
    #: benchmarked (ablation E12); pass ``offset_divisor=32`` to run the
    #: literal paper configuration.
    PRACTICAL_OFFSET_DIVISOR = 2

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        seed: Optional[int] = None,
        bins: Optional[int] = None,
        rough_counters: Optional[int] = None,
        offset_divisor: Optional[int] = None,
        rough_uniform_family: bool = True,
    ) -> None:
        """Create the estimator.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: relative-error target in (0, 1).
            seed: RNG seed; required for mergeability.
            bins: explicit ``K`` override (power of two >= 32).
            rough_counters: ``K_RE`` override.  The default is
                ``max(K_RE_paper, ceil(log2 n))`` — still ``O(log n)`` bits,
                but with a comfortably small failure probability at the
                finite ``n`` used in experiments (the paper's guarantee is
                asymptotic; see DESIGN.md section 5).
            offset_divisor: the rebasing constant ``c``; defaults to
                ``PRACTICAL_OFFSET_DIVISOR`` (see that attribute's note).
            rough_uniform_family: use the Lemma 5 (Pagh--Pagh) hash family
                inside the RoughEstimator.  This is the configuration the
                paper itself adopts for O(1) time; pass ``False`` for the
                ``2 K_RE``-wise polynomial family of Figure 2.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if not 0.0 < eps < 1.0:
            raise ParameterError("eps must lie in (0, 1)")
        self.universe_size = universe_size
        self.eps = eps
        self.seed = seed
        self.bins = bins if bins is not None else bins_for_eps(eps)
        self.offset_divisor = (
            offset_divisor if offset_divisor is not None else self.PRACTICAL_OFFSET_DIVISOR
        )
        rng = random.Random(seed)
        hash_seed = rng.randrange(1 << 62)
        core_seed = rng.randrange(1 << 62)
        if rough_counters is None:
            from .rough_estimator import rough_counter_count

            rough_counters = max(
                rough_counter_count(universe_size),
                int(math.ceil(math.log2(universe_size))),
            )
        self.hashes = F0HashBundle(universe_size, self.bins, eps_hint=eps, seed=hash_seed)
        self.small = SmallF0Estimator(self.hashes)
        self.shard_deterministic = not rough_uniform_family
        self.core = KNWFigure3Sketch(
            universe_size,
            eps=eps,
            bins=self.bins,
            seed=core_seed,
            hashes=self.hashes,
            rough_counters=rough_counters,
            rough_uniform_family=rough_uniform_family,
            offset_divisor=self.offset_divisor,
        )

    def update(self, item: int) -> None:
        """Process one stream item (feeds both regimes, as the paper does)."""
        self.small.update(item)
        self.core.update(item)

    def update_batch(self, items) -> None:
        """Vectorized ingestion of a chunk of items.

        Computes the shared ``h3(h2(.))`` evaluation once per chunk and
        hands it to both regimes — the batch form of the hash-bundle
        sharing the paper prescribes (and of the scalar one-entry memo).
        State after any batch partition is identical to the scalar loop's
        (see :meth:`KNWFigure3Sketch.update_batch` for the one FAIL-timing
        caveat).
        """
        keys = as_key_array(items, self.universe_size)
        if keys.size == 0:
            return
        extended = self.hashes.extended_bin_batch(keys)
        self.small.update_batch(keys, extended_bins=extended)
        self.core.update_batch(keys, extended_bins=extended)

    def estimate(self) -> float:
        """Return the current ``(1 +/- eps)`` estimate of F0.

        Uses the Theorem 4 handover: the small-F0 estimate until it
        declares LARGE, then the Figure 3 estimate.  If the Figure 3 sketch
        has FAILed (probability <= 1/32), the small-regime estimate is the
        best remaining information and is returned instead of raising, so a
        single ``KNWDistinctCounter`` always produces a number; callers who
        need the amplified guarantee wrap it in
        :class:`repro.estimators.median.MedianEstimator`.
        """
        if not self.small.is_large():
            return self.small.estimate()
        try:
            return self.core.estimate()
        except SketchFailure:
            return self.small.estimate()

    def merge(self, other: "CardinalityEstimator") -> None:
        """Merge a same-seed, same-parameter counter (union of streams)."""
        if not isinstance(other, KNWDistinctCounter):
            raise MergeError("can only merge KNWDistinctCounter with its own kind")
        if (
            self.universe_size != other.universe_size
            or self.bins != other.bins
            or self.seed is None
            or self.seed != other.seed
        ):
            raise MergeError(
                "KNW counters can only be merged when built with identical "
                "parameters and an identical, explicit seed"
            )
        self.small.merge(other.small)
        self.core.merge(other.core)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space budget (hash bundle charged once)."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add("hash-bundle", self.hashes.space_bits())
        breakdown.add("small-f0", self.small.space_bits())
        breakdown.add("figure3-core", self.core.space_bits())
        return breakdown

    def space_bits(self) -> int:
        """Return the estimator's total space in bits."""
        return self.space_breakdown().total()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "KNWDistinctCounter(universe_size=%d, eps=%g, bins=%d)"
            % (self.universe_size, self.eps, self.bins)
        )
