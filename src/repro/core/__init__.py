"""The paper's primary contribution: the optimal F0 estimation algorithm.

* :mod:`repro.core.balls_bins` — the Section 2 balls-and-bins quantities
  (Fact 1, Lemmas 1-3) and the inversion estimator.
* :mod:`repro.core.hashes` — the shared (h1, h2, h3) hash bundle.
* :mod:`repro.core.rough_estimator` — Figure 2 / Theorem 1 (and the O(1)
  variant of Lemma 5).
* :mod:`repro.core.small_f0` — the Section 3.3 small-F0 subroutine.
* :mod:`repro.core.knw` — the Figure 3 sketch and the complete
  ``KNWDistinctCounter`` (Theorems 2-4).
* :mod:`repro.core.fast_knw` — the time-optimal implementation of
  Section 3.4 (Theorem 9).
* :mod:`repro.core.skeleton` — the uncompressed Figure 4 bitmatrix
  reference implementation.
"""

from .balls_bins import (
    OccupancyTrial,
    expected_occupied_bins,
    invert_occupancy,
    occupancy_estimate_is_valid,
    occupancy_statistics,
    occupancy_variance_bound,
    simulate_occupancy,
)
from .fast_knw import FastKNWDistinctCounter, FastKNWSketch
from .hashes import F0HashBundle
from .knw import KNWDistinctCounter, KNWFigure3Sketch, bins_for_eps
from .rough_estimator import (
    OCCUPANCY_THRESHOLD_RHO,
    FastRoughEstimator,
    RoughEstimator,
    rough_counter_count,
)
from .skeleton import BitMatrixSkeleton
from .small_f0 import EXACT_TRACKING_LIMIT, SmallF0Estimator

__all__ = [
    "OccupancyTrial",
    "expected_occupied_bins",
    "invert_occupancy",
    "occupancy_estimate_is_valid",
    "occupancy_statistics",
    "occupancy_variance_bound",
    "simulate_occupancy",
    "FastKNWDistinctCounter",
    "FastKNWSketch",
    "F0HashBundle",
    "KNWDistinctCounter",
    "KNWFigure3Sketch",
    "bins_for_eps",
    "OCCUPANCY_THRESHOLD_RHO",
    "FastRoughEstimator",
    "RoughEstimator",
    "rough_counter_count",
    "BitMatrixSkeleton",
    "EXACT_TRACKING_LIMIT",
    "SmallF0Estimator",
]
