"""The small-F0 subroutine of Section 3.3 (Theorem 4).

The Figure 3 analysis assumes ``F0 >= K/32``; below that threshold the
paper runs a simpler estimator in parallel and switches over once it
declares the count LARGE:

* while fewer than 100 distinct identifiers have been seen, they are simply
  stored exactly (``O(log n)`` bits each);
* beyond that, ``K' = 2K`` bits ``B_1 ... B_{K'}`` record which of ``2K``
  bins has been hit (using the shared ``h3 o h2``), and the balls-and-bins
  inversion ``ln(1 - T_B/K') / ln(1 - 1/K')`` estimates F0;
* once that estimate reaches ``K'/32 = K/16`` the subroutine reports
  LARGE and the caller switches to the Figure 3 estimator, with the
  guarantee that the true F0 is already at least ``1/(16 eps^2)``
  (up to the usual constants), i.e. inside Figure 3's analysed regime.

The bitvector estimate is monotone in ``t``, which is what makes the
one-way handover sound.
"""

from __future__ import annotations

from typing import Set

from ..bitstructs.bitvector import BitVector
from ..bitstructs.space import SpaceBreakdown
from ..exceptions import ParameterError
from ..vectorize import as_key_array, np
from .balls_bins import invert_occupancy
from .hashes import F0HashBundle

__all__ = ["SmallF0Estimator", "EXACT_TRACKING_LIMIT"]

#: The paper keeps the first 100 distinct indices exactly.
EXACT_TRACKING_LIMIT = 100


class SmallF0Estimator:
    """Exact-then-bitvector estimator for the small-F0 regime.

    Attributes:
        bins: the number of bits ``K' = 2K``.
        exact_limit: how many distinct identifiers are tracked exactly.
    """

    name = "knw-small-f0"

    def __init__(
        self,
        hashes: F0HashBundle,
        exact_limit: int = EXACT_TRACKING_LIMIT,
    ) -> None:
        """Create the subroutine.

        Args:
            hashes: the shared hash bundle (provides ``h3 o h2`` with range
                ``2K`` and the universe bound).
            exact_limit: number of distinct identifiers kept exactly before
                relying on the bitvector (the paper uses 100).
        """
        if exact_limit <= 0:
            raise ParameterError("exact_limit must be positive")
        self.hashes = hashes
        self.bins = hashes.extended_bins
        self.exact_limit = exact_limit
        self._exact: Set[int] = set()
        self._exact_overflowed = False
        self._bits = BitVector(self.bins)

    def update(self, item: int) -> None:
        """Process one stream item."""
        if not 0 <= item < self.hashes.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.hashes.universe_size)
            )
        if not self._exact_overflowed:
            if item in self._exact or len(self._exact) < self.exact_limit:
                self._exact.add(item)
            else:
                self._mark_overflowed()
        self._bits.set(self.hashes.extended_bin(item), 1)

    def update_batch(self, items, extended_bins=None) -> None:
        """Process a chunk of items, equivalently to the :meth:`update` loop.

        Two parts, both order-faithful:

        * the exact buffer admits new identifiers in first-occurrence
          order until its capacity would be exceeded (at which point it
          overflows for good, exactly like the scalar path);
        * the ``2K``-bit vector ORs in the extended bin of every item, so
          one deduplicated bulk bit-set reproduces the loop's state.

        Args:
            items: the chunk of identifiers.
            extended_bins: optional precomputed
                :meth:`repro.core.hashes.F0HashBundle.extended_bin_batch`
                result, so the combined estimator pays for the shared
                ``h3(h2(.))`` once per chunk (mirroring the scalar memo).
        """
        keys = as_key_array(items, self.hashes.universe_size)
        if keys.size == 0:
            return
        if not self._exact_overflowed:
            # First occurrence of each identifier, in stream order.
            _, first_positions = np.unique(keys, return_index=True)
            ordered_new = [
                key
                for key in keys[np.sort(first_positions)].tolist()
                if key not in self._exact
            ]
            capacity = self.exact_limit - len(self._exact)
            self._exact.update(ordered_new[:capacity])
            if len(ordered_new) > capacity:
                self._mark_overflowed()
        if extended_bins is None:
            extended_bins = self.hashes.extended_bin_batch(keys)
        self._bits.set_many(extended_bins)

    def _mark_overflowed(self) -> None:
        """Switch permanently to the bitvector regime.

        The buffer is dropped as soon as it overflows: nothing reads it
        afterwards (``estimate``/``is_large`` branch on the flag), and the
        empty buffer is the canonical overflowed state — which is what
        makes sharded ingestion bit-identical to sequential (the shards'
        buffers fill with *different* identifiers, but every overflowed
        path converges to the same emptied state).
        """
        self._exact_overflowed = True
        self._exact.clear()

    def merge(self, other: "SmallF0Estimator") -> None:
        """Merge a same-bundle subroutine (union of the two streams).

        The exact buffers union (overflowing — and emptying — when the
        union exceeds the capacity, exactly as a single subroutine fed
        both streams would have), and the bitvectors OR.
        """
        if other.bins != self.bins or other.exact_limit != self.exact_limit:
            raise ParameterError("cannot merge small-F0 subroutines with different shapes")
        if self._exact_overflowed or other._exact_overflowed:
            self._mark_overflowed()
        else:
            self._exact |= other._exact
            if len(self._exact) > self.exact_limit:
                self._mark_overflowed()
        self._bits.union_update(other._bits)

    def bitvector_estimate(self) -> float:
        """Return the ``K'``-bit balls-and-bins estimate ``F~_B``."""
        occupied = self._bits.count_ones()
        return invert_occupancy(occupied, self.bins)

    def estimate(self) -> float:
        """Return the small-regime estimate of F0.

        Exact while the exact buffer has not overflowed, otherwise the
        bitvector estimate.
        """
        if not self._exact_overflowed:
            return float(len(self._exact))
        return self.bitvector_estimate()

    def is_large(self) -> bool:
        """Return True once the caller should switch to the Figure 3 estimator.

        The paper's threshold is ``F~_B >= K'/32`` (equal to ``K/16``).
        The exact-tracking phase never reports LARGE (its counts are far
        below the threshold whenever ``K >= 32 * exact_limit``; for smaller
        ``K`` the bitvector takes over as soon as the buffer overflows).
        """
        if not self._exact_overflowed:
            return False
        return self.bitvector_estimate() >= self.bins / 32.0

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost (excluding the shared hash bundle)."""
        breakdown = SpaceBreakdown(self.name)
        id_bits = max((self.hashes.universe_size - 1).bit_length(), 1)
        breakdown.add("exact-buffer", self.exact_limit * id_bits)
        breakdown.add_component("bitvector", self._bits)
        return breakdown

    def space_bits(self) -> int:
        """Return the subroutine's space cost (excluding the shared hashes)."""
        return self.space_breakdown().total()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "SmallF0Estimator(bins=%d, exact_tracked=%d, overflowed=%s)"
            % (self.bins, len(self._exact), self._exact_overflowed)
        )
