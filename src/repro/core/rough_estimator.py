"""RoughEstimator: a constant-factor F0 approximation valid at all times.

This is Figure 2 / Theorem 1 of the paper.  The subroutine uses
``O(log n)`` bits and guarantees (with probability ``1 - o(1)``) that its
output is in ``[F0(t), 8 F0(t)]`` *simultaneously for every* point ``t`` of
the stream with ``F0(t) >= K_RE`` — the "for all t" quantifier is what
distinguishes it from earlier constant-factor estimators, which needed an
extra ``log m`` factor to union-bound over stream positions.

Structure (three independent copies ``j = 1, 2, 3``, median combined):

* ``K_RE = max(8, log(n)/log log(n))`` counters per copy, each storing the
  deepest lsb-level of any item hashed to it (``-1`` when empty), packed at
  ``O(log log n)`` bits per counter;
* ``h1^j`` pairwise hashing items to levels via ``lsb``;
* ``h2^j`` pairwise hashing items into a cubically larger domain
  ``[K_RE^3]`` so the surviving items are perfectly hashed w.h.p.;
* ``h3^j`` a ``2 K_RE``-wise independent hash into the counters
  (the fast variant of Lemma 5 replaces this with a Pagh--Pagh style
  uniform family and a 16-approximation guarantee).

Estimator: with ``T_r = |{i : C_i >= r}|``, output ``2^r* K_RE`` for the
largest ``r*`` with ``T_{r*} >= rho K_RE`` where
``rho = 0.99 (1 - e^{-1/3})``.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..bitstructs.packed import PackedCounterArray
from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import SerializableState
from ..exceptions import ParameterError
from ..hashing.bitops import lsb, lsb_batch
from ..hashing.kwise import KWiseHash
from ..hashing.uniform import LazyUniformHash
from ..hashing.universal import PairwiseHash
from ..vectorize import as_key_array, np

__all__ = ["RoughEstimator", "FastRoughEstimator", "OCCUPANCY_THRESHOLD_RHO", "rough_counter_count"]

#: The occupancy threshold ``rho = 0.99 (1 - e^{-1/3})`` from Figure 2.
OCCUPANCY_THRESHOLD_RHO = 0.99 * (1.0 - math.exp(-1.0 / 3.0))

#: Number of independent copies combined by the median (Figure 2 uses 3).
_COPIES = 3


def rough_counter_count(universe_size: int) -> int:
    """Return the paper's ``K_RE = max(8, log(n)/log log(n))`` (rounded up).

    Args:
        universe_size: the universe size ``n`` (must be at least 2).
    """
    if universe_size < 2:
        raise ParameterError("universe_size must be at least 2")
    log_n = max(math.log2(universe_size), 2.0)
    log_log_n = max(math.log2(log_n), 1.0)
    return max(8, int(math.ceil(log_n / log_log_n)))


class _RoughCopy:
    """One of the three independent sub-estimators of Figure 2."""

    __slots__ = ("counters", "h1", "h2", "h3", "level_limit", "_store_width")

    def __init__(
        self,
        universe_size: int,
        counters: int,
        rng: random.Random,
        use_uniform_family: bool,
    ) -> None:
        self.level_limit = max((universe_size - 1).bit_length(), 1)
        # Counters take values in {-1} u [0, level_limit]; they are stored
        # shifted by +1 so the packed array holds non-negative values.
        self._store_width = max((self.level_limit + 1).bit_length(), 1)
        self.counters = PackedCounterArray(counters, self._store_width, initial_value=0)
        domain_cubed = max(counters ** 3, counters)
        self.h1 = PairwiseHash(universe_size, universe_size, rng=rng)
        self.h2 = PairwiseHash(universe_size, domain_cubed, rng=rng)
        if use_uniform_family:
            # Lemma 5: a Pagh--Pagh style family, uniform on the <= 2 K_RE
            # items that matter with probability 1 - O(1/K_RE).
            self.h3 = LazyUniformHash(domain_cubed, counters, capacity=2 * counters, rng=rng)
        else:
            self.h3 = KWiseHash(domain_cubed, counters, independence=2 * counters, rng=rng)

    def update(self, item: int) -> None:
        level = lsb(self.h1(item), zero_value=self.level_limit)
        index = self.h3(self.h2(item))
        stored = self.counters.get(index)
        if level + 1 > stored:
            self.counters.set(index, level + 1)

    def update_batch(self, keys) -> None:
        """Vectorized copy update: two hash passes plus one grouped max.

        Counters hold the deepest level hashed to them — a pure per-counter
        maximum — so one ``maximize_many`` over the whole chunk is
        bit-identical to the scalar loop.  The keys must already be a
        validated ``uint64`` array (the owning estimator converts once for
        all three copies).
        """
        levels = lsb_batch(self.h1.hash_batch_validated(keys), zero_value=self.level_limit)
        indices = self.h3.hash_batch_validated(self.h2.hash_batch_validated(keys))
        self.counters.maximize_many(indices, levels + np.int64(1))

    def counts_at_least(self, level: int) -> int:
        """Return ``T_r = |{i : C_i >= level}|`` (stored values are C + 1)."""
        return self.counters.count_at_least(level + 1)

    def estimate(self, threshold: float) -> float:
        """Return ``2^{r*} K_RE`` for the largest level meeting the threshold, or -1."""
        best = -1
        for level in range(self.level_limit, -1, -1):
            if self.counts_at_least(level) >= threshold:
                best = level
                break
        if best < 0:
            return -1.0
        return float((1 << best) * self.counters.length)

    def space(self) -> SpaceBreakdown:
        breakdown = SpaceBreakdown("rough-copy")
        breakdown.add_component("counters", self.counters)
        breakdown.add_component("h1", self.h1)
        breakdown.add_component("h2", self.h2)
        breakdown.add_component("h3", self.h3)
        return breakdown


class RoughEstimator(SerializableState):
    """The Figure 2 subroutine: an 8-approximation to F0 valid at all times.

    The estimate is monotonically non-decreasing in the stream position,
    a property the Figure 3 analysis relies on (``est`` only grows).

    Attributes:
        universe_size: the universe size ``n``.
        counters_per_copy: ``K_RE``.
    """

    name = "knw-rough-estimator"

    def __init__(
        self,
        universe_size: int,
        counters_per_copy: Optional[int] = None,
        seed: Optional[int] = None,
        use_uniform_family: bool = False,
    ) -> None:
        """Create the estimator.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            counters_per_copy: override for ``K_RE``; defaults to the
                paper's ``max(8, log(n)/log log(n))``.  Larger values trade
                a constant factor of space for a smaller failure
                probability (the guarantee is asymptotic, so finite-n
                callers such as :class:`repro.core.knw.KNWDistinctCounter`
                pass a slightly larger count).
            seed: RNG seed for the hash functions.
            use_uniform_family: draw ``h3`` from the Pagh--Pagh style
                uniform family (the Lemma 5 fast configuration) instead of
                the ``2 K_RE``-wise polynomial family.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.counters_per_copy = (
            counters_per_copy if counters_per_copy is not None else rough_counter_count(universe_size)
        )
        if self.counters_per_copy < 2:
            raise ParameterError("counters_per_copy must be at least 2")
        rng = random.Random(seed)
        self._copies: List[_RoughCopy] = [
            _RoughCopy(universe_size, self.counters_per_copy, rng, use_uniform_family)
            for _ in range(_COPIES)
        ]
        self._threshold = OCCUPANCY_THRESHOLD_RHO * self.counters_per_copy
        self._monotone_floor = -1.0
        # The uniform (Lemma 5) family materialises hash values lazily in
        # first-occurrence order, so sharded and sequential ingestion draw
        # different functions; the polynomial family is seed-determined.
        self.shard_deterministic = not use_uniform_family

    def update(self, item: int) -> None:
        """Process one stream item."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        for copy in self._copies:
            copy.update(item)

    def update_batch(self, items) -> None:
        """Process a chunk of items through all three copies, vectorized.

        Equivalent to the :meth:`update` loop.  With the polynomial ``h3``
        (stateless) each copy reduces the whole chunk independently.  With
        the Lemma 5 uniform family the three copies' ``h3`` draw lazily
        from one *shared* RNG, so the batch path evaluates ``h3`` in the
        scalar interleaving — item by item across the copies — to consume
        the RNG in the identical order, while ``h1``/``h2`` hashing, level
        extraction and the counter maxima stay vectorized.
        """
        keys = as_key_array(items, self.universe_size)
        if keys.size == 0:
            return
        if not isinstance(self._copies[0].h3, LazyUniformHash):
            for copy in self._copies:
                copy.update_batch(keys)
            return
        spread = [copy.h2.hash_batch_validated(keys).tolist() for copy in self._copies]
        draws = [copy.h3.draw_value for copy in self._copies]
        indices = [np.empty(len(keys), dtype=np.int64) for _ in self._copies]
        copy_order = range(len(self._copies))
        for position in range(len(keys)):
            for j in copy_order:
                indices[j][position] = draws[j](spread[j][position])
        for j, copy in enumerate(self._copies):
            levels = lsb_batch(copy.h1.hash_batch_validated(keys), zero_value=copy.level_limit)
            copy.counters.maximize_many(indices[j], levels + np.int64(1))

    def estimate(self) -> float:
        """Return the current rough estimate (median of the three copies).

        Returns ``-1.0`` while no copy has enough occupancy to commit to an
        estimate (the regime ``F0 < K_RE`` where Theorem 1 makes no claim).
        The returned value never decreases over the lifetime of the sketch.
        """
        values = sorted(copy.estimate(self._threshold) for copy in self._copies)
        median = values[len(values) // 2]
        if median > self._monotone_floor:
            self._monotone_floor = median
        return self._monotone_floor

    def merge_max(self, other: "RoughEstimator") -> None:
        """Merge another RoughEstimator built with the same seed/parameters.

        The per-counter state is the maximum lsb-level seen among the items
        hashed to that counter, so two sketches over different streams (with
        identical hash functions) combine by element-wise maximum — the
        state a single sketch would have reached on the concatenation.
        """
        if not isinstance(other, RoughEstimator):
            raise ParameterError("merge_max expects a RoughEstimator")
        if (
            other.universe_size != self.universe_size
            or other.counters_per_copy != self.counters_per_copy
            or len(other._copies) != len(self._copies)
        ):
            raise ParameterError("cannot merge RoughEstimators with different parameters")
        for mine, theirs in zip(self._copies, other._copies):
            for index in range(mine.counters.length):
                mine.counters.maximize(index, theirs.counters.get(index))
        if other._monotone_floor > self._monotone_floor:
            self._monotone_floor = other._monotone_floor

    def space_bits(self) -> int:
        """Return the total space (three copies)."""
        return sum(copy.space().total() for copy in self._copies)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return an itemised space budget."""
        breakdown = SpaceBreakdown(self.name)
        for index, copy in enumerate(self._copies):
            breakdown.add("copy-%d" % index, copy.space().total())
        return breakdown

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "RoughEstimator(universe_size=%d, counters_per_copy=%d)"
            % (self.universe_size, self.counters_per_copy)
        )


class FastRoughEstimator(RoughEstimator):
    """The Lemma 5 variant: O(1)-time updates and reporting.

    Differences from :class:`RoughEstimator`:

    * ``h3`` is drawn from the Pagh--Pagh style uniform family (Theorem 6),
      which evaluates in constant time;
    * the report is maintained *incrementally*: instead of scanning all
      levels at query time, the estimator tracks the current committed
      level ``r`` and only advances it when new occupancy appears at or
      above ``r + 1`` (the paper maintains the window ``A^j_0..A^j_4`` of
      occupancy counts and amortises recomputation over subsequent updates;
      the same constant-amortised-work discipline is achieved here by
      advancing the committed level at most once per update);
    * in exchange the guarantee weakens from an 8-approximation to a
      16-approximation, exactly as Lemma 5 states.

    The estimate remains monotonically non-decreasing.
    """

    name = "knw-rough-estimator-fast"

    def __init__(
        self,
        universe_size: int,
        counters_per_copy: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            universe_size,
            counters_per_copy=counters_per_copy,
            seed=seed,
            use_uniform_family=True,
        )
        self._committed_level = -1
        self._cached_estimate = -1.0

    def update(self, item: int) -> None:
        """Process one item and advance the committed level by at most one."""
        super().update(item)
        next_level = self._committed_level + 1
        if next_level > self._copies[0].level_limit:
            return
        hits = 0
        for copy in self._copies:
            if copy.counts_at_least(next_level) >= self._threshold:
                hits += 1
        if hits >= 2:
            self._committed_level = next_level
            self._cached_estimate = float(
                (1 << next_level) * self.counters_per_copy
            )

    def update_batch(self, items) -> None:
        """Process a chunk item by item.

        The Lemma 5 deamortisation advances the committed level *at most
        once per update*, so the committed level after a chunk depends on
        the per-item interleaving of counter updates and commit checks;
        a vectorized reduction could legally advance further than the
        scalar path.  To keep batch ingestion bit-identical, this variant
        deliberately keeps the per-item loop.
        """
        keys = as_key_array(items, self.universe_size)
        for key in keys.tolist():
            self.update(key)

    def estimate(self) -> float:
        """Return the committed estimate (O(1): no scan at query time)."""
        return self._cached_estimate
