"""Balls-and-bins quantities used by the KNW estimators (Section 2).

The accuracy of the main estimator rests on the behaviour of the classic
random process "throw A balls into K bins and count the occupied bins":

* **Fact 1**: ``E[X] = K (1 - (1 - 1/K)^A)`` for a truly random assignment.
* **Lemma 1**: ``Var[X] < 4 A^2 / K`` when ``100 <= A <= K/20``.
* **Lemmas 2-3**: with only ``2(k+1)``-wise independence for
  ``k = Theta(log(K/eps)/log log(K/eps))`` the expectation is preserved to
  ``(1 +/- eps)`` and the variance to an additive ``eps^2``, so Chebyshev
  still gives concentration.

The estimator itself *inverts* Fact 1: observing ``T`` occupied bins, the
ball count is estimated as ``ln(1 - T/K) / ln(1 - 1/K)``, which is the
expression in Step 7 of Figure 3.

This module provides those quantities in closed form plus a simulation
helper (used by the Lemma 2/3 benchmark and the hypothesis tests) that
measures the occupancy distribution under any hash family.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..exceptions import ParameterError

__all__ = [
    "expected_occupied_bins",
    "occupancy_variance_bound",
    "invert_occupancy",
    "occupancy_estimate_is_valid",
    "OccupancyTrial",
    "simulate_occupancy",
]


def expected_occupied_bins(balls: int, bins: int) -> float:
    """Return ``E[X] = K (1 - (1 - 1/K)^A)`` (the paper's Fact 1).

    Args:
        balls: the number of balls ``A`` (>= 0).
        bins: the number of bins ``K`` (>= 1).
    """
    if balls < 0:
        raise ParameterError("balls must be non-negative")
    if bins < 1:
        raise ParameterError("bins must be positive")
    # Clamp to the mathematical range [0, min(A, K)]: the float expression
    # can exceed it by an ulp (e.g. A=1, K=9 gives 1 + 4e-16).
    return min(bins * (1.0 - (1.0 - 1.0 / bins) ** balls), float(min(balls, bins)))


def occupancy_variance_bound(balls: int, bins: int) -> float:
    """Return the paper's Lemma 1 variance bound ``4 A^2 / K``.

    The bound is stated for ``100 <= A <= K/20``; outside that window the
    returned value is still ``4 A^2 / K`` but callers should not rely on it
    being an upper bound (the property test checks it only inside the
    stated window).
    """
    if balls < 0:
        raise ParameterError("balls must be non-negative")
    if bins < 1:
        raise ParameterError("bins must be positive")
    return 4.0 * balls * balls / bins


def invert_occupancy(occupied: int, bins: int) -> float:
    """Estimate the number of balls from the number of occupied bins.

    This is the estimator of Figure 3 Step 7 (without the ``2^b`` scaling):
    ``ln(1 - T/K) / ln(1 - 1/K)``.

    Args:
        occupied: the observed number of occupied bins ``T`` (``0 <= T <= K``).
        bins: the number of bins ``K``.

    Returns:
        The estimated ball count.  ``T = K`` (every bin occupied) carries no
        information about the ball count beyond "large"; the function
        returns the value for ``T = K - 1`` in that case, which is the
        conventional saturation behaviour of occupancy-based estimators
        (the KNW parameterisation keeps ``T`` near ``K/32`` so saturation
        never occurs in the analysed regime).
    """
    if bins < 2:
        raise ParameterError("bins must be at least 2")
    if not 0 <= occupied <= bins:
        raise ParameterError("occupied must lie in [0, bins]")
    if occupied == 0:
        return 0.0
    effective = min(occupied, bins - 1)
    return math.log(1.0 - effective / bins) / math.log(1.0 - 1.0 / bins)


def occupancy_estimate_is_valid(balls: int, bins: int) -> bool:
    """Return True when (A, K) lies in the regime Lemma 3 analyses.

    Lemma 3 requires ``100 <= A <= K/20`` with ``K = 1/eps^2``; the full
    algorithm arranges (via subsampling) for the surviving ball count to
    land in this window.
    """
    return 100 <= balls <= bins / 20


@dataclass
class OccupancyTrial:
    """Result of one simulated balls-into-bins experiment.

    Attributes:
        balls: number of balls thrown.
        bins: number of bins.
        occupied: number of bins that received at least one ball.
        inverted_estimate: ball-count estimate from :func:`invert_occupancy`.
    """

    balls: int
    bins: int
    occupied: int
    inverted_estimate: float


def simulate_occupancy(
    balls: int,
    bins: int,
    trials: int,
    hash_factory: Optional[Callable[[random.Random], Callable[[int], int]]] = None,
    seed: Optional[int] = None,
) -> List[OccupancyTrial]:
    """Simulate the balls-and-bins process under a supplied hash family.

    Args:
        balls: number of balls per trial.
        bins: number of bins.
        trials: number of independent trials.
        hash_factory: a callable that, given a ``random.Random``, returns a
            function mapping ball index to bin.  When omitted, a truly
            random assignment is used (the Fact 1 / Lemma 1 reference
            behaviour).  Passing a factory that draws a
            :class:`repro.hashing.kwise.KWiseHash` reproduces the limited
            independence setting of Lemma 2.
        seed: RNG seed for reproducibility.

    Returns:
        One :class:`OccupancyTrial` per trial.
    """
    if balls < 0:
        raise ParameterError("balls must be non-negative")
    if bins < 1:
        raise ParameterError("bins must be positive")
    if trials <= 0:
        raise ParameterError("trials must be positive")
    rng = random.Random(seed)
    results: List[OccupancyTrial] = []
    for _ in range(trials):
        if hash_factory is None:
            assignment: Callable[[int], int] = lambda ball: rng.randrange(bins)
        else:
            assignment = hash_factory(rng)
        hit = set()
        for ball in range(balls):
            hit.add(assignment(ball))
        occupied = len(hit)
        results.append(
            OccupancyTrial(
                balls=balls,
                bins=bins,
                occupied=occupied,
                inverted_estimate=invert_occupancy(occupied, bins) if bins >= 2 else float(occupied),
            )
        )
    return results


def occupancy_statistics(trials: Sequence[OccupancyTrial]) -> dict:
    """Return mean/variance summaries of a batch of occupancy trials.

    Provided for the Lemma 2/3 benchmark, which compares these empirical
    moments against Fact 1 and the Lemma 1 bound under different hash
    families.
    """
    if not trials:
        raise ParameterError("occupancy_statistics requires at least one trial")
    occupied = [trial.occupied for trial in trials]
    estimates = [trial.inverted_estimate for trial in trials]
    count = len(trials)
    mean_occupied = sum(occupied) / count
    mean_estimate = sum(estimates) / count
    var_occupied = sum((value - mean_occupied) ** 2 for value in occupied) / count
    return {
        "trials": count,
        "mean_occupied": mean_occupied,
        "variance_occupied": var_occupied,
        "mean_estimate": mean_estimate,
        "expected_occupied": expected_occupied_bins(trials[0].balls, trials[0].bins),
        "variance_bound": occupancy_variance_bound(trials[0].balls, trials[0].bins),
    }
