"""The shared hash-function bundle used by the KNW F0 components.

Figure 3 and the small-F0 subroutine of Section 3.3 deliberately share
their hash functions: the paper's ``h3`` is given range ``K' = 2K`` and the
main algorithm evaluates it "modulo K when used in Figure 3".  Bundling the
three functions in one object lets the combined estimator
(:class:`repro.core.knw.KNWDistinctCounter`) pay for them once, exactly as
the paper accounts, while still allowing each component to be constructed
stand-alone (it then builds a private bundle).

The bundle contains:

* ``h1 : [n] -> [0, n-1]`` — pairwise independent; its ``lsb`` gives the
  subsampling level of an item.
* ``h2 : [n] -> [(2K)^3]`` — pairwise independent; spreads items so the
  ones that matter are perfectly hashed w.h.p.
* ``h3 : [(2K)^3] -> [2K]`` — k-wise independent for
  ``k = Theta(log(1/eps)/log log(1/eps))`` (Lemma 2's requirement); the
  main sketch reduces its output modulo ``K``.
"""

from __future__ import annotations

import random
from typing import Optional

from ..bitstructs.space import SpaceBreakdown
from ..exceptions import ParameterError
from ..hashing.bitops import is_power_of_two, lsb, lsb_batch
from ..hashing.kwise import KWiseHash, required_independence
from ..hashing.siegel import SiegelHash
from ..hashing.universal import PairwiseHash
from ..vectorize import as_key_array, np

__all__ = ["F0HashBundle"]


class F0HashBundle:
    """The (h1, h2, h3) triple shared by the F0 components.

    Attributes:
        universe_size: the universe size ``n``.
        bins: the main sketch's ``K`` (a power of two).
        extended_bins: ``2K`` — the range of ``h3`` (shared with small-F0).
    """

    def __init__(
        self,
        universe_size: int,
        bins: int,
        eps_hint: float,
        seed: Optional[int] = None,
        use_fast_family: bool = False,
    ) -> None:
        """Draw the three hash functions.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            bins: the main sketch's ``K``; must be a power of two >= 32.
            eps_hint: the relative-error target, used only to size the
                independence of ``h3`` per Lemma 2.
            seed: RNG seed.
            use_fast_family: draw ``h3`` from the Siegel-style constant-time
                family (Theorem 7) instead of the Carter--Wegman polynomial
                family — the Theorem 9 configuration.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if bins < 32 or not is_power_of_two(bins):
            raise ParameterError("bins (K) must be a power of two and at least 32")
        if not 0.0 < eps_hint < 1.0:
            raise ParameterError("eps_hint must lie in (0, 1)")
        self.universe_size = universe_size
        self.bins = bins
        self.extended_bins = 2 * bins
        rng = random.Random(seed)
        self._level_limit = max((universe_size - 1).bit_length(), 1)
        domain_cubed = self.extended_bins ** 3
        self.h1 = PairwiseHash(universe_size, universe_size, rng=rng)
        self.h2 = PairwiseHash(universe_size, domain_cubed, rng=rng)
        if use_fast_family:
            self.h3 = SiegelHash(domain_cubed, self.extended_bins, rng=rng)
        else:
            independence = required_independence(self.extended_bins, eps_hint)
            self.h3 = KWiseHash(
                domain_cubed, self.extended_bins, independence=independence, rng=rng
            )
        # One-entry memo so that the combined estimator, which feeds the same
        # item to both the small-F0 subroutine and the main sketch, evaluates
        # the h3(h2(.)) composition once per stream update.
        self._last_item = -1
        self._last_extended_bin = -1

    # -- the three per-item quantities the algorithms consume ----------------------

    def level(self, item: int) -> int:
        """Return ``lsb(h1(item))`` — the subsampling level of the item."""
        return lsb(self.h1(item), zero_value=self._level_limit)

    def extended_bin(self, item: int) -> int:
        """Return ``h3(h2(item))`` in ``[0, 2K)`` (the small-F0 bin)."""
        if item == self._last_item:
            return self._last_extended_bin
        value = self.h3(self.h2(item))
        self._last_item = item
        self._last_extended_bin = value
        return value

    def main_bin(self, item: int) -> int:
        """Return ``h3(h2(item)) mod K`` (the Figure 3 counter index)."""
        return self.extended_bin(item) % self.bins

    # -- batch forms ---------------------------------------------------------------

    def level_batch(self, items):
        """Return ``lsb(h1(item))`` for a whole chunk (``int64`` ndarray).

        The batch counterpart of :meth:`level`: one pairwise-hash pass and
        one vectorized de Bruijn extraction.
        """
        keys = as_key_array(items, self.universe_size)
        # lsb_batch handles object-dtype hashes (universes beyond 2^61)
        # exactly, via the scalar lsb.
        return lsb_batch(self.h1.hash_batch_validated(keys), zero_value=self._level_limit)

    def extended_bin_batch(self, items):
        """Return ``h3(h2(item))`` in ``[0, 2K)`` for a whole chunk.

        The combined estimator computes this once per chunk and shares the
        result between the small-F0 subroutine and the Figure 3 core —
        the batch equivalent of the scalar one-entry memo below.
        """
        keys = as_key_array(items, self.universe_size)
        spread = self.h2.hash_batch_validated(keys)
        # SiegelHash (the Theorem 9 bundle) has no pre-validated form; its
        # memoised walk validates internally.
        if hasattr(self.h3, "hash_batch_validated"):
            return self.h3.hash_batch_validated(spread)
        return self.h3.hash_batch(spread)

    def main_bin_batch(self, items, extended_bins=None):
        """Return the Figure 3 counter indices for a whole chunk.

        Args:
            items: the chunk of identifiers.
            extended_bins: a precomputed :meth:`extended_bin_batch` result
                to reduce modulo ``K`` instead of re-hashing (the sharing
                the paper prescribes for the combined estimator).
        """
        if extended_bins is None:
            extended_bins = self.extended_bin_batch(items)
        if extended_bins.dtype == object:
            return (extended_bins % self.bins).astype(np.int64)
        # Extended bins live in [0, 2K); int64 avoids mixed-dtype promotion.
        return extended_bins.astype(np.int64) % np.int64(self.bins)

    @property
    def level_limit(self) -> int:
        """The value assigned to ``lsb(0)``, i.e. ``log2(n)``."""
        return self._level_limit

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost of the bundle."""
        breakdown = SpaceBreakdown("f0-hash-bundle")
        breakdown.add_component("h1", self.h1)
        breakdown.add_component("h2", self.h2)
        breakdown.add_component("h3", self.h3)
        return breakdown

    def space_bits(self) -> int:
        """Return the total space cost of the three functions."""
        return self.space_breakdown().total()
