"""The time-optimal KNW implementation (Section 3.4, Theorem 9).

Figure 3 as literally written is space-optimal but not O(1)-time: a rebase
(the ``R > 2^est`` branch) rewrites all ``K`` counters, reporting scans the
counters to compute ``T``, and reading a bit-packed counter needs to find
its position.  Section 3.4 removes each obstacle:

* **Counter storage** uses the Blandford--Blelloch variable-bit-length
  array (Theorem 8) — :class:`repro.bitstructs.vla.VariableBitLengthArray`
  here — so reads and writes of variable-width entries are O(1).
* **Hashing** uses Siegel's constant-evaluation-time high-independence
  family (Theorem 7) for ``h3`` — :class:`repro.hashing.siegel.SiegelHash`
  here — and the fast RoughEstimator of Lemma 5.
* **Rebasing** is deamortised: the shift of all ``K`` counters is spread
  over the following updates (a constant amount of copying per update),
  while reads remain correct because a counter not yet swept is interpreted
  with the pending shift applied on the fly.  A value histogram (counter
  values are bounded by ``log n``) makes the occupancy count ``T`` — and
  hence reporting — O(1) even across rebases.
* **Reporting** replaces ``ln(1 - T/K)`` with the Appendix A.2 lookup table
  (:class:`repro.bitstructs.loglookup.LogLookupTable`), whose relative
  error ``1/sqrt(K) = eps`` is within the estimator's error budget.

The guarantees are those of Theorems 3-4 with the constants of Lemma 5
(the rough estimate is a 16- rather than 8-approximation).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Set

from ..bitstructs.loglookup import LogLookupTable
from ..bitstructs.space import SpaceBreakdown
from ..bitstructs.vla import VariableBitLengthArray
from ..estimators.base import CardinalityEstimator
from ..exceptions import ParameterError, SketchFailure
from ..hashing.bitops import is_power_of_two
from .hashes import F0HashBundle
from .knw import _counter_bits, bins_for_eps
from .rough_estimator import FastRoughEstimator, rough_counter_count
from .small_f0 import SmallF0Estimator

__all__ = ["FastKNWSketch", "FastKNWDistinctCounter", "REBASE_CHUNK"]

#: Number of counters normalised in storage per stream update while a
#: rebase sweep is pending.  The paper copies 3*256 counters per update so
#: the sweep finishes within K/256 updates; any constant works for the
#: amortisation argument.
REBASE_CHUNK = 768


class FastKNWSketch(CardinalityEstimator):
    """O(1)-update, O(1)-report version of the Figure 3 sketch.

    Valid (like Figure 3) once ``F0 >= K/32``; the complete estimator
    :class:`FastKNWDistinctCounter` adds the small-F0 regime.
    """

    name = "knw-fast-core"
    requires_random_oracle = False

    FAIL_FACTOR = 3

    #: The paper's subsampling offset constant (see ``KNWFigure3Sketch``).
    PAPER_OFFSET_DIVISOR = 32

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        bins: Optional[int] = None,
        seed: Optional[int] = None,
        hashes: Optional[F0HashBundle] = None,
        rough: Optional[FastRoughEstimator] = None,
        rough_counters: Optional[int] = None,
        offset_divisor: Optional[int] = None,
    ) -> None:
        """Create the sketch (same parameter contract as ``KNWFigure3Sketch``).

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: relative-error target; determines ``K`` when ``bins`` is omitted.
            bins: explicit ``K`` (power of two, >= 32).
            seed: RNG seed.
            hashes: shared hash bundle (should be built with
                ``use_fast_family=True``); created internally when omitted.
            rough: externally supplied fast rough estimator.
            rough_counters: ``K_RE`` override for the internal rough estimator.
            offset_divisor: the rebasing constant ``c`` in
                ``b = max(0, est - log2(K/c))``; the paper uses 32 (see the
                discussion on ``KNWFigure3Sketch``).
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.bins = bins if bins is not None else bins_for_eps(eps)
        if self.bins < 32 or not is_power_of_two(self.bins):
            raise ParameterError("bins (K) must be a power of two and at least 32")
        self.eps = eps
        self.seed = seed
        self.offset_divisor = (
            offset_divisor if offset_divisor is not None else self.PAPER_OFFSET_DIVISOR
        )
        if (
            self.offset_divisor < 1
            or self.offset_divisor > self.bins
            or not is_power_of_two(self.offset_divisor)
        ):
            raise ParameterError("offset_divisor must be a power of two in [1, bins]")
        rng = random.Random(seed)
        self._owns_hashes = hashes is None
        self.hashes = hashes if hashes is not None else F0HashBundle(
            universe_size,
            self.bins,
            eps_hint=eps,
            seed=rng.randrange(1 << 62),
            use_fast_family=True,
        )
        self._owns_rough = rough is None
        if rough_counters is None:
            rough_counters = max(
                rough_counter_count(universe_size),
                int(math.ceil(math.log2(universe_size))),
            )
        self.rough = rough if rough is not None else FastRoughEstimator(
            universe_size, counters_per_copy=rough_counters, seed=rng.randrange(1 << 62)
        )

        level_limit = self.hashes.level_limit
        # Storage: stored value = C + 1 (so -1 maps to 0) relative to the
        # base that was current when the entry was last normalised.
        self._storage = VariableBitLengthArray(self.bins, initial_value=0)
        # Histogram of *effective* counter values, indexed by value + 1
        # (slot 0 counts counters equal to -1).  Size O(log n).
        self._histogram: List[int] = [0] * (level_limit + 2)
        self._histogram[0] = self.bins
        self._base_level = 0
        self._est_exponent = 0
        self._bit_budget = 0  # sum over counters of ceil(log2(C + 2)), maintained incrementally
        self._failed = False
        # Deamortised-rebase bookkeeping.
        self._pending_shift = 0
        self._sweep_cursor = self.bins  # >= bins means no sweep pending
        self._early_swept: Set[int] = set()
        # O(1) reporting machinery.
        self._log_table = LogLookupTable(self.bins)
        self._log_one_minus_inv = math.log(1.0 - 1.0 / self.bins)

    # -- counter access respecting the pending sweep ---------------------------------

    def _effective_read(self, index: int) -> int:
        """Return the counter value relative to the *current* base."""
        raw = self._storage.read(index) - 1
        if self._sweep_pending() and index >= self._sweep_cursor and index not in self._early_swept:
            if raw < 0:
                return -1
            return max(-1, raw - self._pending_shift)
        return raw

    def _normalised_write(self, index: int, value: int) -> None:
        """Store ``value`` (relative to the current base) at ``index``."""
        self._storage.update(index, value + 1)
        if self._sweep_pending() and index >= self._sweep_cursor:
            self._early_swept.add(index)

    def _sweep_pending(self) -> bool:
        return self._sweep_cursor < self.bins

    def _advance_sweep(self, budget: int) -> None:
        """Normalise up to ``budget`` storage entries toward the current base."""
        while budget > 0 and self._sweep_pending():
            index = self._sweep_cursor
            if index not in self._early_swept:
                raw = self._storage.read(index) - 1
                if raw >= 0:
                    self._storage.update(index, max(-1, raw - self._pending_shift) + 1)
            self._sweep_cursor += 1
            budget -= 1
        if not self._sweep_pending():
            self._pending_shift = 0
            self._early_swept.clear()

    def _finish_sweep(self) -> None:
        self._advance_sweep(self.bins)

    # -- the counter-value histogram --------------------------------------------------

    def _histogram_move(self, old_value: int, new_value: int) -> None:
        self._histogram[old_value + 1] -= 1
        self._histogram[new_value + 1] += 1

    def _histogram_shift(self, shift: int) -> None:
        """Apply ``C_j <- max(-1, C_j - shift)`` to the histogram in O(log n)."""
        if shift <= 0:
            return
        size = len(self._histogram)
        shifted = [0] * size
        shifted[0] = sum(self._histogram[: min(shift + 1, size)])
        for slot in range(shift + 1, size):
            shifted[slot - shift] += self._histogram[slot]
        self._histogram = shifted

    def _recompute_bit_budget(self) -> None:
        """Recompute the paper's ``A`` from the histogram (O(log n))."""
        total = 0
        for slot, count in enumerate(self._histogram):
            value = slot - 1
            total += count * _counter_bits(value)
        self._bit_budget = total

    # -- update path ------------------------------------------------------------------

    def update(self, item: int) -> None:
        """Process one stream item with O(1) amortised work."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        index = self.hashes.main_bin(item)
        level = self.hashes.level(item)
        current = self._effective_read(index)
        candidate = max(current, level - self._base_level)
        if candidate != current:
            self._histogram_move(current, candidate)
            self._bit_budget += _counter_bits(candidate) - _counter_bits(current)
            self._normalised_write(index, candidate)
        if self._bit_budget > self.FAIL_FACTOR * self.bins:
            self._failed = True

        self._advance_sweep(REBASE_CHUNK)

        self.rough.update(item)
        rough_estimate = self.rough.estimate()
        if rough_estimate > float(1 << self._est_exponent):
            self._start_rebase(rough_estimate)

    def _start_rebase(self, rough_estimate: float) -> None:
        self._est_exponent = max(int(math.ceil(math.log2(rough_estimate))), 0)
        new_base = max(
            0, self._est_exponent - int(math.log2(self.bins // self.offset_divisor))
        )
        if new_base == self._base_level:
            return
        if self._sweep_pending():
            # A second rebase arrived before the previous sweep finished
            # (possible only when the rough estimate jumps by a large
            # factor, which the paper handles by finishing the copy).
            self._finish_sweep()
        shift = new_base - self._base_level
        self._base_level = new_base
        self._histogram_shift(shift)
        self._recompute_bit_budget()
        self._pending_shift = shift
        self._sweep_cursor = 0
        self._early_swept.clear()
        self._advance_sweep(REBASE_CHUNK)

    # -- reporting ---------------------------------------------------------------------

    def has_failed(self) -> bool:
        """Return True when the sketch has hit the FAIL condition."""
        return self._failed

    def occupied_counters(self) -> int:
        """Return ``T = |{j : C_j >= 0}|`` in O(1) from the histogram."""
        return self.bins - self._histogram[0]

    def estimate(self) -> float:
        """Return the estimate using the O(1) log-lookup table.

        Raises:
            SketchFailure: if the sketch previously hit the FAIL condition.
        """
        if self._failed:
            raise SketchFailure(
                "fast KNW sketch exceeded its %dK-bit counter budget" % self.FAIL_FACTOR
            )
        occupied = self.occupied_counters()
        if occupied == 0:
            return 0.0
        capped = min(occupied, self._log_table.max_argument)
        numerator = self._log_table.lookup(capped)
        balls = numerator / self._log_one_minus_inv
        return float(1 << self._base_level) * balls

    # -- space accounting ----------------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space budget."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add_component("vla-counters", self._storage)
        level_limit = self.hashes.level_limit
        histogram_bits = (level_limit + 2) * max(self.bins.bit_length(), 1)
        breakdown.add("value-histogram", histogram_bits)
        breakdown.add_component("log-lookup-table", self._log_table)
        loglog_n = max(math.ceil(math.log2(max(level_limit, 2))), 1)
        breakdown.add("base-level-b", loglog_n)
        breakdown.add("est-register", loglog_n)
        breakdown.add("bit-budget-register-A", max(self.bins.bit_length() + 2, 1))
        if self._owns_hashes:
            breakdown.add("hash-bundle", self.hashes.space_bits())
        if self._owns_rough:
            breakdown.add("rough-estimator", self.rough.space_bits())
        return breakdown

    def space_bits(self) -> int:
        """Return the sketch's total space in bits."""
        return self.space_breakdown().total()


class FastKNWDistinctCounter(CardinalityEstimator):
    """Complete O(1)-time KNW estimator (small-F0 handover included).

    The user-facing counterpart of :class:`repro.core.knw.KNWDistinctCounter`
    with the Section 3.4 machinery; update and reporting work is constant
    per call (amortised across the deamortised rebase sweeps).
    """

    name = "knw-fast"
    requires_random_oracle = False

    #: Practical rebasing constant; see ``KNWDistinctCounter.PRACTICAL_OFFSET_DIVISOR``.
    PRACTICAL_OFFSET_DIVISOR = 2

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        seed: Optional[int] = None,
        bins: Optional[int] = None,
        rough_counters: Optional[int] = None,
        offset_divisor: Optional[int] = None,
    ) -> None:
        """Create the estimator (same parameter contract as ``KNWDistinctCounter``)."""
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        if not 0.0 < eps < 1.0:
            raise ParameterError("eps must lie in (0, 1)")
        self.universe_size = universe_size
        self.eps = eps
        self.seed = seed
        self.bins = bins if bins is not None else bins_for_eps(eps)
        self.offset_divisor = (
            offset_divisor if offset_divisor is not None else self.PRACTICAL_OFFSET_DIVISOR
        )
        rng = random.Random(seed)
        self.hashes = F0HashBundle(
            universe_size,
            self.bins,
            eps_hint=eps,
            seed=rng.randrange(1 << 62),
            use_fast_family=True,
        )
        self.small = SmallF0Estimator(self.hashes)
        self.core = FastKNWSketch(
            universe_size,
            eps=eps,
            bins=self.bins,
            seed=rng.randrange(1 << 62),
            hashes=self.hashes,
            rough_counters=rough_counters,
            offset_divisor=self.offset_divisor,
        )

    def update(self, item: int) -> None:
        """Process one stream item."""
        self.small.update(item)
        self.core.update(item)

    def estimate(self) -> float:
        """Return the current estimate (small-regime handover as in Theorem 4)."""
        if not self.small.is_large():
            return self.small.estimate()
        try:
            return self.core.estimate()
        except SketchFailure:
            return self.small.estimate()

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space budget (hash bundle charged once)."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add("hash-bundle", self.hashes.space_bits())
        breakdown.add("small-f0", self.small.space_bits())
        breakdown.add("fast-core", self.core.space_bits())
        return breakdown

    def space_bits(self) -> int:
        """Return the estimator's total space in bits."""
        return self.space_breakdown().total()
