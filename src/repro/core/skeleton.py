"""The Figure 4 algorithm skeleton: the uncompressed bitmatrix estimator.

Figure 4 of the paper presents the conceptual scheme both KNW algorithms
instantiate: maintain a ``log(n) x K`` bitmatrix ``A``; on an update for
item ``i`` set ``A[lsb(h1(i)), h3(h2(i))] = 1``; given an oracle
constant-factor approximation ``R`` of F0, read row
``i* = log(16 R / K)`` and output ``(32 R / K) * ln(1 - T/K)/ln(1 - 1/K)``
where ``T`` is the number of ones in that row.

The space-optimal algorithm of Figure 3 is "just a space-optimised
implementation of this approach" (Section 4), so this class serves as the
reference implementation the compressed sketch is tested against, as the
scaffold the L0 algorithm replaces bit-by-bit with fingerprint counters,
and as the ablation point measuring what the compression saves (experiment
E12).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional, Union

from ..bitstructs.bitmatrix import BitMatrix
from ..bitstructs.space import SpaceBreakdown
from ..estimators.base import CardinalityEstimator
from ..exceptions import ParameterError
from .balls_bins import invert_occupancy
from .hashes import F0HashBundle
from .knw import bins_for_eps
from .rough_estimator import RoughEstimator

__all__ = ["BitMatrixSkeleton"]

#: Type of the oracle supplying R: either a fixed value or a callable
#: returning the current rough estimate.
OracleType = Union[float, Callable[[], float]]


class BitMatrixSkeleton(CardinalityEstimator):
    """The uncompressed Figure 4 estimator.

    Attributes:
        universe_size: the universe size ``n``.
        bins: the number of columns ``K``.
    """

    name = "knw-bitmatrix-skeleton"
    requires_random_oracle = False

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.05,
        bins: Optional[int] = None,
        seed: Optional[int] = None,
        oracle: Optional[OracleType] = None,
    ) -> None:
        """Create the skeleton estimator.

        Args:
            universe_size: the universe size ``n`` (at least 2).
            eps: relative-error target (sets ``K`` when ``bins`` is omitted).
            bins: explicit column count ``K``.
            seed: RNG seed for the hash bundle and internal RoughEstimator.
            oracle: the source of the constant-factor approximation ``R``
                required by Step 4 of Figure 4.  May be a fixed number
                (e.g. the exact F0, for tests isolating the estimator), a
                callable returning the current value, or ``None`` to use an
                internally maintained :class:`RoughEstimator` — the
                configuration the real algorithms use.
        """
        if universe_size < 2:
            raise ParameterError("universe_size must be at least 2")
        self.universe_size = universe_size
        self.bins = bins if bins is not None else bins_for_eps(eps)
        rng = random.Random(seed)
        self.hashes = F0HashBundle(
            universe_size, self.bins, eps_hint=eps, seed=rng.randrange(1 << 62)
        )
        rows = self.hashes.level_limit + 1
        self.matrix = BitMatrix(rows, self.bins)
        self._external_oracle = oracle
        self._rough: Optional[RoughEstimator] = None
        if oracle is None:
            self._rough = RoughEstimator(universe_size, seed=rng.randrange(1 << 62))

    def update(self, item: int) -> None:
        """Set the bit at (level of the item, bin of the item)."""
        if not 0 <= item < self.universe_size:
            raise ParameterError(
                "item %d outside universe [0, %d)" % (item, self.universe_size)
            )
        level = self.hashes.level(item)
        column = self.hashes.main_bin(item)
        self.matrix.set(min(level, self.matrix.rows - 1), column, 1)
        if self._rough is not None:
            self._rough.update(item)

    def _oracle_value(self) -> float:
        if self._rough is not None:
            return self._rough.estimate()
        if callable(self._external_oracle):
            return float(self._external_oracle())
        return float(self._external_oracle)  # type: ignore[arg-type]

    def estimate(self) -> float:
        """Return the Figure 4 estimate.

        The row index is ``max(0, round(log2(16 R / K)))`` and the output
        is ``(32 R / K) * ln(1 - T/K) / ln(1 - 1/K)``.  Because row ``r``
        holds the items whose level is *exactly* ``r`` (subsampling
        probability ``2^-(r+1)``), the scaling factor is ``2^(r+1)``, which
        equals the paper's ``32 R / K`` at ``r = log(16 R / K)``.  When the
        oracle has not committed yet (``R <= 0``) row 0 is used, which is
        the natural small-stream behaviour.
        """
        oracle = self._oracle_value()
        if oracle <= 0:
            row = 0
        else:
            row = int(round(math.log2(max(16.0 * oracle / self.bins, 1.0))))
            row = min(max(row, 0), self.matrix.rows - 1)
        scale = float(1 << (row + 1))
        occupied = self.matrix.row_ones(row)
        return scale * invert_occupancy(occupied, self.bins)

    def space_breakdown(self) -> SpaceBreakdown:
        """Return the itemised space cost (the point of Figure 3 is that this is large)."""
        breakdown = SpaceBreakdown(self.name)
        breakdown.add_component("bitmatrix", self.matrix)
        breakdown.add("hash-bundle", self.hashes.space_bits())
        if self._rough is not None:
            breakdown.add("rough-estimator", self._rough.space_bits())
        return breakdown

    def space_bits(self) -> int:
        """Return the estimator's total space in bits."""
        return self.space_breakdown().total()
