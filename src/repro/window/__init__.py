"""Sliding-window distinct counting subsystem.

* :class:`~repro.window.windowed.WindowedSketch` — a bounded ring of
  per-epoch mergeable sketches answering "distinct over the last ``k``
  epochs" by memoized merge-rollup (one merge per query, amortized).
* :class:`~repro.window.windowed.WindowedSketchStore` — the keyed
  counterpart: one :class:`~repro.store.store.SketchStore` per epoch,
  merged key-wise for per-entity window queries.

Epoch-range sharding lives in
:func:`repro.parallel.parallel_ingest_windowed` /
:func:`repro.parallel.parallel_ingest_windowed_keyed`; timestamped
workload generation in :func:`repro.streams.generators.windowed_uniform_stream`.
"""

from .windowed import (
    WindowedSketch,
    WindowedSketchStore,
    epoch_runs,
    ingest_epoch_sketch,
    ingest_epoch_store,
)

__all__ = [
    "WindowedSketch",
    "WindowedSketchStore",
    "epoch_runs",
    "ingest_epoch_sketch",
    "ingest_epoch_store",
]
