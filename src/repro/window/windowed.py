"""Sliding-window distinct counting: rings of per-epoch mergeable sketches.

The paper's motivating monitoring applications (port-scan and worm
detection a la Estan et al.) are inherently *windowed*: an operator asks
"how many distinct sources in the last ``k`` windows", not "since
process start".  A :class:`WindowedSketch` answers exactly that by
keeping a bounded ring of per-epoch sketches — one sketch of a single
mergeable family per time bucket — and serving window queries by
*merge-rollup* over the newest ``k`` epochs instead of re-ingesting any
raw data:

* **Exactness.**  For max/OR families (HyperLogLog registers, linear
  counting bitmaps, KMV bottom-k sets, ...) the merge of the per-epoch
  sketches is *bit-identical* to one same-seed sketch fed exactly the
  window's updates, because the per-counter reductions are idempotent
  and order-insensitive.  For the additive turnstile (L0) families the
  same holds because the sketches are linear: counters are sums of
  deltas modulo fixed primes, and a window's sum splits over its epochs.
  (The one caveat mirrors ``shard_deterministic``: F0 configurations
  with *lazily* drawn hash families — the default ``knw`` rough
  estimator — are merge-compatible but only approximation-equivalent,
  exactly as in :mod:`repro.parallel`.)
* **Cost.**  Suffix merges over the closed epochs are memoized per
  epoch, so answering every window width ``k = 1..retention`` costs
  O(retention) merges per epoch in total — one merge per query,
  amortized, instead of ``k`` merges (let alone a full re-ingest) per
  query.

:class:`WindowedSketchStore` is the keyed counterpart: each epoch is a
whole :class:`~repro.store.store.SketchStore` row set, merged key-wise
(:meth:`~repro.store.store.SketchStore.merge_from`) for window queries
— "distinct destinations per source over the last ``k`` windows" as one
rollup.

Both ring types serialize through the standard :mod:`repro.serialize`
machinery (``state_dict`` / ``to_bytes``) and shard across processes by
*epoch range* via :func:`repro.parallel.parallel_ingest_windowed` /
:func:`repro.parallel.parallel_ingest_windowed_keyed`: epochs never span
shards, so the merge-back (in fact, wholesale adoption of each worker's
epoch sketches) is exact for every family.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Optional, Tuple

from .. import serialize
from ..estimators.base import (
    CardinalityEstimator,
    SerializableState,
    TurnstileEstimator,
)
from ..exceptions import MergeError, ParameterError, UpdateError
from ..store.store import SketchStore
from ..vectorize import np, require_numpy

__all__ = [
    "WindowedSketch",
    "WindowedSketchStore",
    "epoch_runs",
    "ingest_epoch_sketch",
    "ingest_epoch_store",
]


def epoch_runs(epochs, expected_length: Optional[int] = None) -> List[Tuple[int, int, int]]:
    """Split a non-decreasing epoch column into runs of equal epoch.

    Args:
        epochs: per-update epoch numbers (integer sequence or ndarray),
            non-decreasing — timestamped streams arrive in time order.
        expected_length: when given, the epoch column must have exactly
            this many entries (one per update).

    Returns:
        ``(epoch, start, stop)`` triples, one per distinct epoch value,
        in stream order; ``[start, stop)`` indexes the update arrays.
    """
    require_numpy("windowed ingestion")
    values = epochs if isinstance(epochs, np.ndarray) else np.asarray(epochs)
    if values.ndim != 1:
        raise ParameterError("epoch values must form a one-dimensional sequence")
    if values.size and values.dtype.kind not in ("i", "u"):
        raise ParameterError("epoch values must be integers")
    values = values.astype(np.int64, copy=False)
    if expected_length is not None and len(values) != expected_length:
        raise ParameterError("windowed ingestion needs one epoch per update")
    if values.size == 0:
        return []
    steps = np.diff(values)
    if bool((steps < 0).any()):
        raise ParameterError("epoch values must be non-decreasing")
    boundaries = np.flatnonzero(steps) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
    stops = np.concatenate((boundaries, np.asarray([len(values)], dtype=np.int64)))
    return [
        (int(values[start]), int(start), int(stop))
        for start, stop in zip(starts.tolist(), stops.tolist())
    ]


def _feed_epoch(sketch, items, deltas, batch_size: Optional[int], turnstile: bool) -> None:
    """Drive one epoch's updates into ``sketch`` via ``update_batch`` chunks.

    The single chunking policy shared by sequential timestamped ingestion
    and the sharded worker bodies, so both build bit-identical epoch
    sketches (``batch_size=None`` means one batch for the whole run).
    """
    if batch_size is not None and batch_size <= 0:
        raise ParameterError("batch_size must be positive")
    total = len(items)
    step = batch_size if batch_size is not None else max(total, 1)
    for start in range(0, total, step):
        stop = start + step
        if turnstile:
            sketch.update_batch(items[start:stop], deltas[start:stop])
        else:
            sketch.update_batch(items[start:stop])


def _feed_epoch_store(store, keys, items, deltas, batch_size: Optional[int]) -> None:
    """The keyed counterpart of :func:`_feed_epoch`: grouped chunk driving."""
    if batch_size is not None and batch_size <= 0:
        raise ParameterError("batch_size must be positive")
    total = len(items)
    step = batch_size if batch_size is not None else max(total, 1)
    for start in range(0, total, step):
        stop = start + step
        store.update_grouped(
            keys[start:stop],
            items[start:stop],
            None if deltas is None else deltas[start:stop],
        )


def ingest_epoch_sketch(template_blob: bytes, items, deltas, batch_size, turnstile):
    """Build one epoch sketch from an empty-template blob (worker primitive).

    Revives the ring's epoch template and feeds it one epoch's updates
    through :func:`_feed_epoch` — exactly what sequential timestamped
    ingestion does to its open epoch, so an epoch built by a shard worker
    is byte-identical to the sequentially built one.
    """
    sketch = serialize.loads(template_blob)
    _feed_epoch(sketch, items, deltas, batch_size, turnstile)
    return sketch


def ingest_epoch_store(template_blob: bytes, keys, items, deltas, batch_size):
    """Keyed worker primitive: one epoch's keyed batch into a fresh store."""
    store = serialize.loads(template_blob)
    _feed_epoch_store(store, keys, items, deltas, batch_size)
    return store


#: Per-ring memo of the closed-epoch suffix rollups, keyed weakly by the
#: ring so the cache is never serialized (two rings in equal state must
#: serialize byte-identically whether or not they have been queried) and
#: dies with the ring.  Entries self-invalidate when the ring's closed
#: list is replaced (``load_state_dict``) or the epoch advances.
_ROLLUP_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class _EpochRing(SerializableState):
    """Shared ring machinery behind the two windowed types.

    State is the open (current) epoch, the closed epochs oldest-to-newest
    (at most ``retention - 1`` of them), the serialized empty epoch
    template every fresh epoch is revived from, and the absolute index of
    the open epoch.  Subclasses provide the family-specific merge.

    Attributes:
        retention: maximum number of epochs retained, counting the open
            one; older epochs are evicted as the ring advances.
    """

    def __init__(self, template, retention: int) -> None:
        if retention < 1:
            raise ParameterError("retention must be at least 1")
        self.retention = retention
        self._epoch_index = 0
        self._open = template
        self._open_dirty = False
        self._closed: List = []
        self._template_blob = template.to_bytes()

    # -- geometry -------------------------------------------------------------------

    @property
    def epoch_index(self) -> int:
        """Absolute index of the open epoch (epoch 0 opens at construction)."""
        return self._epoch_index

    @property
    def retained_epochs(self) -> int:
        """The number of epochs currently retained, counting the open one."""
        return len(self._closed) + 1

    @property
    def current(self):
        """The open epoch's live sketch/store (advanced integrations only)."""
        return self._open

    @property
    def template_bytes(self) -> bytes:
        """The serialized empty epoch template (the sharding engine ships it)."""
        return self._template_blob

    # -- epoch lifecycle ------------------------------------------------------------

    def advance_epoch(self, count: int = 1) -> None:
        """Close the open epoch ``count`` times, evicting beyond ``retention``.

        Each step files the open epoch as the newest closed epoch, drops
        the oldest epochs until at most ``retention - 1`` closed ones
        remain, and opens a fresh epoch revived from the template.  An
        epoch that saw zero updates closes as an empty sketch — windows
        spanning it are unaffected, exactly as merging an empty sketch
        is a no-op.
        """
        if count < 1:
            raise ParameterError("advance_epoch needs a positive epoch count")
        for _ in range(count):
            self._closed.append(self._open)
            while len(self._closed) > self.retention - 1:
                self._closed.pop(0)
            self._open = self._fresh()
            self._open_dirty = False
            self._epoch_index += 1

    def _fresh(self):
        return serialize.loads(self._template_blob)

    @staticmethod
    def _clone(obj):
        return serialize.loads(obj.to_bytes())

    def _merge(self, target, source) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- window rollups -------------------------------------------------------------

    def _rollups(self, depth: int) -> List:
        """Return the memoized suffix rollups, extended to ``depth`` entries.

        ``rollups[i]`` is the merge of the ``i + 1`` newest *closed*
        epochs.  The list is built incrementally (one clone plus one
        merge per new entry) and cached until the ring's closed set
        changes, so serving every window width each epoch costs one
        merge per width, amortized.
        """
        entry = _ROLLUP_CACHE.get(self)
        if (
            entry is None
            or entry["closed"] is not self._closed
            or entry["epoch"] != self._epoch_index
            or entry["count"] != len(self._closed)
        ):
            entry = {
                "closed": self._closed,
                "epoch": self._epoch_index,
                "count": len(self._closed),
                "rollups": [],
            }
            _ROLLUP_CACHE[self] = entry
        rollups = entry["rollups"]
        while len(rollups) < depth:
            position = len(rollups)
            epoch_state = self._closed[-(position + 1)]
            if position == 0:
                rollups.append(self._clone(epoch_state))
            else:
                merged = self._clone(rollups[position - 1])
                self._merge(merged, epoch_state)
                rollups.append(merged)
        return rollups

    def _check_window(self, k: int) -> None:
        if k < 1:
            raise ParameterError("window width must be at least 1 epoch")
        if k > self.retained_epochs:
            raise ParameterError(
                "window of %d epochs exceeds the %d retained (retention=%d)"
                % (k, self.retained_epochs, self.retention)
            )

    def _window_state(self, k: int):
        """Materialise the merge of the newest ``k`` epochs (open included)."""
        self._check_window(k)
        if k == 1:
            return self._clone(self._open)
        merged = self._clone(self._rollups(k - 1)[k - 2])
        self._merge(merged, self._open)
        return merged

    # -- sharded merge-back ---------------------------------------------------------

    def load_epoch_sketches(self, pairs: Iterable[Tuple[int, object]]) -> None:
        """Absorb externally built epoch states, in epoch order.

        The merge-back half of epoch-range sharding
        (:func:`repro.parallel.parallel_ingest_windowed`): each pair is
        ``(absolute_epoch, state)`` where ``state`` was built from this
        ring's empty epoch template and fed that epoch's updates.  The
        ring advances through any intervening empty epochs; a *pristine*
        open epoch adopts the shipped state wholesale (bit-identical for
        every family, since the worker did to its template clone exactly
        what sequential ingestion would have done to the open epoch),
        while an open epoch that already holds state merges it in.
        """
        for epoch, state in pairs:
            epoch = int(epoch)
            if epoch < self._epoch_index:
                raise ParameterError(
                    "epoch %d precedes the open epoch %d; windowed ingestion "
                    "only moves forward" % (epoch, self._epoch_index)
                )
            if epoch > self._epoch_index:
                self.advance_epoch(epoch - self._epoch_index)
            if type(state) is not type(self._open):
                raise MergeError(
                    "epoch state is a %s, expected %s"
                    % (type(state).__name__, type(self._open).__name__)
                )
            if self._open_pristine():
                self._open = state
            else:
                self._merge(self._open, state)
            self._open_dirty = True

    def _open_pristine(self) -> bool:
        """Whether the open epoch is still exactly the revived template.

        The dirty flag is the fast path, but it can be bypassed by
        mutating the sketch behind :attr:`current` directly (the
        documented advanced-integration escape hatch), so a clean flag is
        confirmed against the template bytes before the adopt branch of
        :meth:`load_epoch_sketches` may replace the open epoch.
        """
        return not self._open_dirty and self._open.to_bytes() == self._template_blob

    # -- space ----------------------------------------------------------------------

    def space_bits(self) -> int:
        """Total footprint of all retained epochs in bits."""
        return self._open.space_bits() + sum(
            epoch.space_bits() for epoch in self._closed
        )


class WindowedSketch(_EpochRing):
    """A sliding-window distinct counter: one mergeable sketch per epoch.

    Wraps a *freshly constructed* estimator (it becomes the open epoch
    and its serialized form becomes the template every later epoch is
    revived from, so all epochs share the seed-derived hash functions).
    Updates land in the open epoch; :meth:`advance_epoch` closes it; and
    :meth:`estimate_window` answers "distinct over the last ``k``
    epochs" by memoized merge-rollup.

    Window queries of width > 1 need the family to support ``merge``
    (every registry family except the fast-variant KNW sketch does);
    width-1 queries and plain ingestion work for any family.

    Attributes:
        retention: maximum epochs retained, counting the open one.
        turnstile: whether the family takes signed ``(item, delta)``
            updates (L0) rather than bare items (F0).
    """

    def __init__(self, template, retention: int) -> None:
        """Wrap ``template`` as the open epoch of a fresh ring.

        Args:
            template: a freshly constructed estimator of any registry
                family — :class:`~repro.estimators.base
                .CardinalityEstimator` (F0) or :class:`~repro.estimators
                .base.TurnstileEstimator` (L0).  Pass it empty: any
                pre-ingested state would be replicated into every epoch.
            retention: maximum number of epochs retained (>= 1).
        """
        if isinstance(template, TurnstileEstimator):
            self.turnstile = True
        elif isinstance(template, CardinalityEstimator):
            self.turnstile = False
        else:
            raise ParameterError(
                "WindowedSketch wraps a CardinalityEstimator or "
                "TurnstileEstimator; got %s" % type(template).__name__
            )
        super().__init__(template, retention)

    def _merge(self, target, source) -> None:
        target.merge(source)

    # -- ingestion ------------------------------------------------------------------

    def update(self, item: int, delta: Optional[int] = None) -> None:
        """Apply one update to the open epoch's sketch."""
        if self.turnstile:
            if delta is None:
                raise UpdateError("turnstile windowed sketch updates need a delta")
            self._open.update(int(item), int(delta))
        else:
            if delta is not None:
                raise UpdateError(
                    "insertion-only windowed sketch updates take no delta"
                )
            self._open.update(int(item))
        self._open_dirty = True

    def update_batch(self, items, deltas=None) -> None:
        """Bulk-ingest a chunk of updates into the open epoch's sketch."""
        if self.turnstile:
            if deltas is None:
                raise UpdateError("turnstile windowed sketch batches need deltas")
            self._open.update_batch(items, deltas)
        else:
            if deltas is not None:
                raise UpdateError(
                    "insertion-only windowed sketch batches take no deltas"
                )
            self._open.update_batch(items)
        if len(items):
            self._open_dirty = True

    def merge_current(self, sketch) -> None:
        """Merge a same-family sketch into the open epoch."""
        if type(sketch) is not type(self._open):
            raise MergeError(
                "cannot merge a %s into a windowed ring of %s"
                % (type(sketch).__name__, type(self._open).__name__)
            )
        self._open.merge(sketch)
        self._open_dirty = True

    def ingest_timestamped(
        self, epochs, items, deltas=None, batch_size: Optional[int] = None
    ) -> None:
        """Ingest a timestamped stream: update ``i`` lands in epoch ``epochs[i]``.

        Epochs must be non-decreasing and not precede the open epoch;
        the ring advances through them (closing empty epochs for gaps)
        and feeds each run through the shared chunking policy, so a
        sharded ingest of the same stream
        (:func:`repro.parallel.parallel_ingest_windowed`) builds
        byte-identical epochs.

        Args:
            epochs: one non-decreasing epoch number per update.
            items: identifiers, aligned with ``epochs``.
            deltas: signed deltas (turnstile families only).
            batch_size: ``update_batch`` chunk length within each epoch
                run (``None`` = one batch per run).
        """
        runs = epoch_runs(epochs, expected_length=len(items))
        if self.turnstile:
            if deltas is None:
                raise UpdateError("turnstile windowed ingestion needs deltas")
            if len(deltas) != len(items):
                raise UpdateError("windowed ingestion needs one delta per item")
        elif deltas is not None:
            raise UpdateError("insertion-only windowed ingestion takes no deltas")
        if runs and runs[0][0] < self._epoch_index:
            raise ParameterError(
                "epoch %d precedes the open epoch %d; windowed ingestion "
                "only moves forward" % (runs[0][0], self._epoch_index)
            )
        for epoch, start, stop in runs:
            if epoch > self._epoch_index:
                self.advance_epoch(epoch - self._epoch_index)
            _feed_epoch(
                self._open,
                items[start:stop],
                None if deltas is None else deltas[start:stop],
                batch_size,
                self.turnstile,
            )
            self._open_dirty = True

    # -- reporting ------------------------------------------------------------------

    def estimate_current(self) -> float:
        """Return the open epoch's estimate (window width 1)."""
        return float(self._open.estimate())

    def estimate_window(self, k: int) -> float:
        """Estimate the distinct count over the newest ``k`` epochs.

        The window always includes the open epoch; ``k == 1`` is the open
        epoch alone.  Costs one merge (amortized) thanks to the memoized
        closed-epoch rollups.
        """
        self._check_window(k)
        if k == 1:
            return float(self._open.estimate())  # no clone for the open epoch
        return float(self._window_state(k).estimate())

    def estimate_all_windows(self) -> List[float]:
        """Return the estimate of every retained window width, 1..retained."""
        return [self.estimate_window(k) for k in range(1, self.retained_epochs + 1)]

    def window_sketch(self, k: int):
        """Materialise the merged sketch of the newest ``k`` epochs.

        For shard-deterministic mergeable families the result is
        bit-identical (equal ``state_dict()``) to a fresh same-seed
        sketch fed exactly the window's updates.
        """
        return self._window_state(k)

    def make_sketch(self):
        """Return a fresh empty sketch revived from the epoch template."""
        return self._fresh()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "WindowedSketch(%s, epoch=%d, retained=%d/%d)" % (
            type(self._open).__name__,
            self._epoch_index,
            self.retained_epochs,
            self.retention,
        )


class WindowedSketchStore(_EpochRing):
    """A sliding-window *keyed* sketch collection: one store per epoch.

    The keyed counterpart of :class:`WindowedSketch`: each epoch holds a
    whole :class:`~repro.store.store.SketchStore` (a sketch per entity),
    window queries merge the newest ``k`` epoch stores key-wise, and the
    answer is "each entity's distinct count over the last ``k`` epochs"
    — exact per the same per-family rollup argument.
    """

    def __init__(self, store: SketchStore, retention: int) -> None:
        """Wrap a freshly constructed (empty) store as the open epoch.

        Args:
            store: the epoch-store template; its family, parameters, and
                seed are shared by every epoch.  Pass it empty.
            retention: maximum number of epochs retained (>= 1).
        """
        if not isinstance(store, SketchStore):
            raise ParameterError("WindowedSketchStore wraps a SketchStore")
        super().__init__(store, retention)

    def _merge(self, target, source) -> None:
        target.merge_from(source)

    @property
    def turnstile(self) -> bool:
        """Whether the epoch stores take signed deltas (turnstile family)."""
        return bool(self._open.array.turnstile)

    @property
    def family(self) -> str:
        return self._open.family

    # -- ingestion ------------------------------------------------------------------

    def update(self, key, item: int, delta: Optional[int] = None) -> None:
        """Apply one keyed update to the open epoch's store."""
        self._open.update(key, item, delta)
        self._open_dirty = True

    def update_batch(self, key, items, deltas=None) -> None:
        """Bulk-ingest one key's updates into the open epoch's store."""
        self._open.update_batch(key, items, deltas)
        if len(items):
            self._open_dirty = True

    def update_grouped(self, keys, items, deltas=None) -> None:
        """Ingest a keyed batch into the open epoch's store (grouped sweep)."""
        self._open.update_grouped(keys, items, deltas)
        if len(items):
            self._open_dirty = True

    def merge_current(self, store: SketchStore) -> None:
        """Merge a compatible store into the open epoch, key-wise."""
        self._open.merge_from(store)
        self._open_dirty = True

    def ingest_timestamped(
        self, epochs, keys, items, deltas=None, batch_size: Optional[int] = None
    ) -> None:
        """Ingest a timestamped keyed stream (see
        :meth:`WindowedSketch.ingest_timestamped`; adds the key column)."""
        runs = epoch_runs(epochs, expected_length=len(items))
        if len(keys) != len(items):
            raise ParameterError("windowed keyed ingestion needs one key per item")
        if deltas is not None and len(deltas) != len(items):
            raise ParameterError("windowed keyed ingestion needs one delta per item")
        if runs and runs[0][0] < self._epoch_index:
            raise ParameterError(
                "epoch %d precedes the open epoch %d; windowed ingestion "
                "only moves forward" % (runs[0][0], self._epoch_index)
            )
        for epoch, start, stop in runs:
            if epoch > self._epoch_index:
                self.advance_epoch(epoch - self._epoch_index)
            _feed_epoch_store(
                self._open,
                keys[start:stop],
                items[start:stop],
                None if deltas is None else deltas[start:stop],
                batch_size,
            )
            self._open_dirty = True

    # -- reporting ------------------------------------------------------------------

    def estimate_current(self) -> Dict:
        """Return every open-epoch key's estimate (window width 1)."""
        return self._open.estimate_all()

    def estimate_window(self, k: int) -> Dict:
        """Return each key's estimate over the newest ``k`` epochs.

        Keys are the union of the keys seen in any of the window's
        epochs (a key idle in recent epochs still reports the distinct
        count of its older in-window activity).
        """
        self._check_window(k)
        if k == 1:
            return self._open.estimate_all()
        return self._window_state(k).estimate_all()

    def estimate_key_window(self, key, k: int) -> float:
        """Return one key's distinct-count estimate over the newest ``k`` epochs."""
        self._check_window(k)
        if k == 1:
            return self._open.estimate(key)
        return self._window_state(k).estimate(key)

    def window_store(self, k: int) -> SketchStore:
        """Materialise the key-wise merge of the newest ``k`` epoch stores."""
        return self._window_state(k)

    def make_store(self) -> SketchStore:
        """Return a fresh empty store revived from the epoch template."""
        return self._fresh()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "WindowedSketchStore(family=%r, epoch=%d, retained=%d/%d)" % (
            self._open.family,
            self._epoch_index,
            self.retained_epochs,
            self.retention,
        )
