"""The ``log(n) x K`` bitmatrix of the Figure 4 algorithm skeleton.

The conceptual starting point of both KNW algorithms is a bitmatrix ``A``
with one row per subsampling level (``log n`` rows) and one column per bin
(``K = 1/eps^2`` columns).  An update for item ``i`` sets
``A[lsb(h1(i)), h3(h2(i))] = 1``; the estimator reads the row indexed by
the rough estimate and inverts the balls-and-bins occupancy.

The space-optimal F0 algorithm (Figure 3) never materialises this matrix —
it collapses each column to the deepest set row, stored as an offset — but
the matrix itself is still needed:

* as the reference implementation (:mod:`repro.core.skeleton`) against
  which the collapsed representation is tested for agreement;
* as the scaffold of the L0 algorithm, where each cell becomes a
  fingerprint counter (Lemma 6) instead of a bit;
* for the ablation benchmark measuring the space cost of *not* collapsing.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..exceptions import ParameterError
from .bitvector import BitVector

__all__ = ["BitMatrix"]


class BitMatrix:
    """A dense 2-D bit array with O(1) get/set.

    Attributes:
        rows: number of rows (subsampling levels).
        columns: number of columns (bins).
    """

    __slots__ = ("rows", "columns", "_rows")

    def __init__(self, rows: int, columns: int) -> None:
        """Create an all-zero ``rows x columns`` bitmatrix.

        Args:
            rows: number of rows; must be positive.
            columns: number of columns; must be positive.
        """
        if rows <= 0:
            raise ParameterError("BitMatrix rows must be positive")
        if columns <= 0:
            raise ParameterError("BitMatrix columns must be positive")
        self.rows = rows
        self.columns = columns
        self._rows = [BitVector(columns) for _ in range(rows)]

    def get(self, row: int, column: int) -> int:
        """Return the bit at ``(row, column)``."""
        self._check_row(row)
        return self._rows[row].get(column)

    def set(self, row: int, column: int, value: int = 1) -> None:
        """Set the bit at ``(row, column)`` to ``value``."""
        self._check_row(row)
        self._rows[row].set(column, value)

    def row(self, row: int) -> BitVector:
        """Return the underlying :class:`BitVector` for ``row`` (not a copy)."""
        self._check_row(row)
        return self._rows[row]

    def row_ones(self, row: int) -> int:
        """Return the number of set bits in ``row`` (the ``T`` of the estimator)."""
        self._check_row(row)
        return self._rows[row].count_ones()

    def column_deepest_row(self, column: int) -> int:
        """Return the largest row index with a set bit in ``column``, or -1.

        This is exactly the quantity the collapsed representation of
        Figure 3 stores per column (before offsetting by ``b``), so tests
        can check the two representations agree.
        """
        if not 0 <= column < self.columns:
            raise ParameterError(
                "column %d outside [0, %d)" % (column, self.columns)
            )
        for row in range(self.rows - 1, -1, -1):
            if self._rows[row].get(column):
                return row
        return -1

    def union_update(self, other: "BitMatrix") -> None:
        """OR another bitmatrix of identical shape into this one (sketch merge)."""
        if not isinstance(other, BitMatrix):
            raise ParameterError("union_update expects a BitMatrix")
        if (other.rows, other.columns) != (self.rows, self.columns):
            raise ParameterError("cannot union BitMatrices of different shapes")
        for row in range(self.rows):
            self._rows[row].union_update(other._rows[row])

    def iter_ones(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(row, column)`` pairs of set bits."""
        for row_index, row in enumerate(self._rows):
            for column in row.iter_ones():
                yield (row_index, column)

    def total_ones(self) -> int:
        """Return the total number of set bits in the matrix."""
        return sum(row.count_ones() for row in self._rows)

    def space_bits(self) -> int:
        """Return the space cost: ``rows * columns`` bits.

        This is the ``O(eps^-2 log n)`` figure the paper's introduction
        quotes for the naive bitmatrix scheme — the number the collapsed
        representation of Figure 3 improves on.
        """
        return self.rows * self.columns

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ParameterError("row %d outside [0, %d)" % (row, self.rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "BitMatrix(rows=%d, columns=%d)" % (self.rows, self.columns)
