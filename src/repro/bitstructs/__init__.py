"""Bit-level data-structure substrate for the KNW reproduction.

* :mod:`repro.bitstructs.bitvector` — packed bitvector (small-F0 bits,
  linear counting, bitmatrix rows).
* :mod:`repro.bitstructs.bitmatrix` — the ``log(n) x K`` matrix of the
  Figure 4 skeleton.
* :mod:`repro.bitstructs.vla` — variable-bit-length array
  (Blandford--Blelloch, paper Theorem 8) for the bit-packed offset counters.
* :mod:`repro.bitstructs.packed` — fixed-width packed counter arrays
  (RoughEstimator counters, LogLog/HLL registers).
* :mod:`repro.bitstructs.loglookup` — O(1) natural-log lookup table
  (Appendix A.2, Lemma 7).
* :mod:`repro.bitstructs.space` — the ``space_bits()`` protocol and
  space-budget helpers used by the Figure-1 space benchmark.
"""

from .bitmatrix import BitMatrix
from .bitvector import BitVector
from .loglookup import LogLookupTable
from .packed import PackedCounterArray
from .space import (
    SizedBits,
    SpaceBreakdown,
    bits_for_counter,
    bits_for_value,
    total_space_bits,
)
from .vla import VariableBitLengthArray

__all__ = [
    "BitMatrix",
    "BitVector",
    "LogLookupTable",
    "PackedCounterArray",
    "SizedBits",
    "SpaceBreakdown",
    "bits_for_counter",
    "bits_for_value",
    "total_space_bits",
    "VariableBitLengthArray",
]
