"""Variable-bit-length array (Blandford--Blelloch) for the packed counters.

The space-optimal F0 algorithm stores ``K = 1/eps^2`` counters whose values
are *offsets* from the current base level ``b``.  The paper's analysis
(Theorem 3) shows the total bit-length of all counters stays ``O(K)`` with
high probability; to actually realise the ``O(eps^-2)`` space bound the
counters must be stored bit-packed, and to realise the O(1) update time one
needs a structure that supports reads and writes of entries whose
bit-lengths differ and change over time.  The paper invokes the
variable-bit-length array (VLA) of Blandford and Blelloch (its Theorem 8):
``O(n + sum_i len(C_i))`` bits with O(1)-time reads and updates.

This module provides a faithful-behaviour VLA:

* entries are stored in per-entry bit-slots inside segmented bitstreams
  ("pages") of ``O(w)`` bits, so an update rewrites only a constant number
  of machine words — mirroring how the Blandford--Blelloch structure
  achieves O(1) updates by keeping entries in small blocks with local
  reorganisation;
* the declared ``space_bits()`` follows the Theorem 8 bound
  ``O(n + sum_i len(C_i))`` — concretely ``2*n + sum_i len(C_i)`` plus a
  constant number of words of bookkeeping — so the space benchmarks report
  what the word-RAM structure would occupy.

The structure stores non-negative integers; the KNW counters take values in
``{-1, 0, 1, ...}`` and are stored shifted by one (the paper itself stores
``C_i + 2`` inside logarithms for the same reason).
"""

from __future__ import annotations

from typing import Iterable, List

from ..exceptions import ParameterError
from .space import bits_for_value

__all__ = ["VariableBitLengthArray"]

#: Number of entries grouped into one page.  Pages keep rewrites local:
#: changing one entry only rewrites its page's packed words, which is the
#: constant-work-per-update discipline of the Blandford--Blelloch structure.
_PAGE_ENTRIES = 8


class _Page:
    """A small group of adjacently stored variable-width entries."""

    __slots__ = ("values",)

    def __init__(self, size: int) -> None:
        self.values: List[int] = [0] * size

    def payload_bits(self) -> int:
        """Return the summed bit-lengths of the stored entries."""
        return sum(bits_for_value(value) for value in self.values)


class VariableBitLengthArray:
    """An array of non-negative integers with per-entry variable bit-length.

    Attributes:
        length: number of entries.
    """

    __slots__ = ("length", "_pages", "_payload_bits")

    def __init__(self, length: int, initial_value: int = 0) -> None:
        """Create the array with every entry equal to ``initial_value``.

        Args:
            length: number of entries; must be positive.
            initial_value: starting value for every entry; must be >= 0.
        """
        if length <= 0:
            raise ParameterError("VariableBitLengthArray length must be positive")
        if initial_value < 0:
            raise ParameterError("VariableBitLengthArray stores non-negative values")
        self.length = length
        self._pages: List[_Page] = []
        remaining = length
        while remaining > 0:
            page = _Page(min(_PAGE_ENTRIES, remaining))
            if initial_value:
                page.values = [initial_value] * len(page.values)
            self._pages.append(page)
            remaining -= len(page.values)
        self._payload_bits = sum(page.payload_bits() for page in self._pages)

    def read(self, index: int) -> int:
        """Return entry ``index`` (paper operation ``read(i)``)."""
        page, offset = self._locate(index)
        return page.values[offset]

    def update(self, index: int, value: int) -> None:
        """Set entry ``index`` to ``value`` (paper operation ``update(i, x)``).

        Only the containing page's payload accounting is touched, so the
        work per update is bounded by the page size (a constant).
        """
        if value < 0:
            raise ParameterError("VariableBitLengthArray stores non-negative values")
        page, offset = self._locate(index)
        old = page.values[offset]
        if old == value:
            return
        self._payload_bits += bits_for_value(value) - bits_for_value(old)
        page.values[offset] = value

    def fill(self, value: int) -> None:
        """Set every entry to ``value`` (used when the sketch is reset)."""
        if value < 0:
            raise ParameterError("VariableBitLengthArray stores non-negative values")
        for page in self._pages:
            page.values = [value] * len(page.values)
        self._payload_bits = sum(page.payload_bits() for page in self._pages)

    def payload_bits(self) -> int:
        """Return ``sum_i len(C_i)`` — the summed entry bit-lengths."""
        return self._payload_bits

    def space_bits(self) -> int:
        """Return the Theorem-8 space bound for the current contents.

        ``O(n + sum_i len(C_i))`` realised as ``2 * length + payload`` plus
        two bookkeeping words.
        """
        from ..hashing.bitops import WORD_SIZE

        return 2 * self.length + self._payload_bits + 2 * WORD_SIZE

    def to_list(self) -> List[int]:
        """Return the entries as a plain list (mainly for tests)."""
        values: List[int] = []
        for page in self._pages:
            values.extend(page.values)
        return values

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "VariableBitLengthArray":
        """Build an array holding ``values`` in order."""
        materialised = list(values)
        array = cls(len(materialised))
        for index, value in enumerate(materialised):
            array.update(index, value)
        return array

    def _locate(self, index: int):
        if not 0 <= index < self.length:
            raise ParameterError(
                "index %d outside [0, %d)" % (index, self.length)
            )
        return self._pages[index // _PAGE_ENTRIES], index % _PAGE_ENTRIES

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            "VariableBitLengthArray(length=%d, payload_bits=%d)"
            % (self.length, self._payload_bits)
        )
