"""Packed bitvector.

Used by the small-F0 subroutine of Section 3.3 (the ``2K`` bits
``B_1 ... B_{K'}``), by the Estan-style linear-counting baseline, and as
the row storage of :class:`repro.bitstructs.bitmatrix.BitMatrix`.

The implementation packs bits into a Python ``bytearray`` so that the
declared space cost (``length`` bits, rounded up to bytes) matches what a
word-RAM implementation would use, and all operations touch a constant
number of bytes per call.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..exceptions import ParameterError
from ..vectorize import HAS_NUMPY, grouped_or_scatter, np

__all__ = ["BitVector"]


class BitVector:
    """A fixed-length array of bits with O(1) get/set.

    Attributes:
        length: the number of bits in the vector.
    """

    __slots__ = ("length", "_bytes", "_ones")

    def __init__(self, length: int) -> None:
        """Create an all-zero bitvector of ``length`` bits.

        Args:
            length: number of bits; must be positive.
        """
        if length <= 0:
            raise ParameterError("BitVector length must be positive")
        self.length = length
        self._bytes = bytearray((length + 7) // 8)
        self._ones = 0

    def get(self, index: int) -> int:
        """Return bit ``index`` (0 or 1)."""
        self._check_index(index)
        return (self._bytes[index >> 3] >> (index & 7)) & 1

    def set(self, index: int, value: int = 1) -> None:
        """Set bit ``index`` to ``value`` (0 or 1)."""
        self._check_index(index)
        if value not in (0, 1):
            raise ParameterError("bit value must be 0 or 1")
        byte_index = index >> 3
        mask = 1 << (index & 7)
        current = (self._bytes[byte_index] & mask) != 0
        if value and not current:
            self._bytes[byte_index] |= mask
            self._ones += 1
        elif not value and current:
            self._bytes[byte_index] &= ~mask & 0xFF
            self._ones -= 1

    def set_many(self, indices) -> None:
        """Set every bit named in ``indices`` (bulk form of :meth:`set`).

        The batch-ingestion paths (linear counting, Flajolet--Martin
        bitmaps, the small-F0 bitvector) reduce a whole chunk of items to
        bit positions at once; the bits are OR-scattered into the byte
        buffer in one vectorized pass and the ones count is recomputed
        with one popcount, so the Python-level work no longer scales with
        the number of touched bits.

        Args:
            indices: a NumPy array or any integer sequence of bit
                positions; the whole batch is range-validated up front,
                like :meth:`set` validates per position.
        """
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            for index in sorted(set(int(index) for index in indices)):
                self.set(index, 1)
            return
        positions = np.asarray(indices, dtype=np.int64).reshape(-1)
        if positions.size == 0:
            return
        if int(positions.min()) < 0 or int(positions.max()) >= self.length:
            bad = int(positions.min() if positions.min() < 0 else positions.max())
            raise ParameterError(
                "bit index %d outside [0, %d)" % (bad, self.length)
            )
        # frombuffer over the bytearray is a writable zero-copy view, so
        # the OR-scatter mutates the vector's own storage in place.
        buffer = np.frombuffer(self._bytes, dtype=np.uint8)
        masks = (1 << (positions & np.int64(7))).astype(np.uint8)
        grouped_or_scatter(buffer, positions >> np.int64(3), masks)
        self._ones = int(np.unpackbits(buffer).sum())

    def to_numpy(self):
        """Return all bits as a ``uint8`` 0/1 ndarray in one bulk read.

        The bulk counterpart of :meth:`get`, decoded with a single
        ``np.unpackbits`` pass; the query-side batch paths use it to scan
        a bitmap without ``length`` Python calls.
        """
        if not HAS_NUMPY:  # pragma: no cover - numpy is a declared dependency
            raise ParameterError("BitVector.to_numpy requires numpy")
        return np.unpackbits(
            np.frombuffer(bytes(self._bytes), dtype=np.uint8),
            count=self.length,
            bitorder="little",
        )

    def clear(self) -> None:
        """Reset every bit to zero."""
        for i in range(len(self._bytes)):
            self._bytes[i] = 0
        self._ones = 0

    def count_ones(self) -> int:
        """Return the number of set bits (maintained incrementally, O(1))."""
        return self._ones

    def count_zeros(self) -> int:
        """Return the number of clear bits."""
        return self.length - self._ones

    def union_update(self, other: "BitVector") -> None:
        """OR another bitvector of the same length into this one.

        This is the merge operation for bitmap sketches (two linear-counting
        or small-F0 structures built with the same hash functions combine by
        bitwise OR).
        """
        if not isinstance(other, BitVector):
            raise ParameterError("union_update expects a BitVector")
        if other.length != self.length:
            raise ParameterError("cannot union BitVectors of different lengths")
        if HAS_NUMPY:
            merged = np.frombuffer(bytes(self._bytes), dtype=np.uint8) | np.frombuffer(
                bytes(other._bytes), dtype=np.uint8
            )
            self._bytes = bytearray(merged.tobytes())
            self._ones = int(np.unpackbits(merged).sum())
            return
        ones = 0  # pragma: no cover - numpy is a declared dependency
        for i in range(len(self._bytes)):
            merged = self._bytes[i] | other._bytes[i]
            self._bytes[i] = merged
            ones += bin(merged).count("1")
        self._ones = ones

    def iter_ones(self) -> Iterator[int]:
        """Yield the indices of the set bits in increasing order."""
        for index in range(self.length):
            if self.get(index):
                yield index

    def to_list(self) -> list:
        """Return the bits as a list of 0/1 integers (mainly for tests)."""
        return [self.get(i) for i in range(self.length)]

    @classmethod
    def from_buffer(cls, data, length: int) -> "BitVector":
        """Build a bitvector adopting a raw little-endian byte buffer.

        The inverse of reading ``_bytes``: ``data`` uses the same layout
        as the vector's own storage (bit ``i`` is bit ``i & 7`` of byte
        ``i >> 3``), and the ones count is recomputed with one popcount
        pass.  The keyed sketch store uses this to materialise one row of
        a bit-plane matrix as the :class:`BitVector` an independent
        bitmap sketch would hold.

        Args:
            data: bytes-like buffer of exactly ``ceil(length / 8)`` bytes;
                bits at positions >= ``length`` must be zero.
            length: number of bits; must be positive.
        """
        vector = cls(length)
        raw = bytes(data)
        if len(raw) != len(vector._bytes):
            raise ParameterError(
                "buffer holds %d bytes, expected %d for %d bits"
                % (len(raw), len(vector._bytes), length)
            )
        spare = len(raw) * 8 - length
        if spare and raw[-1] >> (8 - spare):
            raise ParameterError("buffer sets bits beyond the vector length")
        vector._bytes = bytearray(raw)
        if HAS_NUMPY:
            vector._ones = int(
                np.unpackbits(np.frombuffer(raw, dtype=np.uint8)).sum()
            )
        else:  # pragma: no cover - numpy is a declared dependency
            vector._ones = sum(bin(byte).count("1") for byte in raw)
        return vector

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitVector":
        """Build a bitvector from an iterable of 0/1 values."""
        values = list(bits)
        if not values:
            raise ParameterError("cannot build an empty BitVector")
        vector = cls(len(values))
        for index, value in enumerate(values):
            if value:
                vector.set(index, 1)
        return vector

    def space_bits(self) -> int:
        """Return the space cost: one bit per position."""
        return self.length

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.length:
            raise ParameterError(
                "bit index %d outside [0, %d)" % (index, self.length)
            )

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "BitVector(length=%d, ones=%d)" % (self.length, self._ones)
