"""Fixed-width packed counter arrays.

Several components need an array of small counters whose width is known in
advance: RoughEstimator keeps ``K_RE`` counters of ``O(log log n)`` bits
each (they store lsb levels, which never exceed ``log n``), LogLog and
HyperLogLog keep registers of ``log log n`` bits, and the L0 small-case
recovery keeps counters modulo a small prime.  Packing them at their true
width is what makes the paper's ``O(K_RE log log n) = O(log n)`` accounting
real, so this module provides a packed array that charges exactly
``length * width`` bits.

Values are stored inside a Python integer used as a bit buffer; get/set
touch O(1) words of that buffer in the word-RAM model.
"""

from __future__ import annotations

from typing import Iterable, List

from ..exceptions import ParameterError
from ..vectorize import grouped_max_scatter, np, require_numpy

__all__ = ["PackedCounterArray"]

#: Counter width beyond which the vectorized bulk paths would overflow a
#: ``uint64`` lane; wider arrays (none exist in the library — widths here
#: are ``O(log log n)``) fall back to the scalar loops.
_WORD_WIDTH_LIMIT = 63


class PackedCounterArray:
    """An array of ``length`` unsigned counters of ``width`` bits each.

    Attributes:
        length: number of counters.
        width: bits per counter.
    """

    __slots__ = ("length", "width", "_mask", "_buffer")

    def __init__(self, length: int, width: int, initial_value: int = 0) -> None:
        """Create the array with every counter equal to ``initial_value``.

        Args:
            length: number of counters; must be positive.
            width: bits per counter; must be positive.
            initial_value: starting value; must fit in ``width`` bits.
        """
        if length <= 0:
            raise ParameterError("PackedCounterArray length must be positive")
        if width <= 0:
            raise ParameterError("PackedCounterArray width must be positive")
        self.length = length
        self.width = width
        self._mask = (1 << width) - 1
        if not 0 <= initial_value <= self._mask:
            raise ParameterError(
                "initial value %d does not fit in %d bits" % (initial_value, width)
            )
        self._buffer = 0
        if initial_value:
            pattern = initial_value
            for index in range(length):
                self._buffer |= pattern << (index * width)

    def get(self, index: int) -> int:
        """Return counter ``index``."""
        self._check_index(index)
        return (self._buffer >> (index * self.width)) & self._mask

    def set(self, index: int, value: int) -> None:
        """Set counter ``index`` to ``value`` (must fit in ``width`` bits)."""
        self._check_index(index)
        if not 0 <= value <= self._mask:
            raise ParameterError(
                "value %d does not fit in %d bits" % (value, self.width)
            )
        shift = index * self.width
        self._buffer &= ~(self._mask << shift)
        self._buffer |= value << shift

    def maximize(self, index: int, value: int) -> int:
        """Set counter ``index`` to ``max(current, value)`` and return the result.

        This is the single operation RoughEstimator and the register-based
        baselines perform per update, so it is provided as a primitive.
        """
        current = self.get(index)
        if value > current:
            self.set(index, value)
            return value
        return current

    def maximize_many(self, indices, values) -> None:
        """Apply ``counter[i] = max(counter[i], v)`` for a whole batch at once.

        This is the bulk form of :meth:`maximize` used by the vectorized
        ``update_batch`` paths (HyperLogLog/LogLog registers, RoughEstimator
        counters): the per-index maxima are reduced with
        :func:`repro.vectorize.grouped_max_scatter`,
        compared against a bulk :meth:`to_numpy` read, and — when anything
        actually grew — the whole buffer is re-packed in one vectorized
        pass instead of one Python big-int rewrite per touched counter.
        The final state is identical to calling :meth:`maximize` per pair
        in any order (maximum is commutative and associative).

        Args:
            indices: integer ndarray of counter indices (already validated
                by the caller's hashing, as in the scalar paths).
            values: integer ndarray of candidate values; must fit in
                ``width`` bits.
        """
        require_numpy("PackedCounterArray.maximize_many")
        if len(indices) == 0:
            return
        indices = np.asarray(indices, dtype=np.int64)
        if self.width > _WORD_WIDTH_LIMIT:  # pragma: no cover - no current user
            touched, inverse = np.unique(indices, return_inverse=True)
            maxima = np.zeros(len(touched), dtype=np.int64)
            grouped_max_scatter(maxima, inverse, np.asarray(values, dtype=np.int64))
            for index, value in zip(touched.tolist(), maxima.tolist()):
                self.maximize(index, value)
            return
        if int(indices.min()) < 0 or int(indices.max()) >= self.length:
            bad = int(indices.min() if indices.min() < 0 else indices.max())
            raise ParameterError(
                "index %d outside [0, %d)" % (bad, self.length)
            )
        touched, inverse = np.unique(indices, return_inverse=True)
        maxima = np.zeros(len(touched), dtype=np.int64)
        grouped_max_scatter(maxima, inverse, np.asarray(values, dtype=np.int64))
        current = self.to_numpy()
        changed = maxima > current[touched].astype(np.int64)
        if not changed.any():
            return
        peak = int(maxima[changed].max())
        if peak > self._mask:
            raise ParameterError(
                "value %d does not fit in %d bits" % (peak, self.width)
            )
        current[touched[changed]] = maxima[changed].astype(np.uint64)
        self._buffer = self._pack(current)

    def fill(self, value: int) -> None:
        """Set every counter to ``value``."""
        if not 0 <= value <= self._mask:
            raise ParameterError(
                "value %d does not fit in %d bits" % (value, self.width)
            )
        self._buffer = 0
        if value:
            for index in range(self.length):
                self._buffer |= value << (index * self.width)

    def count_at_least(self, threshold: int) -> int:
        """Return how many counters are >= ``threshold``.

        RoughEstimator's estimator needs ``T_r = |{i : C_i >= r}|``; this is
        the bulk form of that query, answered from one :meth:`to_numpy`
        read instead of ``length`` packed-buffer extractions.
        """
        if threshold <= 0:
            return self.length
        if threshold > self._mask:
            return 0
        if np is not None and self.width <= _WORD_WIDTH_LIMIT:
            return int(np.count_nonzero(self.to_numpy() >= np.uint64(threshold)))
        return sum(1 for index in range(self.length) if self.get(index) >= threshold)

    def to_numpy(self):
        """Return all counters as a ``uint64`` ndarray in one bulk read.

        The whole buffer is decoded with one ``np.unpackbits`` pass and a
        width-strided recombination, so reading ``length`` counters costs
        O(length * width / 64) vector work rather than ``length`` Python
        big-int shifts.  This is the read primitive behind
        :meth:`maximize_many`, :meth:`count_at_least`, and the register
        scans in the LogLog/HyperLogLog estimators.
        """
        require_numpy("PackedCounterArray.to_numpy")
        if self.width > _WORD_WIDTH_LIMIT:  # pragma: no cover - no current user
            out = np.empty(self.length, dtype=object)
            out[:] = self.to_list()
            return out
        total_bits = self.length * self.width
        raw = self._buffer.to_bytes((total_bits + 7) // 8, "little")
        bits = np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8), count=total_bits, bitorder="little"
        )
        weights = np.left_shift(
            np.uint64(1), np.arange(self.width, dtype=np.uint64)
        )
        return (
            bits.reshape(self.length, self.width).astype(np.uint64) * weights
        ).sum(axis=1, dtype=np.uint64)

    def _pack(self, values) -> int:
        """Re-encode a full ``uint64`` value array into the bit buffer."""
        bits = (
            (values[:, None] >> np.arange(self.width, dtype=np.uint64))
            & np.uint64(1)
        ).astype(np.uint8)
        packed = np.packbits(bits.reshape(-1), bitorder="little")
        return int.from_bytes(packed.tobytes(), "little")

    def to_list(self) -> List[int]:
        """Return the counters as a plain list (mainly for tests)."""
        return [self.get(index) for index in range(self.length)]

    @classmethod
    def from_values(cls, values: Iterable[int], width: int) -> "PackedCounterArray":
        """Build a packed array holding ``values`` at the given width."""
        materialised = list(values)
        array = cls(len(materialised), width)
        for index, value in enumerate(materialised):
            array.set(index, value)
        return array

    @classmethod
    def from_numpy(cls, values, width: int) -> "PackedCounterArray":
        """Build a packed array from an integer ndarray in one bulk pass.

        The inverse of :meth:`to_numpy`: the whole buffer is re-encoded
        with one vectorized ``np.packbits`` pass instead of ``length``
        Python big-int writes.  The keyed sketch store uses this to
        materialise a single row of a register matrix as the packed
        array an independent sketch would hold — bit-identical buffer
        included.

        Args:
            values: 1-D integer ndarray (any integer dtype); every value
                must fit in ``width`` bits.
            width: bits per counter.
        """
        require_numpy("PackedCounterArray.from_numpy")
        values = np.asarray(values)
        if values.ndim != 1 or values.size == 0:
            raise ParameterError("from_numpy needs a non-empty 1-D array")
        array = cls(int(values.shape[0]), width)
        if width > _WORD_WIDTH_LIMIT:  # pragma: no cover - no current user
            for index, value in enumerate(values.tolist()):
                array.set(index, int(value))
            return array
        as_words = values.astype(np.uint64)
        peak = int(as_words.max())
        if peak > array._mask:
            raise ParameterError(
                "value %d does not fit in %d bits" % (peak, width)
            )
        array._buffer = array._pack(as_words)
        return array

    def space_bits(self) -> int:
        """Return the space cost: ``length * width`` bits."""
        return self.length * self.width

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.length:
            raise ParameterError(
                "index %d outside [0, %d)" % (index, self.length)
            )

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "PackedCounterArray(length=%d, width=%d)" % (self.length, self.width)
