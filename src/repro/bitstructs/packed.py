"""Fixed-width packed counter arrays.

Several components need an array of small counters whose width is known in
advance: RoughEstimator keeps ``K_RE`` counters of ``O(log log n)`` bits
each (they store lsb levels, which never exceed ``log n``), LogLog and
HyperLogLog keep registers of ``log log n`` bits, and the L0 small-case
recovery keeps counters modulo a small prime.  Packing them at their true
width is what makes the paper's ``O(K_RE log log n) = O(log n)`` accounting
real, so this module provides a packed array that charges exactly
``length * width`` bits.

Values are stored inside a Python integer used as a bit buffer; get/set
touch O(1) words of that buffer in the word-RAM model.
"""

from __future__ import annotations

from typing import Iterable, List

from ..exceptions import ParameterError

__all__ = ["PackedCounterArray"]


class PackedCounterArray:
    """An array of ``length`` unsigned counters of ``width`` bits each.

    Attributes:
        length: number of counters.
        width: bits per counter.
    """

    __slots__ = ("length", "width", "_mask", "_buffer")

    def __init__(self, length: int, width: int, initial_value: int = 0) -> None:
        """Create the array with every counter equal to ``initial_value``.

        Args:
            length: number of counters; must be positive.
            width: bits per counter; must be positive.
            initial_value: starting value; must fit in ``width`` bits.
        """
        if length <= 0:
            raise ParameterError("PackedCounterArray length must be positive")
        if width <= 0:
            raise ParameterError("PackedCounterArray width must be positive")
        self.length = length
        self.width = width
        self._mask = (1 << width) - 1
        if not 0 <= initial_value <= self._mask:
            raise ParameterError(
                "initial value %d does not fit in %d bits" % (initial_value, width)
            )
        self._buffer = 0
        if initial_value:
            pattern = initial_value
            for index in range(length):
                self._buffer |= pattern << (index * width)

    def get(self, index: int) -> int:
        """Return counter ``index``."""
        self._check_index(index)
        return (self._buffer >> (index * self.width)) & self._mask

    def set(self, index: int, value: int) -> None:
        """Set counter ``index`` to ``value`` (must fit in ``width`` bits)."""
        self._check_index(index)
        if not 0 <= value <= self._mask:
            raise ParameterError(
                "value %d does not fit in %d bits" % (value, self.width)
            )
        shift = index * self.width
        self._buffer &= ~(self._mask << shift)
        self._buffer |= value << shift

    def maximize(self, index: int, value: int) -> int:
        """Set counter ``index`` to ``max(current, value)`` and return the result.

        This is the single operation RoughEstimator and the register-based
        baselines perform per update, so it is provided as a primitive.
        """
        current = self.get(index)
        if value > current:
            self.set(index, value)
            return value
        return current

    def fill(self, value: int) -> None:
        """Set every counter to ``value``."""
        if not 0 <= value <= self._mask:
            raise ParameterError(
                "value %d does not fit in %d bits" % (value, self.width)
            )
        self._buffer = 0
        if value:
            for index in range(self.length):
                self._buffer |= value << (index * self.width)

    def count_at_least(self, threshold: int) -> int:
        """Return how many counters are >= ``threshold``.

        RoughEstimator's estimator needs ``T_r = |{i : C_i >= r}|``; this is
        the bulk form of that query.
        """
        return sum(1 for index in range(self.length) if self.get(index) >= threshold)

    def to_list(self) -> List[int]:
        """Return the counters as a plain list (mainly for tests)."""
        return [self.get(index) for index in range(self.length)]

    @classmethod
    def from_values(cls, values: Iterable[int], width: int) -> "PackedCounterArray":
        """Build a packed array holding ``values`` at the given width."""
        materialised = list(values)
        array = cls(len(materialised), width)
        for index, value in enumerate(materialised):
            array.set(index, value)
        return array

    def space_bits(self) -> int:
        """Return the space cost: ``length * width`` bits."""
        return self.length * self.width

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.length:
            raise ParameterError(
                "index %d outside [0, %d)" % (index, self.length)
            )

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "PackedCounterArray(length=%d, width=%d)" % (self.length, self.width)
