"""Space-accounting helpers.

The headline claim of the paper is a *space* bound — ``O(eps^-2 + log n)``
bits — so this reproduction needs a consistent way to measure how many bits
each estimator occupies in the word-RAM model the paper uses (as opposed to
Python object overhead, which would swamp every comparison with interpreter
constants).

Every sketch, hash function, and bit structure in the library exposes a
``space_bits()`` method returning its cost in the paper's accounting.  This
module defines the small protocol around that convention plus helpers for
aggregating and pretty-printing space budgets, which the Figure-1 benchmark
uses to regenerate the paper's space column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Protocol, Tuple, runtime_checkable

__all__ = ["SizedBits", "SpaceBreakdown", "bits_for_value", "bits_for_counter", "total_space_bits"]


@runtime_checkable
class SizedBits(Protocol):
    """Protocol for objects that can report their size in bits."""

    def space_bits(self) -> int:
        """Return the object's size in bits under word-RAM accounting."""
        ...


def bits_for_value(value: int) -> int:
    """Return the number of bits needed to write ``value`` in binary.

    Zero is charged one bit (a stored zero still occupies a cell).
    """
    return max(value.bit_length(), 1)


def bits_for_counter(maximum_value: int) -> int:
    """Return the bits needed for a counter whose value never exceeds ``maximum_value``."""
    return max(maximum_value.bit_length(), 1)


def total_space_bits(components: Iterable[SizedBits]) -> int:
    """Return the summed ``space_bits()`` of an iterable of components."""
    return sum(component.space_bits() for component in components)


@dataclass
class SpaceBreakdown:
    """An itemised space budget for one estimator.

    Attributes:
        name: human-readable estimator name.
        items: ordered (component name, bits) pairs.
    """

    name: str
    items: List[Tuple[str, int]] = field(default_factory=list)

    def add(self, component_name: str, bits: int) -> None:
        """Append a component to the breakdown."""
        self.items.append((component_name, int(bits)))

    def add_component(self, component_name: str, component: SizedBits) -> None:
        """Append a ``SizedBits`` component, reading its ``space_bits()``."""
        self.add(component_name, component.space_bits())

    def total(self) -> int:
        """Return the total number of bits across all components."""
        return sum(bits for _, bits in self.items)

    def as_dict(self) -> Dict[str, int]:
        """Return the breakdown as a component-name -> bits mapping."""
        return dict(self.items)

    def render(self) -> str:
        """Return a human-readable multi-line rendering of the breakdown."""
        lines = ["%s: %d bits total" % (self.name, self.total())]
        width = max((len(name) for name, _ in self.items), default=0)
        for component_name, bits in self.items:
            lines.append("  %-*s %10d bits" % (width, component_name, bits))
        return "\n".join(lines)
