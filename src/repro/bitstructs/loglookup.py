"""Compact lookup table for the natural logarithm (Appendix A.2, Lemma 7).

The reporting step of the F0 algorithm outputs
``2^b * ln(1 - T/K) / ln(1 - 1/K)``.  To make reporting O(1) the paper
precomputes a table from which ``ln(1 - c/K)`` can be read with relative
accuracy ``nu = 1/sqrt(K)`` for every integer ``c`` in ``[0, 4K/5]``, using
only ``O(nu^-1 log(1/nu))`` bits.

The construction follows Lemma 7:

* the interval ``[1, 4K/5]`` is discretised geometrically by powers of
  ``1 + nu'`` with ``nu' = nu/15``, and ``ln(1 - rho/K)`` is stored for
  every discretisation point ``rho`` (table ``A``);
* a query for ``c`` locates the nearest discretisation point via
  ``round(log_{1+nu'}(c))``; the index computation uses the most
  significant bit of ``c`` plus a second, evenly spaced table (``B``) that
  approximates ``log2(d)`` for ``d = c / 2^{msb(c)} in [1, 2)`` — both
  constant-time operations in the word-RAM model.

The class also exposes :meth:`exact` so benchmarks can measure the relative
error of the table against ``math.log`` (experiment E10 in DESIGN.md).
"""

from __future__ import annotations

import math
from typing import List

from ..exceptions import ParameterError
from ..hashing.bitops import msb

__all__ = ["LogLookupTable"]


class LogLookupTable:
    """O(1)-time approximate evaluation of ``ln(1 - c/K)`` for integer ``c``.

    Attributes:
        bins: the ``K`` of the estimator (number of balls-and-bins bins).
        relative_accuracy: the guaranteed relative accuracy ``nu = 1/sqrt(K)``.
        max_argument: the largest supported ``c`` (``floor(4K/5)``).
    """

    __slots__ = (
        "bins",
        "relative_accuracy",
        "max_argument",
        "_nu_prime",
        "_log_base",
        "_table_a",
        "_table_b",
        "_b_buckets",
    )

    def __init__(self, bins: int) -> None:
        """Build the lookup table for ``K = bins``.

        Args:
            bins: the number of bins ``K``; must exceed 4 (Lemma 7's
                requirement ``K > 4``).
        """
        if bins <= 4:
            raise ParameterError("LogLookupTable requires K > 4")
        self.bins = bins
        self.relative_accuracy = 1.0 / math.sqrt(bins)
        self.max_argument = (4 * bins) // 5
        self._nu_prime = self.relative_accuracy / 15.0
        self._log_base = math.log2(1.0 + self._nu_prime)

        # Table A: ln(1 - rho/K) at geometric discretisation points
        # rho = (1 + nu')^j for j = 0 .. ceil(log_{1+nu'}(4K/5)).
        points = int(math.ceil(math.log(max(self.max_argument, 2)) /
                               math.log(1.0 + self._nu_prime))) + 2
        self._table_a: List[float] = []
        for j in range(points):
            rho = min((1.0 + self._nu_prime) ** j, float(self.max_argument))
            self._table_a.append(math.log(1.0 - rho / bins))

        # Table B: log2(d) for d in [1, 2) discretised evenly into
        # O(1/nu') buckets; used to turn msb + mantissa into a
        # log_{1+nu'} index without calling math.log at query time.
        self._b_buckets = max(int(math.ceil(8.0 / self._nu_prime)), 16)
        self._table_b: List[float] = [
            math.log2(1.0 + (j + 0.5) / self._b_buckets)
            for j in range(self._b_buckets)
        ]

    def lookup(self, c: int) -> float:
        """Return an approximation of ``ln(1 - c/K)``.

        Args:
            c: an integer with ``0 <= c <= 4K/5``.

        Returns:
            A value within relative error ``1/sqrt(K)`` of the true
            logarithm.  ``c = 0`` returns exactly ``0.0``.
        """
        if not 0 <= c <= self.max_argument:
            raise ParameterError(
                "lookup argument %d outside [0, %d]" % (c, self.max_argument)
            )
        if c == 0:
            return 0.0
        if c == 1:
            return self._table_a[0]
        # log2(c) = k + log2(d) with d = c / 2^k in [1, 2).  The bucket index
        # floor((d - 1) * B) is computed with integer arithmetic only.
        k = msb(c)
        bucket = ((c - (1 << k)) * self._b_buckets) >> k
        bucket = min(max(bucket, 0), self._b_buckets - 1)
        log2_c = k + self._table_b[bucket]
        index = int(round(log2_c / self._log_base))
        index = min(max(index, 0), len(self._table_a) - 1)
        return self._table_a[index]

    def exact(self, c: int) -> float:
        """Return the exact ``ln(1 - c/K)`` (for error measurement)."""
        if not 0 <= c <= self.max_argument:
            raise ParameterError(
                "argument %d outside [0, %d]" % (c, self.max_argument)
            )
        return math.log(1.0 - c / self.bins)

    def relative_error(self, c: int) -> float:
        """Return the relative error of :meth:`lookup` at ``c`` (0 for c=0)."""
        true = self.exact(c)
        if true == 0.0:
            return 0.0
        return abs(self.lookup(c) - true) / abs(true)

    def space_bits(self) -> int:
        """Return the table's space cost.

        Lemma 7 charges ``O(nu^-1 log(1/nu))`` bits; concretely we charge
        one word-precision entry (treated as ``ceil(log2(1/nu)) + 16``
        bits of fixed-point mantissa, which suffices for the stated
        relative accuracy) per entry of tables A and B.
        """
        entry_bits = max(int(math.ceil(math.log2(1.0 / self.relative_accuracy))), 1) + 16
        return (len(self._table_a) + len(self._table_b)) * entry_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "LogLookupTable(bins=%d, entries=%d)" % (self.bins, len(self._table_a))
