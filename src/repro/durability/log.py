"""The durable log: checksummed record framing over fsync'd segment files.

A :class:`DurableLog` owns one directory.  Inside it live:

``wal-<first-seq>.seg``
    Append-only segments of framed records.  The live segment is the
    highest-numbered one; older segments are sealed (never written
    again).  Each record is::

        +-------+------+---------+-------------+-------+-----------+
        | magic | kind |   seq   | payload len | crc32 |  payload  |
        | RPWL  | u8   |   u64   |     u64     |  u32  |  (bytes)  |
        +-------+------+---------+-------------+-------+-----------+

    all little-endian, with the CRC covering ``kind || seq || payload``
    so a frame cannot be validly re-stitched from two torn writes.
``snap-<seq>.ckpt``
    A single snapshot record (same framing) written via the atomic
    tmp-file → fsync → rename discipline, so a snapshot either exists
    completely or not at all.
``LOCK``
    The advisory-lock file.  Opening a :class:`DurableLog` takes an
    exclusive ``flock`` on it; a second opener — same process or not —
    fails fast with :class:`~repro.exceptions.PersistenceError` instead
    of interleaving segments with the first.

The log layer knows nothing about sketches: it moves ``(kind, seq,
payload)`` triples to disk durably and reads them back, classifying any
damage it finds (:class:`SegmentScan`).  Interpreting payloads and
deciding what damage *means* is the checkpoint layer's job.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

try:  # POSIX-only; the lock degrades to a no-op elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from ..exceptions import PersistenceError

__all__ = [
    "DurableLog",
    "LogRecord",
    "SegmentScan",
    "RECORD_KIND_SNAPSHOT",
    "RECORD_KIND_DELTA",
    "RECORD_KIND_META",
]

RECORD_MAGIC = b"RPWL"
_HEADER = struct.Struct("<4sBQQI")  # magic, kind, seq, payload length, crc32

#: Record kinds.  The log layer treats them as opaque; the constants live
#: here so every layer agrees on the byte values.
RECORD_KIND_SNAPSHOT = 0x01
RECORD_KIND_DELTA = 0x02
RECORD_KIND_META = 0x03

_SEGMENT_RE = re.compile(r"^wal-(\d{20})\.seg$")
_SNAPSHOT_RE = re.compile(r"^snap-(\d{20})\.ckpt$")
LOCK_FILENAME = "LOCK"


def _segment_name(first_seq: int) -> str:
    return "wal-%020d.seg" % first_seq


def _snapshot_name(seq: int) -> str:
    return "snap-%020d.ckpt" % seq


def _crc(kind: int, seq: int, payload: bytes) -> int:
    head = bytes([kind]) + seq.to_bytes(8, "little")
    return zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF


def encode_record(kind: int, seq: int, payload: bytes) -> bytes:
    """Frame one record as bytes (header + payload)."""
    if not 0 <= kind <= 0xFF:
        raise PersistenceError("record kind must fit in one byte")
    if seq < 0:
        raise PersistenceError("record seq must be non-negative")
    header = _HEADER.pack(
        RECORD_MAGIC, kind, seq, len(payload), _crc(kind, seq, payload)
    )
    return header + payload


@dataclass(frozen=True)
class LogRecord:
    """One decoded record: ``(kind, seq, payload)`` plus its file offset."""

    kind: int
    seq: int
    payload: bytes
    offset: int


@dataclass
class SegmentScan:
    """Outcome of reading one segment file front to back.

    ``records`` holds every record whose frame and checksum verified, in
    file order.  If the file ended mid-record, ``fault`` is ``"torn"``;
    if a complete frame failed its magic or checksum, ``fault`` is
    ``"corrupt"``.  Either way ``good_bytes`` is the offset of the first
    byte that did not verify — everything before it is trustworthy,
    everything from it on is not (a bad frame header destroys the
    framing, so no later record in the same file can be trusted).
    """

    path: str
    records: List[LogRecord] = field(default_factory=list)
    fault: Optional[str] = None  # None | "torn" | "corrupt"
    good_bytes: int = 0
    detail: str = ""

    @property
    def clean(self) -> bool:
        return self.fault is None


def scan_segment(path: str) -> SegmentScan:
    """Read and verify every record in ``path``, stopping at damage."""
    with open(path, "rb") as handle:
        data = handle.read()
    scan = SegmentScan(path=path)
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _HEADER.size:
            scan.fault = "torn"
            scan.detail = "partial header (%d bytes)" % (total - offset)
            break
        magic, kind, seq, length, crc = _HEADER.unpack_from(data, offset)
        if magic != RECORD_MAGIC:
            scan.fault = "corrupt"
            scan.detail = "bad record magic at offset %d" % offset
            break
        end = offset + _HEADER.size + length
        if end > total:
            scan.fault = "torn"
            scan.detail = "payload truncated at offset %d" % offset
            break
        payload = data[offset + _HEADER.size : end]
        if _crc(kind, seq, payload) != crc:
            scan.fault = "corrupt"
            scan.detail = "checksum mismatch at offset %d (seq %d)" % (offset, seq)
            break
        scan.records.append(LogRecord(kind, seq, bytes(payload), offset))
        offset = end
    scan.good_bytes = offset if scan.fault else total
    return scan


class DurableLog:
    """Single-writer durable record log over one directory.

    All appends go to the live segment with ``write → flush → fsync``;
    :meth:`write_snapshot` and :meth:`rotate` use atomic whole-file
    renames so those files are never observable half-written.  The
    constructor takes the directory's exclusive advisory lock and holds
    it until :meth:`close`.
    """

    def __init__(self, directory: str, sync: bool = True) -> None:
        self.directory = os.path.abspath(directory)
        self.sync = sync
        os.makedirs(self.directory, exist_ok=True)
        self._lock_handle = self._acquire_lock()
        self._segment_handle = None  # type: Optional[object]
        self._segment_path: Optional[str] = None
        self._bytes_appended = 0
        #: Test/crash-harness hook: called as ``hook(log)`` after every
        #: fsync'd append, with the record already durable on disk.
        self.after_append: Optional[Callable[["DurableLog"], None]] = None

    # -- locking ------------------------------------------------------------

    def _acquire_lock(self):
        lock_path = os.path.join(self.directory, LOCK_FILENAME)
        handle = open(lock_path, "a+b")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as error:
                handle.close()
                raise PersistenceError(
                    "durable log directory %r is already locked by another "
                    "writer; a DurableLog allows exactly one writer at a time "
                    "(close the other Checkpointer/DurableLog first)"
                    % self.directory
                ) from error
        return handle

    @property
    def closed(self) -> bool:
        return self._lock_handle is None

    def close(self) -> None:
        """Seal the live segment and release the directory lock."""
        if self._segment_handle is not None:
            self._segment_handle.flush()
            if self.sync:
                os.fsync(self._segment_handle.fileno())
            self._segment_handle.close()
            self._segment_handle = None
            self._segment_path = None
        if self._lock_handle is not None:
            if fcntl is not None:
                fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)
            self._lock_handle.close()
            self._lock_handle = None

    def __enter__(self) -> "DurableLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise PersistenceError("durable log %r is closed" % self.directory)

    # -- directory listing --------------------------------------------------

    def segment_paths(self) -> List[Tuple[int, str]]:
        """Sorted ``(first_seq, path)`` for every segment file present."""
        return self._listing(_SEGMENT_RE)

    def snapshot_paths(self) -> List[Tuple[int, str]]:
        """Sorted ``(seq, path)`` for every snapshot file present."""
        return self._listing(_SNAPSHOT_RE)

    def _listing(self, pattern: "re.Pattern[str]") -> List[Tuple[int, str]]:
        found = []
        for name in os.listdir(self.directory):
            match = pattern.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self.directory, name)))
        found.sort()
        return found

    def _fsync_directory(self) -> None:
        if not self.sync:
            return
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- writing ------------------------------------------------------------

    @property
    def bytes_appended(self) -> int:
        """Total framed bytes appended through this instance."""
        return self._bytes_appended

    @property
    def live_segment(self) -> Optional[str]:
        return self._segment_path

    def open_segment(self, first_seq: int) -> str:
        """Seal the live segment (if any) and start a fresh one."""
        self._check_open()
        if self._segment_handle is not None:
            self._segment_handle.flush()
            if self.sync:
                os.fsync(self._segment_handle.fileno())
            self._segment_handle.close()
        path = os.path.join(self.directory, _segment_name(first_seq))
        if os.path.exists(path):
            raise PersistenceError("segment %r already exists" % path)
        self._segment_handle = open(path, "ab")
        self._segment_path = path
        self._fsync_directory()
        return path

    def resume_segment(self, path: str) -> None:
        """Continue appending to an existing (verified) segment file."""
        self._check_open()
        if self._segment_handle is not None:
            raise PersistenceError("a live segment is already open")
        self._segment_handle = open(path, "ab")
        self._segment_path = path

    def append(self, kind: int, seq: int, payload: bytes) -> int:
        """Durably append one record to the live segment; returns its size."""
        self._check_open()
        if self._segment_handle is None:
            raise PersistenceError(
                "no live segment; call open_segment() before append()"
            )
        frame = encode_record(kind, seq, payload)
        self._segment_handle.write(frame)
        self._segment_handle.flush()
        if self.sync:
            os.fsync(self._segment_handle.fileno())
        self._bytes_appended += len(frame)
        if self.after_append is not None:
            self.after_append(self)
        return len(frame)

    def write_snapshot(self, seq: int, payload: bytes) -> str:
        """Atomically write a snapshot file containing one framed record."""
        self._check_open()
        path = os.path.join(self.directory, _snapshot_name(seq))
        self._write_atomic(path, encode_record(RECORD_KIND_SNAPSHOT, seq, payload))
        return path

    def _write_atomic(self, path: str, data: bytes) -> None:
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        os.rename(tmp_path, path)
        self._fsync_directory()

    # -- damage handling ----------------------------------------------------

    def quarantine_tail(self, scan: SegmentScan) -> Optional[str]:
        """Move a segment's unverifiable tail aside and truncate it away.

        The bytes from ``scan.good_bytes`` onward are copied to a
        ``*.quarantine-<offset>`` sibling (preserved for post-mortems),
        then the segment is truncated back to its last verified record.
        Returns the quarantine path, or ``None`` if the scan was clean.
        """
        self._check_open()
        if scan.clean:
            return None
        if self._segment_path == scan.path:
            raise PersistenceError("cannot quarantine the live segment")
        quarantine_path = "%s.quarantine-%d" % (scan.path, scan.good_bytes)
        with open(scan.path, "rb") as handle:
            handle.seek(scan.good_bytes)
            tail = handle.read()
        self._write_atomic(quarantine_path, tail)
        with open(scan.path, "r+b") as handle:
            handle.truncate(scan.good_bytes)
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        return quarantine_path

    def quarantine_file(self, path: str) -> str:
        """Move a whole untrustworthy file aside (post-damage segments)."""
        self._check_open()
        if self._segment_path == path:
            raise PersistenceError("cannot quarantine the live segment")
        quarantine_path = path + ".quarantine"
        os.rename(path, quarantine_path)
        self._fsync_directory()
        return quarantine_path

    def remove(self, path: str) -> None:
        """Delete a superseded segment or snapshot file durably."""
        self._check_open()
        if self._segment_path == path:
            raise PersistenceError("cannot remove the live segment")
        os.unlink(path)
        self._fsync_directory()

    def destroy(self) -> None:
        """Delete every log artifact and release the directory.

        Used by callers whose log is a *spool* (scratch durability for
        one run) rather than an archive: after a successful completion
        the spool must not be mistaken for resumable state.
        """
        directory = self.directory
        self.close()
        for name in os.listdir(directory):
            if (
                _SEGMENT_RE.match(name)
                or _SNAPSHOT_RE.match(name)
                or name == LOCK_FILENAME
                or ".quarantine" in name
                or name.endswith(".tmp")
            ):
                os.unlink(os.path.join(directory, name))
