"""Crash-safe persistence for sketches, stores, and windowed rings.

The durability subsystem turns any library object with ``to_bytes`` /
``from_bytes`` (every estimator, :class:`~repro.store.SketchStore`,
:class:`~repro.window.WindowedSketch`, ...) into state that survives a
``SIGKILL`` at an arbitrary byte offset:

* :class:`DurableLog` — a single-writer directory of checksummed,
  length-framed write-ahead-log segments plus atomically-written
  snapshot files.  Appends are ``write → flush → fsync``; whole-file
  writes (snapshots, sealed segments) are ``tmp → fsync → rename →
  directory fsync``.
* :class:`Checkpointer` — alternates full snapshots of a target with
  append-only delta records (batched ``(keys, items, deltas, ts)``
  updates), and compacts superseded segments after each snapshot.
* :func:`recover` — replays newest-usable-snapshot + log suffix into a
  fresh object whose ``to_bytes`` is bit-identical to the uninterrupted
  run.  Torn tails are truncated and quarantined, checksum failures stop
  replay at the last good record; both are *reported* through
  :class:`RecoveryReport`, never raised.
* :mod:`repro.durability.crashtest` — the deterministic SIGKILL
  injection harness that proves the above, batch by batch, against a
  clean same-seed run.
"""

from .log import (
    DurableLog,
    LogRecord,
    RECORD_KIND_DELTA,
    RECORD_KIND_META,
    RECORD_KIND_SNAPSHOT,
    SegmentScan,
)
from .checkpoint import Checkpointer, RecoveryReport, recover

__all__ = [
    "Checkpointer",
    "DurableLog",
    "LogRecord",
    "RecoveryReport",
    "SegmentScan",
    "RECORD_KIND_DELTA",
    "RECORD_KIND_META",
    "RECORD_KIND_SNAPSHOT",
    "recover",
]
