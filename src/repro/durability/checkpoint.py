"""Snapshot + delta checkpointing and crash recovery over a DurableLog.

A :class:`Checkpointer` wraps any library object with ``to_bytes`` (a
bare estimator, a :class:`~repro.store.SketchStore`, a windowed ring, or
an app-level composite like the flow monitor) and gives every mutation
the same discipline:

1. encode the mutation as a canonical delta tree
   (``serialize.dumps_tree``),
2. decode it back and apply the *decoded* arguments to the in-memory
   target (so live ingestion and log replay run byte-for-byte the same
   code on byte-for-byte the same values — bit-identical recovery is
   then true by construction, not by careful bookkeeping),
3. durably append the delta record to the write-ahead log.

Applying before logging means a record that fails the target's own
validation never reaches the log, so replay can never hit a poison
record; the cost is that a crash between steps 2 and 3 loses exactly
that one unacknowledged batch — still a valid prefix state.

Snapshots (``to_bytes`` of the whole target) are written atomically,
sealing the current segment; compaction then deletes every segment that
no retained snapshot still needs.  :func:`recover` inverts the whole
scheme: newest usable snapshot, replay the suffix, quarantine damage,
report everything in a :class:`RecoveryReport`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from .. import serialize
from ..exceptions import PersistenceError, SerializationError
from .log import (
    RECORD_KIND_DELTA,
    RECORD_KIND_SNAPSHOT,
    DurableLog,
    scan_segment,
)

__all__ = ["Checkpointer", "RecoveryReport", "recover", "apply_delta"]


def apply_delta(target: Any, tree: dict) -> None:
    """Apply one decoded delta record to ``target``.

    This single dispatcher is used both by the live
    :meth:`Checkpointer.ingest` path and by :func:`recover` replay —
    sharing it is what makes recovery bit-identical rather than merely
    equivalent.  The record shape selects the target API:

    ========================  =====================================
    fields present             call
    ========================  =====================================
    ``ts`` and ``keys``        ``ingest_timestamped(ts, keys, items, deltas)``
    ``ts`` only                ``ingest_timestamped(ts, items[, deltas])``
    ``keys`` only              ``update_grouped(keys, items, deltas)``
    ``deltas`` only            ``update_batch(items, deltas)``
    ``items`` only             ``update_batch(items)``
    ``op == "advance"``        ``advance_epoch(count)``
    ``op == "call"``           whitelisted method (``WAL_METHODS``)
    ========================  =====================================
    """
    op = tree.get("op")
    if op == "ingest":
        items = tree.get("items")
        deltas = tree.get("deltas")
        keys = tree.get("keys")
        ts = tree.get("ts")
        if ts is not None and keys is not None:
            target.ingest_timestamped(ts, keys, items, deltas)
        elif ts is not None:
            if deltas is not None:
                target.ingest_timestamped(ts, items, deltas)
            else:
                target.ingest_timestamped(ts, items)
        elif keys is not None:
            target.update_grouped(keys, items, deltas)
        elif deltas is not None:
            target.update_batch(items, deltas)
        else:
            target.update_batch(items)
    elif op == "advance":
        target.advance_epoch(int(tree.get("count", 1)))
    elif op == "call":
        name = tree.get("name")
        allowed = getattr(type(target), "WAL_METHODS", ())
        if name not in allowed:
            raise PersistenceError(
                "log record calls %r, which %s does not whitelist in "
                "WAL_METHODS" % (name, type(target).__name__)
            )
        getattr(target, name)(*tree.get("args", ()))
    else:
        raise PersistenceError("unknown delta record op %r" % (op,))


@dataclass
class RecoveryReport:
    """What :func:`recover` found, applied, and had to drop.

    Damage never raises; it lands here.  ``clean`` is ``True`` only for
    a recovery that used the newest snapshot and replayed every logged
    record with nothing quarantined — the common no-crash restart.
    """

    directory: str
    snapshot_seq: int = 0
    snapshot_path: Optional[str] = None
    #: Snapshot files that existed but failed verification (newest-first
    #: fallback walked past them).
    snapshots_skipped: List[str] = field(default_factory=list)
    #: Delta records applied on top of the snapshot.
    replayed_records: int = 0
    #: Sequence number of the recovered state (snapshot seq if no deltas).
    last_seq: int = 0
    #: Segment files scanned during replay.
    segments_scanned: int = 0
    #: Per-file damage: ``(path, fault, detail)`` with fault ``"torn"``,
    #: ``"corrupt"``, or ``"gap"``.
    faults: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Checksum-verified records that could NOT be applied because they
    #: follow damage or a sequence gap.
    dropped_records: int = 0
    #: Files holding the unapplied/damaged bytes, kept for post-mortems.
    quarantined: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            not self.faults
            and not self.snapshots_skipped
            and self.dropped_records == 0
        )

    def summary(self) -> str:
        state = "clean" if self.clean else "degraded"
        return (
            "%s recovery of %s: snapshot seq %d + %d replayed records "
            "(last seq %d); %d fault(s), %d dropped record(s), "
            "%d quarantined file(s)"
            % (
                state,
                self.directory,
                self.snapshot_seq,
                self.replayed_records,
                self.last_seq,
                len(self.faults),
                self.dropped_records,
                len(self.quarantined),
            )
        )


def _load_snapshot(log: DurableLog, report: RecoveryReport) -> Any:
    """Revive the newest usable snapshot, walking past damaged ones."""
    candidates = log.snapshot_paths()
    for seq, path in reversed(candidates):
        scan = scan_segment(path)
        if (
            scan.clean
            and len(scan.records) == 1
            and scan.records[0].kind == RECORD_KIND_SNAPSHOT
            and scan.records[0].seq == seq
        ):
            try:
                target = serialize.loads(scan.records[0].payload)
            except SerializationError:
                report.snapshots_skipped.append(path)
                continue
            report.snapshot_seq = seq
            report.snapshot_path = path
            report.last_seq = seq
            return target
        report.snapshots_skipped.append(path)
    raise PersistenceError(
        "no usable snapshot in %r (%d candidate(s), all damaged); "
        "nothing to recover" % (log.directory, len(candidates))
    )


def _replay_segments(log: DurableLog, target: Any, report: RecoveryReport) -> None:
    """Replay every applicable delta record, quarantining damage."""
    expected = report.snapshot_seq
    segments = log.segment_paths()
    stopped = False
    for index, (first_seq, path) in enumerate(segments):
        if stopped:
            # Once replay stops, nothing later can be applied: the seq
            # chain is broken.  Keep the bytes, but out of the way.
            tail_scan = scan_segment(path)
            report.dropped_records += len(tail_scan.records)
            report.quarantined.append(log.quarantine_file(path))
            continue
        scan = scan_segment(path)
        report.segments_scanned += 1
        for record in scan.records:
            if record.seq <= expected:
                continue  # predates the snapshot (not yet compacted)
            if record.seq != expected + 1 or record.kind != RECORD_KIND_DELTA:
                report.faults.append(
                    (path, "gap", "expected seq %d, found seq %d (kind %d)"
                     % (expected + 1, record.seq, record.kind))
                )
                report.dropped_records += sum(
                    1 for later in scan.records if later.seq >= record.seq
                )
                stopped = True
                break
            tree = serialize.loads_tree(record.payload)
            apply_delta(target, tree)
            expected = record.seq
            report.replayed_records += 1
        if scan.fault is not None:
            report.faults.append((path, scan.fault, scan.detail))
            quarantined = log.quarantine_tail(scan)
            if quarantined is not None:
                report.quarantined.append(quarantined)
            if scan.fault == "corrupt" or index < len(segments) - 1:
                # A corrupt record (or a tear that is not at the very end
                # of the log) means later records are unreachable.
                stopped = True
    report.last_seq = expected


def _recover_with_log(log: DurableLog) -> Tuple[Any, RecoveryReport]:
    report = RecoveryReport(directory=log.directory)
    target = _load_snapshot(log, report)
    _replay_segments(log, target, report)
    return target, report


def recover(directory: str, sync: bool = True) -> Tuple[Any, RecoveryReport]:
    """Rebuild the persisted object from ``directory``.

    Returns ``(target, report)`` where ``target.to_bytes()`` is
    bit-identical to the state at the last durably-acknowledged record,
    and ``report`` describes anything that had to be dropped.  Raises
    :class:`~repro.exceptions.PersistenceError` only when there is
    nothing usable at all (no intact snapshot) or the directory is
    locked by a live writer — damaged data alone never raises.
    """
    with DurableLog(directory, sync=sync) as log:
        return _recover_with_log(log)


class Checkpointer:
    """Write-ahead logging + periodic snapshots for one target object.

    Use :meth:`Checkpointer.open` to transparently create-or-recover::

        ck, report = Checkpointer.open(path, lambda: make_f0_estimator(...))
        ck.ingest(items)             # applied to ck.target, then logged
        ck.snapshot()                # seal segment, write snapshot, compact
        ck.close()

    ``snapshot_every`` auto-snapshots after that many delta records;
    ``keep_snapshots`` retained snapshots (and the segments between
    them) bound how far back recovery can fall if the newest snapshot
    file is damaged.
    """

    def __init__(
        self,
        target: Any,
        directory: str,
        snapshot_every: Optional[int] = None,
        keep_snapshots: int = 2,
        sync: bool = True,
        _resume: Optional[Tuple[DurableLog, int]] = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise PersistenceError("snapshot_every must be a positive count")
        if keep_snapshots < 1:
            raise PersistenceError("keep_snapshots must be at least 1")
        self.target = target
        self.snapshot_every = snapshot_every
        self.keep_snapshots = keep_snapshots
        self._since_snapshot = 0
        if _resume is not None:
            self._log, self._seq = _resume
            # A clean close() seals a snapshot and then leaves an empty
            # live segment at seq+1; drop such husks so the fresh
            # segment we open at the same sequence does not collide.
            for first_seq, path in self._log.segment_paths():
                if first_seq > self._seq and os.path.getsize(path) == 0:
                    self._log.remove(path)
            self._log.open_segment(self._seq + 1)
        else:
            self._log = DurableLog(directory, sync=sync)
            if self._log.segment_paths() or self._log.snapshot_paths():
                self._log.close()
                raise PersistenceError(
                    "directory %r already holds a durable log; use "
                    "Checkpointer.open() or recover() instead of "
                    "constructing over existing state" % directory
                )
            self._seq = 0
            # Seq 0 is the initial snapshot: recovery always has a floor
            # even if the process dies before the first explicit one.
            self._log.write_snapshot(0, self.target.to_bytes())
            self._log.open_segment(1)

    @classmethod
    def open(
        cls,
        directory: str,
        factory: Callable[[], Any],
        snapshot_every: Optional[int] = None,
        keep_snapshots: int = 2,
        sync: bool = True,
    ) -> Tuple["Checkpointer", Optional[RecoveryReport]]:
        """Create a fresh checkpointer, or recover and resume an existing one.

        ``factory`` builds the pristine target when ``directory`` holds
        no prior state; otherwise the target is recovered from disk and
        the factory is not called.  Returns ``(checkpointer, report)``
        with ``report`` ``None`` for the fresh case.
        """
        log = DurableLog(directory, sync=sync)
        if not log.snapshot_paths() and not log.segment_paths():
            log.close()
            return (
                cls(
                    factory(),
                    directory,
                    snapshot_every=snapshot_every,
                    keep_snapshots=keep_snapshots,
                    sync=sync,
                ),
                None,
            )
        try:
            target, report = _recover_with_log(log)
        except BaseException:
            log.close()
            raise
        checkpointer = cls(
            target,
            directory,
            snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots,
            sync=sync,
            _resume=(log, report.last_seq),
        )
        return checkpointer, report

    # -- introspection ------------------------------------------------------

    @property
    def seq(self) -> int:
        """Sequence number of the last durably-acknowledged record."""
        return self._seq

    @property
    def directory(self) -> str:
        return self._log.directory

    @property
    def log(self) -> DurableLog:
        return self._log

    @property
    def log_bytes(self) -> int:
        """Framed bytes appended to the WAL through this instance."""
        return self._log.bytes_appended

    # -- mutation API -------------------------------------------------------

    def ingest(self, items, deltas=None, keys=None, ts=None) -> int:
        """Apply and durably log one batched update; returns its seq.

        The argument combination picks the target API exactly as
        :func:`apply_delta` documents — bare/turnstile ``update_batch``,
        keyed ``update_grouped``, timestamped ``ingest_timestamped``.
        """
        return self._commit(
            {"op": "ingest", "items": items, "deltas": deltas, "keys": keys, "ts": ts}
        )

    def advance_epoch(self, count: int = 1) -> int:
        """Apply and durably log an explicit epoch roll (windowed targets)."""
        return self._commit({"op": "advance", "count": count})

    def call(self, name: str, *args) -> int:
        """Apply and durably log a whitelisted method call on the target.

        The target class must list ``name`` in its ``WAL_METHODS`` tuple;
        this is how composite consumers (e.g. the flow monitor) log
        operations richer than the canonical batch shapes.
        """
        return self._commit({"op": "call", "name": name, "args": list(args)})

    def _commit(self, tree: dict) -> int:
        payload = serialize.dumps_tree(tree)
        # Apply the DECODED record, not the original arguments: replay
        # will see exactly these values, so live state and recovered
        # state run the same code on the same bytes.
        apply_delta(self.target, serialize.loads_tree(payload))
        self._seq += 1
        self._log.append(RECORD_KIND_DELTA, self._seq, payload)
        self._since_snapshot += 1
        if self.snapshot_every is not None and self._since_snapshot >= self.snapshot_every:
            self.snapshot()
        return self._seq

    # -- snapshots and compaction -------------------------------------------

    def snapshot(self) -> str:
        """Write a full snapshot, seal the segment, and compact.

        After this returns, recovery needs only the snapshot file (plus
        any records appended later); every segment no retained snapshot
        depends on is deleted.  Idempotent at a given seq: a second call
        with no intervening deltas returns the existing snapshot.
        """
        if self._since_snapshot == 0:
            snapshots = self._log.snapshot_paths()
            if snapshots and snapshots[-1][0] == self._seq:
                return snapshots[-1][1]
        path = self._log.write_snapshot(self._seq, self.target.to_bytes())
        self._log.open_segment(self._seq + 1)
        self._since_snapshot = 0
        self._compact()
        return path

    def _compact(self) -> None:
        snapshots = self._log.snapshot_paths()
        for _, stale in snapshots[: -self.keep_snapshots]:
            self._log.remove(stale)
        retained = snapshots[-self.keep_snapshots :]
        floor = retained[0][0] if retained else 0
        segments = self._log.segment_paths()
        # Segment i covers seqs [start_i, start_{i+1} - 1]; it is dead
        # once even the OLDEST retained snapshot already covers all of
        # it (so no fallback recovery path can need its records).
        for (start, path), (next_start, _) in zip(segments, segments[1:]):
            if path == self._log.live_segment:
                break
            if next_start <= floor + 1:
                self._log.remove(path)

    def close(self) -> None:
        self._log.close()

    def __enter__(self) -> "Checkpointer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
