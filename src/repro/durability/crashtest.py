"""Deterministic SIGKILL crash-injection harness for the durability layer.

The proof obligation of :mod:`repro.durability` is *bit-identical
recovery*: kill an ingesting process at an arbitrary point in the log
and ``recover()`` must yield exactly the prefix state the log durably
acknowledged — not an approximation of it.  This module makes that a
repeatable experiment:

* a **spec** (plain dict — JSON-portable) names a workload from the
  zoo (:mod:`repro.streams.workloads`), a target (bare estimator,
  turnstile sketch, keyed store, or windowed ring), batching, and a
  kill rule;
* :func:`run_child` (also reachable as ``python -m
  repro.durability.crashtest '<json-spec>'``) ingests the workload
  through a :class:`~repro.durability.Checkpointer` and SIGKILLs
  *itself* the moment the write-ahead log crosses the spec's byte or
  record threshold — self-inflicted kills land at exact, reproducible
  log offsets, which a controller-timed signal cannot guarantee;
* :func:`run_crash_cycle` launches that child in a subprocess, recovers
  the directory it left behind, replays the same seed cleanly in
  process, and compares ``to_bytes()`` bit for bit.

Kill thresholds come from :func:`kill_points`, which hashes the spec
seed — "randomized" offsets that are nevertheless stamped by the seed,
so a failing combination replays exactly (the ``ShardFault`` discipline
from the parallel engine, applied to durability).
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from .. import serialize
from ..estimators.registry import make_f0_estimator, make_l0_estimator
from ..exceptions import PersistenceError
from ..store.store import SketchStore
from ..streams.workloads import WorkloadScale, make_workload
from ..window.windowed import WindowedSketch
from .checkpoint import Checkpointer, RecoveryReport, apply_delta, recover
from .log import RECORD_KIND_DELTA, encode_record

__all__ = [
    "CrashOutcome",
    "build_target",
    "default_spec",
    "iter_delta_trees",
    "kill_points",
    "run_child",
    "run_clean",
    "run_crash_cycle",
]

#: Smoke-scale workload knobs; small enough that a full family sweep
#: with several kill points stays inside a CI step.
_SMOKE_SCALE = dict(
    universe_size=1 << 14, length=6000, key_count=64, epochs=6, updates_per_epoch=900
)


def default_spec(
    directory: str,
    kind: str = "estimator",
    family: str = "hyperloglog",
    workload: str = "skew",
    seed: int = 0,
    batch_size: int = 512,
    snapshot_every: Optional[int] = 5,
    kill: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a harness spec with smoke-scale defaults."""
    return {
        "directory": directory,
        "kind": kind,
        "family": family,
        "workload": workload,
        "seed": seed,
        "eps": 0.2,
        "batch_size": batch_size,
        "snapshot_every": snapshot_every,
        "scale": dict(_SMOKE_SCALE),
        "kill": kill or {"mode": "none"},
    }


def _scale(spec: Dict[str, Any]) -> WorkloadScale:
    return WorkloadScale(**spec["scale"])


def build_target(spec: Dict[str, Any]) -> Any:
    """Construct the pristine ingestion target a spec describes."""
    kind = spec["kind"]
    universe = spec["scale"]["universe_size"]
    eps = spec["eps"]
    seed = spec["seed"]
    if kind == "estimator":
        return make_f0_estimator(spec["family"], universe, eps, seed=seed)
    if kind == "turnstile":
        stream = make_workload(spec["workload"], "stream", seed=seed, scale=_scale(spec))
        return make_l0_estimator(
            spec["family"], universe, eps, stream.max_update_magnitude(), seed=seed
        )
    if kind == "store":
        return SketchStore.for_family(spec["family"], universe, eps=eps, seed=seed)
    if kind == "windowed":
        template = make_f0_estimator(spec["family"], universe, eps, seed=seed)
        return WindowedSketch(template, retention=spec["scale"]["epochs"])
    raise PersistenceError("unknown crash-test target kind %r" % (kind,))


def iter_delta_trees(spec: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Yield the delta-record argument dicts a spec's ingestion produces.

    The child feeds these through :meth:`Checkpointer.ingest`; the clean
    verifier feeds the same sequence through :func:`apply_delta`.  Both
    sides derive them from the same seeded workload, so record ``i`` is
    byte-for-byte the same on either side.
    """
    kind = spec["kind"]
    step = spec["batch_size"]
    scale = _scale(spec)
    seed = spec["seed"]
    if kind in ("estimator", "turnstile"):
        stream = make_workload(spec["workload"], "stream", seed=seed, scale=scale)
        items = stream.item_array()
        deltas = stream.delta_array() if kind == "turnstile" else None
        for start in range(0, len(items), step):
            yield {
                "items": items[start : start + step],
                "deltas": None if deltas is None else deltas[start : start + step],
            }
    elif kind == "store":
        keyed = make_workload(spec["workload"], "keyed", seed=seed, scale=scale)
        for start in range(0, len(keyed.items), step):
            yield {
                "keys": keyed.keys[start : start + step],
                "items": keyed.items[start : start + step],
                "deltas": None
                if keyed.deltas is None
                else keyed.deltas[start : start + step],
            }
    elif kind == "windowed":
        windowed = make_workload(spec["workload"], "windowed", seed=seed, scale=scale)
        for start in range(0, len(windowed.items), step):
            yield {
                "ts": windowed.epochs[start : start + step],
                "items": windowed.items[start : start + step],
                "deltas": None
                if windowed.deltas is None
                else windowed.deltas[start : start + step],
            }
    else:
        raise PersistenceError("unknown crash-test target kind %r" % (kind,))


def _apply_canonical(target: Any, tree: Dict[str, Any]) -> None:
    # Mirror Checkpointer._commit exactly: the live path applies the
    # encode/decode round-trip of the record, so the clean run must too.
    payload = serialize.dumps_tree(dict(tree, op="ingest"))
    apply_delta(target, serialize.loads_tree(payload))


def run_clean(spec: Dict[str, Any], upto: Optional[int] = None) -> Any:
    """Ingest the spec's first ``upto`` records in process, no logging."""
    target = build_target(spec)
    for index, tree in enumerate(iter_delta_trees(spec)):
        if upto is not None and index >= upto:
            break
        _apply_canonical(target, tree)
    return target


def kill_points(spec: Dict[str, Any], count: int, total_bytes: int) -> List[int]:
    """Seed-stamped byte offsets at which to kill the ingesting child.

    Deterministic in ``(seed, kind, family, workload, count)``: a CI
    failure names its spec and replays to the same offsets.
    """
    stamp = "%s|%s|%s|%d" % (
        spec["kind"],
        spec["family"],
        spec["workload"],
        spec["seed"],
    )
    rng = random.Random(stamp)
    return sorted(
        max(1, int(rng.uniform(0.05, 0.95) * total_bytes)) for _ in range(count)
    )


def run_child(spec: Dict[str, Any]) -> None:
    """Ingest the spec's workload, self-SIGKILLing per the kill rule.

    The kill fires from the log's ``after_append`` hook — i.e. strictly
    *after* a record became durable — so the set of acknowledged records
    at death is exact, not racy.  ``kill.mode``:

    ``"none"``      run to completion (final snapshot, clean close).
    ``"bytes"``     die once ``kill.at`` framed WAL bytes are durable.
    ``"records"``   die once ``kill.at`` delta records are durable.

    With ``kill.torn`` true, the child first appends a half-written
    record to the live segment (flushed, fsync'd, then SIGKILL) — a
    reproducible torn tail from a real mid-write death.
    """
    kill = spec.get("kill") or {"mode": "none"}
    checkpointer = Checkpointer(
        build_target(spec),
        spec["directory"],
        snapshot_every=spec.get("snapshot_every"),
    )

    def _die(log) -> None:
        if kill.get("torn"):
            frame = encode_record(
                RECORD_KIND_DELTA,
                checkpointer.seq + 1,
                serialize.dumps_tree({"op": "ingest", "items": None}),
            )
            handle = log._segment_handle
            handle.write(frame[: max(1, len(frame) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    mode = kill.get("mode", "none")
    if mode == "bytes":
        checkpointer.log.after_append = (
            lambda log: _die(log) if log.bytes_appended >= kill["at"] else None
        )
    elif mode == "records":
        checkpointer.log.after_append = (
            lambda log: _die(log) if checkpointer.seq >= kill["at"] else None
        )
    elif mode != "none":
        raise PersistenceError("unknown kill mode %r" % (mode,))

    for tree in iter_delta_trees(spec):
        checkpointer.ingest(**tree)
    checkpointer.snapshot()
    checkpointer.close()


@dataclass
class CrashOutcome:
    """One kill-recover-verify cycle's verdict."""

    spec: Dict[str, Any]
    returncode: int
    killed: bool
    report: RecoveryReport
    #: Delta records the recovered state contains.
    applied_records: int
    #: Delta records the full (uninterrupted) run would contain.
    total_records: int
    #: ``to_bytes()`` of recovery == clean same-seed run of the prefix.
    bit_identical: bool

    @property
    def ok(self) -> bool:
        expected_death = (self.spec.get("kill") or {}).get("mode", "none") != "none"
        return self.bit_identical and self.killed == expected_death


def run_crash_cycle(spec: Dict[str, Any], timeout: float = 180.0) -> CrashOutcome:
    """Run the child under its kill rule, recover, and verify bit-identity."""
    child = subprocess.run(
        [sys.executable, "-m", "repro.durability.crashtest", json.dumps(spec)],
        timeout=timeout,
        env=_child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    killed = child.returncode == -signal.SIGKILL
    if not killed and child.returncode != 0:
        raise PersistenceError(
            "crash-test child failed unexpectedly (rc %d): %s"
            % (child.returncode, child.stderr.decode("utf-8", "replace")[-2000:])
        )
    target, report = recover(spec["directory"])
    clean = run_clean(spec, upto=report.last_seq)
    total = sum(1 for _ in iter_delta_trees(spec))
    return CrashOutcome(
        spec=spec,
        returncode=child.returncode,
        killed=killed,
        report=report,
        applied_records=report.last_seq,
        total_records=total,
        bit_identical=clean.to_bytes() == target.to_bytes(),
    )


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return env


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.durability.crashtest '<json-spec>'", file=sys.stderr)
        return 2
    run_child(json.loads(argv[0]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
