"""Experiment runner: execute estimators over streams with checkpoints.

This is the piece of glue every benchmark and example shares: given a
stream and an estimator (or a registry name), run the stream through it,
optionally query the estimate at mid-stream checkpoints (the paper's
"report at any point" capability), and collect the estimate, the exact
ground truth, the relative error, and the space consumed.

Every entry point takes an optional ``batch_size``: when set, the stream
is driven through the estimator's ``update_batch`` in chunks (split at
checkpoint boundaries so mid-stream reports still see exactly the
requested prefixes).  Batch and scalar driving produce identical results
— the batch API is contractually equivalent to the update loop — so
sweeps can enable batching purely for throughput.

Every entry point additionally takes ``workers``: when more than 1, each
stream segment between checkpoints is ingested by the sharded
multi-process engine (:mod:`repro.parallel`) — worker processes ingest
contiguous shards into same-seed clones and the results merge-reduce
back into the run's estimator, so mid-stream reports still see exactly
the requested prefixes.  Requires a mergeable estimator; results are
bit-identical to serial driving for seed-determined hash configurations
(see ``CardinalityEstimator.shard_deterministic``) — which, on the
turnstile side, is every mergeable L0 sketch (they are linear with
eagerly drawn hashes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..estimators.base import CardinalityEstimator, TurnstileEstimator
from ..estimators.registry import make_f0_estimator, make_l0_estimator
from ..exceptions import ParameterError, UpdateError
from ..parallel import (
    DEFAULT_SHARD_BATCH,
    parallel_ingest_into,
    parallel_ingest_updates_into,
)
from ..streams.model import MaterializedStream
from .metrics import relative_error

__all__ = [
    "CheckpointResult",
    "RunResult",
    "KeyedRunResult",
    "run_f0",
    "run_l0",
    "run_f0_by_name",
    "run_l0_by_name",
    "run_keyed_f0",
    "run_keyed_l0",
]


@dataclass
class CheckpointResult:
    """Estimate vs. truth at one mid-stream checkpoint."""

    position: int
    truth: int
    estimate: float
    relative_error: float


@dataclass
class RunResult:
    """Outcome of running one estimator over one stream.

    Attributes:
        algorithm: the estimator's declared name.
        stream: the stream's name.
        truth: exact F0/L0 of the full stream.
        estimate: the estimator's final output.
        relative_error: ``|estimate - truth| / truth``.
        space_bits: the sketch size after the run.
        checkpoints: optional mid-stream measurements.
    """

    algorithm: str
    stream: str
    truth: int
    estimate: float
    relative_error: float
    space_bits: int
    checkpoints: List[CheckpointResult] = field(default_factory=list)


def _checkpoint(
    checkpoints: List[CheckpointResult],
    estimator,
    position: int,
    truth: int,
) -> None:
    estimate = estimator.estimate()
    checkpoints.append(
        CheckpointResult(
            position=position,
            truth=truth,
            estimate=estimate,
            relative_error=relative_error(estimate, truth) if truth else 0.0,
        )
    )


def _drive_batched(
    estimator,
    stream: MaterializedStream,
    positions: Sequence[int],
    truths: Sequence[int],
    checkpoints: List[CheckpointResult],
    batch_size: int,
    turnstile: bool,
) -> None:
    """Feed the stream via ``update_batch`` chunks, split at checkpoints."""
    items = stream.item_array()
    deltas = stream.delta_array() if turnstile else None

    def feed_until(boundary: int, cursor: int) -> int:
        while cursor < boundary:
            stop = min(cursor + batch_size, boundary)
            if turnstile:
                estimator.update_batch(items[cursor:stop], deltas[cursor:stop])
            else:
                estimator.update_batch(items[cursor:stop])
            cursor = stop
        return cursor

    cursor = 0
    for position, truth in zip(positions, truths):
        cursor = feed_until(position, cursor)
        if position > 0:  # the scalar loop reports only after an update
            _checkpoint(checkpoints, estimator, position, truth)
    feed_until(len(stream), cursor)


def _drive_persistent(
    estimator,
    stream: MaterializedStream,
    positions: Sequence[int],
    truths: Sequence[int],
    checkpoints: List[CheckpointResult],
    batch_size: Optional[int],
    turnstile: bool,
    persist_dir: str,
) -> None:
    """Feed the stream through a write-ahead-logged Checkpointer.

    Every ``batch_size`` chunk becomes one durable delta record, and
    every checkpoint boundary (plus end of stream) writes a full
    snapshot and compacts the log — so a crash mid-run recovers to the
    last acknowledged batch via :func:`repro.durability.recover`,
    bit-identical to the state the run had there.  The estimate/error
    results are identical to the un-persisted batched drive.
    """
    from ..durability import Checkpointer

    items = stream.item_array()
    deltas = stream.delta_array() if turnstile else None
    chunk = batch_size if batch_size is not None else DEFAULT_SHARD_BATCH
    checkpointer = Checkpointer(estimator, persist_dir)
    try:

        def feed_until(boundary: int, cursor: int) -> int:
            while cursor < boundary:
                stop = min(cursor + chunk, boundary)
                checkpointer.ingest(
                    items[cursor:stop],
                    None if deltas is None else deltas[cursor:stop],
                )
                cursor = stop
            return cursor

        cursor = 0
        for position, truth in zip(positions, truths):
            if position > cursor:
                cursor = feed_until(position, cursor)
                checkpointer.snapshot()
            if position > 0:
                _checkpoint(checkpoints, estimator, position, truth)
        feed_until(len(stream), cursor)
        checkpointer.snapshot()
    finally:
        checkpointer.close()


def _drive_sharded(
    estimator,
    stream: MaterializedStream,
    positions: Sequence[int],
    truths: Sequence[int],
    checkpoints: List[CheckpointResult],
    batch_size: Optional[int],
    workers: int,
    turnstile: bool,
) -> None:
    """Feed each inter-checkpoint segment through the sharded engine.

    The process-wide persistent pool (:mod:`repro.parallel.pool`) serves
    every segment — pool startup is paid once per *process*, not once
    per checkpoint or even per run.  Turnstile runs shard ``(items,
    deltas)`` pairs through the L0 additive engine; insertion-only runs
    shard the item array.
    """
    items = stream.item_array()
    deltas = stream.delta_array() if turnstile else None
    chunk = batch_size if batch_size is not None else DEFAULT_SHARD_BATCH

    def ingest_segment(start: int, stop: int) -> None:
        if turnstile:
            parallel_ingest_updates_into(
                estimator,
                (items[start:stop], deltas[start:stop]),
                workers=workers,
                shards=workers,
                batch_size=chunk,
            )
        else:
            parallel_ingest_into(
                estimator,
                items[start:stop],
                workers=workers,
                shards=workers,
                batch_size=chunk,
            )

    cursor = 0
    for position, truth in zip(positions, truths):
        if position > cursor:
            ingest_segment(cursor, position)
            cursor = position
        if position > 0:
            _checkpoint(checkpoints, estimator, position, truth)
    if cursor < len(stream):
        ingest_segment(cursor, len(stream))


def _run(
    estimator,
    stream: MaterializedStream,
    checkpoint_positions: Optional[Sequence[int]],
    turnstile: bool,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    persist_dir: Optional[str] = None,
) -> RunResult:
    positions = list(checkpoint_positions) if checkpoint_positions else []
    truths = stream.ground_truth_at(positions) if positions else []
    checkpoints: List[CheckpointResult] = []
    if persist_dir is not None:
        if workers is not None and workers > 1:
            raise ParameterError(
                "persist_dir is incompatible with workers > 1: sharded "
                "merges bypass the write-ahead log, so the recovered state "
                "would silently miss them"
            )
        if batch_size is not None and batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        if not turnstile and not stream.is_insertion_only():
            raise UpdateError("insertion-only run received a turnstile stream")
        _drive_persistent(
            estimator,
            stream,
            positions,
            truths,
            checkpoints,
            batch_size,
            turnstile,
            persist_dir,
        )
    elif workers is not None and workers > 1:
        _drive_sharded(
            estimator,
            stream,
            positions,
            truths,
            checkpoints,
            batch_size,
            workers,
            turnstile,
        )
    elif batch_size is not None:
        if batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        if not turnstile and not stream.is_insertion_only():
            raise UpdateError("insertion-only run received a turnstile stream")
        _drive_batched(
            estimator, stream, positions, truths, checkpoints, batch_size, turnstile
        )
    else:
        next_checkpoint = 0
        # Reporting happens only after an update: checkpoints at position 0
        # are skipped (not stalled on — a 0 entry must not block later ones).
        while next_checkpoint < len(positions) and positions[next_checkpoint] == 0:
            next_checkpoint += 1
        for index, update in enumerate(stream):
            if turnstile:
                estimator.update(update.item, update.delta)
            else:
                if update.delta != 1:
                    raise UpdateError(
                        "insertion-only run received a turnstile update at position %d"
                        % index
                    )
                estimator.update(update.item)
            while (
                next_checkpoint < len(positions)
                and positions[next_checkpoint] == index + 1
            ):
                _checkpoint(
                    checkpoints, estimator, index + 1, truths[next_checkpoint]
                )
                next_checkpoint += 1
    truth = stream.ground_truth()
    estimate = estimator.estimate()
    return RunResult(
        algorithm=getattr(estimator, "name", type(estimator).__name__),
        stream=stream.name,
        truth=truth,
        estimate=estimate,
        relative_error=relative_error(estimate, truth) if truth else 0.0,
        space_bits=estimator.space_bits(),
        checkpoints=checkpoints,
    )


def run_f0(
    estimator: CardinalityEstimator,
    stream: MaterializedStream,
    checkpoint_positions: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    persist_dir: Optional[str] = None,
) -> RunResult:
    """Run an insertion-only estimator over a stream.

    Args:
        estimator: the sketch to drive.
        stream: the insertion-only stream.
        checkpoint_positions: optional non-decreasing prefix lengths at
            which to record mid-stream estimates.
        batch_size: when set, drive the sketch via ``update_batch`` in
            chunks of this many items (identical results, higher
            throughput).
        workers: when > 1, ingest each inter-checkpoint segment through
            the sharded multi-process engine (requires a mergeable
            estimator built with an explicit seed).
        persist_dir: when set, every ingested chunk is write-ahead
            logged to this (fresh) directory and every checkpoint
            boundary writes a durable snapshot, so a killed run is
            recoverable with :func:`repro.durability.recover`; results
            are identical to the un-persisted run.  Incompatible with
            ``workers > 1``.
    """
    if not stream.is_insertion_only():
        raise ParameterError("run_f0 requires an insertion-only stream")
    return _run(
        estimator,
        stream,
        checkpoint_positions,
        turnstile=False,
        batch_size=batch_size,
        workers=workers,
        persist_dir=persist_dir,
    )


def run_l0(
    estimator: TurnstileEstimator,
    stream: MaterializedStream,
    checkpoint_positions: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    persist_dir: Optional[str] = None,
) -> RunResult:
    """Run a turnstile estimator over a stream (see :func:`run_f0`).

    ``workers > 1`` ingests each inter-checkpoint segment through the
    sharded L0 engine — the library's L0 sketches are linear, so the
    sharded state is bit-identical to serial driving (requires an
    estimator built with an explicit seed).  ``persist_dir`` write-ahead
    logs the run exactly as in :func:`run_f0`.
    """
    return _run(
        estimator,
        stream,
        checkpoint_positions,
        turnstile=True,
        batch_size=batch_size,
        workers=workers,
        persist_dir=persist_dir,
    )


@dataclass
class KeyedRunResult:
    """Outcome of running one sketch-store family over a keyed workload.

    Attributes:
        family: the store's sketch family.
        workload: the workload's name.
        key_count: number of distinct keys observed.
        mean_truth: mean exact per-key distinct count.
        mean_relative_error: per-key relative errors, averaged.
        max_relative_error: the worst per-key relative error.
        space_bits: the store's total footprint after the run.
        estimates: per-key estimates (key -> estimate).
        truth: per-key exact distinct counts (key -> count).
    """

    family: str
    workload: str
    key_count: int
    mean_truth: float
    mean_relative_error: float
    max_relative_error: float
    space_bits: int
    estimates: dict = field(default_factory=dict)
    truth: dict = field(default_factory=dict)


def run_keyed_f0(
    family: str,
    workload,
    eps: float,
    seed: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    workers: Optional[int] = None,
    **family_params,
) -> KeyedRunResult:
    """Run one sketch-store family over a keyed insertion-only workload.

    The keyed-workload counterpart of :func:`run_f0_by_name`: a
    :class:`~repro.store.store.SketchStore` ingests the whole workload
    through grouped vectorized sweeps (chunked at ``batch_size``), every
    key's estimate is read with one bulk ``estimate_all``, and the
    per-key relative errors against the exact per-key distinct counts
    are aggregated.

    Args:
        family: a struct-of-arrays store family or any registry F0 name
            (see :func:`repro.store.families.make_sketch_array`).
        workload: a :class:`repro.streams.generators.KeyedWorkload`.
        eps: target relative error per key.
        seed: store seed (required by the store's homologous-rows model).
        batch_size: grouped-sweep chunk length (``None`` drives the
            whole workload as one sweep).
        workers: when > 1, shard the workload by key range over this
            many worker processes (:func:`repro.parallel
            .parallel_ingest_keyed`); results are identical to serial
            grouped driving.
        **family_params: forwarded to the family factory.
    """
    from ..store import SketchStore

    store = SketchStore.for_family(
        family, workload.universe_size, eps=eps, seed=seed, **family_params
    )
    if workers is not None and workers > 1:
        from ..parallel import parallel_ingest_keyed

        parallel_ingest_keyed(
            store,
            workload.keys,
            workload.items,
            workers=workers,
            batch_size=batch_size,
        )
    elif batch_size is None:
        store.update_grouped(workload.keys, workload.items)
    else:
        for keys, items in workload.iter_grouped_batches(batch_size):
            store.update_grouped(keys, items)
    truth = workload.ground_truth()
    estimates = store.estimate_all()
    errors = [
        relative_error(estimates[key], count) if count else 0.0
        for key, count in truth.items()
    ]
    return KeyedRunResult(
        family=family,
        workload=getattr(workload, "name", "keyed"),
        key_count=len(truth),
        mean_truth=(sum(truth.values()) / len(truth)) if truth else 0.0,
        mean_relative_error=(sum(errors) / len(errors)) if errors else 0.0,
        max_relative_error=max(errors, default=0.0),
        space_bits=store.space_bits(),
        estimates=estimates,
        truth=truth,
    )


def run_keyed_l0(
    family: str,
    workload,
    eps: float,
    seed: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_SHARD_BATCH,
    magnitude_bound: Optional[int] = None,
    **family_params,
) -> KeyedRunResult:
    """Run one L0 sketch-store family over a keyed turnstile workload.

    The turnstile counterpart of :func:`run_keyed_f0`: the workload's
    updates carry signed deltas (see
    :class:`repro.streams.generators.KeyedWorkload`), the store is built
    from an L0 family, and per-key errors are scored against the exact
    per-key support sizes after cancellation.  Insertion-only keyed
    workloads are accepted too (their deltas are implicitly all ``+1``).

    Args:
        family: an L0 registry name (``knw-l0``, ``ganguly``, ...).
        workload: a :class:`repro.streams.generators.KeyedWorkload`.
        eps: target relative error per key.
        seed: store seed.
        batch_size: grouped-sweep chunk length (``None`` drives the
            whole workload as one sweep).
        magnitude_bound: per-frequency magnitude bound forwarded to the
            family factory; defaults to the workload's worst case
            (every update hitting one (key, item) pair).
        **family_params: forwarded to the family factory.
    """
    from ..store import SketchStore

    if magnitude_bound is None:
        deltas = getattr(workload, "deltas", None)
        worst = 1
        if deltas is not None:
            worst = max((abs(int(delta)) for delta in deltas), default=1)
        magnitude_bound = max(len(workload) * worst, 1)
    store = SketchStore.for_family(
        family,
        workload.universe_size,
        eps=eps,
        seed=seed,
        magnitude_bound=magnitude_bound,
        **family_params,
    )
    if batch_size is None:
        store.update_grouped(workload.keys, workload.items, workload.deltas)
    else:
        for keys, items, deltas in workload.iter_grouped_update_batches(batch_size):
            store.update_grouped(keys, items, deltas)
    truth = workload.ground_truth()
    estimates = store.estimate_all()
    errors = [
        relative_error(estimates[key], count) if count else 0.0
        for key, count in truth.items()
    ]
    return KeyedRunResult(
        family=family,
        workload=getattr(workload, "name", "keyed"),
        key_count=len(truth),
        mean_truth=(sum(truth.values()) / len(truth)) if truth else 0.0,
        mean_relative_error=(sum(errors) / len(errors)) if errors else 0.0,
        max_relative_error=max(errors, default=0.0),
        space_bits=store.space_bits(),
        estimates=estimates,
        truth=truth,
    )


def run_f0_by_name(
    name: str,
    stream: MaterializedStream,
    eps: float,
    seed: Optional[int] = None,
    checkpoint_positions: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    persist_dir: Optional[str] = None,
) -> RunResult:
    """Instantiate a registered F0 algorithm and run it over ``stream``."""
    estimator = make_f0_estimator(name, stream.universe_size, eps, seed)
    return run_f0(
        estimator,
        stream,
        checkpoint_positions,
        batch_size=batch_size,
        workers=workers,
        persist_dir=persist_dir,
    )


def run_l0_by_name(
    name: str,
    stream: MaterializedStream,
    eps: float,
    seed: Optional[int] = None,
    checkpoint_positions: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    persist_dir: Optional[str] = None,
) -> RunResult:
    """Instantiate a registered L0 algorithm and run it over ``stream``."""
    magnitude_bound = max(len(stream) * stream.max_update_magnitude(), 1)
    estimator = make_l0_estimator(name, stream.universe_size, eps, magnitude_bound, seed)
    return run_l0(
        estimator,
        stream,
        checkpoint_positions,
        batch_size=batch_size,
        workers=workers,
        persist_dir=persist_dir,
    )
