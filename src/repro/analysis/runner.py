"""Experiment runner: execute estimators over streams with checkpoints.

This is the piece of glue every benchmark and example shares: given a
stream and an estimator (or a registry name), run the stream through it,
optionally query the estimate at mid-stream checkpoints (the paper's
"report at any point" capability), and collect the estimate, the exact
ground truth, the relative error, and the space consumed.

Every entry point takes an optional ``batch_size``: when set, the stream
is driven through the estimator's ``update_batch`` in chunks (split at
checkpoint boundaries so mid-stream reports still see exactly the
requested prefixes).  Batch and scalar driving produce identical results
— the batch API is contractually equivalent to the update loop — so
sweeps can enable batching purely for throughput.

Every entry point additionally takes ``workers``: when more than 1, each
stream segment between checkpoints is ingested by the sharded
multi-process engine (:mod:`repro.parallel`) — worker processes ingest
contiguous shards into same-seed clones and the results merge-reduce
back into the run's estimator, so mid-stream reports still see exactly
the requested prefixes.  Requires a mergeable estimator; results are
bit-identical to serial driving for seed-determined hash configurations
(see ``CardinalityEstimator.shard_deterministic``) — which, on the
turnstile side, is every mergeable L0 sketch (they are linear with
eagerly drawn hashes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..estimators.base import CardinalityEstimator, TurnstileEstimator
from ..estimators.registry import make_f0_estimator, make_l0_estimator
from ..exceptions import ParameterError, UpdateError
from ..parallel import (
    DEFAULT_SHARD_BATCH,
    parallel_ingest_into,
    parallel_ingest_updates_into,
)
from ..streams.model import MaterializedStream
from .metrics import relative_error

__all__ = ["CheckpointResult", "RunResult", "run_f0", "run_l0", "run_f0_by_name", "run_l0_by_name"]


@dataclass
class CheckpointResult:
    """Estimate vs. truth at one mid-stream checkpoint."""

    position: int
    truth: int
    estimate: float
    relative_error: float


@dataclass
class RunResult:
    """Outcome of running one estimator over one stream.

    Attributes:
        algorithm: the estimator's declared name.
        stream: the stream's name.
        truth: exact F0/L0 of the full stream.
        estimate: the estimator's final output.
        relative_error: ``|estimate - truth| / truth``.
        space_bits: the sketch size after the run.
        checkpoints: optional mid-stream measurements.
    """

    algorithm: str
    stream: str
    truth: int
    estimate: float
    relative_error: float
    space_bits: int
    checkpoints: List[CheckpointResult] = field(default_factory=list)


def _checkpoint(
    checkpoints: List[CheckpointResult],
    estimator,
    position: int,
    truth: int,
) -> None:
    estimate = estimator.estimate()
    checkpoints.append(
        CheckpointResult(
            position=position,
            truth=truth,
            estimate=estimate,
            relative_error=relative_error(estimate, truth) if truth else 0.0,
        )
    )


def _drive_batched(
    estimator,
    stream: MaterializedStream,
    positions: Sequence[int],
    truths: Sequence[int],
    checkpoints: List[CheckpointResult],
    batch_size: int,
    turnstile: bool,
) -> None:
    """Feed the stream via ``update_batch`` chunks, split at checkpoints."""
    items = stream.item_array()
    deltas = stream.delta_array() if turnstile else None

    def feed_until(boundary: int, cursor: int) -> int:
        while cursor < boundary:
            stop = min(cursor + batch_size, boundary)
            if turnstile:
                estimator.update_batch(items[cursor:stop], deltas[cursor:stop])
            else:
                estimator.update_batch(items[cursor:stop])
            cursor = stop
        return cursor

    cursor = 0
    for position, truth in zip(positions, truths):
        cursor = feed_until(position, cursor)
        if position > 0:  # the scalar loop reports only after an update
            _checkpoint(checkpoints, estimator, position, truth)
    feed_until(len(stream), cursor)


def _drive_sharded(
    estimator,
    stream: MaterializedStream,
    positions: Sequence[int],
    truths: Sequence[int],
    checkpoints: List[CheckpointResult],
    batch_size: Optional[int],
    workers: int,
    turnstile: bool,
) -> None:
    """Feed each inter-checkpoint segment through the sharded engine.

    One worker pool serves every segment — pool startup is paid once per
    run, not once per checkpoint.  Turnstile runs shard ``(items, deltas)``
    pairs through the L0 merge-reduce engine; insertion-only runs shard
    the item array.
    """
    from concurrent.futures import ProcessPoolExecutor

    items = stream.item_array()
    deltas = stream.delta_array() if turnstile else None
    chunk = batch_size if batch_size is not None else DEFAULT_SHARD_BATCH

    def ingest_segment(start: int, stop: int, pool) -> None:
        if turnstile:
            parallel_ingest_updates_into(
                estimator,
                (items[start:stop], deltas[start:stop]),
                shards=workers,
                batch_size=chunk,
                executor=pool,
            )
        else:
            parallel_ingest_into(
                estimator,
                items[start:stop],
                shards=workers,
                batch_size=chunk,
                executor=pool,
            )

    with ProcessPoolExecutor(max_workers=workers) as pool:
        cursor = 0
        for position, truth in zip(positions, truths):
            if position > cursor:
                ingest_segment(cursor, position, pool)
                cursor = position
            if position > 0:
                _checkpoint(checkpoints, estimator, position, truth)
        if cursor < len(stream):
            ingest_segment(cursor, len(stream), pool)


def _run(
    estimator,
    stream: MaterializedStream,
    checkpoint_positions: Optional[Sequence[int]],
    turnstile: bool,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> RunResult:
    positions = list(checkpoint_positions) if checkpoint_positions else []
    truths = stream.ground_truth_at(positions) if positions else []
    checkpoints: List[CheckpointResult] = []
    if workers is not None and workers > 1:
        _drive_sharded(
            estimator,
            stream,
            positions,
            truths,
            checkpoints,
            batch_size,
            workers,
            turnstile,
        )
    elif batch_size is not None:
        if batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        if not turnstile and not stream.is_insertion_only():
            raise UpdateError("insertion-only run received a turnstile stream")
        _drive_batched(
            estimator, stream, positions, truths, checkpoints, batch_size, turnstile
        )
    else:
        next_checkpoint = 0
        # Reporting happens only after an update: checkpoints at position 0
        # are skipped (not stalled on — a 0 entry must not block later ones).
        while next_checkpoint < len(positions) and positions[next_checkpoint] == 0:
            next_checkpoint += 1
        for index, update in enumerate(stream):
            if turnstile:
                estimator.update(update.item, update.delta)
            else:
                if update.delta != 1:
                    raise UpdateError(
                        "insertion-only run received a turnstile update at position %d"
                        % index
                    )
                estimator.update(update.item)
            while (
                next_checkpoint < len(positions)
                and positions[next_checkpoint] == index + 1
            ):
                _checkpoint(
                    checkpoints, estimator, index + 1, truths[next_checkpoint]
                )
                next_checkpoint += 1
    truth = stream.ground_truth()
    estimate = estimator.estimate()
    return RunResult(
        algorithm=getattr(estimator, "name", type(estimator).__name__),
        stream=stream.name,
        truth=truth,
        estimate=estimate,
        relative_error=relative_error(estimate, truth) if truth else 0.0,
        space_bits=estimator.space_bits(),
        checkpoints=checkpoints,
    )


def run_f0(
    estimator: CardinalityEstimator,
    stream: MaterializedStream,
    checkpoint_positions: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> RunResult:
    """Run an insertion-only estimator over a stream.

    Args:
        estimator: the sketch to drive.
        stream: the insertion-only stream.
        checkpoint_positions: optional non-decreasing prefix lengths at
            which to record mid-stream estimates.
        batch_size: when set, drive the sketch via ``update_batch`` in
            chunks of this many items (identical results, higher
            throughput).
        workers: when > 1, ingest each inter-checkpoint segment through
            the sharded multi-process engine (requires a mergeable
            estimator built with an explicit seed).
    """
    if not stream.is_insertion_only():
        raise ParameterError("run_f0 requires an insertion-only stream")
    return _run(
        estimator,
        stream,
        checkpoint_positions,
        turnstile=False,
        batch_size=batch_size,
        workers=workers,
    )


def run_l0(
    estimator: TurnstileEstimator,
    stream: MaterializedStream,
    checkpoint_positions: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> RunResult:
    """Run a turnstile estimator over a stream (see :func:`run_f0`).

    ``workers > 1`` ingests each inter-checkpoint segment through the
    sharded L0 engine — the library's L0 sketches are linear, so the
    sharded state is bit-identical to serial driving (requires an
    estimator built with an explicit seed).
    """
    return _run(
        estimator,
        stream,
        checkpoint_positions,
        turnstile=True,
        batch_size=batch_size,
        workers=workers,
    )


def run_f0_by_name(
    name: str,
    stream: MaterializedStream,
    eps: float,
    seed: Optional[int] = None,
    checkpoint_positions: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> RunResult:
    """Instantiate a registered F0 algorithm and run it over ``stream``."""
    estimator = make_f0_estimator(name, stream.universe_size, eps, seed)
    return run_f0(
        estimator, stream, checkpoint_positions, batch_size=batch_size, workers=workers
    )


def run_l0_by_name(
    name: str,
    stream: MaterializedStream,
    eps: float,
    seed: Optional[int] = None,
    checkpoint_positions: Optional[Sequence[int]] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> RunResult:
    """Instantiate a registered L0 algorithm and run it over ``stream``."""
    magnitude_bound = max(len(stream) * stream.max_update_magnitude(), 1)
    estimator = make_l0_estimator(name, stream.universe_size, eps, magnitude_bound, seed)
    return run_l0(
        estimator, stream, checkpoint_positions, batch_size=batch_size, workers=workers
    )
